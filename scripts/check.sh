#!/usr/bin/env bash
# Full repo gate: build, lint, format, test. Run before every commit.
# Clippy and fmt run ahead of the test suite (and the bench smoke) so
# formatting drift and lint regressions fail in seconds, not minutes.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --all-targets
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
cargo test -q --workspace

# The widened data plane's equivalence suites, named explicitly so a
# failure points straight at the plane that diverged (they also run
# as part of the workspace suite above). proptest_sparse pins the sparse
# CSR pipeline to the dense oracle and the tiled bridge to the untiled
# closure.
cargo test -q --test proptest_lanes --test proptest_swar --test proptest_laws \
    --test proptest_sparse --test proptest_durations

# Perf smoke (non-gating: wall-clock numbers are machine-dependent).
./scripts/bench_smoke.sh || echo "check.sh: bench_smoke failed (non-gating)"

echo "check.sh: all gates passed"
