#!/usr/bin/env bash
# Full repo gate: build, test, lint, format. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --all-targets
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check

# Perf smoke (non-gating: wall-clock numbers are machine-dependent).
./scripts/bench_smoke.sh || echo "check.sh: bench_smoke failed (non-gating)"

echo "check.sh: all gates passed"
