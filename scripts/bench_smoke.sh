#!/usr/bin/env bash
# Perf smoke for the partitioned engines: runs the batched_closure and
# plan_reuse benches with pinned sample counts and records the results —
# one row per mapping and lane plane (linear_m4, lsgp_m4, packed_m4, the
# packed_w1/w2/w4 lane-width sweep, the min-plus scalar/SWAR pair, the
# blocked/unblocked bitmatrix sweeps, plus the plan_reuse shapes) — in
# BENCH_partition.json at the repo root, together with the
# reachability-service stream numbers (query p50/p99 latency at
# fractional-µs precision, sustained command throughput) from the
# serve_bench driver.
#
# Every gated ratio is computed between rows of the *same run*, so gates
# hold on any machine regardless of absolute speed. The historical scalar
# baseline (previous BENCH_partition.json median, falling back to the
# original pre-plan-cache 110.1 ms measurement) is still recorded as
# speedup_vs_baseline, but it is informational only: cross-run wall-clock
# ratios say more about the machine than about the code.
#
# Gates (non-gating from check.sh — wall-clock numbers are
# machine-dependent — but this script itself exits nonzero on failure):
#   * packed_m4 must be >= 8x faster than the same run's linear_m4 (the
#     64-lane bit-sliced data plane's acceptance bar),
#   * the lane-width sweep must record all three packed_w1/w2/w4 rows,
#   * minplus_packed_m4 must be >= 4x faster than the same run's scalar
#     minplus_m4 (the SWAR tropical plane's acceptance bar),
#   * the blocked bitmatrix sweep must be no slower than the classic one
#     at n = 256 (ratio >= 0.95) and faster at n = 2048 (>= 1.02),
#   * every serve stream must report ok=true (answers cross-checked
#     against a full-recompute oracle; latency itself is not gated),
#   * the chaos smoke must record the 4-client concurrent run and the
#     kill-and-recover run (recover_ms), both ok=true — a daemon that
#     loses a session or recovers a wrong closure fails here,
#   * the sparse data plane must close the pinned n=4096 power-law graph
#     >= 20x faster than the dense BitMatrix sweep (same-run ratio), all
#     three sparse_scale rows (10^4, 10^5, 10^6) must be recorded, and
#     peak resident memory after the 10^5 row must stay under a hard
#     128 MiB ceiling (the whole point of never materializing n x n),
#   * the §4.3 varying-time comparison (E30) must record both
#     varying_utilization keys, the linear chain must be at least as
#     utilized as the equal-cell grid, and the measured-vs-analytic
#     tolerance check inside varying_bench must pass (ok=true),
#   * a gate whose key is missing from the output FAILS — a bench that
#     never printed its line must not pass vacuously.
set -euo pipefail
cd "$(dirname "$0")/.."

export SYSTOLIC_BENCH_SAMPLES="${SYSTOLIC_BENCH_SAMPLES:-7}"
export SYSTOLIC_BENCH_WARMUP_MS="${SYSTOLIC_BENCH_WARMUP_MS:-500}"
SERVE_CMDS="${SYSTOLIC_SERVE_CMDS:-20000}"
ORIGINAL_BASELINE_MS=110.1
OUT=BENCH_partition.json

# Prior scalar median from the last recorded run, if any (informational).
PRIOR_MS=""
if [ -f "$OUT" ]; then
  PRIOR_MS=$(sed -n \
    's/.*"id": "batched_closure\/linear_m4\/32x32", "median_ms": \([0-9.]*\).*/\1/p' \
    "$OUT" | head -n1)
fi
BASELINE_MS="${PRIOR_MS:-$ORIGINAL_BASELINE_MS}"

lines=$(
  cargo bench -p systolic-bench --bench batched_closure 2>/dev/null
  cargo bench -p systolic-bench --bench plan_reuse 2>/dev/null
  cargo bench -p systolic-bench --bench sparse_closure 2>/dev/null
  cargo run --release -q -p systolic-bench --bin serve_bench "$SERVE_CMDS"
  cargo run --release -q -p systolic-bench --bin sparse_bench
  cargo run --release -q -p systolic-bench --bin varying_bench
)
printf '%s\n' "$lines"

printf '%s\n' "$lines" | awk \
  -v baseline="$BASELINE_MS" -v samples="$SYSTOLIC_BENCH_SAMPLES" '
  # Unknown duration units are a hard error, not silently-µs: a harness
  # format drift must break the smoke, not skew its numbers 1000x.
  function to_ms(s,   v, u) {
    v = s; sub(/[^0-9.].*$/, "", v)
    u = s; sub(/^[0-9.]+/, "", u)
    if (u == "ns")              return v / 1e6
    if (u == "µs" || u == "us") return v / 1e3
    if (u == "ms")              return v
    if (u == "s")               return v * 1e3
    printf "bench_smoke: unparseable duration `%s`\n", s > "/dev/stderr"
    bad = 1
    return 0
  }
  function ratio_or_null(num, den) {
    if (num > 0 && den > 0) return sprintf("%.2f", num / den)
    return "null"
  }
  / median / {
    id = $1
    for (i = 1; i <= NF; i++) {
      if ($i == "median") med = to_ms($(i + 1))
      if ($i == "mean")   avg = to_ms($(i + 1))
      if ($i == "min")    low = to_ms($(i + 1))
    }
    n++
    rows[n] = sprintf("    {\"id\": \"%s\", \"median_ms\": %.3f, \"mean_ms\": %.3f, \"min_ms\": %.3f}", id, med, avg, low)
    med_of[id] = med
  }
  /^serve_stream\// {
    delete kv
    for (i = 2; i <= NF; i++) {
      split($(i), pair, "=")
      kv[pair[1]] = pair[2]
    }
    ns++
    srows[ns] = sprintf("    {\"id\": \"%s\", \"n\": %d, \"commands\": %d, \"qps\": %.0f, \"p50_us\": %.3f, \"p99_us\": %.3f, \"max_us\": %.3f, \"ok\": %s}", \
      $1, kv["n"], kv["cmds"], kv["qps"], kv["p50_us"], kv["p99_us"], kv["max_us"], kv["ok"])
  }
  /^serve_concurrent\// {
    delete kv
    for (i = 2; i <= NF; i++) {
      split($(i), pair, "=")
      kv[pair[1]] = pair[2]
    }
    nc++
    crows[nc] = sprintf("    {\"id\": \"%s\", \"n\": %d, \"queries\": %d, \"qps\": %.0f, \"ok\": %s}", \
      $1, kv["n"], kv["queries"], kv["qps"], kv["ok"])
  }
  /^serve_recover\// {
    delete kv
    for (i = 2; i <= NF; i++) {
      split($(i), pair, "=")
      kv[pair[1]] = pair[2]
    }
    nc++
    crows[nc] = sprintf("    {\"id\": \"%s\", \"ops\": %d, \"wal_bytes\": %d, \"recover_ms\": %.2f, \"ok\": %s}", \
      $1, kv["ops"], kv["wal_bytes"], kv["recover_ms"], kv["ok"])
  }
  /^sparse_scale\// {
    delete kv
    for (i = 2; i <= NF; i++) {
      split($(i), pair, "=")
      kv[pair[1]] = pair[2]
    }
    nsc++
    nsp++
    sprows[nsp] = sprintf("    {\"id\": \"%s\", \"edges\": %d, \"scc\": %d, \"dag_edges\": %d, \"mode\": \"%s\", \"fill_pairs\": %.3e, \"fill_exact\": %s, \"mem_bytes\": %d, \"peak_rss_bytes\": %d, \"gen_ms\": %.1f, \"close_ms\": %.1f}", \
      $1, kv["edges"], kv["scc"], kv["dag_edges"], kv["mode"], kv["fill_pairs"], kv["fill_exact"], kv["mem_bytes"], kv["peak_rss_bytes"], kv["gen_ms"], kv["close_ms"])
    if ($1 == "sparse_scale/100000") peak1e5 = kv["peak_rss_bytes"]
  }
  /^varying_utilization\// {
    delete kv
    for (i = 2; i <= NF; i++) {
      split($(i), pair, "=")
      kv[pair[1]] = pair[2]
    }
    vlin = kv["linear"]; vgrid = kv["grid"]; vok = kv["ok"]
    valin = kv["analytic_linear"]; vagrid = kv["analytic_grid"]
  }
  /^sparse_tiles\// {
    delete kv
    for (i = 2; i <= NF; i++) {
      split($(i), pair, "=")
      kv[pair[1]] = pair[2]
    }
    nsp++
    sprows[nsp] = sprintf("    {\"id\": \"%s\", \"tile\": %d, \"grid\": %d, \"total\": %d, \"occupied_in\": %d, \"occupied_out\": %d, \"muls\": %d, \"skipped\": %d}", \
      $1, kv["tile"], kv["grid"], kv["total"], kv["occupied_in"], kv["occupied_out"], kv["muls"], kv["skipped"])
  }
  END {
    if (bad) exit 1
    if (n == 0) {
      print "bench_smoke: no bench result lines parsed" > "/dev/stderr"
      exit 1
    }
    accept = med_of["batched_closure/linear_m4/32x32"]
    print "{"
    print "  \"bench\": \"partition perf smoke (scripts/bench_smoke.sh)\","
    printf "  \"samples\": %d,\n", samples
    printf "  \"baseline_median_ms\": %.1f,\n", baseline
    print "  \"results\": ["
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
    print "  ],"
    if (accept > 0)
      printf "  \"speedup_vs_baseline\": %.2f,\n", baseline / accept
    else
      print "  \"speedup_vs_baseline\": null,"
    printf "  \"lsgp_speedup_vs_linear\": %s,\n", \
      ratio_or_null(accept, med_of["batched_closure/lsgp_m4/32x32"])
    printf "  \"packed_speedup_vs_linear\": %s,\n", \
      ratio_or_null(accept, med_of["batched_closure/packed_m4/32x32"])
    printf "  \"packed_w2_speedup_vs_w1\": %s,\n", \
      ratio_or_null(med_of["batched_closure/packed_w1_m4/128x32"], \
                    med_of["batched_closure/packed_w2_m4/128x32"])
    printf "  \"packed_w4_speedup_vs_w1\": %s,\n", \
      ratio_or_null(med_of["batched_closure/packed_w1_m4/128x32"], \
                    med_of["batched_closure/packed_w4_m4/128x32"])
    printf "  \"minplus_packed_speedup\": %s,\n", \
      ratio_or_null(med_of["batched_closure/minplus_m4/32x32"], \
                    med_of["batched_closure/minplus_packed_m4/32x32"])
    printf "  \"bitmatrix_blocked_speedup_256\": %s,\n", \
      ratio_or_null(med_of["batched_closure/bitmatrix_unblocked/256"], \
                    med_of["batched_closure/bitmatrix_blocked/256"])
    printf "  \"bitmatrix_blocked_speedup_2048\": %s,\n", \
      ratio_or_null(med_of["batched_closure/bitmatrix_unblocked/2048"], \
                    med_of["batched_closure/bitmatrix_blocked/2048"])
    printf "  \"sparse_speedup_vs_dense_4096\": %s,\n", \
      ratio_or_null(med_of["sparse_closure/dense_4096"], \
                    med_of["sparse_closure/sparse_4096"])
    printf "  \"sparse_scale_rows\": %d,\n", nsc
    printf "  \"sparse_peak_bytes_1e5\": %s,\n", (peak1e5 != "" ? peak1e5 : "null")
    printf "  \"varying_utilization_linear\": %s,\n", (vlin != "" ? vlin : "null")
    printf "  \"varying_utilization_grid\": %s,\n", (vgrid != "" ? vgrid : "null")
    printf "  \"varying_analytic_linear\": %s,\n", (valin != "" ? valin : "null")
    printf "  \"varying_analytic_grid\": %s,\n", (vagrid != "" ? vagrid : "null")
    printf "  \"varying_linear_over_grid\": %s,\n", ratio_or_null(vlin, vgrid)
    printf "  \"varying_ok\": %s,\n", (vok != "" ? vok : "null")
    print "  \"sparse\": ["
    for (i = 1; i <= nsp; i++) printf "%s%s\n", sprows[i], (i < nsp ? "," : "")
    print "  ],"
    print "  \"serve\": ["
    for (i = 1; i <= ns; i++) printf "%s%s\n", srows[i], (i < ns ? "," : "")
    print "  ],"
    print "  \"chaos\": ["
    for (i = 1; i <= nc; i++) printf "%s%s\n", crows[i], (i < nc ? "," : "")
    print "  ]"
    print "}"
  }' > "$OUT.tmp"
mv "$OUT.tmp" "$OUT"

echo "bench_smoke: wrote $OUT (informational baseline ${BASELINE_MS} ms)"
grep -E 'speedup|sparse_|serve_stream|serve_concurrent|serve_recover|varying_' "$OUT"

# gate KEY MIN — the JSON key must exist and its value must be a number
# >= MIN. null or a missing key fails: a gate must never pass because the
# bench that feeds it vanished.
gate() {
  awk -v key="\"$1\"" -v min="$2" '
    $0 ~ key {
      found = 1; gsub(/[,"]/, ""); v = $2
      if (v == "null" || v + 0 < min + 0) {
        printf "bench_smoke: FAIL %s gate (%s < %s)\n", key, v, min
        exit 1
      }
    }
    END {
      if (!found) {
        printf "bench_smoke: FAIL gate key %s missing from output\n", key
        exit 1
      }
    }' "$OUT"
}

# gate_max KEY MAX — the JSON key must exist and its value must be a
# number in (0, MAX]. Zero fails too: for a resource ceiling, 0 means the
# measurement is missing, and a ceiling must never pass unmeasured.
gate_max() {
  awk -v key="\"$1\"" -v max="$2" '
    $0 ~ key {
      found = 1; gsub(/[,"]/, ""); v = $2
      if (v == "null" || v + 0 <= 0 || v + 0 > max + 0) {
        printf "bench_smoke: FAIL %s ceiling (%s not in (0, %s])\n", key, v, max
        exit 1
      }
    }
    END {
      if (!found) {
        printf "bench_smoke: FAIL gate key %s missing from output\n", key
        exit 1
      }
    }' "$OUT"
}

# Gate 1: all same-run speedups recorded. The 64-lane packed engine must
# beat the scalar engine >= 8x; the lsgp ratio only needs to exist and be
# sane (it trades throughput for Θ(n²/m) buffering, not speed).
gate lsgp_speedup_vs_linear 0.1
gate packed_speedup_vs_linear 8.0

# Gate 2: the lane-width sweep ran at every W (ratios are informational —
# the win saturates once one group covers the batch — but must exist).
gate packed_w2_speedup_vs_w1 0.1
gate packed_w4_speedup_vs_w1 0.1

# Gate 3: the SWAR tropical plane must beat scalar min-plus >= 4x.
gate minplus_packed_speedup 4.0

# Gate 4: the cache-blocked pivot sweep is no slower at n = 256 and
# faster at n = 2048.
gate bitmatrix_blocked_speedup_256 0.95
gate bitmatrix_blocked_speedup_2048 1.02

# Gate 5: the sparse data plane. Same-run ratio vs the dense BitMatrix
# sweep on the pinned n=4096 power-law graph (>= 20x), all three scaling
# rows recorded, and peak resident memory after the 10^5 row under a hard
# 128 MiB ceiling (dense n^2/8 alone would be 1.16 GiB).
gate sparse_speedup_vs_dense_4096 20.0
gate sparse_scale_rows 3
gate_max sparse_peak_bytes_1e5 134217728

# Gate 6: the §4.3 varying-time comparison (E30). Both utilization keys
# must be recorded (a missing key fails), the linear chain must be at
# least as utilized as the equal-cell grid, and the in-binary tolerance
# check against the lock-step analytic model must have passed (ok=true —
# the binary compares measured occupancy to the closed form within ±0.02).
gate varying_utilization_linear 0.5
gate varying_utilization_grid 0.5
gate varying_linear_over_grid 1.0
awk '
  /"varying_ok"/ {
    found = 1
    if ($0 !~ /true/) {
      printf "bench_smoke: FAIL varying-time analytic tolerance: %s\n", $0
      exit 1
    }
  }
  END {
    if (!found) {
      print "bench_smoke: FAIL varying_ok key missing from output"
      exit 1
    }
  }' "$OUT"

# Gate 7: both serve streams recorded, and every answer matched the oracle.
awk '
  /"id": "serve_stream\// {
    n++
    if ($0 !~ /"ok": true/) {
      printf "bench_smoke: FAIL serve protocol gate: %s\n", $0
      exit 1
    }
  }
  END {
    if (n < 2) {
      printf "bench_smoke: FAIL serve smoke recorded %d/2 streams\n", n
      exit 1
    }
  }' "$OUT"

# Gate 8: the chaos smoke recorded both runs — four concurrent sessions
# all oracle-correct with none failed, and kill-and-recover rebuilding the
# exact committed closure (recover_ms present). Missing keys fail.
awk '
  /"id": "serve_concurrent\// {
    nc++
    if ($0 !~ /"ok": true/) {
      printf "bench_smoke: FAIL concurrent serve gate: %s\n", $0
      exit 1
    }
  }
  /"id": "serve_recover\// {
    nr++
    if ($0 !~ /"ok": true/ || $0 !~ /"recover_ms"/) {
      printf "bench_smoke: FAIL recover gate: %s\n", $0
      exit 1
    }
  }
  END {
    if (nc < 1 || nr < 1) {
      printf "bench_smoke: FAIL chaos smoke recorded concurrent=%d recover=%d (need 1 each)\n", nc, nr
      exit 1
    }
  }' "$OUT"

echo "bench_smoke: gates passed"
