#!/usr/bin/env bash
# Perf smoke for the partitioned engines: runs the batched_closure and
# plan_reuse benches with pinned sample counts and records the results —
# one row per mapping (linear_m4, lsgp_m4, packed_m4, plus the plan_reuse
# shapes) — in BENCH_partition.json at the repo root, together with the
# reachability-service stream numbers (query p50/p99 latency, sustained
# command throughput) from the serve_bench driver.
#
# The scalar baseline compounds across PRs: the gate compares this run's
# batched_closure/linear_m4/32x32 median against the median recorded in
# the *previous* BENCH_partition.json (falling back to the original
# pre-plan-cache 110.1 ms measurement when none exists), so a regression
# anywhere in the trajectory is visible, not just vs the first PR.
#
# Gates (non-gating from check.sh — wall-clock numbers are
# machine-dependent — but this script itself exits nonzero on failure):
#   * linear_m4 must stay within 3x of the prior recorded median,
#   * packed_m4 must be >= 8x faster than linear_m4 (the 64-lane
#     bit-sliced data plane's acceptance bar),
#   * every serve stream must report ok=true (answers cross-checked
#     against a full-recompute oracle; latency itself is not gated),
#   * the chaos smoke must record the 4-client concurrent run and the
#     kill-and-recover run (recover_ms), both ok=true — a daemon that
#     loses a session or recovers a wrong closure fails here,
#   * a gate whose key is missing from the output FAILS — a bench that
#     never printed its line must not pass vacuously.
set -euo pipefail
cd "$(dirname "$0")/.."

export SYSTOLIC_BENCH_SAMPLES="${SYSTOLIC_BENCH_SAMPLES:-7}"
export SYSTOLIC_BENCH_WARMUP_MS="${SYSTOLIC_BENCH_WARMUP_MS:-500}"
SERVE_CMDS="${SYSTOLIC_SERVE_CMDS:-20000}"
ORIGINAL_BASELINE_MS=110.1
OUT=BENCH_partition.json

# Prior scalar median from the last recorded run, if any.
PRIOR_MS=""
if [ -f "$OUT" ]; then
  PRIOR_MS=$(sed -n \
    's/.*"id": "batched_closure\/linear_m4\/32x32", "median_ms": \([0-9.]*\).*/\1/p' \
    "$OUT" | head -n1)
fi
BASELINE_MS="${PRIOR_MS:-$ORIGINAL_BASELINE_MS}"

lines=$(
  cargo bench -p systolic-bench --bench batched_closure 2>/dev/null
  cargo bench -p systolic-bench --bench plan_reuse 2>/dev/null
  cargo run --release -q -p systolic-bench --bin serve_bench "$SERVE_CMDS"
)
printf '%s\n' "$lines"

printf '%s\n' "$lines" | awk \
  -v baseline="$BASELINE_MS" -v samples="$SYSTOLIC_BENCH_SAMPLES" '
  # Unknown duration units are a hard error, not silently-µs: a harness
  # format drift must break the smoke, not skew its numbers 1000x.
  function to_ms(s,   v, u) {
    v = s; sub(/[^0-9.].*$/, "", v)
    u = s; sub(/^[0-9.]+/, "", u)
    if (u == "ns")              return v / 1e6
    if (u == "µs" || u == "us") return v / 1e3
    if (u == "ms")              return v
    if (u == "s")               return v * 1e3
    printf "bench_smoke: unparseable duration `%s`\n", s > "/dev/stderr"
    bad = 1
    return 0
  }
  / median / {
    id = $1
    for (i = 1; i <= NF; i++) {
      if ($i == "median") med = to_ms($(i + 1))
      if ($i == "mean")   avg = to_ms($(i + 1))
      if ($i == "min")    low = to_ms($(i + 1))
    }
    n++
    rows[n] = sprintf("    {\"id\": \"%s\", \"median_ms\": %.3f, \"mean_ms\": %.3f, \"min_ms\": %.3f}", id, med, avg, low)
    if (id == "batched_closure/linear_m4/32x32") accept = med
    if (id == "batched_closure/packed_m4/32x32") packed = med
  }
  /^serve_stream\// {
    delete kv
    for (i = 2; i <= NF; i++) {
      split($(i), pair, "=")
      kv[pair[1]] = pair[2]
    }
    ns++
    srows[ns] = sprintf("    {\"id\": \"%s\", \"n\": %d, \"commands\": %d, \"qps\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f, \"ok\": %s}", \
      $1, kv["n"], kv["cmds"], kv["qps"], kv["p50_us"], kv["p99_us"], kv["max_us"], kv["ok"])
  }
  /^serve_concurrent\// {
    delete kv
    for (i = 2; i <= NF; i++) {
      split($(i), pair, "=")
      kv[pair[1]] = pair[2]
    }
    nc++
    crows[nc] = sprintf("    {\"id\": \"%s\", \"n\": %d, \"queries\": %d, \"qps\": %.0f, \"ok\": %s}", \
      $1, kv["n"], kv["queries"], kv["qps"], kv["ok"])
  }
  /^serve_recover\// {
    delete kv
    for (i = 2; i <= NF; i++) {
      split($(i), pair, "=")
      kv[pair[1]] = pair[2]
    }
    nc++
    crows[nc] = sprintf("    {\"id\": \"%s\", \"ops\": %d, \"wal_bytes\": %d, \"recover_ms\": %.2f, \"ok\": %s}", \
      $1, kv["ops"], kv["wal_bytes"], kv["recover_ms"], kv["ok"])
  }
  END {
    if (bad) exit 1
    if (n == 0) {
      print "bench_smoke: no bench result lines parsed" > "/dev/stderr"
      exit 1
    }
    print "{"
    print "  \"bench\": \"partition perf smoke (scripts/bench_smoke.sh)\","
    printf "  \"samples\": %d,\n", samples
    printf "  \"baseline_median_ms\": %.1f,\n", baseline
    print "  \"results\": ["
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
    print "  ],"
    if (accept > 0)
      printf "  \"speedup_vs_baseline\": %.2f,\n", baseline / accept
    else
      print "  \"speedup_vs_baseline\": null,"
    if (accept > 0 && packed > 0)
      printf "  \"packed_speedup_vs_linear\": %.2f,\n", accept / packed
    else
      print "  \"packed_speedup_vs_linear\": null,"
    print "  \"serve\": ["
    for (i = 1; i <= ns; i++) printf "%s%s\n", srows[i], (i < ns ? "," : "")
    print "  ],"
    print "  \"chaos\": ["
    for (i = 1; i <= nc; i++) printf "%s%s\n", crows[i], (i < nc ? "," : "")
    print "  ]"
    print "}"
  }' > "$OUT.tmp"
mv "$OUT.tmp" "$OUT"

echo "bench_smoke: wrote $OUT (baseline ${BASELINE_MS} ms)"
grep -E 'speedup|serve_stream|serve_concurrent|serve_recover' "$OUT"

# Gate 1: the scalar path must not regress badly vs the prior record.
# A missing key fails — the gate must never pass because the line vanished.
awk '
  /"speedup_vs_baseline"/ {
    found = 1; gsub(/[,"]/, ""); v = $2
    if (v == "null" || v + 0 < 0.33) {
      printf "bench_smoke: FAIL scalar regression gate (speedup_vs_baseline=%s < 0.33)\n", v
      exit 1
    }
  }
  END {
    if (!found) {
      print "bench_smoke: FAIL scalar gate key speedup_vs_baseline missing from output"
      exit 1
    }
  }' "$OUT"

# Gate 2: the 64-lane packed engine must beat the scalar engine >= 8x.
awk '
  /"packed_speedup_vs_linear"/ {
    found = 1; gsub(/[,"]/, ""); v = $2
    if (v == "null" || v + 0 < 8.0) {
      printf "bench_smoke: FAIL packed gate (packed_speedup_vs_linear=%s < 8)\n", v
      exit 1
    }
  }
  END {
    if (!found) {
      print "bench_smoke: FAIL packed gate key packed_speedup_vs_linear missing from output"
      exit 1
    }
  }' "$OUT"

# Gate 3: both serve streams recorded, and every answer matched the oracle.
awk '
  /"id": "serve_stream\// {
    n++
    if ($0 !~ /"ok": true/) {
      printf "bench_smoke: FAIL serve protocol gate: %s\n", $0
      exit 1
    }
  }
  END {
    if (n < 2) {
      printf "bench_smoke: FAIL serve smoke recorded %d/2 streams\n", n
      exit 1
    }
  }' "$OUT"

# Gate 4: the chaos smoke recorded both runs — four concurrent sessions
# all oracle-correct with none failed, and kill-and-recover rebuilding the
# exact committed closure (recover_ms present). Missing keys fail.
awk '
  /"id": "serve_concurrent\// {
    nc++
    if ($0 !~ /"ok": true/) {
      printf "bench_smoke: FAIL concurrent serve gate: %s\n", $0
      exit 1
    }
  }
  /"id": "serve_recover\// {
    nr++
    if ($0 !~ /"ok": true/ || $0 !~ /"recover_ms"/) {
      printf "bench_smoke: FAIL recover gate: %s\n", $0
      exit 1
    }
  }
  END {
    if (nc < 1 || nr < 1) {
      printf "bench_smoke: FAIL chaos smoke recorded concurrent=%d recover=%d (need 1 each)\n", nc, nr
      exit 1
    }
  }' "$OUT"

echo "bench_smoke: gates passed"
