#!/usr/bin/env bash
# Perf smoke for the compile-once plan cache: runs the batched_closure and
# plan_reuse benches with pinned sample counts and records the results in
# BENCH_partition.json at the repo root.
#
# Non-gating: check.sh runs this but ignores its exit status — wall-clock
# numbers depend on the machine. The recorded pre-PR baseline for
# batched_closure/linear_m4/32x32 (schedule rebuilt on every call) was a
# 110.1 ms median on the reference container.
set -euo pipefail
cd "$(dirname "$0")/.."

export SYSTOLIC_BENCH_SAMPLES="${SYSTOLIC_BENCH_SAMPLES:-7}"
export SYSTOLIC_BENCH_WARMUP_MS="${SYSTOLIC_BENCH_WARMUP_MS:-500}"
BASELINE_MS=110.1
OUT=BENCH_partition.json

lines=$(
  cargo bench -p systolic-bench --bench batched_closure 2>/dev/null
  cargo bench -p systolic-bench --bench plan_reuse 2>/dev/null
)
printf '%s\n' "$lines"

printf '%s\n' "$lines" | awk \
  -v baseline="$BASELINE_MS" -v samples="$SYSTOLIC_BENCH_SAMPLES" '
  function to_ms(s,   v, u) {
    v = s; sub(/[^0-9.].*$/, "", v)
    u = s; sub(/^[0-9.]+/, "", u)
    if (u == "ns") return v / 1e6
    if (u == "ms") return v
    if (u == "s")  return v * 1e3
    return v / 1e3  # µs
  }
  / median / {
    id = $1
    for (i = 1; i <= NF; i++) {
      if ($i == "median") med = to_ms($(i + 1))
      if ($i == "mean")   avg = to_ms($(i + 1))
      if ($i == "min")    low = to_ms($(i + 1))
    }
    n++
    rows[n] = sprintf("    {\"id\": \"%s\", \"median_ms\": %.3f, \"mean_ms\": %.3f, \"min_ms\": %.3f}", id, med, avg, low)
    if (id == "batched_closure/linear_m4/32x32") accept = med
  }
  END {
    print "{"
    print "  \"bench\": \"plan-cache smoke (scripts/bench_smoke.sh)\","
    printf "  \"samples\": %d,\n", samples
    printf "  \"baseline_median_ms\": %.1f,\n", baseline
    print "  \"results\": ["
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
    print "  ],"
    if (accept > 0)
      printf "  \"speedup_vs_baseline\": %.2f\n", baseline / accept
    else
      print "  \"speedup_vs_baseline\": null"
    print "}"
  }' > "$OUT"

echo "bench_smoke: wrote $OUT"
grep speedup_vs_baseline "$OUT"
