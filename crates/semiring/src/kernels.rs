//! Reference kernels: the ground truth every simulated array is checked
//! against.
//!
//! * [`warshall`] / [`warshall_inplace`] — the scalar recurrence of §3.1,
//!   literally the paper's triple loop.
//! * [`warshall_blocked`] — cache-blocked variant (also the skeleton of the
//!   Núñez–Torralba decomposition baseline in `systolic-baselines`).
//! * [`closure_by_squaring`] — `(I ⊕ A)^(2^⌈log₂ n⌉)` by repeated squaring,
//!   an algebraically independent cross-check.
//! * [`matmul`] — semiring matrix product, used by the squaring check and
//!   the blocked baseline.

use crate::matrix::DenseMatrix;
use crate::traits::{PathSemiring, Semiring};

/// Reflexive closure: returns `A` with the diagonal raised to at least `1`.
///
/// The paper's adjacency matrix convention has `a_ii = 1` ("a node is always
/// adjacent to itself"); all closure kernels assume this.
pub fn reflexive<S: Semiring>(a: &DenseMatrix<S>) -> DenseMatrix<S> {
    assert!(a.is_square());
    let mut m = a.clone();
    m.reflexive_closure();
    m
}

/// Warshall's algorithm (the paper's recurrence, §3.1):
///
/// ```text
/// for k in 1..=n { for i in 1..=n { for j in 1..=n {
///     x[i][j] ← x[i][j] ⊕ (x[i][k] ⊗ x[k][j])
/// }}}
/// ```
///
/// Returns `A⁺` (with reflexive diagonal). Valid for any [`PathSemiring`].
pub fn warshall<S: PathSemiring>(a: &DenseMatrix<S>) -> DenseMatrix<S> {
    let mut x = reflexive(a);
    warshall_inplace(&mut x);
    x
}

/// In-place Warshall on an already reflexive matrix.
///
/// In-place is correct because at level `k`, row `k` and column `k` are fixed
/// points of the update (the paper's "superfluous nodes" argument, Fig. 11).
pub fn warshall_inplace<S: PathSemiring>(x: &mut DenseMatrix<S>) {
    assert!(x.is_square());
    let n = x.rows();
    for k in 0..n {
        for i in 0..n {
            let xik = x.get(i, k).clone();
            if S::is_zero(&xik) {
                continue; // x[i][j] ⊕ (0̸ ⊗ _) = x[i][j]
            }
            for j in 0..n {
                let v = S::fuse(x.get(i, j), &xik, x.get(k, j));
                x.set(i, j, v);
            }
        }
    }
}

/// Semiring matrix product `C = A ⊗ B`.
///
/// # Panics
/// Panics on incompatible shapes.
pub fn matmul<S: Semiring>(a: &DenseMatrix<S>, b: &DenseMatrix<S>) -> DenseMatrix<S> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = DenseMatrix::<S>::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = a.get(i, k).clone();
            if S::is_zero(&aik) {
                continue;
            }
            for j in 0..b.cols() {
                let v = S::fuse(c.get(i, j), &aik, b.get(k, j));
                c.set(i, j, v);
            }
        }
    }
    c
}

/// `C ← C ⊕ (A ⊗ B)` — multiply-accumulate, the unit of the blocked
/// algorithms.
pub fn matmul_acc<S: Semiring>(c: &mut DenseMatrix<S>, a: &DenseMatrix<S>, b: &DenseMatrix<S>) {
    assert_eq!(a.cols(), b.rows());
    assert_eq!(c.rows(), a.rows());
    assert_eq!(c.cols(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = a.get(i, k).clone();
            if S::is_zero(&aik) {
                continue;
            }
            for j in 0..b.cols() {
                let v = S::fuse(c.get(i, j), &aik, b.get(k, j));
                c.set(i, j, v);
            }
        }
    }
}

/// Algebraic path closure by repeated squaring of `(I ⊕ A)`.
///
/// After `⌈log₂ n⌉` squarings the matrix covers all paths of length `< n`
/// and, the semiring being bounded and idempotent, has converged to `A⁺`.
pub fn closure_by_squaring<S: PathSemiring>(a: &DenseMatrix<S>) -> DenseMatrix<S> {
    let n = a.rows();
    let mut x = reflexive(a);
    if n <= 1 {
        return x;
    }
    let mut len = 1usize;
    while len < n {
        x = matmul(&x, &x);
        len *= 2;
    }
    x
}

/// Blocked (tiled) Warshall with tile size `b`.
///
/// This is the classical blocked Floyd–Warshall decomposition: for each
/// diagonal tile, (1) close the diagonal tile, (2) update its row and column
/// panels, (3) rank-update the remainder with tile products. It is both a
/// cache-friendly reference and the algorithmic skeleton of the
/// Núñez–Torralba \[22\] decomposition baseline.
pub fn warshall_blocked<S: PathSemiring>(a: &DenseMatrix<S>, b: usize) -> DenseMatrix<S> {
    assert!(b > 0, "tile size must be positive");
    let n = a.rows();
    let mut x = reflexive(a);
    let tiles = n.div_ceil(b);
    let span = |t: usize| -> (usize, usize) {
        let lo = t * b;
        (lo, (lo + b).min(n) - lo)
    };
    for t in 0..tiles {
        let (k0, kb) = span(t);
        // (1) close the diagonal tile in place.
        let mut diag = x.block(k0, k0, kb, kb);
        warshall_inplace(&mut diag);
        x.set_block(k0, k0, &diag);
        // (2) row and column panels through the closed diagonal tile.
        for u in 0..tiles {
            if u == t {
                continue;
            }
            let (c0, cb) = span(u);
            // row panel: X[k][u] ← X[k][u] ⊕ diag ⊗ X[k][u]
            let mut panel = x.block(k0, c0, kb, cb);
            let prod = matmul(&diag, &panel);
            panel = panel.ewise_add(&prod);
            x.set_block(k0, c0, &panel);
            // column panel: X[u][k] ← X[u][k] ⊕ X[u][k] ⊗ diag
            let mut cpanel = x.block(c0, k0, cb, kb);
            let cprod = matmul(&cpanel, &diag);
            cpanel = cpanel.ewise_add(&cprod);
            x.set_block(c0, k0, &cpanel);
        }
        // (3) remainder: X[u][v] ← X[u][v] ⊕ X[u][k] ⊗ X[k][v]
        for u in 0..tiles {
            if u == t {
                continue;
            }
            let (r0, rb) = span(u);
            let left = x.block(r0, k0, rb, kb);
            for v in 0..tiles {
                if v == t {
                    continue;
                }
                let (c0, cb) = span(v);
                let top = x.block(k0, c0, kb, cb);
                let mut tgt = x.block(r0, c0, rb, cb);
                matmul_acc(&mut tgt, &left, &top);
                x.set_block(r0, c0, &tgt);
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{Bool, MaxMin, MinPlus, INF};

    fn bool_from(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut m = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            m.set(i, j, true);
        }
        m
    }

    #[test]
    fn warshall_path_graph() {
        let a = bool_from(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = warshall(&a);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(*c.get(i, j), i <= j, "({i},{j})");
            }
        }
    }

    #[test]
    fn warshall_disconnected_components() {
        let a = bool_from(4, &[(0, 1), (2, 3)]);
        let c = warshall(&a);
        assert!(*c.get(0, 1));
        assert!(!*c.get(0, 2));
        assert!(!*c.get(1, 3));
        assert!(*c.get(2, 3));
    }

    #[test]
    fn warshall_matches_squaring_on_cycle() {
        let n = 6;
        let mut edges = vec![];
        for i in 0..n {
            edges.push((i, (i + 1) % n));
        }
        let a = bool_from(n, &edges);
        assert_eq!(warshall(&a), closure_by_squaring(&a));
    }

    #[test]
    fn minplus_shortest_paths_small() {
        // 0 -5-> 1 -2-> 2, plus direct 0 -9-> 2 : shortest 0->2 is 7.
        let mut a = DenseMatrix::<MinPlus>::zeros(3, 3);
        a.set(0, 1, 5);
        a.set(1, 2, 2);
        a.set(0, 2, 9);
        let d = warshall(&a);
        assert_eq!(*d.get(0, 2), 7);
        assert_eq!(*d.get(0, 0), 0);
        assert_eq!(*d.get(2, 0), INF);
    }

    #[test]
    fn maxmin_bottleneck_small() {
        // capacities: 0-(4)->1-(7)->2 and 0-(6)->2 : widest 0->2 is max(min(4,7), 6)=6.
        let mut a = DenseMatrix::<MaxMin>::zeros(3, 3);
        a.set(0, 1, 4);
        a.set(1, 2, 7);
        a.set(0, 2, 6);
        let w = warshall(&a);
        assert_eq!(*w.get(0, 2), 6);
        assert_eq!(*w.get(0, 0), MaxMin::one());
    }

    #[test]
    fn matmul_identity_is_neutral() {
        let a = DenseMatrix::<MinPlus>::from_fn(3, 3, |i, j| (i * 3 + j + 1) as u64);
        let id = DenseMatrix::<MinPlus>::identity(3);
        assert_eq!(matmul(&a, &id), a);
        assert_eq!(matmul(&id, &a), a);
    }

    #[test]
    fn matmul_counting_counts_walks() {
        use crate::instances::Counting;
        // 0->1, 0->2, 1->3, 2->3: two walks of length 2 from 0 to 3.
        let mut a = DenseMatrix::<Counting>::zeros(4, 4);
        for (i, j) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            a.set(i, j, 1);
        }
        let a2 = matmul(&a, &a);
        assert_eq!(*a2.get(0, 3), 2);
    }

    #[test]
    fn blocked_matches_plain_for_many_tile_sizes() {
        let a = bool_from(7, &[(0, 3), (3, 5), (5, 1), (1, 6), (2, 4), (4, 2), (6, 0)]);
        let plain = warshall(&a);
        for b in 1..=8 {
            assert_eq!(warshall_blocked(&a, b), plain, "tile size {b}");
        }
    }

    #[test]
    fn closure_monotone_and_idempotent() {
        let a = bool_from(5, &[(0, 1), (1, 2), (3, 4)]);
        let c = warshall(&a);
        // A ≤ A⁺ (after reflexive closure)
        for i in 0..5 {
            for j in 0..5 {
                if *a.get(i, j) {
                    assert!(*c.get(i, j));
                }
            }
        }
        assert_eq!(warshall(&c), c);
    }

    #[test]
    fn size_zero_and_one() {
        let a0 = DenseMatrix::<Bool>::zeros(0, 0);
        assert_eq!(warshall(&a0).rows(), 0);
        let a1 = DenseMatrix::<Bool>::zeros(1, 1);
        let c1 = warshall(&a1);
        assert!(*c1.get(0, 0)); // reflexive
    }
}
