//! Dense row-major matrices over a semiring.

use crate::traits::Semiring;
use std::fmt;
use std::marker::PhantomData;

/// A dense `rows × cols` matrix with elements in semiring `S`.
///
/// Storage is a single row-major `Vec`, so row traversals are contiguous —
/// the reference Warshall kernel and the host feeder stream rows/columns out
/// of this without per-element allocation.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix<S: Semiring> {
    rows: usize,
    cols: usize,
    data: Vec<S::Elem>,
    _marker: PhantomData<S>,
}

impl<S: Semiring> DenseMatrix<S> {
    /// All-`0̸` (additive identity) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![S::zero(); rows * cols],
            _marker: PhantomData,
        }
    }

    /// Identity matrix: `1` on the diagonal, `0̸` elsewhere.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, S::one());
        }
        m
    }

    /// Builds a matrix from a row-major element vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S::Elem>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "element count {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self {
            rows,
            cols,
            data,
            _marker: PhantomData,
        }
    }

    /// Builds an `n × n` matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S::Elem) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True iff the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> &S::Elem {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: S::Elem) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Mutable element at `(i, j)`.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut S::Elem {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[S::Elem] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [S::Elem] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j`, copied into a fresh `Vec` (columns are strided).
    pub fn col(&self, j: usize) -> Vec<S::Elem> {
        (0..self.rows).map(|i| self.get(i, j).clone()).collect()
    }

    /// Overwrites column `j` from a slice of length `rows`.
    pub fn set_col(&mut self, j: usize, col: &[S::Elem]) {
        assert_eq!(col.len(), self.rows);
        for (i, v) in col.iter().enumerate() {
            self.set(i, j, v.clone());
        }
    }

    /// Underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[S::Elem] {
        &self.data
    }

    /// Ensures the diagonal is at least `1` (reflexive closure of the
    /// adjacency matrix — the paper assumes `a_ii = 1`).
    pub fn reflexive_closure(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            let v = S::add(self.get(i, i), &S::one());
            self.set(i, i, v);
        }
    }

    /// The `rows×cols` sub-block with top-left corner `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols);
        Self::from_fn(rows, cols, |i, j| self.get(r0 + i, c0 + j).clone())
    }

    /// Writes a block back at `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, b: &Self) {
        assert!(r0 + b.rows <= self.rows && c0 + b.cols <= self.cols);
        for i in 0..b.rows {
            for j in 0..b.cols {
                self.set(r0 + i, c0 + j, b.get(i, j).clone());
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self.get(j, i).clone())
    }

    /// Element-wise `⊕` of two equally-shaped matrices.
    pub fn ewise_add(&self, other: &Self) -> Self {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Self::from_fn(self.rows, self.cols, |i, j| {
            S::add(self.get(i, j), other.get(i, j))
        })
    }

    /// Count of elements that are not `0̸`.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|e| !S::is_zero(e)).count()
    }
}

impl<S: Semiring> fmt::Debug for DenseMatrix<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix<{}> {}x{}", S::NAME, self.rows, self.cols)?;
        for i in 0..self.rows.min(16) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(16) {
                write!(f, "{:?} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        if self.rows > 16 || self.cols > 16 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{Bool, MinPlus};

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::<Bool>::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert_eq!(z.nnz(), 0);
        let i = DenseMatrix::<Bool>::identity(5);
        assert_eq!(i.nnz(), 5);
        assert!(*i.get(2, 2));
        assert!(!*i.get(2, 3));
    }

    #[test]
    fn row_and_col_access() {
        let m = DenseMatrix::<MinPlus>::from_fn(3, 3, |i, j| (i * 10 + j) as u64);
        assert_eq!(m.row(1), &[10, 11, 12]);
        assert_eq!(m.col(2), vec![2, 12, 22]);
    }

    #[test]
    fn set_col_roundtrip() {
        let mut m = DenseMatrix::<MinPlus>::zeros(3, 3);
        m.set_col(1, &[7, 8, 9]);
        assert_eq!(m.col(1), vec![7, 8, 9]);
        assert_eq!(*m.get(2, 1), 9);
    }

    #[test]
    fn block_roundtrip() {
        let m = DenseMatrix::<MinPlus>::from_fn(4, 4, |i, j| (i * 4 + j) as u64);
        let b = m.block(1, 2, 2, 2);
        assert_eq!(b.as_slice(), &[6, 7, 10, 11]);
        let mut m2 = DenseMatrix::<MinPlus>::zeros(4, 4);
        m2.set_block(1, 2, &b);
        assert_eq!(*m2.get(2, 3), 11);
        assert_eq!(*m2.get(0, 0), MinPlus::zero());
    }

    #[test]
    fn reflexive_closure_sets_diagonal() {
        let mut m = DenseMatrix::<Bool>::zeros(4, 4);
        m.reflexive_closure();
        for i in 0..4 {
            assert!(*m.get(i, i));
        }
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::<MinPlus>::from_fn(3, 5, |i, j| (i * 5 + j) as u64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(*m.transpose().get(4, 2), *m.get(2, 4));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_shape() {
        let _ = DenseMatrix::<Bool>::from_vec(2, 2, vec![true; 3]);
    }
}
