//! SWAR min-plus lanes: 8×u8 or 4×u16 saturating tropical instances per u64.
//!
//! The packed Boolean plane works because the schedule never looks at the
//! values; the same is true for weighted closures, so min-plus batches can
//! ride the lane trick too — the only difference is that a lane is now a
//! narrow saturating integer instead of a bit. [`MinPlusSwar8`] packs 8
//! unsigned-byte tropical lanes into one `u64` ([`MinPlusSwar16`]: 4×u16);
//! lane-wise `min` and saturating `add` are branch-free SWAR expressions
//! (Hacker's-Delight-style carry/borrow isolation), so `⊕`/`⊗` stay a
//! handful of word instructions.
//!
//! **The ∞ encoding and lawfulness.** The all-ones lane value (`0xFF` /
//! `0xFFFF`) *is* the additive identity ∞: each lane is the tropical
//! semiring on the bounded chain `{0, …, MAX}` with `a ⊗ b =
//! min(a + b, MAX)` and `MAX = ∞`. Saturation is not an approximation
//! bolted on — it is the semiring's multiplication, and on the bounded
//! chain all the laws hold exactly (associativity and distributivity
//! follow from `min(a+b, MAX)` being monotone and `min`-compatible; `MAX`
//! is absorbing because `min(MAX + b, MAX) = MAX`). The law checker in
//! [`crate::laws`] verifies this per lane type, including lanes pinned at
//! the ∞ encoding.
//!
//! **Exactness versus the scalar path.** The bounded lanes agree
//! bit-for-bit with the unbounded scalar [`MinPlus`] whenever no *true*
//! shortest distance reaches `MAX`: any optimal path is simple (≤ n−1
//! edges), so if every finite weight fits a lane and
//! `(n−1)·max_weight < MAX`, every winning candidate in Warshall's
//! recurrence is computed without saturation, and any candidate that does
//! saturate is a walk that was not optimal anyway (saturating it to ∞ can
//! only discard a loser). [`LaneSemiring::batch_exact`] checks exactly
//! this bound; outside it the packed engine falls back to the scalar
//! path, so callers never observe saturated values.

use crate::instances::{MinPlus, INF};
use crate::lanes::LaneSemiring;
use crate::matrix::DenseMatrix;
use crate::traits::{PathSemiring, Semiring};

/// High (sign) bits of each u8 lane.
const H8: u64 = 0x8080_8080_8080_8080;
/// High (sign) bits of each u16 lane.
const H16: u64 = 0x8000_8000_8000_8000;

/// Lane-wise unsigned minimum of 8×u8 lanes, branch-free.
///
/// `d = (x | H) − (y & !H)` subtracts the low-7-bit parts with the high
/// bit pre-set so no borrow crosses a lane; its high bit per lane reads
/// `x_low7 ≥ y_low7`, which combines with the lanes' own high bits into a
/// full unsigned `x ≥ y` predicate, then a mask-select picks the smaller.
#[inline]
pub fn min_u8x8(x: u64, y: u64) -> u64 {
    let d = (x | H8).wrapping_sub(y & !H8);
    let xh = x & H8;
    let yh = y & H8;
    // x ≥ y per lane: x_hi > y_hi, or equal high bits and x_low7 ≥ y_low7.
    let ge = (xh & !yh) | (!(xh ^ yh) & d & H8);
    let mask = (ge >> 7).wrapping_mul(0xFF);
    (y & mask) | (x & !mask)
}

/// Lane-wise saturating addition of 8×u8 lanes, branch-free.
///
/// Low-7-bit sums cannot cross a lane; the lanes' high bits and the
/// carry-in from the low parts form a per-lane full adder whose carry-out
/// is the overflow flag, broadcast to `0xFF` (the ∞ encoding) on overflow.
#[inline]
pub fn satadd_u8x8(x: u64, y: u64) -> u64 {
    let low = (x & !H8).wrapping_add(y & !H8);
    let sum = low ^ (x & H8) ^ (y & H8);
    let carry_out = ((x & y) | ((x ^ y) & low)) & H8;
    sum | (carry_out >> 7).wrapping_mul(0xFF)
}

/// Lane-wise unsigned minimum of 4×u16 lanes (the u16 analogue of
/// [`min_u8x8`]).
#[inline]
pub fn min_u16x4(x: u64, y: u64) -> u64 {
    let d = (x | H16).wrapping_sub(y & !H16);
    let xh = x & H16;
    let yh = y & H16;
    let ge = (xh & !yh) | (!(xh ^ yh) & d & H16);
    let mask = (ge >> 15).wrapping_mul(0xFFFF);
    (y & mask) | (x & !mask)
}

/// Lane-wise saturating addition of 4×u16 lanes (the u16 analogue of
/// [`satadd_u8x8`]).
#[inline]
pub fn satadd_u16x4(x: u64, y: u64) -> u64 {
    let low = (x & !H16).wrapping_add(y & !H16);
    let sum = low ^ (x & H16) ^ (y & H16);
    let carry_out = ((x & y) | ((x ^ y) & low)) & H16;
    sum | (carry_out >> 15).wrapping_mul(0xFFFF)
}

/// 8 saturating u8 tropical lanes per u64: lane `l` is byte `l`, `⊕` is
/// lane-wise unsigned `min`, `⊗` is lane-wise saturating `+`, and the
/// all-ones byte `0xFF` is the lane's ∞ (the additive identity).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MinPlusSwar8;

/// Lane ∞ of [`MinPlusSwar8`] — the largest u8, absorbing for `⊗`.
pub const SWAR8_INF: u64 = 0xFF;

/// Lane ∞ of [`MinPlusSwar16`] — the largest u16, absorbing for `⊗`.
pub const SWAR16_INF: u64 = 0xFFFF;

impl Semiring for MinPlusSwar8 {
    type Elem = u64;
    const NAME: &'static str = "min-plus-swar-8x8";
    const LANE_COUNT: usize = 8;

    #[inline]
    fn zero() -> u64 {
        u64::MAX
    }
    #[inline]
    fn one() -> u64 {
        0
    }
    #[inline]
    fn add(a: &u64, b: &u64) -> u64 {
        min_u8x8(*a, *b)
    }
    #[inline]
    fn mul(a: &u64, b: &u64) -> u64 {
        satadd_u8x8(*a, *b)
    }

    #[inline]
    fn corrupt_lane(e: &u64, lane: usize) -> u64 {
        debug_assert!(lane < Self::LANE_COUNT);
        let sh = 8 * (lane as u32);
        let b = (e >> sh) & SWAR8_INF;
        // Per-lane zero ↔ one: ∞ (0xFF) becomes 0, anything else becomes ∞.
        let nb = if b == SWAR8_INF { 0 } else { SWAR8_INF };
        (e & !(SWAR8_INF << sh)) | (nb << sh)
    }
}
impl PathSemiring for MinPlusSwar8 {}

/// 4 saturating u16 tropical lanes per u64: lane `l` is the `l`-th 16-bit
/// field, with the same structure as [`MinPlusSwar8`] at a wider weight
/// range (`∞ = 0xFFFF`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MinPlusSwar16;

impl Semiring for MinPlusSwar16 {
    type Elem = u64;
    const NAME: &'static str = "min-plus-swar-4x16";
    const LANE_COUNT: usize = 4;

    #[inline]
    fn zero() -> u64 {
        u64::MAX
    }
    #[inline]
    fn one() -> u64 {
        0
    }
    #[inline]
    fn add(a: &u64, b: &u64) -> u64 {
        min_u16x4(*a, *b)
    }
    #[inline]
    fn mul(a: &u64, b: &u64) -> u64 {
        satadd_u16x4(*a, *b)
    }

    #[inline]
    fn corrupt_lane(e: &u64, lane: usize) -> u64 {
        debug_assert!(lane < Self::LANE_COUNT);
        let sh = 16 * (lane as u32);
        let b = (e >> sh) & SWAR16_INF;
        let nb = if b == SWAR16_INF { 0 } else { SWAR16_INF };
        (e & !(SWAR16_INF << sh)) | (nb << sh)
    }
}
impl PathSemiring for MinPlusSwar16 {}

/// Shared exactness bound: every finite weight fits a lane and the longest
/// simple path `(n−1)·max_weight` stays strictly below the lane's ∞.
fn minplus_batch_exact(mats: &[DenseMatrix<MinPlus>], lane_inf: u64) -> bool {
    let n = mats.first().map_or(0, DenseMatrix::rows) as u64;
    let mut wmax: u64 = 0;
    for m in mats {
        for e in m.as_slice() {
            if *e == INF {
                continue;
            }
            if *e >= lane_inf {
                return false;
            }
            wmax = wmax.max(*e);
        }
    }
    n <= 1 || wmax.saturating_mul(n - 1) < lane_inf
}

impl LaneSemiring for MinPlusSwar8 {
    type Scalar = MinPlus;
    const ENGINE_NAME: &'static str = "linear-packed-minplus8";

    #[inline]
    fn read_lane(e: &u64, lane: usize) -> u64 {
        let b = (e >> (8 * lane as u32)) & SWAR8_INF;
        if b == SWAR8_INF {
            INF
        } else {
            b
        }
    }

    #[inline]
    fn write_lane(e: &mut u64, lane: usize, v: &u64) {
        let sh = 8 * lane as u32;
        let b = if *v == INF {
            SWAR8_INF
        } else {
            debug_assert!(*v < SWAR8_INF, "weight {v} does not fit a u8 lane");
            *v
        };
        *e = (*e & !(SWAR8_INF << sh)) | (b << sh);
    }

    fn batch_exact(mats: &[DenseMatrix<MinPlus>]) -> bool {
        minplus_batch_exact(mats, SWAR8_INF)
    }
}

impl LaneSemiring for MinPlusSwar16 {
    type Scalar = MinPlus;
    const ENGINE_NAME: &'static str = "linear-packed-minplus16";

    #[inline]
    fn read_lane(e: &u64, lane: usize) -> u64 {
        let b = (e >> (16 * lane as u32)) & SWAR16_INF;
        if b == SWAR16_INF {
            INF
        } else {
            b
        }
    }

    #[inline]
    fn write_lane(e: &mut u64, lane: usize, v: &u64) {
        let sh = 16 * lane as u32;
        let b = if *v == INF {
            SWAR16_INF
        } else {
            debug_assert!(*v < SWAR16_INF, "weight {v} does not fit a u16 lane");
            *v
        };
        *e = (*e & !(SWAR16_INF << sh)) | (b << sh);
    }

    fn batch_exact(mats: &[DenseMatrix<MinPlus>]) -> bool {
        minplus_batch_exact(mats, SWAR16_INF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::warshall;
    use crate::lanes::{pack_into_lanes, unpack_lane_of};
    use crate::laws::{check_path_laws, check_semiring_laws};

    fn scalar_min(a: u64, b: u64) -> u64 {
        a.min(b)
    }

    fn scalar_satadd(a: u64, b: u64, max: u64) -> u64 {
        (a + b).min(max)
    }

    #[test]
    fn swar_min_and_satadd_match_scalar_u8() {
        let mut rng = systolic_util::Rng::seed_from_u64(0x5A11);
        for _ in 0..2000 {
            let x = rng.next_u64();
            let y = rng.next_u64();
            let mn = min_u8x8(x, y);
            let sm = satadd_u8x8(x, y);
            for l in 0..8 {
                let (a, b) = ((x >> (8 * l)) & 0xFF, (y >> (8 * l)) & 0xFF);
                assert_eq!((mn >> (8 * l)) & 0xFF, scalar_min(a, b), "min lane {l}");
                assert_eq!(
                    (sm >> (8 * l)) & 0xFF,
                    scalar_satadd(a, b, 0xFF),
                    "satadd lane {l}: {a} + {b}"
                );
            }
        }
    }

    #[test]
    fn swar_min_and_satadd_match_scalar_u16() {
        let mut rng = systolic_util::Rng::seed_from_u64(0x5A16);
        for _ in 0..2000 {
            let x = rng.next_u64();
            let y = rng.next_u64();
            let mn = min_u16x4(x, y);
            let sm = satadd_u16x4(x, y);
            for l in 0..4 {
                let (a, b) = ((x >> (16 * l)) & 0xFFFF, (y >> (16 * l)) & 0xFFFF);
                assert_eq!((mn >> (16 * l)) & 0xFFFF, scalar_min(a, b), "min lane {l}");
                assert_eq!(
                    (sm >> (16 * l)) & 0xFFFF,
                    scalar_satadd(a, b, 0xFFFF),
                    "satadd lane {l}: {a} + {b}"
                );
            }
        }
    }

    #[test]
    fn swar_semirings_satisfy_the_laws() {
        let mut rng = systolic_util::Rng::seed_from_u64(0x1A3);
        for _ in 0..128 {
            let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
            check_semiring_laws::<MinPlusSwar8>(&a, &b, &c).unwrap();
            check_path_laws::<MinPlusSwar8>(&a).unwrap();
            check_semiring_laws::<MinPlusSwar16>(&a, &b, &c).unwrap();
            check_path_laws::<MinPlusSwar16>(&a).unwrap();
        }
    }

    /// The ∞ encoding survives the laws: lanes pinned at ∞ and lanes that
    /// saturate into ∞ still satisfy identity/absorption/distributivity.
    #[test]
    fn laws_hold_at_the_infinity_encoding() {
        // Lanes: ∞ everywhere; near-saturation values; a mix.
        let cases = [
            u64::MAX,
            0xFE80_FF01_FE02_FF7F,
            0x0000_00FF_FFFF_0000,
            0x7F7F_7F7F_7F7F_7F7F,
        ];
        for a in cases {
            for b in cases {
                for c in cases {
                    check_semiring_laws::<MinPlusSwar8>(&a, &b, &c).unwrap();
                    check_semiring_laws::<MinPlusSwar16>(&a, &b, &c).unwrap();
                }
            }
            check_path_laws::<MinPlusSwar8>(&a).unwrap();
            check_path_laws::<MinPlusSwar16>(&a).unwrap();
            // ∞ is absorbing lane-wise.
            assert_eq!(MinPlusSwar8::mul(&u64::MAX, &a), u64::MAX);
            assert_eq!(MinPlusSwar16::mul(&u64::MAX, &a), u64::MAX);
        }
    }

    #[test]
    fn read_write_lane_roundtrip_with_infinity() {
        let mut e = MinPlusSwar8::zero();
        MinPlusSwar8::write_lane(&mut e, 3, &42);
        MinPlusSwar8::write_lane(&mut e, 0, &0);
        assert_eq!(MinPlusSwar8::read_lane(&e, 3), 42);
        assert_eq!(MinPlusSwar8::read_lane(&e, 0), 0);
        assert_eq!(MinPlusSwar8::read_lane(&e, 5), INF, "untouched lane is ∞");
        MinPlusSwar8::write_lane(&mut e, 3, &INF);
        assert_eq!(MinPlusSwar8::read_lane(&e, 3), INF);

        let mut e = MinPlusSwar16::zero();
        MinPlusSwar16::write_lane(&mut e, 2, &40_000);
        assert_eq!(MinPlusSwar16::read_lane(&e, 2), 40_000);
        assert_eq!(MinPlusSwar16::read_lane(&e, 1), INF);
    }

    #[test]
    fn corrupt_lane_swaps_infinity_and_zero_in_one_lane() {
        let mut e = MinPlusSwar8::zero();
        MinPlusSwar8::write_lane(&mut e, 2, &7);
        let c = MinPlusSwar8::corrupt_lane(&e, 2);
        assert_eq!(MinPlusSwar8::read_lane(&c, 2), INF, "finite → ∞");
        let c2 = MinPlusSwar8::corrupt_lane(&e, 5);
        assert_eq!(MinPlusSwar8::read_lane(&c2, 5), 0, "∞ → 0 (one)");
        assert_eq!(MinPlusSwar8::read_lane(&c2, 2), 7, "other lanes untouched");
    }

    #[test]
    fn batch_exact_enforces_the_simple_path_bound() {
        let small = DenseMatrix::<MinPlus>::from_fn(5, 5, |i, j| if i == j { 0 } else { 3 });
        assert!(MinPlusSwar8::batch_exact(std::slice::from_ref(&small)));
        // (n−1)·wmax = 4·63 = 252 < 255: still exact.
        let edge = DenseMatrix::<MinPlus>::from_fn(5, 5, |i, j| if i == j { 0 } else { 63 });
        assert!(MinPlusSwar8::batch_exact(&[edge]));
        // 4·64 = 256 ≥ 255: falls back.
        let over = DenseMatrix::<MinPlus>::from_fn(5, 5, |i, j| if i == j { 0 } else { 64 });
        assert!(!MinPlusSwar8::batch_exact(std::slice::from_ref(&over)));
        // ∞ entries are fine; a single too-heavy finite entry is not.
        let with_inf = DenseMatrix::<MinPlus>::from_fn(5, 5, |i, j| if i < j { 3 } else { INF });
        assert!(MinPlusSwar8::batch_exact(&[with_inf]));
        let heavy = DenseMatrix::<MinPlus>::from_fn(3, 3, |_, _| 300);
        assert!(!MinPlusSwar8::batch_exact(std::slice::from_ref(&heavy)));
        // The u16 plane has the headroom the u8 plane lacks.
        assert!(MinPlusSwar16::batch_exact(&[over, heavy]));
    }

    /// The load-bearing property: one Warshall pass over SWAR lanes computes
    /// all packed weighted closures at once, bit-identical to scalar.
    #[test]
    fn warshall_over_swar_lanes_matches_scalar_minplus() {
        let mut rng = systolic_util::Rng::seed_from_u64(0x77);
        let mats: Vec<_> = (0..8)
            .map(|_| {
                DenseMatrix::<MinPlus>::from_fn(7, 7, |i, j| {
                    if i == j {
                        0
                    } else if rng.gen_bool(0.4) {
                        rng.gen_usize(20) as u64 + 1
                    } else {
                        INF
                    }
                })
            })
            .collect();
        assert!(MinPlusSwar8::batch_exact(&mats));
        let packed_closure = warshall(&pack_into_lanes::<MinPlusSwar8>(&mats));
        for (lane, m) in mats.iter().enumerate() {
            assert_eq!(
                unpack_lane_of::<MinPlusSwar8>(&packed_closure, lane),
                warshall(m),
                "lane {lane}"
            );
        }
        let packed16 = warshall(&pack_into_lanes::<MinPlusSwar16>(&mats[..4]));
        for (lane, m) in mats[..4].iter().enumerate() {
            assert_eq!(
                unpack_lane_of::<MinPlusSwar16>(&packed16, lane),
                warshall(m),
                "u16 lane {lane}"
            );
        }
    }
}
