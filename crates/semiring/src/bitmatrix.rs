//! Bit-packed Boolean matrices.
//!
//! The reference transitive-closure kernel over [`BitMatrix`] processes 64
//! matrix elements per instruction (row-OR), which is the fastest *software*
//! baseline we compare the simulated arrays' operation counts against. It is
//! also used by the property-test suite to cross-check the scalar kernels.

use crate::instances::Bool;
use crate::matrix::DenseMatrix;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use systolic_util::WorkerPool;

const WORD_BITS: usize = 64;

/// Pivots per cache block: a panel of `PIVOT_BLOCK` rows is the working
/// set of one blocked round (`64 × n/64` words — 16 KiB at `n = 2048`,
/// comfortably L1-resident), and 64 pivots' membership bits for any row
/// live in exactly one word, so a round's pivot set for a row is one load.
const PIVOT_BLOCK: usize = 64;

/// Below this size the whole matrix fits in L1/L2 anyway and the classic
/// per-pivot sweep has the better constant factor, so
/// [`BitMatrix::warshall_in_place`] keeps the unblocked loop there.
const BLOCKED_MIN_N: usize = 512;

/// A square `n × n` Boolean matrix packed into `u64` words, row-major.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// All-zero `n × n` matrix.
    pub fn zeros(n: usize) -> Self {
        let words_per_row = n.div_ceil(WORD_BITS);
        Self {
            n,
            words_per_row,
            words: vec![0; n * words_per_row],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds from a dense Boolean matrix.
    ///
    /// # Panics
    /// Panics if `dense` is not square.
    pub fn from_dense(dense: &DenseMatrix<Bool>) -> Self {
        assert!(dense.is_square(), "BitMatrix requires a square matrix");
        let n = dense.rows();
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if *dense.get(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Expands into a dense Boolean matrix.
    pub fn to_dense(&self) -> DenseMatrix<Bool> {
        DenseMatrix::from_fn(self.n, self.n, |i, j| self.get(i, j))
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bit at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        let w = self.words[i * self.words_per_row + j / WORD_BITS];
        (w >> (j % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        debug_assert!(i < self.n && j < self.n);
        let w = &mut self.words[i * self.words_per_row + j / WORD_BITS];
        let mask = 1u64 << (j % WORD_BITS);
        if v {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place transitive closure by bit-parallel Warshall.
    /// `O(n³/64)` word operations either way; dispatches to the
    /// cache-blocked sweep above `BLOCKED_MIN_N` (where the classic
    /// per-pivot sweep streams the whole `n²/8`-byte matrix once per pivot
    /// and falls out of cache) and keeps the classic loop below it, where
    /// the matrix is cache-resident and the simpler loop is never slower.
    pub fn warshall_in_place(&mut self) {
        if self.n >= BLOCKED_MIN_N {
            self.warshall_in_place_blocked();
        } else {
            self.warshall_in_place_unblocked();
        }
    }

    /// The classic bit-parallel Warshall sweep: for each pivot `k`, every
    /// row `i` with `x[i][k] = 1` ORs in row `k` word-by-word. One full
    /// matrix traversal per pivot.
    pub fn warshall_in_place_unblocked(&mut self) {
        let n = self.n;
        let wpr = self.words_per_row;
        for k in 0..n {
            // Split the storage at row k so we can read row k while writing
            // other rows without aliasing.
            let (before, rest) = self.words.split_at_mut(k * wpr);
            let (pivot, after) = rest.split_at_mut(wpr);
            let update = |rows: &mut [u64], base: usize| {
                for (r, chunk) in rows.chunks_exact_mut(wpr).enumerate() {
                    let i = base + r;
                    debug_assert_ne!(i, k);
                    let has = (chunk[k / WORD_BITS] >> (k % WORD_BITS)) & 1 == 1;
                    if has {
                        for (dst, src) in chunk.iter_mut().zip(pivot.iter()) {
                            *dst |= *src;
                        }
                    }
                }
            };
            update(before, 0);
            update(after, k + 1);
        }
    }

    /// Cache-blocked bit-parallel Warshall: pivots are processed in panels
    /// of `PIVOT_BLOCK` rows. Per panel `K = [k0, k1)`:
    ///
    /// 1. **Close the panel**: ordinary Warshall restricted to the panel's
    ///    own rows and pivots. Because pivot `k`'s row evolves only under
    ///    pivot rows that are themselves in `K`, the panel rows afterwards
    ///    are exactly what the unblocked sweep would have produced after
    ///    pivot `k1` — each closed under all pivots `< k1`.
    /// 2. **Fold** the closed panel into every other row in *one* pass:
    ///    row `i` ORs in panel row `k` for every bit `(i, k)`, `k ∈ K`,
    ///    set *at entry* to the pass. One pass is exact: on any path
    ///    `i → … → j` with intermediates `< k1`, the first intermediate
    ///    `k_f ∈ K` is reached through earlier pivots only — so
    ///    `(i, k_f)` is already set — and the closed panel row `k_f`
    ///    already contains the entire tail including `j`.
    ///
    /// The win over the unblocked sweep is reuse: one traversal of the
    /// matrix serves 64 pivots (whose membership bits per row share a
    /// single word), instead of 64 traversals, with the panel L1-resident
    /// throughout. Output is bit-identical to
    /// [`BitMatrix::warshall_in_place_unblocked`] for every `n`.
    pub fn warshall_in_place_blocked(&mut self) {
        let n = self.n;
        let wpr = self.words_per_row;
        let mut k0 = 0;
        while k0 < n {
            let k1 = (k0 + PIVOT_BLOCK).min(n);
            let rows_in = k1 - k0;
            {
                let panel = &mut self.words[k0 * wpr..k1 * wpr];
                Self::close_panel(panel, wpr, k0, rows_in);
            }
            let (head, rest) = self.words.split_at_mut(k0 * wpr);
            let (panel, tail) = rest.split_at_mut(rows_in * wpr);
            // k0 is a multiple of PIVOT_BLOCK = WORD_BITS, so the panel's
            // membership bits of any row live in the single word w_idx.
            let w_idx = k0 / WORD_BITS;
            let mask = Self::panel_mask(rows_in);
            let fold = |rows: &mut [u64]| {
                for chunk in rows.chunks_exact_mut(wpr) {
                    let mut bits = chunk[w_idx] & mask;
                    while bits != 0 {
                        let k_rel = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let src = &panel[k_rel * wpr..(k_rel + 1) * wpr];
                        for (dst, s) in chunk.iter_mut().zip(src.iter()) {
                            *dst |= *s;
                        }
                    }
                }
            };
            fold(head);
            fold(tail);
            k0 = k1;
        }
    }

    /// Ones mask for the low `rows_in` bits of a panel's membership word.
    #[inline]
    fn panel_mask(rows_in: usize) -> u64 {
        if rows_in == WORD_BITS {
            u64::MAX
        } else {
            (1u64 << rows_in) - 1
        }
    }

    /// Phase 1 of the blocked sweep: closes a panel (rows `k0..k0+rows_in`
    /// stored contiguously in `panel`) under its own pivots by ordinary
    /// Warshall restricted to those rows.
    fn close_panel(panel: &mut [u64], wpr: usize, k0: usize, rows_in: usize) {
        for k in 0..rows_in {
            let (before, rest) = panel.split_at_mut(k * wpr);
            let (pivot, after) = rest.split_at_mut(wpr);
            let col = k0 + k;
            let update = |rows: &mut [u64]| {
                for chunk in rows.chunks_exact_mut(wpr) {
                    let has = (chunk[col / WORD_BITS] >> (col % WORD_BITS)) & 1 == 1;
                    if has {
                        for (dst, src) in chunk.iter_mut().zip(pivot.iter()) {
                            *dst |= *src;
                        }
                    }
                }
            };
            update(before);
            update(after);
        }
    }

    /// Transitive closure (reflexive), returning a new matrix.
    pub fn transitive_closure(&self) -> Self {
        let mut m = self.clone();
        for i in 0..self.n {
            m.set(i, i, true);
        }
        m.warshall_in_place();
        m
    }

    /// Multi-threaded transitive closure on a freshly spawned pool of
    /// `threads` workers.
    ///
    /// Convenience wrapper over [`BitMatrix::transitive_closure_with_pool`];
    /// callers running many closures should build one [`WorkerPool`] and
    /// reuse it instead of paying thread spawn/join per call.
    pub fn transitive_closure_parallel(&self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        if threads == 1 {
            return self.transitive_closure();
        }
        let pool = WorkerPool::new(threads);
        self.transitive_closure_with_pool(&pool)
    }

    /// Multi-threaded transitive closure reusing a persistent worker pool.
    ///
    /// Uses the same panel decomposition as
    /// [`BitMatrix::warshall_in_place_blocked`]: each round closes one
    /// `PIVOT_BLOCK`-pivot panel sequentially (a local, L1-resident
    /// Warshall), then fans the one-pass fold of that closed panel out
    /// over disjoint row bands, one band per pool worker. Blocking cuts
    /// the number of `scoped_run` barriers from `n` to `⌈n/64⌉` — at
    /// small-to-medium `n` the per-pivot dispatch was the dominant cost —
    /// and each band's round now reads a panel snapshot instead of a
    /// single pivot row, so one traversal of the band serves 64 pivots.
    /// The result is exactly [`BitMatrix::transitive_closure`], so output
    /// is bit-identical for any thread count.
    pub fn transitive_closure_with_pool(&self, pool: &WorkerPool) -> Self {
        let mut m = self.clone();
        for i in 0..self.n {
            m.set(i, i, true);
        }
        let n = m.n;
        let wpr = m.words_per_row;
        let threads = pool.threads();
        if n < 2 || threads == 1 {
            m.warshall_in_place();
            return m;
        }
        // Pool jobs are 'static and this crate forbids unsafe code, so the
        // bands cannot borrow `m.words` directly; work on a shared atomic
        // copy instead. Every word is written by exactly one band per
        // round, and rounds are separated by the scoped_run barrier, so
        // relaxed ordering suffices.
        let shared: Arc<Vec<AtomicU64>> =
            Arc::new(m.words.iter().map(|&w| AtomicU64::new(w)).collect());
        let rows_per = n.div_ceil(threads);
        let bands = n.div_ceil(rows_per);
        let mut k0 = 0;
        while k0 < n {
            let k1 = (k0 + PIVOT_BLOCK).min(n);
            let rows_in = k1 - k0;
            // Phase 1 (sequential, off the atomics): pull the panel into a
            // plain buffer, close it over its own pivots, publish it back.
            // The closed panel is immutable for the rest of the round, so
            // the bands share the plain buffer — no per-word atomics.
            let mut panel: Vec<u64> = shared[k0 * wpr..k1 * wpr]
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect();
            Self::close_panel(&mut panel, wpr, k0, rows_in);
            for (dst, src) in shared[k0 * wpr..k1 * wpr].iter().zip(panel.iter()) {
                dst.store(*src, Ordering::Relaxed);
            }
            let panel = Arc::new(panel);
            let w_idx = k0 / WORD_BITS;
            let mask = Self::panel_mask(rows_in);
            // Phase 2: every band folds the closed panel into its rows.
            // Panel rows themselves are skipped — they were just stored.
            let run = pool.scoped_run(bands, |band| {
                let shared = Arc::clone(&shared);
                let panel = Arc::clone(&panel);
                Box::new(move || {
                    let lo = band * rows_per;
                    let hi = (lo + rows_per).min(n);
                    for i in lo..hi {
                        if i >= k0 && i < k1 {
                            continue;
                        }
                        let row = &shared[i * wpr..(i + 1) * wpr];
                        let mut bits = row[w_idx].load(Ordering::Relaxed) & mask;
                        while bits != 0 {
                            let k_rel = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let src = &panel[k_rel * wpr..(k_rel + 1) * wpr];
                            for (dst, s) in row.iter().zip(src.iter()) {
                                if *s != 0 {
                                    dst.fetch_or(*s, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                })
            });
            run.expect("closure band panicked");
            k0 = k1;
        }
        for (w, a) in m.words.iter_mut().zip(shared.iter()) {
            *w = a.load(Ordering::Relaxed);
        }
        m
    }

    /// Row `i` as its packed words (low bit of word 0 = column 0).
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        debug_assert!(i < self.n);
        &self.words[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Rank-1 closure update for an inserted edge `u → v`.
    ///
    /// Given that `self` is a reflexive transitive closure `R*`, this
    /// applies `R* ← R* ∨ R*·e_uv·R*`: every row `i` with `R*(i,u)` ORs in
    /// row `v` (new pairs are exactly `i → u → v → j` with the old
    /// reachabilities). One pass is exact for a single inserted edge — any
    /// path using the new edge twice revisits `u`, so a minimal witness
    /// uses it once. `O(n²/64)` word operations; returns the number of
    /// newly reachable pairs (0 when the edge was already implied).
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn insert_edge_closed(&mut self, u: usize, v: usize) -> usize {
        assert!(u < self.n && v < self.n, "vertex out of range");
        if self.get(u, v) {
            return 0;
        }
        let wpr = self.words_per_row;
        let row_v: Vec<u64> = self.row_words(v).to_vec();
        let mut added = 0usize;
        for i in 0..self.n {
            let row = &mut self.words[i * wpr..(i + 1) * wpr];
            let has_u = (row[u / WORD_BITS] >> (u % WORD_BITS)) & 1 == 1;
            if has_u {
                for (dst, src) in row.iter_mut().zip(row_v.iter()) {
                    added += (*src & !*dst).count_ones() as usize;
                    *dst |= *src;
                }
            }
        }
        added
    }

    /// ORs row `src` into row `dst` (a no-op when they coincide).
    pub fn or_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.n && dst < self.n, "row out of range");
        if src == dst {
            return;
        }
        let wpr = self.words_per_row;
        let (lo, hi) = (src.min(dst), src.max(dst));
        let (head, tail) = self.words.split_at_mut(hi * wpr);
        let lo_row = &mut head[lo * wpr..(lo + 1) * wpr];
        let hi_row = &mut tail[..wpr];
        let (dst_row, src_row) = if dst == hi {
            (hi_row, &*lo_row)
        } else {
            (lo_row, &*hi_row)
        };
        for (d, s) in dst_row.iter_mut().zip(src_row.iter()) {
            *d |= *s;
        }
    }

    /// True when no bit is set — the tile-skip predicate of the sparse
    /// tiled bridge.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Boolean matrix multiply-accumulate `self |= a ⊗ b`: for every set
    /// bit `(i, k)` of `a`, row `k` of `b` is ORed into row `i` of `self`.
    /// `O(ones(a) · n/64)` word operations — the off-diagonal kernel of
    /// the tiled closure, where tiles are sparse and full `n³/64` products
    /// would waste the skip structure.
    ///
    /// # Panics
    /// Panics if the three matrices differ in size.
    pub fn or_mul_acc(&mut self, a: &Self, b: &Self) {
        assert!(
            a.n == self.n && b.n == self.n,
            "or_mul_acc: size mismatch ({}, {}, {})",
            self.n,
            a.n,
            b.n
        );
        let wpr = self.words_per_row;
        for i in 0..self.n {
            for (wi, &aw) in a.row_words(i).iter().enumerate() {
                let mut bits = aw;
                while bits != 0 {
                    let k = wi * WORD_BITS + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let src = b.row_words(k);
                    let dst = &mut self.words[i * wpr..(i + 1) * wpr];
                    for (d, s) in dst.iter_mut().zip(src.iter()) {
                        *d |= *s;
                    }
                }
            }
        }
    }

    /// True iff `self ≤ other` element-wise (every set bit also set in
    /// `other`).
    pub fn is_subset_of(&self, other: &Self) -> bool {
        assert_eq!(self.n, other.n);
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{}", self.n, self.n)?;
        for i in 0..self.n.min(32) {
            write!(f, "  ")?;
            for j in 0..self.n.min(64) {
                write!(f, "{}", if self.get(i, j) { '1' } else { '.' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut m = BitMatrix::zeros(70);
        m.set(3, 63, true);
        m.set(3, 64, true);
        m.set(69, 69, true);
        assert!(m.get(3, 63));
        assert!(m.get(3, 64));
        assert!(!m.get(3, 65));
        assert!(m.get(69, 69));
        m.set(3, 64, false);
        assert!(!m.get(3, 64));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn closure_of_path_graph_is_upper_triangular_full() {
        // 0 -> 1 -> 2 -> 3
        let n = 4;
        let mut m = BitMatrix::zeros(n);
        for i in 0..n - 1 {
            m.set(i, i + 1, true);
        }
        let c = m.transitive_closure();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(c.get(i, j), i <= j, "({i},{j})");
            }
        }
    }

    #[test]
    fn closure_of_cycle_is_complete() {
        let n = 5;
        let mut m = BitMatrix::zeros(n);
        for i in 0..n {
            m.set(i, (i + 1) % n, true);
        }
        let c = m.transitive_closure();
        assert_eq!(c.count_ones(), n * n);
    }

    #[test]
    fn closure_is_idempotent() {
        let mut m = BitMatrix::zeros(6);
        m.set(0, 2, true);
        m.set(2, 4, true);
        m.set(4, 1, true);
        m.set(3, 5, true);
        let c1 = m.transitive_closure();
        let c2 = c1.transitive_closure();
        assert_eq!(c1, c2);
    }

    #[test]
    fn parallel_closure_matches_sequential() {
        let mut rng = systolic_util::Rng::seed_from_u64(5);
        for n in [1usize, 7, 65, 130] {
            let mut m = BitMatrix::zeros(n);
            for i in 0..n {
                for j in 0..n {
                    if i != j && rng.gen_bool(0.05) {
                        m.set(i, j, true);
                    }
                }
            }
            let seq = m.transitive_closure();
            for threads in [1usize, 2, 4, 7] {
                assert_eq!(
                    m.transitive_closure_parallel(threads),
                    seq,
                    "n={n} t={threads}"
                );
            }
        }
    }

    #[test]
    fn pooled_closure_reuses_one_pool_across_calls() {
        let pool = WorkerPool::new(3);
        let mut rng = systolic_util::Rng::seed_from_u64(9);
        for n in [4usize, 66, 129] {
            let mut m = BitMatrix::zeros(n);
            for i in 0..n {
                for j in 0..n {
                    if i != j && rng.gen_bool(0.08) {
                        m.set(i, j, true);
                    }
                }
            }
            assert_eq!(
                m.transitive_closure_with_pool(&pool),
                m.transitive_closure(),
                "n={n}"
            );
        }
    }

    #[test]
    fn blocked_sweep_matches_unblocked_at_panel_boundaries() {
        let mut rng = systolic_util::Rng::seed_from_u64(77);
        for n in [2usize, 5, 63, 64, 65, 127, 128, 129, 200, 300] {
            let mut m = BitMatrix::zeros(n);
            for i in 0..n {
                for j in 0..n {
                    if i != j && rng.gen_bool(0.06) {
                        m.set(i, j, true);
                    }
                }
            }
            for i in 0..n {
                m.set(i, i, true);
            }
            let mut blocked = m.clone();
            blocked.warshall_in_place_blocked();
            let mut plain = m.clone();
            plain.warshall_in_place_unblocked();
            assert_eq!(blocked, plain, "n={n}");
        }
    }

    #[test]
    fn public_entry_point_dispatches_identically_across_the_threshold() {
        // One size above BLOCKED_MIN_N (blocked path) and one below: both
        // must agree with the unblocked reference.
        let mut rng = systolic_util::Rng::seed_from_u64(78);
        for n in [500usize, 513] {
            let mut m = BitMatrix::zeros(n);
            for _ in 0..3 * n {
                let (i, j) = (rng.gen_usize(n), rng.gen_usize(n));
                m.set(i, j, true);
            }
            for i in 0..n {
                m.set(i, i, true);
            }
            let mut via_entry = m.clone();
            via_entry.warshall_in_place();
            let mut plain = m.clone();
            plain.warshall_in_place_unblocked();
            assert_eq!(via_entry, plain, "n={n}");
        }
    }

    #[test]
    fn insert_edge_closed_matches_full_recompute() {
        let mut rng = systolic_util::Rng::seed_from_u64(31);
        for n in [2usize, 9, 70] {
            let mut m = BitMatrix::zeros(n);
            for i in 0..n {
                for j in 0..n {
                    if i != j && rng.gen_bool(0.07) {
                        m.set(i, j, true);
                    }
                }
            }
            let mut closed = m.transitive_closure();
            for _ in 0..3 * n {
                let u = rng.gen_usize(n);
                let v = rng.gen_usize(n);
                m.set(u, v, true);
                let before = closed.count_ones();
                let added = closed.insert_edge_closed(u, v);
                assert_eq!(closed.count_ones(), before + added, "n={n}");
                assert_eq!(closed, m.transitive_closure(), "n={n} edge ({u},{v})");
            }
        }
    }

    #[test]
    fn row_words_expose_packed_rows() {
        let mut m = BitMatrix::zeros(70);
        m.set(3, 0, true);
        m.set(3, 64, true);
        assert_eq!(m.row_words(3), &[1u64, 1u64]);
        assert_eq!(m.row_words(4), &[0u64, 0u64]);
    }

    #[test]
    fn dense_roundtrip() {
        let mut m = BitMatrix::zeros(9);
        m.set(1, 7, true);
        m.set(8, 0, true);
        assert_eq!(BitMatrix::from_dense(&m.to_dense()), m);
    }

    #[test]
    fn subset_relation() {
        let mut a = BitMatrix::zeros(4);
        a.set(1, 2, true);
        let c = a.transitive_closure();
        assert!(a.is_subset_of(&c));
        assert!(!c.is_subset_of(&a));
    }

    #[test]
    fn is_zero_detects_any_bit() {
        let mut m = BitMatrix::zeros(70);
        assert!(m.is_zero());
        m.set(69, 69, true);
        assert!(!m.is_zero());
    }

    #[test]
    fn or_mul_acc_is_boolean_matmul() {
        // Compare against the naive triple loop on a 70-vertex graph so
        // both word lanes are exercised.
        let n = 70;
        let mut a = BitMatrix::zeros(n);
        let mut b = BitMatrix::zeros(n);
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..n {
            for j in 0..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state >> 61 == 0 {
                    a.set(i, j, true);
                }
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state >> 61 == 0 {
                    b.set(i, j, true);
                }
            }
        }
        let mut got = BitMatrix::zeros(n);
        got.set(0, 0, true); // accumulate on top of existing bits
        got.or_mul_acc(&a, &b);
        let mut want = BitMatrix::zeros(n);
        want.set(0, 0, true);
        for i in 0..n {
            for k in 0..n {
                if a.get(i, k) {
                    for j in 0..n {
                        if b.get(k, j) {
                            want.set(i, j, true);
                        }
                    }
                }
            }
        }
        assert_eq!(got, want);
    }
}
