//! Concrete semiring instances.
//!
//! All path-semiring instances here are *exact* (integer arithmetic only) so
//! that the algebraic laws hold bit-for-bit and property tests can assert
//! equality rather than tolerance.

use crate::traits::{PathSemiring, SelectiveSemiring, Semiring};

/// The Boolean semiring `({false,true}, OR, AND)` — the paper's instance.
///
/// Transitive closure of a directed graph is the algebraic path closure of
/// its adjacency matrix over this semiring (Warshall's algorithm, §3.1 of the
/// paper).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Bool;

impl Semiring for Bool {
    type Elem = bool;
    const NAME: &'static str = "boolean";

    #[inline]
    fn zero() -> bool {
        false
    }
    #[inline]
    fn one() -> bool {
        true
    }
    #[inline]
    fn add(a: &bool, b: &bool) -> bool {
        *a || *b
    }
    #[inline]
    fn mul(a: &bool, b: &bool) -> bool {
        *a && *b
    }
    #[inline]
    fn fuse(x: &bool, p: &bool, q: &bool) -> bool {
        *x || (*p && *q)
    }
}
impl PathSemiring for Bool {}
impl SelectiveSemiring for Bool {}

/// The tropical (min-plus) semiring over saturating `u64` distances:
/// `(u64 ∪ {∞}, min, +, ∞, 0)`.
///
/// `∞` is represented by `u64::MAX` and `+` saturates so that `∞ + w = ∞`.
/// The algebraic path closure over this semiring is all-pairs shortest
/// paths (Floyd–Warshall); it shares the paper's dependence graph exactly.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MinPlus;

/// Infinite distance for [`MinPlus`] / the bottom of [`MinMax`].
pub const INF: u64 = u64::MAX;

impl Semiring for MinPlus {
    type Elem = u64;
    const NAME: &'static str = "min-plus";

    #[inline]
    fn zero() -> u64 {
        INF
    }
    #[inline]
    fn one() -> u64 {
        0
    }
    #[inline]
    fn add(a: &u64, b: &u64) -> u64 {
        (*a).min(*b)
    }
    #[inline]
    fn mul(a: &u64, b: &u64) -> u64 {
        a.saturating_add(*b)
    }
}
impl PathSemiring for MinPlus {}
impl SelectiveSemiring for MinPlus {}

/// The bottleneck (max-min) semiring `(u64, max, min, 0, u64::MAX)`.
///
/// Path closure = maximum-capacity paths: the `⊗` of edges along a path is
/// the minimum capacity on it, and `⊕` keeps the best path.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MaxMin;

impl Semiring for MaxMin {
    type Elem = u64;
    const NAME: &'static str = "max-min";

    #[inline]
    fn zero() -> u64 {
        0
    }
    #[inline]
    fn one() -> u64 {
        u64::MAX
    }
    #[inline]
    fn add(a: &u64, b: &u64) -> u64 {
        (*a).max(*b)
    }
    #[inline]
    fn mul(a: &u64, b: &u64) -> u64 {
        (*a).min(*b)
    }
}
impl PathSemiring for MaxMin {}
impl SelectiveSemiring for MaxMin {}

/// The minimax semiring `(u64 ∪ {∞}, min, max, ∞, 0)`.
///
/// Path closure = minimax paths (minimize the largest edge weight along a
/// path) — e.g. the "smoothest route" problem.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MinMax;

impl Semiring for MinMax {
    type Elem = u64;
    const NAME: &'static str = "min-max";

    #[inline]
    fn zero() -> u64 {
        INF
    }
    #[inline]
    fn one() -> u64 {
        0
    }
    #[inline]
    fn add(a: &u64, b: &u64) -> u64 {
        (*a).min(*b)
    }
    #[inline]
    fn mul(a: &u64, b: &u64) -> u64 {
        (*a).max(*b)
    }
}
impl PathSemiring for MinMax {}
impl SelectiveSemiring for MinMax {}

/// The counting semiring `(u64, saturating +, saturating ×, 0, 1)`.
///
/// Counts walks when used with matrix products. It is **not** idempotent and
/// therefore deliberately not a [`PathSemiring`]: Warshall's recurrence is
/// not valid for it, and the type system prevents feeding it to the closure
/// engines. It is used by matrix-multiply substrates and law tests.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Counting;

impl Semiring for Counting {
    type Elem = u64;
    const NAME: &'static str = "counting";

    #[inline]
    fn zero() -> u64 {
        0
    }
    #[inline]
    fn one() -> u64 {
        1
    }
    #[inline]
    fn add(a: &u64, b: &u64) -> u64 {
        a.saturating_add(*b)
    }
    #[inline]
    fn mul(a: &u64, b: &u64) -> u64 {
        a.saturating_mul(*b)
    }
}

/// The reals `(f64, +, ×, 0, 1)` — the numeric plane for the
/// Gaussian-elimination algorithms of §4.3 (LU decomposition, Faddeev).
///
/// Floating-point addition is not associative, so `Real` is deliberately
/// excluded from the algebraic law tests and is **not** a [`PathSemiring`]:
/// Warshall's recurrence is meaningless over it and the type system keeps it
/// out of the closure engines. It is the only instance overriding
/// [`Semiring::elim`] and [`Semiring::div`], the two extra scalar operations
/// elimination tasks need.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Real;

impl Semiring for Real {
    type Elem = f64;
    const NAME: &'static str = "real";

    #[inline]
    fn zero() -> f64 {
        0.0
    }
    #[inline]
    fn one() -> f64 {
        1.0
    }
    #[inline]
    fn add(a: &f64, b: &f64) -> f64 {
        a + b
    }
    #[inline]
    fn mul(a: &f64, b: &f64) -> f64 {
        a * b
    }
    #[inline]
    fn elim(x: &f64, p: &f64, q: &f64) -> f64 {
        x - p * q
    }
    #[inline]
    fn div(x: &f64, q: &f64) -> f64 {
        x / q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_truth_tables() {
        assert!(!Bool::add(&false, &false));
        assert!(Bool::add(&true, &false));
        assert!(Bool::add(&false, &true));
        assert!(!Bool::mul(&true, &false));
        assert!(Bool::mul(&true, &true));
    }

    #[test]
    fn minplus_inf_saturates() {
        assert_eq!(MinPlus::mul(&INF, &7), INF);
        assert_eq!(MinPlus::mul(&7, &INF), INF);
        assert_eq!(MinPlus::add(&INF, &7), 7);
        assert_eq!(MinPlus::mul(&3, &4), 7);
    }

    #[test]
    fn minplus_identities() {
        assert_eq!(MinPlus::add(&MinPlus::zero(), &42), 42);
        assert_eq!(MinPlus::mul(&MinPlus::one(), &42), 42);
        assert_eq!(MinPlus::mul(&MinPlus::zero(), &42), MinPlus::zero());
    }

    #[test]
    fn maxmin_behaves_as_bottleneck() {
        // Two-edge path of capacities 5 and 3 has capacity 3.
        assert_eq!(MaxMin::mul(&5, &3), 3);
        // Choosing between capacity-3 and capacity-4 paths keeps 4.
        assert_eq!(MaxMin::add(&3, &4), 4);
        assert_eq!(MaxMin::mul(&MaxMin::one(), &9), 9);
        assert_eq!(MaxMin::mul(&MaxMin::zero(), &9), MaxMin::zero());
    }

    #[test]
    fn minmax_behaves_as_minimax() {
        assert_eq!(MinMax::mul(&5, &3), 5);
        assert_eq!(MinMax::add(&5, &3), 3);
        assert_eq!(MinMax::mul(&MinMax::one(), &9), 9);
    }

    #[test]
    fn counting_not_idempotent() {
        assert_eq!(Counting::add(&1, &1), 2);
        assert_eq!(Counting::add(&u64::MAX, &1), u64::MAX);
        assert_eq!(Counting::mul(&u64::MAX, &2), u64::MAX);
    }

    #[test]
    fn real_elimination_ops() {
        assert_eq!(Real::fuse(&1.0, &2.0, &3.0), 7.0);
        assert_eq!(Real::elim(&10.0, &2.0, &3.0), 4.0);
        assert_eq!(Real::div(&9.0, &2.0), 4.5);
        assert!(Real::is_zero(&0.0));
    }

    #[test]
    #[should_panic(expected = "does not support Gaussian-elimination")]
    fn path_semirings_reject_elim() {
        let _ = Bool::elim(&true, &false, &true);
    }

    #[test]
    fn selective_better_is_strict() {
        use crate::traits::SelectiveSemiring;
        assert!(MinPlus::better(&3, &5));
        assert!(!MinPlus::better(&5, &3));
        assert!(!MinPlus::better(&5, &5));
        assert!(MaxMin::better(&5, &3));
    }
}
