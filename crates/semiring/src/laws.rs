//! Reusable semiring-law checkers.
//!
//! These return `Result<(), String>` describing the first violated law so
//! both unit tests and the proptest suite can reuse them. Keeping the law
//! statements in the library (rather than in test code) also documents the
//! exact algebraic contract each engine relies on.

use crate::traits::{PathSemiring, Semiring};

/// Checks the plain semiring laws on the given sample triple.
pub fn check_semiring_laws<S: Semiring>(
    a: &S::Elem,
    b: &S::Elem,
    c: &S::Elem,
) -> Result<(), String> {
    let zero = S::zero();
    let one = S::one();

    let eq = |l: &S::Elem, r: &S::Elem, law: &str| -> Result<(), String> {
        if l == r {
            Ok(())
        } else {
            Err(format!(
                "{}: {:?} != {:?} (semiring {})",
                law,
                l,
                r,
                S::NAME
            ))
        }
    };

    // (E, ⊕, 0) commutative monoid.
    eq(
        &S::add(&S::add(a, b), c),
        &S::add(a, &S::add(b, c)),
        "⊕ associativity",
    )?;
    eq(&S::add(a, b), &S::add(b, a), "⊕ commutativity")?;
    eq(&S::add(a, &zero), a, "⊕ right identity")?;
    eq(&S::add(&zero, a), a, "⊕ left identity")?;

    // (E, ⊗, 1) monoid.
    eq(
        &S::mul(&S::mul(a, b), c),
        &S::mul(a, &S::mul(b, c)),
        "⊗ associativity",
    )?;
    eq(&S::mul(a, &one), a, "⊗ right identity")?;
    eq(&S::mul(&one, a), a, "⊗ left identity")?;

    // Distributivity.
    eq(
        &S::mul(a, &S::add(b, c)),
        &S::add(&S::mul(a, b), &S::mul(a, c)),
        "left distributivity",
    )?;
    eq(
        &S::mul(&S::add(a, b), c),
        &S::add(&S::mul(a, c), &S::mul(b, c)),
        "right distributivity",
    )?;

    // 0 absorbing.
    eq(&S::mul(a, &zero), &zero, "0 right-absorbing")?;
    eq(&S::mul(&zero, a), &zero, "0 left-absorbing")?;

    // fuse consistency.
    eq(
        &S::fuse(a, b, c),
        &S::add(a, &S::mul(b, c)),
        "fuse = a ⊕ (b ⊗ c)",
    )?;

    Ok(())
}

/// Checks the extra path-semiring laws (idempotence and boundedness).
pub fn check_path_laws<S: PathSemiring>(a: &S::Elem) -> Result<(), String> {
    if S::add(a, a) != *a {
        return Err(format!(
            "⊕ idempotence: {:?} ⊕ {:?} != {:?} (semiring {})",
            a,
            a,
            a,
            S::NAME
        ));
    }
    let one = S::one();
    if S::add(&one, a) != one {
        return Err(format!(
            "boundedness: 1 ⊕ {:?} != 1 (semiring {})",
            a,
            S::NAME
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{Bool, Counting, MaxMin, MinMax, MinPlus, INF};

    #[test]
    fn bool_laws_exhaustive() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    check_semiring_laws::<Bool>(&a, &b, &c).unwrap();
                }
            }
            check_path_laws::<Bool>(&a).unwrap();
        }
    }

    #[test]
    fn minplus_laws_on_samples() {
        let samples = [0u64, 1, 2, 17, 1 << 40, INF - 1, INF];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    check_semiring_laws::<MinPlus>(&a, &b, &c).unwrap();
                }
            }
            check_path_laws::<MinPlus>(&a).unwrap();
        }
    }

    #[test]
    fn maxmin_laws_on_samples() {
        let samples = [0u64, 1, 5, u64::MAX / 2, u64::MAX];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    check_semiring_laws::<MaxMin>(&a, &b, &c).unwrap();
                }
            }
            check_path_laws::<MaxMin>(&a).unwrap();
        }
    }

    #[test]
    fn minmax_laws_on_samples() {
        let samples = [0u64, 3, 9, INF];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    check_semiring_laws::<MinMax>(&a, &b, &c).unwrap();
                }
            }
            check_path_laws::<MinMax>(&a).unwrap();
        }
    }

    #[test]
    fn counting_semiring_laws_small_values() {
        // Saturating arithmetic is associative/distributive only away from
        // the saturation boundary; the library documents Counting as a
        // semiring on the sub-domain where no operation saturates.
        let samples = [0u64, 1, 2, 3, 10];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    check_semiring_laws::<Counting>(&a, &b, &c).unwrap();
                }
            }
        }
    }

    #[test]
    fn counting_is_not_idempotent() {
        // Demonstrates why Counting must not implement PathSemiring.
        assert_ne!(Counting::add(&1, &1), 1);
    }

    #[test]
    fn violation_reports_name_of_law() {
        // MinPlus ⊕ is min: 1 ⊕ a = 0 ⊕ a... check boundedness holds but a
        // fabricated failure via Counting's laws is reported with a message.
        let err = check_path_laws_counting_like();
        assert!(err.contains("idempotence"));
    }

    // Helper that simulates what the error text for a non-idempotent ⊕ looks
    // like using a local impl; we can't call check_path_laws::<Counting>
    // because Counting (correctly) does not implement PathSemiring.
    fn check_path_laws_counting_like() -> String {
        #[derive(Copy, Clone, Debug, Default)]
        struct BadPath;
        impl Semiring for BadPath {
            type Elem = u64;
            const NAME: &'static str = "bad-path";
            fn zero() -> u64 {
                0
            }
            fn one() -> u64 {
                1
            }
            fn add(a: &u64, b: &u64) -> u64 {
                a + b
            }
            fn mul(a: &u64, b: &u64) -> u64 {
                a * b
            }
        }
        impl PathSemiring for BadPath {}
        check_path_laws::<BadPath>(&1).unwrap_err()
    }
}
