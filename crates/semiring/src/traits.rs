//! Semiring traits.
//!
//! Semirings are modelled at the *type level*: an implementor is a zero-sized
//! tag type and all operations are associated functions. This gives the
//! simulator and the engines static dispatch (the `⊕`/`⊗` of a cell compile
//! down to a couple of instructions) with no per-element vtable, in line with
//! the HPC guidance of keeping hot loops allocation- and indirection-free.

use std::fmt::Debug;

/// A semiring `(E, ⊕, ⊗, 0, 1)`.
///
/// Laws (checked by [`crate::laws`] and the property-test suite):
///
/// * `(E, ⊕, 0)` is a commutative monoid,
/// * `(E, ⊗, 1)` is a monoid,
/// * `⊗` distributes over `⊕` on both sides,
/// * `0` is absorbing for `⊗`.
pub trait Semiring: Copy + Clone + Debug + Default + Send + Sync + 'static {
    /// Element type flowing through matrices, graphs and simulated cells.
    type Elem: Clone + PartialEq + Debug + Send + Sync + 'static;

    /// Human-readable name used in experiment reports.
    const NAME: &'static str;

    /// Additive identity (`⊕`-unit), absorbing for `⊗`.
    fn zero() -> Self::Elem;
    /// Multiplicative identity (`⊗`-unit).
    fn one() -> Self::Elem;
    /// `a ⊕ b`.
    fn add(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// `a ⊗ b`.
    fn mul(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// `a ← a ⊕ b`; override when an in-place form is cheaper.
    #[inline]
    fn add_assign(a: &mut Self::Elem, b: &Self::Elem) {
        *a = Self::add(a, b);
    }

    /// The fused scalar update of Warshall's recurrence:
    /// `x ← x ⊕ (p ⊗ q)`. This is exactly the operation one primitive node
    /// of the paper's dependence graph performs, and the single-cycle ALU
    /// operation of a simulated cell.
    #[inline]
    fn fuse(x: &Self::Elem, p: &Self::Elem, q: &Self::Elem) -> Self::Elem {
        Self::add(x, &Self::mul(p, q))
    }

    /// True iff `a` equals the additive identity.
    #[inline]
    fn is_zero(a: &Self::Elem) -> bool {
        *a == Self::zero()
    }

    /// The Gaussian-elimination update `x − p ⊗ q` — what one `MulSub` node
    /// of the LU/Faddeev dependence graphs computes. Only semirings with
    /// additive inverses can support it, so the default panics: a path
    /// semiring fed an elimination task is a programming error, not a
    /// silently-wrong answer.
    #[inline]
    fn elim(x: &Self::Elem, p: &Self::Elem, q: &Self::Elem) -> Self::Elem {
        let _ = (x, p, q);
        panic!(
            "semiring {} does not support Gaussian-elimination tasks",
            Self::NAME
        );
    }

    /// The pivot division `x / q` — what one `Div` node of the LU/Faddeev
    /// dependence graphs computes. Panics by default for the same reason as
    /// [`Semiring::elim`].
    #[inline]
    fn div(x: &Self::Elem, q: &Self::Elem) -> Self::Elem {
        let _ = (x, q);
        panic!(
            "semiring {} does not support Gaussian-elimination tasks",
            Self::NAME
        );
    }

    /// Number of independent value lanes one `Elem` carries.
    ///
    /// Scalar semirings are the 1-lane case. Packed semirings
    /// ([`crate::BoolLanes`], [`crate::MinPlusSwar8`], …) override this so
    /// that lane-width-dependent mechanisms — today only fault injection —
    /// can address one resident instance instead of all of them at once.
    const LANE_COUNT: usize = 1;

    /// Returns `e` with *only* lane `lane` corrupted (the per-lane
    /// zero ↔ one swap); all other lanes are bit-identical to `e`.
    ///
    /// The default covers every scalar semiring: with one lane, corrupting
    /// "lane 0" is the whole-element swap of the additive and
    /// multiplicative identities (the same map as
    /// `arraysim::corrupt_value`). Packed semirings override this to touch
    /// only the addressed lane, which is what lets an armed fault plan
    /// target a single packed instance.
    #[inline]
    fn corrupt_lane(e: &Self::Elem, lane: usize) -> Self::Elem {
        debug_assert!(lane < Self::LANE_COUNT);
        let _ = lane;
        if Self::is_zero(e) {
            Self::one()
        } else {
            Self::zero()
        }
    }
}

/// A semiring for which Warshall's recurrence computes the algebraic path
/// closure `A⁺ = A ⊕ A² ⊕ …` (with reflexive diagonal).
///
/// Additional laws:
///
/// * **Idempotent addition**: `a ⊕ a = a`.
/// * **Bounded** (0-closed / "simple"): `1 ⊕ a = 1` for all `a`, which makes
///   the Kleene star trivial (`a* = 1`) and the recurrence
///   `x_ij ← x_ij ⊕ x_ik ⊗ x_kj` exact.
pub trait PathSemiring: Semiring {}

/// Semirings whose elements admit a total order compatible with `⊕ = "best"`.
///
/// Used by examples that rank paths (e.g. widest-path routing); `better(a,b)`
/// is true when `a ⊕ b = a` and `a ≠ b`.
pub trait SelectiveSemiring: PathSemiring {
    /// Strictly-better comparison consistent with `⊕`.
    fn better(a: &Self::Elem, b: &Self::Elem) -> bool {
        Self::add(a, b) == *a && a != b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::Bool;

    #[test]
    fn fuse_matches_definition() {
        for x in [false, true] {
            for p in [false, true] {
                for q in [false, true] {
                    assert_eq!(Bool::fuse(&x, &p, &q), x || (p && q));
                }
            }
        }
    }

    #[test]
    fn add_assign_default_matches_add() {
        let mut a = true;
        Bool::add_assign(&mut a, &false);
        assert!(a);
        let mut b = false;
        Bool::add_assign(&mut b, &false);
        assert!(!b);
    }

    #[test]
    fn is_zero_on_identities() {
        assert!(Bool::is_zero(&Bool::zero()));
        assert!(!Bool::is_zero(&Bool::one()));
    }
}
