//! Bit-sliced Boolean lanes: 64 independent instances per machine word.
//!
//! The partitioned arrays' schedules depend only on the problem *shape*,
//! never on the matrix entries, so any number of same-shape Boolean
//! instances can share one simulated run if their values travel together.
//! Over the Boolean semiring that sharing is free: pack instance `l`'s
//! element into bit `l` of a `u64` and the per-lane `OR`/`AND` of all 64
//! lanes is a single word `|`/`&` (the same SWAR row-OR trick
//! [`crate::BitMatrix`] uses). [`BoolLanes`] is that 64-lane semiring;
//! [`pack_lanes`]/[`unpack_lanes`] transpose a batch of scalar Boolean
//! matrices into one lane-word matrix and back.
//!
//! [`BoolLanes`] is a lawful [`PathSemiring`] (it is the 64-fold product
//! of [`Bool`] with itself, and semiring laws hold lane-wise), so every
//! generic kernel and engine in the workspace accepts it unchanged — the
//! scalar Boolean path is simply the 1-lane instantiation.

use crate::instances::Bool;
use crate::matrix::DenseMatrix;
use crate::traits::{PathSemiring, Semiring};
use std::fmt;

/// Number of Boolean lanes a [`LaneWord`] carries.
pub const LANES: usize = 64;

/// A machine word carrying [`LANES`] independent Boolean values, one per
/// bit: lane `l` of the word is bit `l`.
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct LaneWord(u64);

impl LaneWord {
    /// Word with every lane set to `v`.
    #[inline]
    pub fn splat(v: bool) -> Self {
        Self(if v { u64::MAX } else { 0 })
    }

    /// Word with the given raw bit pattern (bit `l` = lane `l`).
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        Self(bits)
    }

    /// Raw bit pattern (bit `l` = lane `l`).
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Value of lane `lane`.
    #[inline]
    pub fn get(self, lane: usize) -> bool {
        debug_assert!(lane < LANES);
        (self.0 >> lane) & 1 == 1
    }

    /// Sets lane `lane` to `v`.
    #[inline]
    pub fn set(&mut self, lane: usize, v: bool) {
        debug_assert!(lane < LANES);
        let mask = 1u64 << lane;
        if v {
            self.0 |= mask;
        } else {
            self.0 &= !mask;
        }
    }
}

impl fmt::Debug for LaneWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LaneWord({:#018x})", self.0)
    }
}

/// The 64-lane Boolean semiring: per-lane `OR` as `⊕` and per-lane `AND`
/// as `⊗`, both single word instructions. Zero is all-lanes-false, one is
/// all-lanes-true.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BoolLanes;

impl Semiring for BoolLanes {
    type Elem = LaneWord;
    const NAME: &'static str = "boolean-64-lane";

    #[inline]
    fn zero() -> LaneWord {
        LaneWord(0)
    }
    #[inline]
    fn one() -> LaneWord {
        LaneWord(u64::MAX)
    }
    #[inline]
    fn add(a: &LaneWord, b: &LaneWord) -> LaneWord {
        LaneWord(a.0 | b.0)
    }
    #[inline]
    fn mul(a: &LaneWord, b: &LaneWord) -> LaneWord {
        LaneWord(a.0 & b.0)
    }
    #[inline]
    fn fuse(x: &LaneWord, p: &LaneWord, q: &LaneWord) -> LaneWord {
        LaneWord(x.0 | (p.0 & q.0))
    }
}
impl PathSemiring for BoolLanes {}

/// Transposes a batch of `1..=64` same-shape Boolean matrices into one
/// lane-word matrix: element `(i, j)` of the result carries
/// `mats[l].get(i, j)` in lane `l`. Unused lanes are zero (the empty
/// graph, whose closure under a reflexive convention is the identity).
///
/// # Panics
/// Panics on an empty batch, more than [`LANES`] matrices, or shape
/// mismatch within the batch.
pub fn pack_lanes(mats: &[DenseMatrix<Bool>]) -> DenseMatrix<BoolLanes> {
    assert!(
        !mats.is_empty() && mats.len() <= LANES,
        "pack_lanes takes 1..={LANES} matrices, got {}",
        mats.len()
    );
    let (rows, cols) = (mats[0].rows(), mats[0].cols());
    assert!(
        mats.iter().all(|m| m.rows() == rows && m.cols() == cols),
        "pack_lanes requires same-shape matrices"
    );
    DenseMatrix::from_fn(rows, cols, |i, j| {
        let mut w = LaneWord::default();
        for (lane, m) in mats.iter().enumerate() {
            w.set(lane, *m.get(i, j));
        }
        w
    })
}

/// Extracts one lane of a lane-word matrix as a scalar Boolean matrix.
pub fn unpack_lane(packed: &DenseMatrix<BoolLanes>, lane: usize) -> DenseMatrix<Bool> {
    assert!(lane < LANES, "lane {lane} out of range");
    DenseMatrix::from_fn(packed.rows(), packed.cols(), |i, j| {
        packed.get(i, j).get(lane)
    })
}

/// Extracts the first `count` lanes of a lane-word matrix, in lane order —
/// the inverse of [`pack_lanes`] for a batch of `count` matrices.
pub fn unpack_lanes(packed: &DenseMatrix<BoolLanes>, count: usize) -> Vec<DenseMatrix<Bool>> {
    assert!(count <= LANES, "count {count} out of range");
    (0..count).map(|l| unpack_lane(packed, l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::warshall;
    use crate::laws::{check_path_laws, check_semiring_laws};

    #[test]
    fn lane_get_set_roundtrip() {
        let mut w = LaneWord::default();
        assert!(!w.get(0) && !w.get(63));
        w.set(0, true);
        w.set(63, true);
        w.set(17, true);
        assert!(w.get(0) && w.get(17) && w.get(63));
        assert!(!w.get(16));
        w.set(17, false);
        assert!(!w.get(17));
        assert_eq!(w.bits(), (1 << 63) | 1);
        assert_eq!(LaneWord::from_bits(w.bits()), w);
        assert_eq!(LaneWord::splat(true).bits(), u64::MAX);
        assert_eq!(LaneWord::splat(false), BoolLanes::zero());
    }

    #[test]
    fn lanes_satisfy_semiring_and_path_laws() {
        let mut rng = systolic_util::Rng::seed_from_u64(64);
        for _ in 0..64 {
            let a = LaneWord::from_bits(rng.next_u64());
            let b = LaneWord::from_bits(rng.next_u64());
            let c = LaneWord::from_bits(rng.next_u64());
            check_semiring_laws::<BoolLanes>(&a, &b, &c).unwrap();
            check_path_laws::<BoolLanes>(&a).unwrap();
        }
    }

    #[test]
    fn ops_are_lanewise_bool_ops() {
        let a = LaneWord::from_bits(0b1100);
        let b = LaneWord::from_bits(0b1010);
        assert_eq!(BoolLanes::add(&a, &b).bits(), 0b1110);
        assert_eq!(BoolLanes::mul(&a, &b).bits(), 0b1000);
        let x = LaneWord::from_bits(0b0001);
        assert_eq!(BoolLanes::fuse(&x, &a, &b).bits(), 0b1001);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut rng = systolic_util::Rng::seed_from_u64(7);
        for count in [1usize, 2, 63, 64] {
            let mats: Vec<_> = (0..count)
                .map(|_| DenseMatrix::<Bool>::from_fn(5, 5, |_, _| rng.gen_bool(0.3)))
                .collect();
            let packed = pack_lanes(&mats);
            assert_eq!(unpack_lanes(&packed, count), mats, "count={count}");
            // Unused lanes are the empty graph.
            if count < LANES {
                assert_eq!(
                    unpack_lane(&packed, LANES - 1),
                    DenseMatrix::<Bool>::zeros(5, 5)
                );
            }
        }
    }

    /// The load-bearing property of the whole data plane: running the
    /// generic Warshall kernel once over lane words computes all packed
    /// closures simultaneously.
    #[test]
    fn warshall_over_lanes_is_64_closures_at_once() {
        let mut rng = systolic_util::Rng::seed_from_u64(42);
        let mats: Vec<_> = (0..LANES)
            .map(|_| DenseMatrix::<Bool>::from_fn(7, 7, |i, j| i != j && rng.gen_bool(0.2)))
            .collect();
        let packed_closure = warshall(&pack_lanes(&mats));
        for (lane, m) in mats.iter().enumerate() {
            assert_eq!(
                unpack_lane(&packed_closure, lane),
                warshall(m),
                "lane {lane}"
            );
        }
    }
}
