//! Bit-sliced Boolean lanes: 64·W independent instances per lane word.
//!
//! The partitioned arrays' schedules depend only on the problem *shape*,
//! never on the matrix entries, so any number of same-shape Boolean
//! instances can share one simulated run if their values travel together.
//! Over the Boolean semiring that sharing is free: pack instance `l`'s
//! element into bit `l` of a machine word and the per-lane `OR`/`AND` of
//! all lanes is a single word `|`/`&` (the same SWAR row-OR trick
//! [`crate::BitMatrix`] uses). [`BoolLanes`] is that lane semiring;
//! [`pack_lanes`]/[`unpack_lanes`] transpose a batch of scalar Boolean
//! matrices into one lane-word matrix and back.
//!
//! Since the schedule is value-width-agnostic, the word does not have to
//! stop at 64 bits: [`LaneWord<W>`](LaneWord) carries `W` words — 64·W
//! Boolean lanes — per element, so one simulated pass closes 64, 128 or
//! 256 instances for the same number of simulated events. `W = 1` is the
//! original plane and stays the default type parameter, so `LaneWord` and
//! `BoolLanes` written without arguments mean exactly what they did before.
//!
//! [`BoolLanes`] is a lawful [`PathSemiring`] (it is the 64·W-fold product
//! of [`Bool`] with itself, and semiring laws hold lane-wise), so every
//! generic kernel and engine in the workspace accepts it unchanged — the
//! scalar Boolean path is simply the 1-lane instantiation.
//!
//! The [`LaneSemiring`] trait is the packed plane's engine-facing contract:
//! it names the scalar semiring one lane carries and provides the
//! pack/unpack transpose, which is what lets `PackedEngine` run *any*
//! lane semiring — Boolean lanes of any width, or the SWAR min-plus lanes
//! of [`crate::swar`] — through one generic code path.

use crate::instances::Bool;
use crate::matrix::DenseMatrix;
use crate::traits::{PathSemiring, Semiring};
use std::fmt;

/// Number of Boolean lanes per *word* of a [`LaneWord`] (the `W = 1`
/// plane's total lane count, kept for compatibility).
pub const LANES: usize = 64;

/// `W` machine words carrying `64·W` independent Boolean values, one per
/// bit: lane `l` is bit `l % 64` of word `l / 64`.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct LaneWord<const W: usize = 1>([u64; W]);

impl<const W: usize> Default for LaneWord<W> {
    #[inline]
    fn default() -> Self {
        Self([0; W])
    }
}

impl<const W: usize> LaneWord<W> {
    /// Total number of Boolean lanes this word carries.
    pub const COUNT: usize = 64 * W;

    /// Word with every lane set to `v`.
    #[inline]
    pub fn splat(v: bool) -> Self {
        Self([if v { u64::MAX } else { 0 }; W])
    }

    /// Word with the given raw bit pattern.
    #[inline]
    pub fn from_words(words: [u64; W]) -> Self {
        Self(words)
    }

    /// Raw bit pattern, word `w` carrying lanes `64·w .. 64·(w+1)`.
    #[inline]
    pub fn words(self) -> [u64; W] {
        self.0
    }

    /// Value of lane `lane`.
    #[inline]
    pub fn get(self, lane: usize) -> bool {
        debug_assert!(lane < Self::COUNT);
        (self.0[lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// Sets lane `lane` to `v`.
    #[inline]
    pub fn set(&mut self, lane: usize, v: bool) {
        debug_assert!(lane < Self::COUNT);
        let mask = 1u64 << (lane % 64);
        if v {
            self.0[lane / 64] |= mask;
        } else {
            self.0[lane / 64] &= !mask;
        }
    }
}

impl LaneWord<1> {
    /// Word with the given raw bit pattern (bit `l` = lane `l`).
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        Self([bits])
    }

    /// Raw bit pattern (bit `l` = lane `l`).
    #[inline]
    pub fn bits(self) -> u64 {
        self.0[0]
    }
}

impl<const W: usize> fmt::Debug for LaneWord<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LaneWord(")?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w:#018x}")?;
        }
        write!(f, ")")
    }
}

/// The `64·W`-lane Boolean semiring: per-lane `OR` as `⊕` and per-lane
/// `AND` as `⊗`, one word instruction per packed word. Zero is
/// all-lanes-false, one is all-lanes-true. `W = 1` (the default) is the
/// original 64-lane plane.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BoolLanes<const W: usize = 1>;

impl<const W: usize> Semiring for BoolLanes<W> {
    type Elem = LaneWord<W>;
    const NAME: &'static str = match W {
        1 => "boolean-64-lane",
        2 => "boolean-128-lane",
        4 => "boolean-256-lane",
        _ => "boolean-multi-lane",
    };
    const LANE_COUNT: usize = 64 * W;

    #[inline]
    fn zero() -> LaneWord<W> {
        LaneWord([0; W])
    }
    #[inline]
    fn one() -> LaneWord<W> {
        LaneWord([u64::MAX; W])
    }
    #[inline]
    fn add(a: &LaneWord<W>, b: &LaneWord<W>) -> LaneWord<W> {
        let mut out = [0; W];
        for (o, (x, y)) in out.iter_mut().zip(a.0.iter().zip(b.0.iter())) {
            *o = x | y;
        }
        LaneWord(out)
    }
    #[inline]
    fn mul(a: &LaneWord<W>, b: &LaneWord<W>) -> LaneWord<W> {
        let mut out = [0; W];
        for (o, (x, y)) in out.iter_mut().zip(a.0.iter().zip(b.0.iter())) {
            *o = x & y;
        }
        LaneWord(out)
    }
    #[inline]
    fn fuse(x: &LaneWord<W>, p: &LaneWord<W>, q: &LaneWord<W>) -> LaneWord<W> {
        let mut out = [0; W];
        for (i, o) in out.iter_mut().enumerate() {
            *o = x.0[i] | (p.0[i] & q.0[i]);
        }
        LaneWord(out)
    }

    #[inline]
    fn corrupt_lane(e: &LaneWord<W>, lane: usize) -> LaneWord<W> {
        debug_assert!(lane < Self::LANE_COUNT);
        // Per-lane zero ↔ one over Bool is a bit toggle.
        let mut out = *e;
        out.0[lane / 64] ^= 1u64 << (lane % 64);
        out
    }
}
impl<const W: usize> PathSemiring for BoolLanes<W> {}

/// A packed [`PathSemiring`] whose element carries
/// [`Semiring::LANE_COUNT`] independent instances of a scalar semiring.
///
/// This is the contract `partition::PackedEngine` programs against: the
/// engine packs a chunk of [`LaneSemiring::Scalar`] matrices into one
/// lane matrix, runs the ordinary generic simulation once, and unpacks —
/// so Boolean lanes of any width and the SWAR min-plus lanes share one
/// engine.
pub trait LaneSemiring: PathSemiring {
    /// Scalar semiring a single lane carries.
    type Scalar: PathSemiring;

    /// Engine name the packed engine reports when running over this plane.
    const ENGINE_NAME: &'static str;

    /// Value of lane `lane` of `e`, as a scalar element.
    fn read_lane(e: &Self::Elem, lane: usize) -> <Self::Scalar as Semiring>::Elem;

    /// Stores scalar `v` into lane `lane` of `e`.
    ///
    /// Callers must only store values for which the packed computation is
    /// exact (see [`LaneSemiring::batch_exact`]); an unrepresentable value
    /// is a logic error upstream.
    fn write_lane(e: &mut Self::Elem, lane: usize, v: &<Self::Scalar as Semiring>::Elem);

    /// True when the packed closure of this batch is guaranteed
    /// bit-identical to the scalar path — the engine's criterion for
    /// taking the packed path at all.
    ///
    /// Boolean lanes are always exact. Narrow arithmetic lanes (SWAR
    /// min-plus) are exact on a value-bounded domain and fall back to the
    /// scalar engine outside it.
    fn batch_exact(mats: &[DenseMatrix<Self::Scalar>]) -> bool;
}

impl<const W: usize> LaneSemiring for BoolLanes<W> {
    type Scalar = Bool;
    const ENGINE_NAME: &'static str = match W {
        1 => "linear-packed",
        2 => "linear-packed-w2",
        4 => "linear-packed-w4",
        _ => "linear-packed-wide",
    };

    #[inline]
    fn read_lane(e: &LaneWord<W>, lane: usize) -> bool {
        e.get(lane)
    }

    #[inline]
    fn write_lane(e: &mut LaneWord<W>, lane: usize, v: &bool) {
        e.set(lane, *v);
    }

    #[inline]
    fn batch_exact(_mats: &[DenseMatrix<Bool>]) -> bool {
        true
    }
}

/// Transposes a batch of `1..=LANE_COUNT` same-shape scalar matrices into
/// one lane matrix: element `(i, j)` of the result carries
/// `mats[l].get(i, j)` in lane `l`. Unused lanes hold the scalar zero —
/// the empty graph for Boolean lanes, the all-∞ matrix for min-plus
/// lanes — whose closure under a reflexive convention is the identity.
///
/// # Panics
/// Panics on an empty batch, more than `L::LANE_COUNT` matrices, or shape
/// mismatch within the batch.
pub fn pack_into_lanes<L: LaneSemiring>(mats: &[DenseMatrix<L::Scalar>]) -> DenseMatrix<L> {
    let lanes = L::LANE_COUNT;
    assert!(
        !mats.is_empty() && mats.len() <= lanes,
        "pack_into_lanes takes 1..={lanes} matrices, got {}",
        mats.len()
    );
    let (rows, cols) = (mats[0].rows(), mats[0].cols());
    assert!(
        mats.iter().all(|m| m.rows() == rows && m.cols() == cols),
        "pack_into_lanes requires same-shape matrices"
    );
    DenseMatrix::from_fn(rows, cols, |i, j| {
        let mut w = L::zero();
        for (lane, m) in mats.iter().enumerate() {
            L::write_lane(&mut w, lane, m.get(i, j));
        }
        w
    })
}

/// Extracts one lane of a lane matrix as a scalar matrix.
pub fn unpack_lane_of<L: LaneSemiring>(
    packed: &DenseMatrix<L>,
    lane: usize,
) -> DenseMatrix<L::Scalar> {
    assert!(lane < L::LANE_COUNT, "lane {lane} out of range");
    DenseMatrix::from_fn(packed.rows(), packed.cols(), |i, j| {
        L::read_lane(packed.get(i, j), lane)
    })
}

/// Extracts the first `count` lanes of a lane matrix, in lane order — the
/// inverse of [`pack_into_lanes`] for a batch of `count` matrices.
pub fn unpack_from_lanes<L: LaneSemiring>(
    packed: &DenseMatrix<L>,
    count: usize,
) -> Vec<DenseMatrix<L::Scalar>> {
    assert!(count <= L::LANE_COUNT, "count {count} out of range");
    (0..count).map(|l| unpack_lane_of(packed, l)).collect()
}

/// Transposes a batch of `1..=64` same-shape Boolean matrices into one
/// lane-word matrix (the `W = 1` instantiation of [`pack_into_lanes`],
/// kept under its original name).
///
/// # Panics
/// Panics on an empty batch, more than [`LANES`] matrices, or shape
/// mismatch within the batch.
pub fn pack_lanes(mats: &[DenseMatrix<Bool>]) -> DenseMatrix<BoolLanes> {
    pack_into_lanes::<BoolLanes>(mats)
}

/// Extracts one lane of a lane-word matrix as a scalar Boolean matrix.
pub fn unpack_lane(packed: &DenseMatrix<BoolLanes>, lane: usize) -> DenseMatrix<Bool> {
    unpack_lane_of::<BoolLanes>(packed, lane)
}

/// Extracts the first `count` lanes of a lane-word matrix, in lane order —
/// the inverse of [`pack_lanes`] for a batch of `count` matrices.
pub fn unpack_lanes(packed: &DenseMatrix<BoolLanes>, count: usize) -> Vec<DenseMatrix<Bool>> {
    unpack_from_lanes::<BoolLanes>(packed, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::warshall;
    use crate::laws::{check_path_laws, check_semiring_laws};

    fn rand_word<const W: usize>(rng: &mut systolic_util::Rng) -> LaneWord<W> {
        let mut w = [0u64; W];
        for x in &mut w {
            *x = rng.next_u64();
        }
        LaneWord::from_words(w)
    }

    #[test]
    fn lane_get_set_roundtrip() {
        let mut w = LaneWord::default();
        assert!(!w.get(0) && !w.get(63));
        w.set(0, true);
        w.set(63, true);
        w.set(17, true);
        assert!(w.get(0) && w.get(17) && w.get(63));
        assert!(!w.get(16));
        w.set(17, false);
        assert!(!w.get(17));
        assert_eq!(w.bits(), (1 << 63) | 1);
        assert_eq!(LaneWord::from_bits(w.bits()), w);
        assert_eq!(LaneWord::<1>::splat(true).bits(), u64::MAX);
        assert_eq!(LaneWord::<1>::splat(false), BoolLanes::<1>::zero());
    }

    #[test]
    fn wide_lane_get_set_roundtrip() {
        let mut w = LaneWord::<4>::default();
        assert_eq!(LaneWord::<4>::COUNT, 256);
        for lane in [0usize, 63, 64, 127, 128, 200, 255] {
            assert!(!w.get(lane));
            w.set(lane, true);
            assert!(w.get(lane), "lane {lane}");
        }
        assert!(!w.get(65));
        w.set(64, false);
        assert!(!w.get(64) && w.get(127));
        assert_eq!(
            LaneWord::<2>::splat(true).words(),
            [u64::MAX, u64::MAX],
            "splat fills every word"
        );
    }

    #[test]
    fn lanes_satisfy_semiring_and_path_laws() {
        let mut rng = systolic_util::Rng::seed_from_u64(64);
        for _ in 0..64 {
            let a = LaneWord::from_bits(rng.next_u64());
            let b = LaneWord::from_bits(rng.next_u64());
            let c = LaneWord::from_bits(rng.next_u64());
            check_semiring_laws::<BoolLanes>(&a, &b, &c).unwrap();
            check_path_laws::<BoolLanes>(&a).unwrap();
        }
    }

    #[test]
    fn wide_lanes_satisfy_semiring_and_path_laws() {
        let mut rng = systolic_util::Rng::seed_from_u64(128);
        for _ in 0..64 {
            let (a, b, c) = (
                rand_word::<2>(&mut rng),
                rand_word::<2>(&mut rng),
                rand_word::<2>(&mut rng),
            );
            check_semiring_laws::<BoolLanes<2>>(&a, &b, &c).unwrap();
            check_path_laws::<BoolLanes<2>>(&a).unwrap();
            let (a, b, c) = (
                rand_word::<4>(&mut rng),
                rand_word::<4>(&mut rng),
                rand_word::<4>(&mut rng),
            );
            check_semiring_laws::<BoolLanes<4>>(&a, &b, &c).unwrap();
            check_path_laws::<BoolLanes<4>>(&a).unwrap();
        }
    }

    #[test]
    fn ops_are_lanewise_bool_ops() {
        let a = LaneWord::from_bits(0b1100);
        let b = LaneWord::from_bits(0b1010);
        assert_eq!(BoolLanes::add(&a, &b).bits(), 0b1110);
        assert_eq!(BoolLanes::mul(&a, &b).bits(), 0b1000);
        let x = LaneWord::from_bits(0b0001);
        assert_eq!(BoolLanes::fuse(&x, &a, &b).bits(), 0b1001);
    }

    #[test]
    fn corrupt_lane_touches_exactly_one_lane() {
        let mut rng = systolic_util::Rng::seed_from_u64(9);
        let w = rand_word::<2>(&mut rng);
        for lane in [0usize, 5, 63, 64, 100, 127] {
            let c = BoolLanes::<2>::corrupt_lane(&w, lane);
            assert_eq!(c.get(lane), !w.get(lane), "lane {lane} flipped");
            for other in 0..128 {
                if other != lane {
                    assert_eq!(c.get(other), w.get(other), "lane {other} untouched");
                }
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut rng = systolic_util::Rng::seed_from_u64(7);
        for count in [1usize, 2, 63, 64] {
            let mats: Vec<_> = (0..count)
                .map(|_| DenseMatrix::<Bool>::from_fn(5, 5, |_, _| rng.gen_bool(0.3)))
                .collect();
            let packed = pack_lanes(&mats);
            assert_eq!(unpack_lanes(&packed, count), mats, "count={count}");
            // Unused lanes are the empty graph.
            if count < LANES {
                assert_eq!(
                    unpack_lane(&packed, LANES - 1),
                    DenseMatrix::<Bool>::zeros(5, 5)
                );
            }
        }
    }

    #[test]
    fn wide_pack_unpack_roundtrip() {
        let mut rng = systolic_util::Rng::seed_from_u64(11);
        for count in [1usize, 65, 128, 129, 256] {
            let mats: Vec<_> = (0..count)
                .map(|_| DenseMatrix::<Bool>::from_fn(4, 4, |_, _| rng.gen_bool(0.4)))
                .collect();
            let packed = pack_into_lanes::<BoolLanes<4>>(&mats);
            assert_eq!(
                unpack_from_lanes::<BoolLanes<4>>(&packed, count),
                mats,
                "count={count}"
            );
        }
    }

    /// The load-bearing property of the whole data plane: running the
    /// generic Warshall kernel once over lane words computes all packed
    /// closures simultaneously.
    #[test]
    fn warshall_over_lanes_is_64_closures_at_once() {
        let mut rng = systolic_util::Rng::seed_from_u64(42);
        let mats: Vec<_> = (0..LANES)
            .map(|_| DenseMatrix::<Bool>::from_fn(7, 7, |i, j| i != j && rng.gen_bool(0.2)))
            .collect();
        let packed_closure = warshall(&pack_lanes(&mats));
        for (lane, m) in mats.iter().enumerate() {
            assert_eq!(
                unpack_lane(&packed_closure, lane),
                warshall(m),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn warshall_over_wide_lanes_is_256_closures_at_once() {
        let mut rng = systolic_util::Rng::seed_from_u64(43);
        let mats: Vec<_> = (0..256)
            .map(|_| DenseMatrix::<Bool>::from_fn(6, 6, |i, j| i != j && rng.gen_bool(0.25)))
            .collect();
        let packed_closure = warshall(&pack_into_lanes::<BoolLanes<4>>(&mats));
        for (lane, m) in mats.iter().enumerate() {
            assert_eq!(
                unpack_lane_of::<BoolLanes<4>>(&packed_closure, lane),
                warshall(m),
                "lane {lane}"
            );
        }
    }
}
