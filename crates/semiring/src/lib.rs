//! Closed-semiring foundation for the systolic partitioning reproduction.
//!
//! The paper (Moreno & Lang, 1988) derives systolic arrays for *transitive
//! closure*, i.e. Warshall's algorithm over the Boolean semiring
//! `({0,1}, OR, AND)`. The identical dependence graph — and therefore the
//! identical G-graph, schedule and array — computes the whole family of
//! *algebraic path problems* when the scalar operations `⊕`/`⊗` are drawn
//! from any **bounded, idempotent semiring** (a "path semiring" below):
//!
//! * [`Bool`] — reachability / transitive closure (the paper's instance),
//! * [`MinPlus`] — all-pairs shortest paths (Floyd–Warshall),
//! * [`MaxMin`] — maximum-capacity (bottleneck) paths,
//! * [`MinMax`] — minimax paths (smallest maximum edge weight),
//! * [`BoolLanes`] — 64 independent Boolean instances bit-sliced into the
//!   lanes of one `u64` ([`lanes`]), the batch-throughput data plane.
//!
//! The non-idempotent [`Counting`] semiring is provided for matrix-product
//! substrates and law testing; it is deliberately **not** a [`PathSemiring`]
//! because Warshall's recurrence is not valid for it.
//!
//! The crate also provides the dense and bit-packed matrix containers and the
//! *reference kernels* (scalar Warshall, bit-parallel Warshall, blocked
//! Warshall, closure by repeated squaring) against which every simulated
//! array in the workspace is verified.
//!
//! ```
//! use systolic_semiring::{warshall, Bool, DenseMatrix, MinPlus};
//!
//! // Reachability over the Boolean semiring.
//! let mut a = DenseMatrix::<Bool>::zeros(3, 3);
//! a.set(0, 1, true);
//! a.set(1, 2, true);
//! let c = warshall(&a);
//! assert!(*c.get(0, 2));
//!
//! // The same recurrence computes shortest paths over min-plus.
//! let mut d = DenseMatrix::<MinPlus>::zeros(3, 3);
//! d.set(0, 1, 5);
//! d.set(1, 2, 7);
//! assert_eq!(*warshall(&d).get(0, 2), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmatrix;
pub mod instances;
pub mod kernels;
pub mod lanes;
pub mod laws;
pub mod matrix;
pub mod swar;
pub mod traits;

pub use bitmatrix::BitMatrix;
pub use instances::{Bool, Counting, MaxMin, MinMax, MinPlus, Real};
pub use kernels::{
    closure_by_squaring, matmul, matmul_acc, reflexive, warshall, warshall_blocked,
    warshall_inplace,
};
pub use lanes::{
    pack_into_lanes, pack_lanes, unpack_from_lanes, unpack_lane, unpack_lane_of, unpack_lanes,
    BoolLanes, LaneSemiring, LaneWord, LANES,
};
pub use matrix::DenseMatrix;
pub use swar::{MinPlusSwar16, MinPlusSwar8};
pub use traits::{PathSemiring, Semiring};
