//! A minimal property-test harness.
//!
//! Each property runs `cases` times against a deterministic [`Rng`] derived
//! from a base seed and the case index, so any failure prints the exact
//! case seed and is reproducible by plugging that seed back in. There is no
//! shrinking; keep generators small instead.
//!
//! ```
//! use systolic_util::Checker;
//!
//! Checker::new("addition commutes", 64).run(|rng| {
//!     let (a, b) = (rng.gen_range_u64(0, 1000), rng.gen_range_u64(0, 1000));
//!     if a + b == b + a {
//!         Ok(())
//!     } else {
//!         Err(format!("{a} + {b} != {b} + {a}"))
//!     }
//! });
//! ```

use crate::rng::Rng;

/// Base seed mixed into every property; override with
/// `SYSTOLIC_CHECK_SEED` to replay a failing run.
fn base_seed() -> u64 {
    std::env::var("SYSTOLIC_CHECK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5ee0_d5ee_d5ee_d000)
}

/// A named property checked over seeded random cases.
pub struct Checker {
    name: &'static str,
    cases: u64,
}

impl Checker {
    /// Creates a checker running `cases` random cases.
    pub fn new(name: &'static str, cases: u64) -> Self {
        Self { name, cases }
    }

    /// Runs the property; panics (with the reproducing seed) on the first
    /// failing case.
    pub fn run(&self, mut prop: impl FnMut(&mut Rng) -> Result<(), String>) {
        let base = base_seed();
        for case in 0..self.cases {
            let seed = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = Rng::seed_from_u64(seed);
            if let Err(msg) = prop(&mut rng) {
                panic!(
                    "property `{}` failed on case {case}/{}: {msg}\n\
                     reproduce with SYSTOLIC_CHECK_SEED={base} (case seed {seed})",
                    self.name, self.cases
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        Checker::new("trivial", 10).run(|_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "property `always fails`")]
    fn failing_property_panics_with_name() {
        Checker::new("always fails", 5).run(|_| Err("nope".into()));
    }

    #[test]
    fn cases_see_distinct_seeds() {
        let mut first_draws = Vec::new();
        Checker::new("distinct", 8).run(|rng| {
            first_draws.push(rng.next_u64());
            Ok(())
        });
        first_draws.sort_unstable();
        first_draws.dedup();
        assert_eq!(first_draws.len(), 8);
    }
}
