//! Dependency-free support kit for the systolic partitioning workspace.
//!
//! The build environment vendors no external crates, so the workspace
//! carries its own minimal versions of the four things it used to pull
//! from crates.io:
//!
//! * [`rng`] — a seeded, deterministic PRNG (splitmix64/xoshiro256**) for
//!   graph generators and randomized tests (replaces `rand`);
//! * [`pool`] — a persistent worker pool over `std::thread` with FIFO job
//!   dispatch and a [`pool::WaitGroup`] barrier (replaces `crossbeam`'s
//!   scoped-thread usage);
//! * [`check`] — a tiny property-test harness running seeded random cases
//!   with failure reproduction instructions (replaces `proptest`);
//! * [`mod@bench`] — a wall-clock micro-benchmark harness with warm-up,
//!   median/mean reporting and a stable text output format (replaces
//!   `criterion` for the `harness = false` benches).
//!
//! Everything here is `std`-only and deliberately small; it exists to keep
//! the workspace building offline, not to compete with the real crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod mem;
pub mod pool;
pub mod rng;

pub use bench::{black_box, Bench};
pub use check::Checker;
pub use mem::peak_rss_bytes;
pub use pool::{JobPanic, WaitGroup, WorkerPool};
pub use rng::Rng;
