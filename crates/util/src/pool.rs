//! A persistent worker pool over `std::thread`.
//!
//! Workers are spawned once and live until the pool is dropped; jobs are
//! boxed closures drained FIFO from a shared queue. This is the substrate
//! both for host-side batch parallelism
//! (`systolic-partition::ParallelEngine`) and for the pooled bit-parallel
//! closure (`systolic-semiring::BitMatrix::transitive_closure_parallel`),
//! which previously spawned fresh scoped threads per Warshall pivot.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A job submitted through [`WorkerPool::scoped_run`] panicked.
///
/// The panic is contained: the worker thread survives (the pool does not
/// shrink), every sibling job still runs to completion, and the first
/// panic's payload is surfaced here.
#[derive(Clone, Debug)]
pub struct JobPanic {
    /// The panic payload, stringified (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct Queue {
    jobs: Mutex<(VecDeque<Job>, bool)>, // (pending jobs, shutting down)
    ready: Condvar,
}

/// A fixed-size pool of persistent worker threads executing boxed jobs.
pub struct WorkerPool {
    queue: Arc<Queue>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads ≥ 1` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "worker pool needs at least one thread");
        let queue = Arc::new(Queue {
            jobs: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|_| {
                let q = Arc::clone(&queue);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut guard = q.jobs.lock().expect("pool queue poisoned");
                        loop {
                            if let Some(job) = guard.0.pop_front() {
                                break job;
                            }
                            if guard.1 {
                                return;
                            }
                            guard = q.ready.wait(guard).expect("pool queue poisoned");
                        }
                    };
                    // A panicking job must not kill the worker — a dead
                    // thread would silently shrink the pool for every
                    // later caller. `scoped_run` reports the panic; bare
                    // `execute` panics are contained and dropped.
                    let _ = catch_unwind(AssertUnwindSafe(job));
                })
            })
            .collect();
        Self { queue, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues a job; some worker will run it.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut guard = self.queue.jobs.lock().expect("pool queue poisoned");
        guard.0.push_back(Box::new(job));
        drop(guard);
        self.queue.ready.notify_one();
    }

    /// Enqueues `count` jobs produced by `make(worker_slot)` and blocks
    /// until all of them finish. The slot index is purely informational
    /// (jobs are work-stealing over the shared queue).
    ///
    /// # Errors
    /// [`JobPanic`] with the first panic's payload if any job panicked.
    /// The wait group is signalled on the unwind path too, so a panicking
    /// job neither hangs the caller nor shrinks the pool; sibling jobs
    /// run to completion before this returns.
    pub fn scoped_run(&self, count: usize, make: impl Fn(usize) -> Job) -> Result<(), JobPanic> {
        let wg = WaitGroup::new(count);
        let first_panic: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        for i in 0..count {
            let job = make(i);
            let wg = wg.clone();
            let first_panic = Arc::clone(&first_panic);
            self.execute(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                if let Err(payload) = outcome {
                    let msg = payload_message(payload);
                    first_panic
                        .lock()
                        .expect("panic slot poisoned")
                        .get_or_insert(msg);
                }
                wg.done();
            });
        }
        wg.wait();
        let msg = first_panic.lock().expect("panic slot poisoned").take();
        match msg {
            Some(message) => Err(JobPanic { message }),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut guard = self.queue.jobs.lock().expect("pool queue poisoned");
            guard.1 = true;
        }
        self.queue.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A counting barrier: `done()` decrements, `wait()` blocks until zero.
#[derive(Clone)]
pub struct WaitGroup {
    inner: Arc<(Mutex<usize>, Condvar)>,
}

impl WaitGroup {
    /// Creates a group awaiting `count` completions.
    pub fn new(count: usize) -> Self {
        Self {
            inner: Arc::new((Mutex::new(count), Condvar::new())),
        }
    }

    /// Records one completion.
    pub fn done(&self) {
        let (lock, cv) = &*self.inner;
        let mut n = lock.lock().expect("waitgroup poisoned");
        *n = n.checked_sub(1).expect("waitgroup overflow");
        if *n == 0 {
            cv.notify_all();
        }
    }

    /// Blocks until every completion has been recorded.
    pub fn wait(&self) {
        let (lock, cv) = &*self.inner;
        let mut n = lock.lock().expect("waitgroup poisoned");
        while *n > 0 {
            n = cv.wait(n).expect("waitgroup poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_all_jobs() {
        let pool = WorkerPool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        let wg = WaitGroup::new(100);
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            let wg = wg.clone();
            pool.execute(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                wg.done();
            });
        }
        wg.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scoped_run_blocks_until_done() {
        let pool = WorkerPool::new(3);
        let sum = Arc::new(AtomicUsize::new(0));
        let s2 = Arc::clone(&sum);
        pool.scoped_run(10, move |i| {
            let s = Arc::clone(&s2);
            Box::new(move || {
                s.fetch_add(i + 1, Ordering::Relaxed);
            })
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn panicking_job_neither_hangs_nor_shrinks_the_pool() {
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&done);
        // More jobs than threads, one of them panicking: scoped_run must
        // return (not hang), report the panic, and run every sibling.
        let err = pool
            .scoped_run(6, move |i| {
                let d = Arc::clone(&d2);
                Box::new(move || {
                    if i == 3 {
                        panic!("job {i} exploded");
                    }
                    d.fetch_add(1, Ordering::Relaxed);
                })
            })
            .unwrap_err();
        assert!(err.message.contains("job 3 exploded"), "{err}");
        assert_eq!(done.load(Ordering::Relaxed), 5, "siblings completed");
        assert_eq!(pool.threads(), 2);

        // The pool is still fully functional afterwards.
        let sum = Arc::new(AtomicUsize::new(0));
        let s2 = Arc::clone(&sum);
        pool.scoped_run(8, move |_| {
            let s = Arc::clone(&s2);
            Box::new(move || {
                s.fetch_add(1, Ordering::Relaxed);
            })
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn first_panic_wins_when_several_jobs_panic() {
        let pool = WorkerPool::new(1); // serial: job 0 panics first
        let err = pool
            .scoped_run(3, |i| Box::new(move || panic!("boom {i}")))
            .unwrap_err();
        assert_eq!(err.message, "boom 0");
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.threads(), 2);
        drop(pool); // must not hang
    }

    #[test]
    fn pool_survives_many_rounds() {
        // The point of a persistent pool: many dispatch rounds, zero
        // re-spawns. 200 rounds of 4 jobs each.
        let pool = WorkerPool::new(4);
        let total = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let t = Arc::clone(&total);
            pool.scoped_run(4, move |_| {
                let t = Arc::clone(&t);
                Box::new(move || {
                    t.fetch_add(1, Ordering::Relaxed);
                })
            })
            .unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 800);
    }
}
