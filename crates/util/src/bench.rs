//! A small wall-clock benchmark harness for `harness = false` benches.
//!
//! Mirrors the slice of the criterion API the workspace used: named groups,
//! per-input benchmark ids, warm-up then timed samples, median/mean/min
//! reporting. Output is one stable text line per benchmark:
//!
//! ```text
//! fixed_array/fig17_full/8      median 512.3µs  mean 519.0µs  min 501.2µs  (20 samples)
//! ```
//!
//! `SYSTOLIC_BENCH_SAMPLES` and `SYSTOLIC_BENCH_WARMUP_MS` override the
//! configured sample count and warm-up for every group — use them to
//! smoke-run expensive benches on constrained machines or in CI.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A named group of benchmarks sharing sample configuration.
pub struct Bench {
    group: String,
    samples: usize,
    warmup: Duration,
    min_sample_time: Duration,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

impl Bench {
    /// Creates a group with default settings (20 samples, 200 ms warm-up).
    pub fn new(group: impl Into<String>) -> Self {
        Self {
            group: group.into(),
            samples: env_usize("SYSTOLIC_BENCH_SAMPLES").unwrap_or(20).max(1),
            warmup: env_usize("SYSTOLIC_BENCH_WARMUP_MS")
                .map(|ms| Duration::from_millis(ms as u64))
                .unwrap_or(Duration::from_millis(200)),
            min_sample_time: Duration::ZERO,
        }
    }

    /// Sets the number of timed samples (the `SYSTOLIC_BENCH_SAMPLES`
    /// environment variable wins over this).
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = env_usize("SYSTOLIC_BENCH_SAMPLES").unwrap_or(n).max(1);
        self
    }

    /// Sets the warm-up duration (the `SYSTOLIC_BENCH_WARMUP_MS`
    /// environment variable wins over this).
    pub fn warmup(mut self, d: Duration) -> Self {
        self.warmup = env_usize("SYSTOLIC_BENCH_WARMUP_MS")
            .map(|ms| Duration::from_millis(ms as u64))
            .unwrap_or(d);
        self
    }

    /// Times `f`, printing one report line; returns the median sample.
    ///
    /// Each sample is one call of `f`; wrap multi-iteration loops yourself
    /// when a single call is too fast to time (sub-microsecond).
    pub fn bench(&self, id: impl AsRef<str>, mut f: impl FnMut()) -> Duration {
        // Warm-up: run until the warm-up budget is spent.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            f();
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                f();
                let mut el = t.elapsed();
                while el < self.min_sample_time {
                    // Too fast to trust a single call: accumulate.
                    let t2 = Instant::now();
                    f();
                    el += t2.elapsed();
                }
                el
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let min = times[0];
        println!(
            "{:<44} median {:>9}  mean {:>9}  min {:>9}  ({} samples)",
            format!("{}/{}", self.group, id.as_ref()),
            fmt_duration(median),
            fmt_duration(mean),
            fmt_duration(min),
            times.len()
        );
        median
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_median() {
        let b = Bench::new("test").samples(3).warmup(Duration::ZERO);
        let m = b.bench("spin", || {
            black_box((0..1000u64).sum::<u64>());
        });
        assert!(m > Duration::ZERO);
    }
}
