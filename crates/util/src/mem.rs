//! Process memory introspection for benchmark reporting.
//!
//! Linux-only (reads `/proc/self/status`); returns `None` elsewhere so
//! callers degrade to analytic byte accounting instead of failing.

/// Peak resident set size (`VmHWM`) of this process in bytes, if the
/// platform exposes it.
///
/// Note the high-water mark is monotonic over the process lifetime:
/// benches that want a per-phase figure must run phases smallest-first
/// and snapshot between them.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_nonzero_on_linux() {
        if cfg!(target_os = "linux") {
            let peak = peak_rss_bytes().expect("VmHWM available on Linux");
            assert!(peak > 0);
            // Growing the heap must not shrink the reading (monotone).
            let v = vec![1u8; 8 << 20];
            std::hint::black_box(&v);
            assert!(peak_rss_bytes().unwrap() >= peak);
        }
    }
}
