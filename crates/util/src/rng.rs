//! Seeded deterministic pseudo-random numbers.
//!
//! xoshiro256** seeded through splitmix64 — the standard small-state
//! generator pairing. Not cryptographic; used for reproducible graph
//! generators, randomized tests and benchmark inputs.

/// A seeded xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Equal seeds give equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped into `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform `u64` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range_u64: lo {lo} > hi {hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Rejection sampling over the largest multiple of span+1 ≤ 2⁶⁴.
        let n = span + 1;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % n;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn gen_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_usize: empty range");
        self.gen_range_u64(0, bound as u64 - 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range_u64(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(r.gen_range_u64(5, 5), 5);
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
