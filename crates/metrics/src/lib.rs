//! Performance evaluation: the paper's closed-form measures (§4.1–§4.2)
//! and their comparison against simulator measurements.
//!
//! * [`models`] — the analytic formulas exactly as derived in the paper:
//!   throughput `T`, utilization `U`, I/O bandwidth `D_I/O`, overhead, and
//!   memory-connection counts for the fixed, fixed-linear, linear
//!   partitioned and 2-D partitioned arrays.
//! * [`compare`] — model-vs-measured rows built from a
//!   [`systolic_arraysim::RunStats`].
//! * [`varying`] — the §4.3 analysis of G-graphs with *varying* G-node
//!   computation time (Fig. 22): utilization of linear vs 2-D mappings.
//! * [`tradeoff`] — the §4.2 linear-vs-2-D design-space sweep (E12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod models;
pub mod tradeoff;
pub mod varying;

pub use compare::{compare_grid_run, compare_linear_run, MetricRow};
pub use models::{FixedLinearModel, FixedModel, GridModel, LinearModel};
pub use tradeoff::{tradeoff_row, TradeoffRow};
pub use varying::{mapping_utilization, MappingKind, VaryingReport};
