//! The paper's closed-form performance models (§3.2, §4.2).

/// Linear partitioned array (Fig. 18) for problem size `n` on `m` cells.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LinearModel {
    /// Problem size.
    pub n: usize,
    /// Cell count.
    pub m: usize,
}

impl LinearModel {
    /// `T = m / (n²(n+1))` — §4.2.
    pub fn throughput(&self) -> f64 {
        self.m as f64 / ((self.n * self.n) as f64 * (self.n as f64 + 1.0))
    }

    /// Cycles for one problem instance, `T⁻¹ = n²(n+1)/m`.
    pub fn cycles_per_instance(&self) -> f64 {
        1.0 / self.throughput()
    }

    /// `U = (n-1)(n-2) / (n(n+1)) → 1` — §4.2.
    pub fn utilization(&self) -> f64 {
        ((self.n - 1) * (self.n - 2)) as f64 / (self.n as f64 * (self.n as f64 + 1.0))
    }

    /// `D_I/O = m/n` — §3.2 (host words per cycle).
    pub fn io_bandwidth(&self) -> f64 {
        self.m as f64 / self.n as f64
    }

    /// Partitioning overhead `d_i` — zero: data transfers are overlapped
    /// with computation (§4.2).
    pub fn overhead(&self) -> f64 {
        0.0
    }

    /// Connections to external memories: `m + 1` (§3.2).
    pub fn memory_connections(&self) -> usize {
        self.m + 1
    }

    /// Number of G-sets, `n(n+1)/m` (§4.2; fractional when `m ∤ n(n+1)`,
    /// in which case boundary sets make the true count slightly larger).
    pub fn gsets(&self) -> f64 {
        (self.n * (self.n + 1)) as f64 / self.m as f64
    }

    /// Useful operation count `N = n(n-1)(n-2)` (§4.2).
    pub fn useful_ops(&self) -> u64 {
        (self.n * (self.n - 1) * (self.n - 2)) as u64
    }
}

/// Two-dimensional partitioned array (Fig. 19), `√m × √m` cells.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GridModel {
    /// Problem size.
    pub n: usize,
    /// Grid side `√m`.
    pub s: usize,
}

impl GridModel {
    /// Total cells `m = s²`.
    pub fn cells(&self) -> usize {
        self.s * self.s
    }

    fn as_linear(&self) -> LinearModel {
        LinearModel {
            n: self.n,
            m: self.cells(),
        }
    }

    /// Same throughput as the linear array with `m = s²` cells (§4.2).
    pub fn throughput(&self) -> f64 {
        self.as_linear().throughput()
    }

    /// Same utilization as the linear array (§4.2).
    pub fn utilization(&self) -> f64 {
        self.as_linear().utilization()
    }

    /// Same host I/O bandwidth as the linear array (§3.2).
    pub fn io_bandwidth(&self) -> f64 {
        self.as_linear().io_bandwidth()
    }

    /// Zero partitioning overhead (§4.2).
    pub fn overhead(&self) -> f64 {
        0.0
    }

    /// Connections to external memories: `2√m` (§3.2).
    pub fn memory_connections(&self) -> usize {
        2 * self.s
    }
}

/// The Fig. 17 fixed-size array (`n × (n+1)` cells).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FixedModel {
    /// Problem size.
    pub n: usize,
}

impl FixedModel {
    /// Throughput `1/n` (§3.2): a new problem instance every `n` cycles.
    pub fn throughput(&self) -> f64 {
        1.0 / self.n as f64
    }

    /// Cells: `n(n+1)`.
    pub fn cells(&self) -> usize {
        self.n * (self.n + 1)
    }

    /// Steady-state utilization: every cell streams `n` cycles per `n`-cycle
    /// initiation interval → occupancy 1; *useful* utilization is
    /// `(n-1)(n-2)/(n(n+1))` as in the partitioned case.
    pub fn useful_utilization(&self) -> f64 {
        ((self.n - 1) * (self.n - 2)) as f64 / (self.n as f64 * (self.n as f64 + 1.0))
    }
}

/// §3.2's linear fixed-size array (`n` cells, one G-graph row each).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FixedLinearModel {
    /// Problem size.
    pub n: usize,
}

impl FixedLinearModel {
    /// Throughput `1/(n(n+1))` (§3.2).
    pub fn throughput(&self) -> f64 {
        1.0 / (self.n as f64 * (self.n as f64 + 1.0))
    }

    /// Cells: `n`.
    pub fn cells(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_formulas_match_paper_examples() {
        let m = LinearModel { n: 10, m: 5 };
        assert!((m.throughput() - 5.0 / 1100.0).abs() < 1e-12);
        assert!((m.utilization() - 72.0 / 110.0).abs() < 1e-12);
        assert!((m.io_bandwidth() - 0.5).abs() < 1e-12);
        assert_eq!(m.memory_connections(), 6);
        assert_eq!(m.overhead(), 0.0);
        assert_eq!(m.useful_ops(), 720);
        assert!((m.gsets() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_tends_to_one() {
        let small = LinearModel { n: 10, m: 2 }.utilization();
        let large = LinearModel { n: 1000, m: 2 }.utilization();
        assert!(small < large);
        assert!(large > 0.99);
    }

    #[test]
    fn grid_equals_linear_with_same_cells() {
        let g = GridModel { n: 64, s: 4 };
        let l = LinearModel { n: 64, m: 16 };
        assert_eq!(g.throughput(), l.throughput());
        assert_eq!(g.utilization(), l.utilization());
        assert_eq!(g.io_bandwidth(), l.io_bandwidth());
        // …but more memory connections for the same cell budget when m > 64.
        assert_eq!(g.memory_connections(), 8);
        assert_eq!(l.memory_connections(), 17);
    }

    #[test]
    fn linear_has_fewer_memory_connections_iff_m_small() {
        // 2√m < m+1 ⟺ m ≥ 3 (integer cells): the grid wins on connection
        // count for m ≥ 3, but the paper's preference for linear rests on
        // simplicity, boundary sets and fault tolerance (§5) — the sweep in
        // `tradeoff` quantifies the rest.
        let g = GridModel { n: 32, s: 2 };
        let l = LinearModel { n: 32, m: 4 };
        assert_eq!(g.memory_connections(), 4);
        assert_eq!(l.memory_connections(), 5);
    }

    #[test]
    fn fixed_models() {
        let f = FixedModel { n: 12 };
        assert!((f.throughput() - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(f.cells(), 156);
        let fl = FixedLinearModel { n: 12 };
        assert!((fl.throughput() - 1.0 / 156.0).abs() < 1e-12);
        assert_eq!(fl.cells(), 12);
    }
}
