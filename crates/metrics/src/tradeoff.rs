//! §4.2's linear-vs-2-D trade-off, as a sweep table (E12).

use crate::models::{GridModel, LinearModel};
use systolic_partition::GsetSchedule;

/// One `(n, m)` design point comparing the two partitioned structures.
#[derive(Clone, Debug, PartialEq)]
pub struct TradeoffRow {
    /// Problem size.
    pub n: usize,
    /// Cell budget (`m = s²`).
    pub m: usize,
    /// Shared throughput `m/(n²(n+1))`.
    pub throughput: f64,
    /// Shared interior utilization `(n-1)(n-2)/(n(n+1))`.
    pub utilization: f64,
    /// Shared host I/O bandwidth `m/n`.
    pub io_bandwidth: f64,
    /// Linear memory connections (`m+1`).
    pub linear_mem_connections: usize,
    /// Grid memory connections (`2√m`).
    pub grid_mem_connections: usize,
    /// Fraction of linear G-sets that under-fill the array.
    pub linear_boundary_fraction: f64,
    /// Fraction of grid G-sets that under-fill the array (triangular sets).
    pub grid_boundary_fraction: f64,
    /// Fraction of cell-slots idle in linear boundary sets.
    pub linear_boundary_idle: f64,
    /// Fraction of cell-slots idle in grid boundary sets.
    pub grid_boundary_idle: f64,
}

/// Builds the comparison row for one `(n, s)` design point (`m = s²`).
pub fn tradeoff_row(n: usize, s: usize) -> TradeoffRow {
    let m = s * s;
    let lin = LinearModel { n, m };
    let grid = GridModel { n, s };
    let ls = GsetSchedule::linear(n, m);
    let gs = GsetSchedule::grid(n, s);
    let idle = |sched: &GsetSchedule, cells: usize| {
        let slots = sched.len() * cells;
        let used = sched.total_gnodes();
        (slots - used) as f64 / slots as f64
    };
    TradeoffRow {
        n,
        m,
        throughput: lin.throughput(),
        utilization: lin.utilization(),
        io_bandwidth: grid.io_bandwidth(),
        linear_mem_connections: lin.memory_connections(),
        grid_mem_connections: grid.memory_connections(),
        linear_boundary_fraction: ls.boundary_sets() as f64 / ls.len() as f64,
        grid_boundary_fraction: gs.boundary_sets() as f64 / gs.len() as f64,
        linear_boundary_idle: idle(&ls, m),
        grid_boundary_idle: idle(&gs, m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_measures_match_both_models() {
        let row = tradeoff_row(24, 3);
        let lin = LinearModel { n: 24, m: 9 };
        let grid = GridModel { n: 24, s: 3 };
        assert_eq!(row.throughput, lin.throughput());
        assert_eq!(row.throughput, grid.throughput());
        assert_eq!(row.utilization, grid.utilization());
        assert_eq!(row.io_bandwidth, lin.io_bandwidth());
    }

    #[test]
    fn boundary_idle_shrinks_with_n() {
        let small = tradeoff_row(8, 2);
        let large = tradeoff_row(64, 2);
        assert!(large.linear_boundary_idle < small.linear_boundary_idle);
        assert!(large.grid_boundary_idle < small.grid_boundary_idle);
    }

    #[test]
    fn boundary_idle_is_bounded_and_nonzero() {
        // The parallelogram's slanted edges always produce some partial
        // sets, but the idle fraction is modest even at small n/m.
        let row = tradeoff_row(16, 2);
        assert!(row.linear_boundary_idle > 0.0);
        assert!(row.linear_boundary_idle < 0.35, "{row:?}");
        assert!(row.grid_boundary_idle > 0.0);
        assert!(row.grid_boundary_idle < 0.35, "{row:?}");
    }
}
