//! Model-vs-measured comparison rows.

use crate::models::{GridModel, LinearModel};
use systolic_arraysim::RunStats;

/// One paper-value vs measured-value row of an experiment table.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricRow {
    /// Metric name.
    pub metric: String,
    /// The paper's analytic value.
    pub paper: f64,
    /// The simulator's measured value.
    pub measured: f64,
}

impl MetricRow {
    /// `measured / paper` (NaN-safe: 0 when the paper value is 0).
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured / self.paper
        }
    }

    /// True when measured is within `tol` relative error of the model.
    pub fn within(&self, tol: f64) -> bool {
        if self.paper == 0.0 {
            self.measured.abs() <= tol
        } else {
            ((self.measured - self.paper) / self.paper).abs() <= tol
        }
    }
}

fn rows_common(
    throughput_paper: f64,
    utilization_paper: f64,
    io_paper: f64,
    mem_paper: usize,
    stats: &RunStats,
    problems: u64,
) -> Vec<MetricRow> {
    vec![
        MetricRow {
            metric: "throughput [problems/cycle]".into(),
            paper: throughput_paper,
            measured: stats.throughput(problems),
        },
        MetricRow {
            metric: "utilization (useful ops)".into(),
            paper: utilization_paper,
            measured: stats.useful_utilization(),
        },
        MetricRow {
            metric: "host I/O bandwidth [words/cycle]".into(),
            paper: io_paper,
            measured: stats.io_bandwidth(),
        },
        MetricRow {
            metric: "memory connections".into(),
            paper: mem_paper as f64,
            measured: stats.memory_connections as f64,
        },
        MetricRow {
            metric: "partitioning overhead (model d_i = 0); measured per-cell pipeline stalls"
                .into(),
            paper: 0.0,
            // Overhead in the paper's sense: cycles spent on data transfers
            // that do not overlap computation. In the simulator every
            // transfer overlaps; what remains is pipeline-boundary stall,
            // reported per cell-cycle for visibility.
            measured: stats.total_stalls() as f64 / (stats.cells.max(1) as f64),
        },
    ]
}

/// Builds the E08 comparison table for a linear partitioned run.
pub fn compare_linear_run(n: usize, m: usize, stats: &RunStats, problems: u64) -> Vec<MetricRow> {
    let model = LinearModel { n, m };
    rows_common(
        model.throughput(),
        model.utilization(),
        model.io_bandwidth(),
        model.memory_connections(),
        stats,
        problems,
    )
}

/// Builds the E09 comparison table for a grid partitioned run.
pub fn compare_grid_run(n: usize, s: usize, stats: &RunStats, problems: u64) -> Vec<MetricRow> {
    let model = GridModel { n, s };
    rows_common(
        model.throughput(),
        model.utilization(),
        model.io_bandwidth(),
        model.memory_connections(),
        stats,
        problems,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_within() {
        let r = MetricRow {
            metric: "x".into(),
            paper: 2.0,
            measured: 2.1,
        };
        assert!((r.ratio() - 1.05).abs() < 1e-12);
        assert!(r.within(0.06));
        assert!(!r.within(0.04));
        let z = MetricRow {
            metric: "overhead".into(),
            paper: 0.0,
            measured: 0.0,
        };
        assert_eq!(z.ratio(), 1.0);
        assert!(z.within(0.0));
    }

    #[test]
    fn linear_rows_have_expected_shape() {
        let stats = RunStats {
            cycles: 1000,
            cells: 4,
            memory_connections: 5,
            ..Default::default()
        };
        let rows = compare_linear_run(10, 4, &stats, 1);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|r| r.metric.contains("throughput")));
        let mem = rows.iter().find(|r| r.metric.contains("memory")).unwrap();
        assert_eq!(mem.paper, 5.0);
        assert_eq!(mem.measured, 5.0);
    }
}
