//! §4.3 / Fig. 22 — G-nodes with different computation time.
//!
//! When a G-graph's node times vary monotonically (LU decomposition,
//! triangular inverse, Givens, Faddeev), a 2-D G-set unavoidably mixes
//! computation times, so cells with shorter nodes idle until the longest
//! member finishes; a linear G-set can follow an equal-time path and stay
//! fully utilized. [`mapping_utilization`] quantifies both mappings for any
//! [`systolic_transform::TimeGrid`].

use systolic_transform::TimeGrid;

/// Which array shape a G-set mapping targets.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MappingKind {
    /// G-sets of `m` G-nodes taken along an equal-time path, one path at a
    /// time (Fig. 22b): zero time mixing, but each path's tail leaves a
    /// partial boundary set.
    Linear,
    /// G-sets of `m` consecutive G-nodes with path tails packed against the
    /// next path's head: only sets straddling a path boundary mix (adjacent)
    /// times — the linear array's boundary-free variant.
    LinearPacked,
    /// G-sets of `√m × √m` G-nodes spanning adjacent paths (Fig. 22a).
    TwoDimensional,
}

/// Utilization report for one mapping of a varying-time G-graph.
#[derive(Clone, Debug, PartialEq)]
pub struct VaryingReport {
    /// Mapping evaluated.
    pub kind: MappingKind,
    /// Cells assumed (`m`).
    pub cells: usize,
    /// Total useful G-node time.
    pub work: u64,
    /// Total cell-cycles consumed (each G-set holds the array for its
    /// longest member's time).
    pub cell_cycles: u64,
    /// Idle cell-cycles caused by *mixing computation times* within a G-set
    /// — the §4.3 effect, zero for a mapping along equal-time paths.
    pub mixing_idle: u64,
    /// Idle cell-cycles caused by partial boundary sets (the parallelogram
    /// raggedness, present for both mappings and vanishing as `n/m` grows).
    pub boundary_idle: u64,
    /// `work / cell_cycles`.
    pub utilization: f64,
}

impl VaryingReport {
    /// Utilization of the interior (excluding boundary raggedness): the
    /// quantity Fig. 22 compares — 1.0 iff no G-set mixes computation
    /// times.
    pub fn interior_utilization(&self) -> f64 {
        let denom = self.work + self.mixing_idle;
        if denom == 0 {
            0.0
        } else {
            self.work as f64 / denom as f64
        }
    }
}

/// Computes the utilization of mapping `grid` onto an array of `m` cells.
///
/// Linear mapping: G-sets are `m` consecutive G-nodes within one row of the
/// time grid (rows of the grid are the equal-time paths of Fig. 22b).
/// 2-D mapping: G-sets are `√m × √m` blocks spanning `√m` adjacent rows
/// (`m` must be a perfect square).
///
/// # Panics
/// Panics if `kind` is two-dimensional and `m` is not a perfect square.
pub fn mapping_utilization(grid: &TimeGrid, m: usize, kind: MappingKind) -> VaryingReport {
    assert!(m >= 1);
    let work: u64 = grid.total_time();
    let mut cell_cycles: u64 = 0;
    let mut mixing_idle: u64 = 0;
    let mut boundary_idle: u64 = 0;
    // Accounts one G-set: `members` are its G-node times, the array holds
    // all m cells for max(members) cycles.
    let mut account = |members: &[u64]| {
        let t = members.iter().copied().max().unwrap_or(0);
        let sum: u64 = members.iter().sum();
        cell_cycles += t * m as u64;
        mixing_idle += t * members.len() as u64 - sum;
        boundary_idle += t * (m - members.len()) as u64;
    };
    match kind {
        MappingKind::Linear => {
            for row in &grid.times {
                for set in row.chunks(m) {
                    account(set);
                }
            }
        }
        MappingKind::LinearPacked => {
            let flat: Vec<u64> = grid.times.iter().flatten().copied().collect();
            for set in flat.chunks(m) {
                account(set);
            }
        }
        MappingKind::TwoDimensional => {
            let s = (m as f64).sqrt().round() as usize;
            assert_eq!(s * s, m, "2-D mapping needs a square cell count");
            let rows = grid.times.len();
            let mut members = Vec::with_capacity(m);
            let mut br = 0;
            while br < rows {
                let band = &grid.times[br..rows.min(br + s)];
                let widest = band.iter().map(Vec::len).max().unwrap_or(0);
                let mut bc = 0;
                while bc < widest {
                    members.clear();
                    for row in band {
                        members.extend(row.iter().skip(bc).take(s).copied());
                    }
                    if !members.is_empty() {
                        account(&members);
                    }
                    bc += s;
                }
                br += s;
            }
        }
    }
    VaryingReport {
        kind,
        cells: m,
        work,
        cell_cycles,
        mixing_idle,
        boundary_idle,
        utilization: if cell_cycles == 0 {
            0.0
        } else {
            work as f64 / cell_cycles as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_transform::lu_time_grid;

    #[test]
    fn uniform_grid_is_fully_utilized_by_both_mappings() {
        let grid = TimeGrid {
            times: vec![vec![4; 8]; 8],
        };
        let lin = mapping_utilization(&grid, 4, MappingKind::Linear);
        let two = mapping_utilization(&grid, 4, MappingKind::TwoDimensional);
        assert!((lin.utilization - 1.0).abs() < 1e-12);
        assert!((two.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig22_lu_linear_beats_two_dimensional() {
        // The Fig. 22 claim: with rows as equal-time paths, the linear
        // mapping has zero time-mixing idle (interior utilization 1.0)
        // while the 2-D mapping unavoidably mixes times.
        let grid = lu_time_grid(16);
        let lin = mapping_utilization(&grid, 4, MappingKind::Linear);
        let two = mapping_utilization(&grid, 4, MappingKind::TwoDimensional);
        assert_eq!(lin.mixing_idle, 0, "equal-time paths never mix");
        assert!((lin.interior_utilization() - 1.0).abs() < 1e-12);
        assert!(two.mixing_idle > 0);
        assert!(
            two.interior_utilization() < 0.97,
            "2-D mixes times: {}",
            two.interior_utilization()
        );
        // The gap widens with larger sets relative to the time gradient.
        let two9 = mapping_utilization(&grid, 9, MappingKind::TwoDimensional);
        assert!(two9.interior_utilization() < two.interior_utilization());
        assert_eq!(lin.work, two.work);
    }

    #[test]
    fn packed_linear_wins_on_total_utilization() {
        // The path-at-a-time linear mapping pays boundary raggedness on
        // every path tail, which a 2-D block can amortize; packing paths
        // end-to-end removes that penalty while mixing only adjacent
        // (±1-cycle) times, so the linear array wins outright — the §4.3
        // conclusion in total-utilization terms.
        for n in [16usize, 64, 128] {
            let grid = lu_time_grid(n);
            let packed = mapping_utilization(&grid, 4, MappingKind::LinearPacked);
            let two = mapping_utilization(&grid, 4, MappingKind::TwoDimensional);
            assert!(
                packed.utilization > two.utilization,
                "n={n}: packed {} vs 2-D {}",
                packed.utilization,
                two.utilization
            );
            assert!(packed.boundary_idle <= 4 * grid.max_time());
        }
    }

    #[test]
    fn gap_grows_with_time_variation() {
        let mild = TimeGrid {
            times: vec![vec![8; 6], vec![7; 6], vec![8; 6], vec![7; 6]],
        };
        let steep = TimeGrid {
            times: vec![vec![8; 6], vec![2; 6], vec![8; 6], vec![2; 6]],
        };
        let mild_u = mapping_utilization(&mild, 4, MappingKind::TwoDimensional).utilization;
        let steep_u = mapping_utilization(&steep, 4, MappingKind::TwoDimensional).utilization;
        assert!(steep_u < mild_u);
    }

    #[test]
    fn boundary_and_mixing_idle_are_separated() {
        // A single row of length 5 mapped on m=4: one full set (no idle) and
        // one boundary set of 1 node (3 cells idle), no time mixing.
        let grid = TimeGrid {
            times: vec![vec![6, 6, 6, 6, 6]],
        };
        let lin = mapping_utilization(&grid, 4, MappingKind::Linear);
        assert_eq!(lin.mixing_idle, 0);
        assert_eq!(lin.boundary_idle, 6 * 3);
        assert_eq!(lin.cell_cycles, 2 * 6 * 4);
    }

    #[test]
    fn single_cell_degenerates_to_full_utilization() {
        let grid = lu_time_grid(8);
        let lin = mapping_utilization(&grid, 1, MappingKind::Linear);
        let two = mapping_utilization(&grid, 1, MappingKind::TwoDimensional);
        assert!((lin.utilization - 1.0).abs() < 1e-12);
        assert!((two.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn two_dimensional_requires_square_m() {
        let grid = lu_time_grid(8);
        let _ = mapping_utilization(&grid, 6, MappingKind::TwoDimensional);
    }
}
