//! Shortest-path route reconstruction.
//!
//! The arrays compute path *values*; recovering an actual route is a host
//! post-process. [`shortest_paths_with_routes`] runs the reference Floyd
//! recurrence with successor tracking (same dependence structure — one more
//! lane per element, which an array implementation would carry the same
//! way) and cross-checks against any engine's distance matrix.

use crate::graph::WeightedDiGraph;
use systolic_semiring::{DenseMatrix, MinPlus};

/// Distances plus successor matrix for route extraction.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteTable {
    /// Shortest distances (min-plus closure).
    pub dist: DenseMatrix<MinPlus>,
    /// `next[i][j]` = first hop of a shortest `i → j` path.
    next: Vec<Option<usize>>,
    n: usize,
}

impl RouteTable {
    /// Extracts a shortest route `u → v`, or `None` when unreachable.
    pub fn route(&self, u: usize, v: usize) -> Option<Vec<usize>> {
        if u == v {
            return Some(vec![u]);
        }
        self.next[u * self.n + v]?;
        let mut path = vec![u];
        let mut cur = u;
        while cur != v {
            cur = self.next[cur * self.n + v]?;
            path.push(cur);
            if path.len() > self.n {
                return None; // defensive: malformed table
            }
        }
        Some(path)
    }

    /// The distance value `u → v` (`u64::MAX` = unreachable).
    pub fn distance(&self, u: usize, v: usize) -> u64 {
        *self.dist.get(u, v)
    }
}

/// Floyd–Warshall with successor tracking.
pub fn shortest_paths_with_routes(g: &WeightedDiGraph) -> RouteTable {
    let n = g.n();
    let mut dist = g.distance_matrix();
    dist.reflexive_closure();
    let mut next: Vec<Option<usize>> = vec![None; n * n];
    for &(u, v, _) in g.edges() {
        // Keep the hop consistent with the kept (smallest) parallel edge.
        if next[u * n + v].is_none() {
            next[u * n + v] = Some(v);
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = *dist.get(i, k);
            if dik == u64::MAX {
                continue;
            }
            for j in 0..n {
                let dkj = *dist.get(k, j);
                if dkj == u64::MAX {
                    continue;
                }
                let via = dik.saturating_add(dkj);
                if via < *dist.get(i, j) {
                    dist.set(i, j, via);
                    next[i * n + j] = next[i * n + k];
                }
            }
        }
    }
    RouteTable { dist, next, n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_weighted;
    use systolic_semiring::warshall;

    #[test]
    fn routes_match_distances() {
        let g = random_weighted(8, 0.35, 1, 10, 21);
        let table = shortest_paths_with_routes(&g);
        // Distances agree with the semiring closure.
        assert_eq!(table.dist, warshall(&g.distance_matrix()));
        // Every finite route's edge weights sum to the distance.
        let weight = |u: usize, v: usize| -> u64 {
            g.edges()
                .iter()
                .filter(|&&(a, b, _)| a == u && b == v)
                .map(|&(_, _, w)| w)
                .min()
                .expect("edge exists on route")
        };
        for u in 0..8 {
            for v in 0..8 {
                let d = table.distance(u, v);
                match table.route(u, v) {
                    Some(p) => {
                        assert_eq!(p[0], u);
                        assert_eq!(*p.last().unwrap(), v);
                        let total: u64 = p.windows(2).map(|w| weight(w[0], w[1])).sum();
                        assert_eq!(total, d, "{u}->{v} via {p:?}");
                    }
                    None => assert_eq!(d, u64::MAX, "{u}->{v}"),
                }
            }
        }
    }

    #[test]
    fn trivial_routes() {
        let g = WeightedDiGraph::new(3);
        let t = shortest_paths_with_routes(&g);
        assert_eq!(t.route(1, 1), Some(vec![1]));
        assert_eq!(t.route(0, 2), None);
        assert_eq!(t.distance(0, 2), u64::MAX);
        assert_eq!(t.distance(0, 0), 0);
    }
}
