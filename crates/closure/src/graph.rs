//! Directed-graph containers and reachability results.

use systolic_semiring::{BitMatrix, Bool, DenseMatrix, MaxMin, MinMax, MinPlus};

/// An unweighted directed graph on vertices `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    adj: Vec<Vec<usize>>,
    edges: usize,
}

impl DiGraph {
    /// Creates an empty graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds edge `u → v` (duplicates ignored).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        if !self.adj[u].contains(&v) {
            self.adj[u].push(v);
            self.edges += 1;
        }
    }

    /// Removes edge `u → v`; returns whether it was present.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n && v < self.n, "vertex out of range");
        if let Some(pos) = self.adj[u].iter().position(|&x| x == v) {
            self.adj[u].remove(pos);
            self.edges -= 1;
            true
        } else {
            false
        }
    }

    /// Successors of `u`.
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// True iff edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// The paper's adjacency-matrix convention: `a_ij = 1` iff `i → j`
    /// **or** `i = j` (§3.1).
    pub fn adjacency_matrix(&self) -> DenseMatrix<Bool> {
        let mut m = DenseMatrix::<Bool>::zeros(self.n, self.n);
        for u in 0..self.n {
            m.set(u, u, true);
            for &v in &self.adj[u] {
                m.set(u, v, true);
            }
        }
        m
    }

    /// Builds a graph from any Boolean matrix (diagonal ignored).
    pub fn from_matrix(m: &DenseMatrix<Bool>) -> Self {
        assert!(m.is_square());
        let n = m.rows();
        let mut g = Self::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v && *m.get(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }
}

/// A weighted directed graph (no negative weights — the path semirings
/// here are bounded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedDiGraph {
    n: usize,
    edges: Vec<(usize, usize, u64)>,
}

impl WeightedDiGraph {
    /// Creates an empty weighted graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds edge `u → v` with weight/capacity `w`.
    pub fn add_edge(&mut self, u: usize, v: usize, w: u64) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        self.edges.push((u, v, w));
    }

    /// Edge list.
    pub fn edges(&self) -> &[(usize, usize, u64)] {
        &self.edges
    }

    /// Distance matrix over the min-plus semiring (parallel edges keep the
    /// smallest weight).
    pub fn distance_matrix(&self) -> DenseMatrix<MinPlus> {
        let mut m = DenseMatrix::<MinPlus>::zeros(self.n, self.n);
        for &(u, v, w) in &self.edges {
            let cur = *m.get(u, v);
            m.set(u, v, cur.min(w));
        }
        m
    }

    /// Capacity matrix over the max-min semiring (parallel edges keep the
    /// largest capacity).
    pub fn capacity_matrix(&self) -> DenseMatrix<MaxMin> {
        let mut m = DenseMatrix::<MaxMin>::zeros(self.n, self.n);
        for &(u, v, w) in &self.edges {
            let cur = *m.get(u, v);
            m.set(u, v, cur.max(w));
        }
        m
    }

    /// Worst-edge matrix over the min-max semiring (parallel edges keep
    /// the smaller maximum).
    pub fn minimax_matrix(&self) -> DenseMatrix<MinMax> {
        let mut m = DenseMatrix::<MinMax>::zeros(self.n, self.n);
        for &(u, v, w) in &self.edges {
            let cur = *m.get(u, v);
            m.set(u, v, cur.min(w));
        }
        m
    }
}

/// Reachability result (`A⁺` over the Boolean semiring).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reachability {
    bits: BitMatrix,
}

impl Reachability {
    /// Wraps a closure matrix.
    pub fn from_matrix(m: &DenseMatrix<Bool>) -> Self {
        Self {
            bits: BitMatrix::from_dense(m),
        }
    }

    /// True iff a path (possibly of length 0) runs `u → v`.
    pub fn reachable(&self, u: usize, v: usize) -> bool {
        self.bits.get(u, v)
    }

    /// Number of reachable ordered pairs (including the diagonal).
    pub fn pair_count(&self) -> usize {
        self.bits.count_ones()
    }

    /// Vertices reachable from `u`.
    pub fn reachable_set(&self, u: usize) -> Vec<usize> {
        (0..self.bits.n())
            .filter(|&v| self.bits.get(u, v))
            .collect()
    }

    /// Vertices mutually reachable with `u` (u's strongly connected
    /// component, read off `A⁺ ∧ (A⁺)ᵀ`).
    pub fn scc_of(&self, u: usize) -> Vec<usize> {
        (0..self.bits.n())
            .filter(|&v| self.bits.get(u, v) && self.bits.get(v, u))
            .collect()
    }

    /// The underlying bit matrix.
    pub fn bits(&self) -> &BitMatrix {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digraph_roundtrip_through_matrix() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        g.add_edge(0, 2); // duplicate ignored
        assert_eq!(g.edge_count(), 2);
        let m = g.adjacency_matrix();
        assert!(*m.get(0, 0), "reflexive convention");
        let g2 = DiGraph::from_matrix(&m);
        assert_eq!(g, g2);
    }

    #[test]
    fn weighted_matrices_resolve_parallel_edges() {
        let mut g = WeightedDiGraph::new(3);
        g.add_edge(0, 1, 5);
        g.add_edge(0, 1, 3);
        assert_eq!(*g.distance_matrix().get(0, 1), 3);
        assert_eq!(*g.capacity_matrix().get(0, 1), 5);
        assert_eq!(*g.minimax_matrix().get(0, 1), 3);
    }

    #[test]
    fn reachability_queries() {
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        let closed = systolic_semiring::warshall(&g.adjacency_matrix());
        let r = Reachability::from_matrix(&closed);
        assert!(r.reachable(0, 2));
        assert!(!r.reachable(3, 0));
        assert_eq!(r.scc_of(0), vec![0, 1, 2]);
        assert_eq!(r.reachable_set(3), vec![3, 4]);
    }
}
