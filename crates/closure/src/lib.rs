//! User-facing API: transitive closure and algebraic path problems on
//! directed graphs, computed by any of the reproduced systolic engines or
//! the software references.
//!
//! ```
//! use systolic_closure::{DiGraph, Backend, ClosureSolver};
//!
//! let mut g = DiGraph::new(4);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(2, 3);
//! let solver = ClosureSolver::new(Backend::Linear { cells: 2 });
//! let reach = solver.transitive_closure(&g).unwrap();
//! assert!(reach.reachable(0, 3));
//! assert!(!reach.reachable(3, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod condense;
pub mod csr;
pub mod generators;
pub mod graph;
pub mod incremental;
pub mod paths;
pub mod solver;
pub mod sparse;

pub use condense::{closure_via_condensation, Condensation};
pub use csr::{CsrGraph, CsrStats, LoadError};
pub use generators::{
    bowtie, complete, cycle, gnp, gnp_csr, path, powerlaw, random_dag, random_dag_csr,
    random_weighted, star, GraphKind,
};
pub use graph::{DiGraph, Reachability, WeightedDiGraph};
pub use incremental::{
    dag_bucket, rank_one_update, IncrementalClosure, IncrementalStats, RecomputeJob,
};
pub use paths::{shortest_paths_with_routes, RouteTable};
pub use solver::{Backend, ClosureSolver, SolveReport};
pub use sparse::{
    condense_csr, sparse_closure, ClosureMode, Fill, SparseClosure, SparseCondensation,
    SparseOptions, SparseStats,
};
