//! Graph generators for examples, tests and workloads.
//!
//! The original generators ([`gnp`], [`random_dag`], …) build adjacency
//! lists by looping over all `n²` vertex pairs — fine for test-sized
//! graphs, hopeless for the sparse data plane's 10⁵–10⁶-node inputs. The
//! `*_csr` variants and the web-graph families ([`powerlaw`], [`bowtie`])
//! emit [`CsrGraph`] directly in `O(n + e)` using geometric skip-sampling
//! and preferential attachment, so generating the benchmark inputs costs
//! no more than the graphs themselves.

use crate::csr::CsrGraph;
use crate::graph::{DiGraph, WeightedDiGraph};
use systolic_util::Rng;

/// Named deterministic graph families.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// Simple directed path `0 → 1 → … → n-1`.
    Path,
    /// Directed cycle.
    Cycle,
    /// Complete digraph (no self-loops).
    Complete,
    /// Star: `0 → v` for all `v ≠ 0`.
    Star,
}

/// Builds one of the deterministic families.
pub fn family(kind: GraphKind, n: usize) -> DiGraph {
    match kind {
        GraphKind::Path => path(n),
        GraphKind::Cycle => cycle(n),
        GraphKind::Complete => complete(n),
        GraphKind::Star => star(n),
    }
}

/// Directed path.
pub fn path(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// Directed cycle.
pub fn cycle(n: usize) -> DiGraph {
    let mut g = path(n);
    if n > 1 {
        g.add_edge(n - 1, 0);
    }
    g
}

/// Complete digraph without self-loops.
pub fn complete(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Star from vertex 0.
pub fn star(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for v in 1..n {
        g.add_edge(0, v);
    }
    g
}

/// Erdős–Rényi `G(n, p)` digraph (no self-loops), seeded.
pub fn gnp(n: usize, p: f64, seed: u64) -> DiGraph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Random DAG: edges only from lower to higher vertex indices, density `p`.
pub fn random_dag(n: usize, p: f64, seed: u64) -> DiGraph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Random weighted digraph with weights in `[lo, hi]`.
pub fn random_weighted(n: usize, p: f64, lo: u64, hi: u64, seed: u64) -> WeightedDiGraph {
    assert!(lo <= hi);
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = WeightedDiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                g.add_edge(u, v, rng.gen_range_u64(lo, hi));
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` digraph emitted as CSR in expected `O(n + e)`:
/// instead of flipping `n²` coins, jump straight to the next success with
/// a geometric skip (`gap = ⌊ln U / ln(1−p)⌋`). The RNG stream therefore
/// differs from [`gnp`]'s — equal seeds give the same *distribution*, not
/// the same graph.
pub fn gnp_csr(n: usize, p: f64, seed: u64) -> CsrGraph {
    let mut rng = Rng::seed_from_u64(seed);
    let p = p.clamp(0.0, 1.0);
    if p <= 0.0 || n == 0 {
        return CsrGraph::empty(n);
    }
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
    if p >= 1.0 {
        for (u, row) in rows.iter_mut().enumerate() {
            row.extend((0..n as u32).filter(|&v| v as usize != u));
        }
        return CsrGraph::from_sorted_rows(rows);
    }
    let ln_q = (1.0 - p).ln();
    // Walk the n² pair grid in row-major order, skipping geometrically.
    let total = n as u64 * n as u64;
    let mut pos: u64 = 0;
    loop {
        // U in (0, 1]: avoid ln(0).
        let u01 = 1.0 - rng.next_f64();
        let gap = (u01.ln() / ln_q).floor() as u64;
        pos = pos.saturating_add(gap);
        if pos >= total {
            break;
        }
        let (u, v) = ((pos / n as u64) as usize, (pos % n as u64) as u32);
        if u != v as usize {
            rows[u].push(v);
        }
        pos += 1;
    }
    CsrGraph::from_sorted_rows(rows)
}

/// Random DAG (edges low → high index) emitted as CSR in expected
/// `O(n + e)` via the same geometric skip as [`gnp_csr`].
pub fn random_dag_csr(n: usize, p: f64, seed: u64) -> CsrGraph {
    let mut rng = Rng::seed_from_u64(seed);
    let p = p.clamp(0.0, 1.0);
    if p <= 0.0 || n == 0 {
        return CsrGraph::empty(n);
    }
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
    if p >= 1.0 {
        for (u, row) in rows.iter_mut().enumerate() {
            row.extend((u as u32 + 1)..n as u32);
        }
        return CsrGraph::from_sorted_rows(rows);
    }
    let ln_q = (1.0 - p).ln();
    for (u, row) in rows.iter_mut().enumerate() {
        let span = (n - u - 1) as u64;
        let mut pos: u64 = 0;
        loop {
            let u01 = 1.0 - rng.next_f64();
            let gap = (u01.ln() / ln_q).floor() as u64;
            pos = pos.saturating_add(gap);
            if pos >= span {
                break;
            }
            row.push((u as u64 + 1 + pos) as u32);
            pos += 1;
        }
    }
    CsrGraph::from_sorted_rows(rows)
}

/// Power-law (Barabási–Albert-style) digraph: each new vertex attaches
/// `d` out-edges to targets drawn from an endpoint multiset (preferential
/// attachment — high-degree vertices keep attracting edges), and each new
/// edge is reciprocated with probability ~0.28 so the graph grows real
/// SCCs instead of staying a DAG. Average total degree comes out near
/// `2d`; the in-degree tail is power-law distributed like web/social
/// adjacency.
pub fn powerlaw(n: usize, d: usize, seed: u64) -> CsrGraph {
    const RECIPROCAL_P: f64 = 0.28;
    let mut rng = Rng::seed_from_u64(seed);
    if n == 0 {
        return CsrGraph::empty(0);
    }
    let d = d.max(1);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * d * 5 / 4);
    // Endpoint multiset: every edge endpoint appears once, so sampling a
    // uniform element is sampling ∝ degree. Seed it with vertex 0 so the
    // first draws are well-defined.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * d + 1);
    endpoints.push(0);
    for u in 1..n as u32 {
        let wanted = d.min(u as usize);
        for _ in 0..wanted {
            let t = endpoints[rng.gen_usize(endpoints.len())];
            if t == u {
                continue; // skip self-loops; slightly fewer edges is fine
            }
            edges.push((u, t));
            endpoints.push(u);
            endpoints.push(t);
            if rng.gen_bool(RECIPROCAL_P) {
                edges.push((t, u));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Bow-tie web graph (Broder et al. structure): a strongly connected core
/// (~n/3, wired as a cycle plus random chords), an IN set feeding the
/// core, an OUT set fed by the core, and tendrils/disconnected leftovers.
/// Exercises the condensation with one giant SCC plus a long tail of
/// singletons.
pub fn bowtie(n: usize, seed: u64) -> CsrGraph {
    let mut rng = Rng::seed_from_u64(seed);
    if n == 0 {
        return CsrGraph::empty(0);
    }
    let core = (n / 3).max(1);
    let in_hi = core + (n - core) / 2; // core..in_hi is IN, in_hi..n is OUT+tendrils
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Core cycle ⇒ one SCC; chords thicken it.
    for u in 0..core {
        edges.push((u as u32, ((u + 1) % core) as u32));
        if core > 2 {
            let chord = rng.gen_usize(core);
            if chord != u {
                edges.push((u as u32, chord as u32));
            }
        }
    }
    // IN vertices point at the core (and occasionally chain to each other).
    for u in core..in_hi {
        edges.push((u as u32, rng.gen_usize(core) as u32));
        if u + 1 < in_hi && rng.gen_bool(0.3) {
            edges.push((u as u32, (u + 1) as u32));
        }
    }
    // OUT vertices are pointed at from the core; tendrils dangle off OUT.
    for u in in_hi..n {
        edges.push((rng.gen_usize(core) as u32, u as u32));
        if u + 1 < n && rng.gen_bool(0.3) {
            edges.push((u as u32, (u + 1) as u32));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_expected_edge_counts() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(complete(5).edge_count(), 20);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(family(GraphKind::Cycle, 3).edge_count(), 3);
    }

    #[test]
    fn gnp_is_seed_deterministic() {
        let a = gnp(12, 0.3, 42);
        let b = gnp(12, 0.3, 42);
        let c = gnp(12, 0.3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dag_has_no_back_edges() {
        let g = random_dag(20, 0.4, 7);
        for u in 0..20 {
            for &v in g.successors(u) {
                assert!(v > u);
            }
        }
    }

    #[test]
    fn weighted_respects_bounds() {
        let g = random_weighted(10, 0.5, 3, 9, 11);
        assert!(!g.edges().is_empty());
        for &(_, _, w) in g.edges() {
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(path(0).n(), 0);
        assert_eq!(cycle(1).edge_count(), 0);
        assert_eq!(gnp(1, 1.0, 0).edge_count(), 0);
    }

    #[test]
    fn gnp_csr_matches_distribution_and_determinism() {
        let a = gnp_csr(200, 0.05, 9);
        let b = gnp_csr(200, 0.05, 9);
        assert_eq!(a, b);
        assert_ne!(a, gnp_csr(200, 0.05, 10));
        // Expected edges ≈ p·n(n−1) = 1990; allow a wide band.
        let e = a.edge_count();
        assert!((1000..3200).contains(&e), "edge count {e} implausible");
        for u in 0..200 {
            assert!(!a.has_edge(u, u as u32), "self-loop at {u}");
        }
    }

    #[test]
    fn gnp_csr_extremes() {
        assert_eq!(gnp_csr(10, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp_csr(10, 1.0, 1).edge_count(), 90);
        assert_eq!(gnp_csr(0, 0.5, 1).n(), 0);
    }

    #[test]
    fn random_dag_csr_has_no_back_edges() {
        let g = random_dag_csr(64, 0.1, 3);
        for u in 0..64 {
            for &v in g.successors(u) {
                assert!(v as usize > u);
            }
        }
        assert_eq!(random_dag_csr(10, 1.0, 0).edge_count(), 45);
    }

    #[test]
    fn powerlaw_shape() {
        let g = powerlaw(2000, 4, 17);
        assert_eq!(g.n(), 2000);
        let s = g.stats();
        // ~d out-edges per vertex plus ~28 % reciprocals.
        assert!(
            s.avg_degree > 3.0 && s.avg_degree < 6.5,
            "avg degree {} out of band",
            s.avg_degree
        );
        // Preferential attachment ⇒ a heavy in-degree tail: the transpose
        // max degree must far exceed the mean.
        let tmax = g.transpose().stats().max_degree;
        assert!(tmax > 30, "max in-degree {tmax} not heavy-tailed");
        assert_eq!(g, powerlaw(2000, 4, 17));
        // Reciprocal edges must create nontrivial SCCs.
        let cond = crate::sparse::condense_csr(&g);
        assert!(cond.nontrivial_count() > 0);
    }

    #[test]
    fn bowtie_has_giant_core_scc() {
        let g = bowtie(300, 5);
        let cond = crate::sparse::condense_csr(&g);
        let biggest = cond.components().map(<[u32]>::len).max().unwrap();
        assert_eq!(biggest, 100, "core cycle must be one SCC");
        assert!(cond.len() > 1);
        assert_eq!(g, bowtie(300, 5));
    }
}
