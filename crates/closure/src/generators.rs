//! Graph generators for examples, tests and workloads.

use crate::graph::{DiGraph, WeightedDiGraph};
use systolic_util::Rng;

/// Named deterministic graph families.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// Simple directed path `0 → 1 → … → n-1`.
    Path,
    /// Directed cycle.
    Cycle,
    /// Complete digraph (no self-loops).
    Complete,
    /// Star: `0 → v` for all `v ≠ 0`.
    Star,
}

/// Builds one of the deterministic families.
pub fn family(kind: GraphKind, n: usize) -> DiGraph {
    match kind {
        GraphKind::Path => path(n),
        GraphKind::Cycle => cycle(n),
        GraphKind::Complete => complete(n),
        GraphKind::Star => star(n),
    }
}

/// Directed path.
pub fn path(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// Directed cycle.
pub fn cycle(n: usize) -> DiGraph {
    let mut g = path(n);
    if n > 1 {
        g.add_edge(n - 1, 0);
    }
    g
}

/// Complete digraph without self-loops.
pub fn complete(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Star from vertex 0.
pub fn star(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for v in 1..n {
        g.add_edge(0, v);
    }
    g
}

/// Erdős–Rényi `G(n, p)` digraph (no self-loops), seeded.
pub fn gnp(n: usize, p: f64, seed: u64) -> DiGraph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Random DAG: edges only from lower to higher vertex indices, density `p`.
pub fn random_dag(n: usize, p: f64, seed: u64) -> DiGraph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Random weighted digraph with weights in `[lo, hi]`.
pub fn random_weighted(n: usize, p: f64, lo: u64, hi: u64, seed: u64) -> WeightedDiGraph {
    assert!(lo <= hi);
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = WeightedDiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                g.add_edge(u, v, rng.gen_range_u64(lo, hi));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_expected_edge_counts() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(complete(5).edge_count(), 20);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(family(GraphKind::Cycle, 3).edge_count(), 3);
    }

    #[test]
    fn gnp_is_seed_deterministic() {
        let a = gnp(12, 0.3, 42);
        let b = gnp(12, 0.3, 42);
        let c = gnp(12, 0.3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dag_has_no_back_edges() {
        let g = random_dag(20, 0.4, 7);
        for u in 0..20 {
            for &v in g.successors(u) {
                assert!(v > u);
            }
        }
    }

    #[test]
    fn weighted_respects_bounds() {
        let g = random_weighted(10, 0.5, 3, 9, 11);
        assert!(!g.edges().is_empty());
        for &(_, _, w) in g.edges() {
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(path(0).n(), 0);
        assert_eq!(cycle(1).edge_count(), 0);
        assert_eq!(gnp(1, 1.0, 0).edge_count(), 0);
    }
}
