//! Strongly-connected-component condensation from a closure matrix.
//!
//! `A⁺` answers SCC queries directly: `u` and `v` are in one component iff
//! both `(u,v)` and `(v,u)` are reachable. [`Condensation`] groups vertices
//! accordingly and builds the component DAG with topological levels — the
//! analyses the `program_analysis` example performs, packaged.

use crate::graph::{DiGraph, Reachability};
use systolic_semiring::BitMatrix;

/// SCC condensation of a closed graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Condensation {
    /// Component id of each vertex.
    pub component_of: Vec<usize>,
    /// Vertices of each component (sorted).
    pub components: Vec<Vec<usize>>,
    /// Edges of the component DAG (deduplicated, no self-loops).
    pub dag_edges: Vec<(usize, usize)>,
    /// Topological level of each component (sources at level 0).
    pub levels: Vec<usize>,
}

impl Condensation {
    /// Builds the condensation from a reachability result.
    pub fn new(reach: &Reachability) -> Self {
        let n = reach.bits().n();
        let mut component_of = vec![usize::MAX; n];
        let mut components: Vec<Vec<usize>> = Vec::new();
        for u in 0..n {
            if component_of[u] != usize::MAX {
                continue;
            }
            let id = components.len();
            let scc = reach.scc_of(u);
            for &v in &scc {
                component_of[v] = id;
            }
            components.push(scc);
        }
        // Component DAG edges: c1 → c2 iff some u∈c1 reaches some v∈c2.
        // Using closure reachability keeps this O(n²) and transitive; we
        // reduce to the Hasse-like set of distinct pairs.
        let mut edge_set = std::collections::BTreeSet::new();
        for u in 0..n {
            for v in 0..n {
                let (cu, cv) = (component_of[u], component_of[v]);
                if cu != cv && reach.reachable(u, v) {
                    edge_set.insert((cu, cv));
                }
            }
        }
        let dag_edges: Vec<(usize, usize)> = edge_set.into_iter().collect();
        // Longest-path levels over the component DAG.
        let c = components.len();
        let mut levels = vec![0usize; c];
        // The DAG edges derived from a transitive closure are transitively
        // closed, so level = number of distinct predecessors on the longest
        // chain; iterate to a fixed point (≤ c rounds).
        let mut changed = true;
        while changed {
            changed = false;
            for &(a, b) in &dag_edges {
                if levels[b] < levels[a] + 1 {
                    levels[b] = levels[a] + 1;
                    changed = true;
                }
            }
        }
        Self {
            component_of,
            components,
            dag_edges,
            levels,
        }
    }

    /// Builds the condensation directly from a graph's edges (iterative
    /// Tarjan), without needing a closure first — the entry point of the
    /// delete-fallback recompute path: condense the *current* graph, close
    /// the (much smaller) component DAG, expand back to vertex pairs.
    ///
    /// Unlike [`Condensation::new`], `dag_edges` here are the graph's own
    /// inter-component edges (deduplicated), not their transitive closure.
    /// Component ids come out in reverse topological order (every DAG edge
    /// runs from a higher id to a lower one), which
    /// [`closure_via_condensation`] exploits.
    pub fn from_graph(g: &DiGraph) -> Self {
        let n = g.n();
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut component_of = vec![UNVISITED; n];
        let mut components: Vec<Vec<usize>> = Vec::new();
        let mut next_index = 0usize;
        // Explicit DFS frames: (vertex, next successor position).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            while let Some(&(v, succ_pos)) = frames.last() {
                if succ_pos == 0 {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = g.successors(v).get(succ_pos) {
                    frames.last_mut().expect("frame present").1 += 1;
                    if index[w] == UNVISITED {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    // v is finished: pop its SCC if it is a root.
                    if lowlink[v] == index[v] {
                        let id = components.len();
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("Tarjan stack underflow");
                            on_stack[w] = false;
                            component_of[w] = id;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_unstable();
                        components.push(scc);
                    }
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
        // Inter-component edges of the graph itself, deduplicated.
        let mut edge_set = std::collections::BTreeSet::new();
        for u in 0..n {
            for &v in g.successors(u) {
                let (cu, cv) = (component_of[u], component_of[v]);
                if cu != cv {
                    edge_set.insert((cu, cv));
                }
            }
        }
        let dag_edges: Vec<(usize, usize)> = edge_set.into_iter().collect();
        // Longest-path levels (same fixed point as `new`; the DAG is acyclic
        // so this terminates in ≤ len rounds).
        let c = components.len();
        let mut levels = vec![0usize; c];
        let mut changed = true;
        while changed {
            changed = false;
            for &(a, b) in &dag_edges {
                if levels[b] < levels[a] + 1 {
                    levels[b] = levels[a] + 1;
                    changed = true;
                }
            }
        }
        Self {
            component_of,
            components,
            dag_edges,
            levels,
        }
    }

    /// Dense Boolean adjacency matrix of the component DAG (no diagonal).
    pub fn dag_matrix(&self) -> systolic_semiring::DenseMatrix<systolic_semiring::Bool> {
        let c = self.components.len();
        let mut m = systolic_semiring::DenseMatrix::zeros(c, c);
        for &(a, b) in &self.dag_edges {
            m.set(a, b, true);
        }
        m
    }

    /// Expands a *closed* component-DAG reachability matrix back to the
    /// vertex-level closure: `reach(u, v)` iff `closed(comp(u), comp(v))`
    /// (with the reflexive diagonal implied by `closed`'s own diagonal).
    ///
    /// `closed` may be larger than the component count — extra padding
    /// rows/columns (from batching recomputes at a common plan shape) are
    /// ignored.
    ///
    /// # Panics
    /// Panics if `closed` has fewer rows than there are components.
    pub fn expand_closure(&self, closed: &systolic_semiring::BitMatrix) -> BitMatrix {
        let c = self.components.len();
        assert!(closed.n() >= c, "closed DAG matrix smaller than DAG");
        let n = self.component_of.len();
        // Column sets per component, shared by every member vertex of a
        // reaching component.
        let mut comp_cols: Vec<Vec<usize>> = Vec::with_capacity(c);
        for cu in 0..c {
            let mut cols = Vec::new();
            for cv in 0..c {
                if cu == cv || closed.get(cu, cv) {
                    cols.extend_from_slice(&self.components[cv]);
                }
            }
            comp_cols.push(cols);
        }
        let mut out = BitMatrix::zeros(n);
        for u in 0..n {
            for &v in &comp_cols[self.component_of[u]] {
                out.set(u, v, true);
            }
        }
        out
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the graph had no vertices.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Components with more than one vertex (cycles / recursion groups).
    pub fn nontrivial(&self) -> impl Iterator<Item = &Vec<usize>> {
        self.components.iter().filter(|c| c.len() > 1)
    }
}

/// Full reflexive-transitive closure computed through the condensation:
/// Tarjan SCCs, bitset closure of the (reverse-topological) component DAG,
/// then expansion back to vertex pairs. This is the software reference for
/// the service's delete-fallback path; the served variant routes the DAG
/// closure through the admission batcher instead.
pub fn closure_via_condensation(g: &DiGraph) -> BitMatrix {
    let cond = Condensation::from_graph(g);
    let c = cond.len();
    if c == 0 {
        return BitMatrix::zeros(0);
    }
    // Component ids are emitted sinks-first, so every DAG edge (a, b) has
    // a > b: sweep ids upward and each successor row is already complete.
    let mut dag_closed = BitMatrix::identity(c);
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); c];
    for &(a, b) in &cond.dag_edges {
        debug_assert!(a > b, "Tarjan ids must be reverse-topological");
        succs[a].push(b);
    }
    for (a, row_succs) in succs.into_iter().enumerate() {
        for s in row_succs {
            dag_closed.or_row_into(s, a);
        }
    }
    cond.expand_closure(&dag_closed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DiGraph;
    use crate::solver::{Backend, ClosureSolver};

    fn condense(edges: &[(usize, usize)], n: usize) -> Condensation {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        let reach = ClosureSolver::new(Backend::Reference)
            .transitive_closure(&g)
            .unwrap();
        Condensation::new(&reach)
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // (0,1,2) cycle → (3,4) cycle, 5 isolated.
        let c = condense(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)], 6);
        assert_eq!(c.len(), 3);
        let big: Vec<_> = c.nontrivial().cloned().collect();
        assert!(big.contains(&vec![0, 1, 2]));
        assert!(big.contains(&vec![3, 4]));
        // Levels: the (0,1,2) component precedes (3,4).
        let c012 = c.component_of[0];
        let c34 = c.component_of[3];
        assert!(c.levels[c012] < c.levels[c34]);
        assert_eq!(c.levels[c.component_of[5]], 0);
    }

    #[test]
    fn dag_has_no_self_loops_or_duplicates() {
        let c = condense(&[(0, 1), (0, 1), (1, 2), (0, 2)], 3);
        assert_eq!(c.len(), 3);
        assert!(c.dag_edges.iter().all(|&(a, b)| a != b));
        let mut sorted = c.dag_edges.clone();
        sorted.dedup();
        assert_eq!(sorted, c.dag_edges);
    }

    #[test]
    fn single_scc_collapses_to_one_component() {
        let c = condense(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert_eq!(c.len(), 1);
        assert!(c.dag_edges.is_empty());
        assert!(!c.is_empty());
    }

    #[test]
    fn levels_form_valid_topological_order() {
        let c = condense(&[(0, 1), (1, 2), (2, 3), (1, 3)], 4);
        for &(a, b) in &c.dag_edges {
            assert!(c.levels[a] < c.levels[b]);
        }
    }

    fn graph(edges: &[(usize, usize)], n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn from_graph_matches_closure_based_partition() {
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (5, 0)];
        let g = graph(&edges, 6);
        let tarjan = Condensation::from_graph(&g);
        let closed = condense(&edges, 6);
        // Component ids may differ, but the vertex partition must agree.
        let mut a: Vec<_> = tarjan.components.clone();
        let mut b: Vec<_> = closed.components.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Tarjan ids are reverse-topological: edges go high → low.
        for &(x, y) in &tarjan.dag_edges {
            assert!(x > y, "edge {x}→{y} not reverse-topological");
        }
    }

    #[test]
    fn from_graph_handles_empty_and_edgeless() {
        let c = Condensation::from_graph(&DiGraph::new(0));
        assert!(c.is_empty());
        let c = Condensation::from_graph(&DiGraph::new(3));
        assert_eq!(c.len(), 3);
        assert!(c.dag_edges.is_empty());
    }

    #[test]
    fn closure_via_condensation_matches_warshall() {
        use crate::generators::gnp;
        use systolic_semiring::BitMatrix;
        for (n, seed) in [(1usize, 7u64), (9, 11), (33, 13), (70, 17)] {
            let g = gnp(n, 0.12, seed);
            let oracle = BitMatrix::from_dense(&g.adjacency_matrix()).transitive_closure();
            let via = closure_via_condensation(&g);
            assert_eq!(via, oracle, "n={n} seed={seed}");
        }
        assert_eq!(closure_via_condensation(&DiGraph::new(0)).n(), 0);
    }

    #[test]
    fn expand_closure_ignores_padding() {
        // Path 0→1→2: three singleton components; pad the DAG matrix to 8.
        let g = graph(&[(0, 1), (1, 2)], 3);
        let cond = Condensation::from_graph(&g);
        let c = cond.len();
        let mut padded = BitMatrix::identity(8);
        let mut exact = BitMatrix::identity(c);
        for &(a, b) in &cond.dag_edges {
            padded.set(a, b, true);
            exact.set(a, b, true);
        }
        padded.warshall_in_place();
        exact.warshall_in_place();
        assert_eq!(cond.expand_closure(&padded), cond.expand_closure(&exact));
    }
}
