//! Strongly-connected-component condensation from a closure matrix.
//!
//! `A⁺` answers SCC queries directly: `u` and `v` are in one component iff
//! both `(u,v)` and `(v,u)` are reachable. [`Condensation`] groups vertices
//! accordingly and builds the component DAG with topological levels — the
//! analyses the `program_analysis` example performs, packaged.

use crate::graph::Reachability;

/// SCC condensation of a closed graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Condensation {
    /// Component id of each vertex.
    pub component_of: Vec<usize>,
    /// Vertices of each component (sorted).
    pub components: Vec<Vec<usize>>,
    /// Edges of the component DAG (deduplicated, no self-loops).
    pub dag_edges: Vec<(usize, usize)>,
    /// Topological level of each component (sources at level 0).
    pub levels: Vec<usize>,
}

impl Condensation {
    /// Builds the condensation from a reachability result.
    pub fn new(reach: &Reachability) -> Self {
        let n = reach.bits().n();
        let mut component_of = vec![usize::MAX; n];
        let mut components: Vec<Vec<usize>> = Vec::new();
        for u in 0..n {
            if component_of[u] != usize::MAX {
                continue;
            }
            let id = components.len();
            let scc = reach.scc_of(u);
            for &v in &scc {
                component_of[v] = id;
            }
            components.push(scc);
        }
        // Component DAG edges: c1 → c2 iff some u∈c1 reaches some v∈c2.
        // Using closure reachability keeps this O(n²) and transitive; we
        // reduce to the Hasse-like set of distinct pairs.
        let mut edge_set = std::collections::BTreeSet::new();
        for u in 0..n {
            for v in 0..n {
                let (cu, cv) = (component_of[u], component_of[v]);
                if cu != cv && reach.reachable(u, v) {
                    edge_set.insert((cu, cv));
                }
            }
        }
        let dag_edges: Vec<(usize, usize)> = edge_set.into_iter().collect();
        // Longest-path levels over the component DAG.
        let c = components.len();
        let mut levels = vec![0usize; c];
        // The DAG edges derived from a transitive closure are transitively
        // closed, so level = number of distinct predecessors on the longest
        // chain; iterate to a fixed point (≤ c rounds).
        let mut changed = true;
        while changed {
            changed = false;
            for &(a, b) in &dag_edges {
                if levels[b] < levels[a] + 1 {
                    levels[b] = levels[a] + 1;
                    changed = true;
                }
            }
        }
        Self {
            component_of,
            components,
            dag_edges,
            levels,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the graph had no vertices.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Components with more than one vertex (cycles / recursion groups).
    pub fn nontrivial(&self) -> impl Iterator<Item = &Vec<usize>> {
        self.components.iter().filter(|c| c.len() > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DiGraph;
    use crate::solver::{Backend, ClosureSolver};

    fn condense(edges: &[(usize, usize)], n: usize) -> Condensation {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        let reach = ClosureSolver::new(Backend::Reference)
            .transitive_closure(&g)
            .unwrap();
        Condensation::new(&reach)
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // (0,1,2) cycle → (3,4) cycle, 5 isolated.
        let c = condense(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)], 6);
        assert_eq!(c.len(), 3);
        let big: Vec<_> = c.nontrivial().cloned().collect();
        assert!(big.contains(&vec![0, 1, 2]));
        assert!(big.contains(&vec![3, 4]));
        // Levels: the (0,1,2) component precedes (3,4).
        let c012 = c.component_of[0];
        let c34 = c.component_of[3];
        assert!(c.levels[c012] < c.levels[c34]);
        assert_eq!(c.levels[c.component_of[5]], 0);
    }

    #[test]
    fn dag_has_no_self_loops_or_duplicates() {
        let c = condense(&[(0, 1), (0, 1), (1, 2), (0, 2)], 3);
        assert_eq!(c.len(), 3);
        assert!(c.dag_edges.iter().all(|&(a, b)| a != b));
        let mut sorted = c.dag_edges.clone();
        sorted.dedup();
        assert_eq!(sorted, c.dag_edges);
    }

    #[test]
    fn single_scc_collapses_to_one_component() {
        let c = condense(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert_eq!(c.len(), 1);
        assert!(c.dag_edges.is_empty());
        assert!(!c.is_empty());
    }

    #[test]
    fn levels_form_valid_topological_order() {
        let c = condense(&[(0, 1), (1, 2), (2, 3), (1, 3)], 4);
        for &(a, b) in &c.dag_edges {
            assert!(c.levels[a] < c.levels[b]);
        }
    }
}
