//! The engine-agnostic solver facade.

use crate::graph::{DiGraph, Reachability, WeightedDiGraph};
use systolic_arraysim::RunStats;
use systolic_baselines::NunezEngine;
use systolic_partition::{
    ClosureEngine, EngineError, FixedArrayEngine, FixedLinearEngine, GridEngine, LinearEngine,
    LsgpEngine,
};
use systolic_semiring::{warshall, BitMatrix, DenseMatrix, MaxMin, MinMax, MinPlus, PathSemiring};

/// Which implementation computes the closure.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Software Warshall reference (scalar).
    Reference,
    /// Bit-parallel software Warshall (Boolean problems only; other
    /// semirings fall back to the scalar reference).
    BitParallel,
    /// Simulated Fig. 17 fixed-size array.
    FixedArray,
    /// Simulated §3.2 linear fixed-size array.
    FixedLinear,
    /// Simulated linear partitioned array (Fig. 18) with `cells` cells.
    Linear {
        /// Cell count `m`.
        cells: usize,
    },
    /// Simulated 2-D partitioned array (Fig. 19) with `side × side` cells.
    Grid {
        /// Grid side `√m`.
        side: usize,
    },
    /// Simulated coalescing (LSGP, §2) ring with `cells` cells.
    Lsgp {
        /// Cell count `m`.
        cells: usize,
    },
    /// Núñez–Torralba blocked decomposition with tile side `tile`.
    Blocked {
        /// Tile side `b`.
        tile: usize,
    },
}

/// What a solve cost, when the backend is a simulated array.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolveReport {
    /// Simulator counters (zeroed for software backends).
    pub stats: RunStats,
    /// Backend description.
    pub backend: String,
}

/// Solver facade over all engines.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ClosureSolver {
    backend: Backend,
    threads: usize,
}

impl ClosureSolver {
    /// Creates a solver with the given backend, running single-threaded.
    pub fn new(backend: Backend) -> Self {
        Self {
            backend,
            threads: 1,
        }
    }

    /// Sets the host thread count. Only the [`Backend::BitParallel`]
    /// kernel exploits host threads for a single closure; the simulated
    /// arrays are cycle-deterministic and unaffected. Zero is treated
    /// as one.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured host thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Generic algebraic path closure of a matrix.
    ///
    /// # Errors
    /// Propagates engine failures (shape errors, simulator deadlock).
    pub fn closure_matrix<S: PathSemiring>(
        &self,
        a: &DenseMatrix<S>,
    ) -> Result<(DenseMatrix<S>, SolveReport), EngineError> {
        let run =
            |eng: &dyn ClosureEngine<S>| -> Result<(DenseMatrix<S>, SolveReport), EngineError> {
                let (m, stats) = eng.closure(a)?;
                Ok((
                    m,
                    SolveReport {
                        stats,
                        backend: eng.name().to_string(),
                    },
                ))
            };
        match self.backend {
            Backend::Reference | Backend::BitParallel => Ok((
                warshall(a),
                SolveReport {
                    stats: RunStats::default(),
                    backend: "software-warshall".into(),
                },
            )),
            Backend::FixedArray => run(&FixedArrayEngine::new()),
            Backend::FixedLinear => run(&FixedLinearEngine::new()),
            Backend::Linear { cells } => run(&LinearEngine::new(cells)),
            Backend::Grid { side } => run(&GridEngine::new(side)),
            Backend::Lsgp { cells } => run(&LsgpEngine::new(cells)),
            Backend::Blocked { tile } => {
                let (m, _cost) = NunezEngine::new(tile).closure(a)?;
                Ok((
                    m,
                    SolveReport {
                        stats: RunStats::default(),
                        backend: "nunez-blocked".into(),
                    },
                ))
            }
        }
    }

    /// Transitive closure of a directed graph.
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn transitive_closure(&self, g: &DiGraph) -> Result<Reachability, EngineError> {
        // The bit-parallel backend short-circuits to the u64-packed kernel.
        if self.backend == Backend::BitParallel {
            return Ok(Reachability::from_matrix(&self.bit_closure(g).to_dense()));
        }
        let (m, _) = self.closure_matrix(&g.adjacency_matrix())?;
        Ok(Reachability::from_matrix(&m))
    }

    fn bit_closure(&self, g: &DiGraph) -> BitMatrix {
        let bits = BitMatrix::from_dense(&g.adjacency_matrix());
        if self.threads > 1 {
            bits.transitive_closure_parallel(self.threads)
        } else {
            bits.transitive_closure()
        }
    }

    /// Transitive closure plus the run report.
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn transitive_closure_with_report(
        &self,
        g: &DiGraph,
    ) -> Result<(Reachability, SolveReport), EngineError> {
        if self.backend == Backend::BitParallel {
            let reach = Reachability::from_matrix(&self.bit_closure(g).to_dense());
            let backend = if self.threads > 1 {
                format!("software-bitparallel×{}", self.threads)
            } else {
                "software-bitparallel".into()
            };
            return Ok((
                reach,
                SolveReport {
                    stats: RunStats::default(),
                    backend,
                },
            ));
        }
        let (m, rep) = self.closure_matrix(&g.adjacency_matrix())?;
        Ok((Reachability::from_matrix(&m), rep))
    }

    /// All-pairs shortest path distances (min-plus closure).
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn shortest_paths(&self, g: &WeightedDiGraph) -> Result<DenseMatrix<MinPlus>, EngineError> {
        Ok(self.closure_matrix(&g.distance_matrix())?.0)
    }

    /// All-pairs maximum-capacity (widest) path values (max-min closure).
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn widest_paths(&self, g: &WeightedDiGraph) -> Result<DenseMatrix<MaxMin>, EngineError> {
        Ok(self.closure_matrix(&g.capacity_matrix())?.0)
    }

    /// All-pairs minimax path values (min-max closure).
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn minimax_paths(&self, g: &WeightedDiGraph) -> Result<DenseMatrix<MinMax>, EngineError> {
        Ok(self.closure_matrix(&g.minimax_matrix())?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, gnp, random_weighted};

    fn all_backends(n: usize) -> Vec<Backend> {
        vec![
            Backend::Reference,
            Backend::BitParallel,
            Backend::FixedArray,
            Backend::FixedLinear,
            Backend::Linear { cells: 3 },
            Backend::Grid { side: 2 },
            Backend::Lsgp { cells: 3 },
            Backend::Blocked {
                tile: n.div_ceil(2),
            },
        ]
    }

    #[test]
    fn all_backends_agree_on_reachability() {
        let g = gnp(7, 0.25, 99);
        let want = ClosureSolver::new(Backend::Reference)
            .transitive_closure(&g)
            .unwrap();
        for b in all_backends(7) {
            let got = ClosureSolver::new(b).transitive_closure(&g).unwrap();
            assert_eq!(got, want, "{b:?}");
        }
    }

    #[test]
    fn all_backends_agree_on_shortest_paths() {
        let g = random_weighted(6, 0.4, 1, 20, 5);
        let want = ClosureSolver::new(Backend::Reference)
            .shortest_paths(&g)
            .unwrap();
        for b in all_backends(6) {
            let got = ClosureSolver::new(b).shortest_paths(&g).unwrap();
            assert_eq!(got, want, "{b:?}");
        }
    }

    #[test]
    fn widest_and_minimax_on_array_backends() {
        let g = random_weighted(5, 0.5, 1, 9, 8);
        let reference = ClosureSolver::new(Backend::Reference);
        let array = ClosureSolver::new(Backend::Linear { cells: 2 });
        assert_eq!(
            reference.widest_paths(&g).unwrap(),
            array.widest_paths(&g).unwrap()
        );
        assert_eq!(
            reference.minimax_paths(&g).unwrap(),
            array.minimax_paths(&g).unwrap()
        );
    }

    #[test]
    fn threaded_bitparallel_matches_reference() {
        let g = gnp(33, 0.1, 4);
        let want = ClosureSolver::new(Backend::Reference)
            .transitive_closure(&g)
            .unwrap();
        let solver = ClosureSolver::new(Backend::BitParallel).with_threads(4);
        assert_eq!(solver.transitive_closure(&g).unwrap(), want);
        let (reach, rep) = solver.transitive_closure_with_report(&g).unwrap();
        assert_eq!(reach, want);
        assert_eq!(rep.backend, "software-bitparallel×4");
        assert_eq!(ClosureSolver::new(Backend::Reference).threads(), 1);
    }

    #[test]
    fn zero_sized_backends_error_instead_of_panicking() {
        let g = cycle(4);
        for b in [
            Backend::Linear { cells: 0 },
            Backend::Grid { side: 0 },
            Backend::Lsgp { cells: 0 },
            Backend::Blocked { tile: 0 },
        ] {
            match ClosureSolver::new(b).transitive_closure(&g) {
                Err(EngineError::BadInput(msg)) => {
                    assert!(!msg.is_empty(), "{b:?} must explain the rejection")
                }
                other => panic!("{b:?}: expected BadInput, got {other:?}"),
            }
        }
    }

    #[test]
    fn report_carries_simulator_stats() {
        let g = cycle(5);
        let solver = ClosureSolver::new(Backend::Linear { cells: 2 });
        let (_, rep) = solver.transitive_closure_with_report(&g).unwrap();
        assert_eq!(rep.backend, "linear-partitioned");
        assert!(rep.stats.cycles > 0);
        assert_eq!(rep.stats.memory_connections, 3);
    }
}
