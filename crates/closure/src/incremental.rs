//! Incremental maintenance of a transitive closure under edge updates.
//!
//! Over a bounded idempotent (path) semiring, inserting edge `u → v` with
//! weight `w` into a graph whose closure `R = A*` is known updates the
//! closure in one rank-1 pass:
//!
//! ```text
//! (A ⊕ w·e_uv)*  =  R ⊕ R·(w·e_uv)·R
//! ```
//!
//! One pass suffices because boundedness (`1 ⊕ a = 1`) makes any path that
//! crosses the new edge twice no better than one that crosses it once —
//! `e·R·e ≤ e` element-wise. For the Boolean case this is the bitset-row OR
//! of [`BitMatrix::insert_edge_closed`]; [`rank_one_update`] is the generic
//! dense form used by the property tests (Bool and min-plus).
//!
//! Deletions have no such local rule — removing an edge can sever pairs
//! whose witnesses all used it — so [`IncrementalClosure`] marks the
//! closure *dirty* and recomputes through the SCC condensation
//! ([`crate::condense`]) on the next query. Consecutive deletes coalesce
//! into one recompute, and the two-phase
//! [`prepare_recompute`](IncrementalClosure::prepare_recompute) /
//! [`complete_recompute`](IncrementalClosure::complete_recompute) API lets
//! a server batch many pending DAG closures into a single packed engine
//! run.

use crate::condense::{closure_via_condensation, Condensation};
use crate::graph::DiGraph;
use systolic_semiring::{BitMatrix, Bool, DenseMatrix, PathSemiring};

/// Applies the rank-1 closure update `R ← R ⊕ R·(w·e_uv)·R` in place.
///
/// `r` must be a reflexive closure over a [`PathSemiring`] (bounded,
/// idempotent — the laws that make one pass exact). Returns the number of
/// entries that changed.
pub fn rank_one_update<S: PathSemiring>(
    r: &mut DenseMatrix<S>,
    u: usize,
    v: usize,
    w: &S::Elem,
) -> usize {
    assert!(r.is_square(), "closure matrix must be square");
    let n = r.rows();
    assert!(u < n && v < n, "vertex out of range");
    // Snapshot row v: it may itself gain entries mid-sweep (when v reaches u).
    let row_v: Vec<S::Elem> = (0..n).map(|j| r.get(v, j).clone()).collect();
    let mut changed = 0usize;
    for i in 0..n {
        let coeff = S::mul(r.get(i, u), w);
        if S::is_zero(&coeff) {
            continue;
        }
        for (j, rvj) in row_v.iter().enumerate() {
            let delta = S::mul(&coeff, rvj);
            if S::is_zero(&delta) {
                continue;
            }
            let cur = r.get(i, j);
            let next = S::add(cur, &delta);
            if next != *cur {
                r.set(i, j, next);
                changed += 1;
            }
        }
    }
    changed
}

/// Counters exposed through the service's `STATS` command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Total `INSERT` commands applied to the graph.
    pub inserts: u64,
    /// Inserts absorbed by the rank-1 update (closure was clean).
    pub incremental_inserts: u64,
    /// Reachable pairs added by rank-1 updates.
    pub pairs_added: u64,
    /// Total `DELETE` commands that removed a present edge.
    pub deletes: u64,
    /// Full recomputes triggered by deletes (coalesced: consecutive
    /// deletes share one).
    pub recomputes: u64,
}

/// A pending delete-fallback recompute, split out so a server can batch
/// many DAG closures into one packed run. Produced by
/// [`IncrementalClosure::prepare_recompute`]; the (possibly padded) closed
/// DAG matrix goes back in through
/// [`IncrementalClosure::complete_recompute`].
#[derive(Clone, Debug)]
pub struct RecomputeJob {
    cond: Condensation,
    /// Reflexive adjacency of the component DAG, padded up to
    /// [`RecomputeJob::size`] so same-bucket jobs share an engine plan.
    pub dag: DenseMatrix<Bool>,
}

impl RecomputeJob {
    /// Padded DAG dimension (power of two, at least 2 — the minimum the
    /// engines accept, and a coarse bucket that keeps plans warm).
    pub fn size(&self) -> usize {
        self.dag.rows()
    }

    /// Number of real (unpadded) components.
    pub fn components(&self) -> usize {
        self.cond.len()
    }
}

/// Rounds a component count up to its plan bucket: the next power of two,
/// floored at 2 (engines require `n ≥ 2`).
pub fn dag_bucket(components: usize) -> usize {
    components.next_power_of_two().max(2)
}

/// A transitive closure kept current under edge inserts and deletes.
///
/// Inserts are `O(n²/64)` rank-1 bitset updates; deletes mark the closure
/// dirty and the next query pays one per-SCC recompute (via
/// [`closure_via_condensation`], or an engine-backed batch through the
/// two-phase API).
#[derive(Clone, Debug)]
pub struct IncrementalClosure {
    graph: DiGraph,
    closure: BitMatrix,
    dirty: bool,
    stats: IncrementalStats,
}

impl IncrementalClosure {
    /// Builds the closure of `graph` and takes ownership of it.
    pub fn new(graph: DiGraph) -> Self {
        let closure = closure_via_condensation(&graph);
        Self {
            graph,
            closure,
            dirty: false,
            stats: IncrementalStats::default(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The current graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// True when a delete has invalidated the closure and a recompute is
    /// pending.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Update counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// The closure matrix, recomputing in software first if dirty.
    pub fn closure(&mut self) -> &BitMatrix {
        self.refresh();
        &self.closure
    }

    /// The closure matrix if it is current; `None` while dirty. The
    /// non-blocking read path of a concurrent server: answering from a
    /// clean closure needs no mutable access at all.
    pub fn closure_if_clean(&self) -> Option<&BitMatrix> {
        (!self.dirty).then_some(&self.closure)
    }

    /// The closure matrix as-is, possibly stale (missing the effect of
    /// deletes since the last recompute). Degraded reads under overload
    /// answer from this rather than blocking behind a recompute; callers
    /// must surface the staleness ([`IncrementalClosure::is_dirty`]).
    pub fn stale_closure(&self) -> &BitMatrix {
        &self.closure
    }

    /// Reachability query (refreshes a dirty closure in software).
    pub fn reach(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n() && v < self.n(), "vertex out of range");
        self.refresh();
        self.closure.get(u, v)
    }

    /// Inserts edge `u → v`. On a clean closure this is the rank-1 update;
    /// on a dirty one the edge just joins the pending recompute. Returns
    /// the number of newly reachable pairs (0 when dirty or implied).
    pub fn insert(&mut self, u: usize, v: usize) -> usize {
        assert!(u < self.n() && v < self.n(), "vertex out of range");
        self.graph.add_edge(u, v);
        self.stats.inserts += 1;
        if self.dirty {
            return 0;
        }
        self.stats.incremental_inserts += 1;
        let added = self.closure.insert_edge_closed(u, v);
        self.stats.pairs_added += added as u64;
        added
    }

    /// Deletes edge `u → v` if present, marking the closure dirty.
    /// Returns whether the edge existed. Deleting an absent edge leaves
    /// the closure clean.
    pub fn delete(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n() && v < self.n(), "vertex out of range");
        if self.graph.remove_edge(u, v) {
            self.stats.deletes += 1;
            self.dirty = true;
            true
        } else {
            false
        }
    }

    /// Software recompute of a dirty closure (condensation path).
    pub fn refresh(&mut self) {
        if !self.dirty {
            return;
        }
        self.closure = closure_via_condensation(&self.graph);
        self.dirty = false;
        self.stats.recomputes += 1;
    }

    /// First half of an engine-batched recompute: condense the current
    /// graph and emit its padded DAG adjacency (reflexive, bucket-sized by
    /// [`dag_bucket`]). Returns `None` when the closure is clean.
    pub fn prepare_recompute(&self) -> Option<RecomputeJob> {
        if !self.dirty {
            return None;
        }
        let cond = Condensation::from_graph(&self.graph);
        let size = dag_bucket(cond.len());
        let mut dag = DenseMatrix::<Bool>::zeros(size, size);
        for d in 0..size {
            dag.set(d, d, true);
        }
        for &(a, b) in &cond.dag_edges {
            dag.set(a, b, true);
        }
        Some(RecomputeJob { cond, dag })
    }

    /// Second half: installs the closed DAG matrix (same shape as
    /// [`RecomputeJob::dag`], padding ignored) and clears the dirty flag.
    ///
    /// # Panics
    /// Panics if `closed` is smaller than the job's component count.
    pub fn complete_recompute(&mut self, job: &RecomputeJob, closed: &DenseMatrix<Bool>) {
        let bits = BitMatrix::from_dense(closed);
        self.closure = job.cond.expand_closure(&bits);
        self.dirty = false;
        self.stats.recomputes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gnp;
    use systolic_semiring::{warshall, MinPlus};
    use systolic_util::Rng;

    fn oracle(g: &DiGraph) -> BitMatrix {
        BitMatrix::from_dense(&g.adjacency_matrix()).transitive_closure()
    }

    #[test]
    fn insert_stream_matches_recompute() {
        let mut rng = Rng::seed_from_u64(97);
        for n in [3usize, 17, 50] {
            let mut inc = IncrementalClosure::new(DiGraph::new(n));
            for _ in 0..4 * n {
                let u = rng.gen_usize(n);
                let v = rng.gen_usize(n);
                inc.insert(u, v);
                let want = oracle(inc.graph());
                assert_eq!(*inc.closure(), want, "n={n}");
            }
            assert!(inc.stats().incremental_inserts == inc.stats().inserts);
            assert_eq!(inc.stats().recomputes, 0, "inserts never recompute");
        }
    }

    #[test]
    fn delete_dirties_and_coalesces() {
        let mut g = DiGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5)] {
            g.add_edge(u, v);
        }
        let mut inc = IncrementalClosure::new(g);
        assert!(inc.reach(0, 5));
        // Two deletes, one recompute.
        assert!(inc.delete(3, 4));
        assert!(inc.delete(2, 3));
        assert!(inc.is_dirty());
        assert!(!inc.reach(0, 5));
        assert!(!inc.reach(0, 3));
        assert!(inc.reach(0, 2));
        assert_eq!(inc.stats().recomputes, 1);
        let want = oracle(inc.graph());
        assert_eq!(*inc.closure(), want);
        // Deleting an absent edge stays clean.
        assert!(!inc.delete(5, 0));
        assert!(!inc.is_dirty());
    }

    #[test]
    fn mixed_stream_matches_recompute() {
        let mut rng = Rng::seed_from_u64(4242);
        let n = 24;
        let mut inc = IncrementalClosure::new(gnp(n, 0.08, 1));
        for step in 0..300 {
            let u = rng.gen_usize(n);
            let v = rng.gen_usize(n);
            match rng.gen_usize(4) {
                0 => {
                    inc.delete(u, v);
                }
                _ => {
                    inc.insert(u, v);
                }
            }
            if step % 7 == 0 {
                let want = oracle(inc.graph());
                assert_eq!(*inc.closure(), want, "step {step}");
            }
        }
        let want = oracle(inc.graph());
        assert_eq!(*inc.closure(), want);
    }

    #[test]
    fn two_phase_recompute_matches_software() {
        let mut inc = IncrementalClosure::new(gnp(20, 0.15, 9));
        assert!(inc.prepare_recompute().is_none(), "clean → no job");
        // Force a known deletion: remove an arbitrary existing edge.
        let (u, v) = {
            let g = inc.graph();
            (0..20)
                .find_map(|u| g.successors(u).first().map(|&v| (u, v)))
                .expect("graph has edges")
        };
        inc.delete(u, v);
        let job = inc.prepare_recompute().expect("dirty → job");
        assert!(job.size().is_power_of_two() && job.size() >= 2);
        assert!(job.components() <= job.size());
        // Close the padded DAG in software, as the engine batch would.
        let closed = warshall(&job.dag);
        inc.complete_recompute(&job, &closed);
        assert!(!inc.is_dirty());
        let want = oracle(inc.graph());
        assert_eq!(*inc.closure(), want);
    }

    #[test]
    fn rank_one_update_bool_matches_bitset_path() {
        let mut rng = Rng::seed_from_u64(55);
        let n = 15;
        let g = gnp(n, 0.1, 3);
        let mut dense = warshall(&g.adjacency_matrix());
        let mut bits = BitMatrix::from_dense(&g.adjacency_matrix()).transitive_closure();
        for _ in 0..40 {
            let (u, v) = (rng.gen_usize(n), rng.gen_usize(n));
            let changed = rank_one_update::<systolic_semiring::Bool>(&mut dense, u, v, &true);
            let added = bits.insert_edge_closed(u, v);
            assert_eq!(changed, added);
            assert_eq!(BitMatrix::from_dense(&dense), bits);
        }
    }

    #[test]
    fn rank_one_update_minplus_matches_recompute() {
        let mut rng = Rng::seed_from_u64(77);
        let n = 12;
        // Start from the edgeless closure (identity: 0 on the diagonal,
        // +inf elsewhere).
        let mut adj = DenseMatrix::<MinPlus>::zeros(n, n);
        for d in 0..n {
            adj.set(d, d, 0);
        }
        let mut closed = warshall(&adj);
        for _ in 0..60 {
            let (u, v) = (rng.gen_usize(n), rng.gen_usize(n));
            let w = 1 + rng.gen_usize(9) as u64;
            let cur = *adj.get(u, v);
            adj.set(u, v, cur.min(w));
            rank_one_update::<MinPlus>(&mut closed, u, v, &w);
            assert_eq!(closed, warshall(&adj), "insert {u}→{v} w={w}");
        }
    }

    #[test]
    fn dag_bucket_floors_and_rounds() {
        assert_eq!(dag_bucket(0), 2);
        assert_eq!(dag_bucket(1), 2);
        assert_eq!(dag_bucket(2), 2);
        assert_eq!(dag_bucket(3), 4);
        assert_eq!(dag_bucket(9), 16);
    }
}
