//! Scalable transitive closure over CSR graphs: condense, close the
//! component DAG, answer queries — without ever materializing the dense
//! `n×n` result.
//!
//! The pipeline is the same condensation story as
//! [`crate::closure_via_condensation`], rebuilt for the sparse data plane:
//!
//! 1. **Condense on CSR** ([`condense_csr`]): an iterative Tarjan pass
//!    over [`CsrGraph`] emits component ids in *reverse topological*
//!    order (every condensed-DAG edge runs from a higher id to a lower
//!    one), in `O(n + e)` with flat `u32` arrays.
//! 2. **Close the DAG**: in *Exact* mode a `c×c` [`BitMatrix`] is filled
//!    by one ascending-id row-union sweep — when row `a` is processed,
//!    every successor row is already complete, so the sweep is
//!    `O(e_dag · c/64)` with no fixed point iteration. In *OnDemand* mode
//!    (chosen when `c²` bits would blow the memory budget) no closure
//!    matrix exists at all; queries run a DFS over the condensed DAG with
//!    an id-order early exit (`x < target` prunes — lower ids can only
//!    reach lower ids).
//! 3. **Never expand**: the vertex-level closure is answered through
//!    [`SparseClosure::reachable`] / [`SparseClosure::row`]; the dense
//!    `n×n` matrix is only built by [`SparseClosure::to_bitmatrix`] for
//!    small-`n` equivalence tests.
//!
//! Memory model: the sparse path pays `O(n + e)` for the graph and
//! condensation plus — only in Exact mode — `c·⌈c/64⌉·8` bytes for the
//! closure of the *component* DAG, never `n²/8` for the vertex closure.

use crate::csr::CsrGraph;
use systolic_semiring::BitMatrix;

/// SCC condensation of a [`CsrGraph`], with components grouped in flat
/// CSR-style arrays (no per-component `Vec` allocations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseCondensation {
    /// Component id of each vertex (reverse-topological: every condensed
    /// edge goes from a higher id to a lower one).
    pub comp_of: Vec<u32>,
    /// `comp_ptr[c]..comp_ptr[c+1]` spans `comp_vertices` of component `c`.
    comp_ptr: Vec<usize>,
    /// Member vertices grouped by component, ascending within each group.
    comp_vertices: Vec<u32>,
    /// The condensed DAG (deduplicated inter-component edges).
    pub dag: CsrGraph,
}

impl SparseCondensation {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.comp_ptr.len() - 1
    }

    /// True when the graph had no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Member vertices of component `c`, ascending.
    pub fn component(&self, c: usize) -> &[u32] {
        &self.comp_vertices[self.comp_ptr[c]..self.comp_ptr[c + 1]]
    }

    /// Iterates components in id order.
    pub fn components(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.len()).map(|c| self.component(c))
    }

    /// Number of components with more than one vertex.
    pub fn nontrivial_count(&self) -> usize {
        self.components().filter(|c| c.len() > 1).count()
    }
}

/// Iterative Tarjan SCC over CSR. Component ids come out sinks-first
/// (reverse topological), matching [`crate::Condensation::from_graph`].
pub fn condense_csr(g: &CsrGraph) -> SparseCondensation {
    let n = g.n();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp_of = vec![UNVISITED; n];
    let mut comp_count = 0u32;
    let mut next_index = 0u32;
    // Explicit DFS frames: (vertex, next successor position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root as u32, 0));
        while let Some(&(v, succ_pos)) = frames.last() {
            let v = v as usize;
            if succ_pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v as u32);
                on_stack[v] = true;
            }
            if let Some(&w) = g.successors(v).get(succ_pos) {
                frames.last_mut().expect("frame present").1 += 1;
                let w = w as usize;
                if index[w] == UNVISITED {
                    frames.push((w as u32, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                if lowlink[v] == index[v] {
                    let id = comp_count;
                    comp_count += 1;
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow") as usize;
                        on_stack[w] = false;
                        comp_of[w] = id;
                        if w == v {
                            break;
                        }
                    }
                }
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let p = parent as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
            }
        }
    }
    let c = comp_count as usize;
    // Group vertices by component with a counting-sort scatter; visiting
    // sources ascending leaves each group sorted.
    let mut comp_ptr = vec![0usize; c + 1];
    for &cid in &comp_of {
        comp_ptr[cid as usize + 1] += 1;
    }
    for i in 0..c {
        comp_ptr[i + 1] += comp_ptr[i];
    }
    let mut comp_vertices = vec![0u32; n];
    let mut cursor = comp_ptr.clone();
    for (u, &cid) in comp_of.iter().enumerate() {
        comp_vertices[cursor[cid as usize]] = u as u32;
        cursor[cid as usize] += 1;
    }
    // Condensed DAG: inter-component edges, deduplicated by the CSR
    // builder. Every edge (a, b) has a > b by the reverse-topological id
    // order.
    let mut dag_edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..n {
        let cu = comp_of[u];
        for &v in g.successors(u) {
            let cv = comp_of[v as usize];
            if cu != cv {
                debug_assert!(cu > cv, "Tarjan ids must be reverse-topological");
                dag_edges.push((cu, cv));
            }
        }
    }
    let dag = CsrGraph::from_edges(c, &dag_edges);
    SparseCondensation {
        comp_of,
        comp_ptr,
        comp_vertices,
        dag,
    }
}

/// How the component-DAG closure is represented.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ClosureMode {
    /// `c×c` bitset closure held in memory: `O(1)` queries, exact fill.
    Exact,
    /// No closure matrix: queries DFS the condensed DAG with id-order
    /// pruning; fill is estimated by sampling.
    OnDemand,
}

/// Tuning knobs for [`SparseClosure`].
#[derive(Copy, Clone, Debug)]
pub struct SparseOptions {
    /// Budget for the `c×c` DAG closure matrix; above it the solver
    /// falls back to [`ClosureMode::OnDemand`]. Default 1 GiB.
    pub max_closure_bytes: usize,
    /// When set, Exact-mode DAG closure runs through the tiled systolic
    /// bridge ([`systolic_partition::tiled`]) at this tile size instead
    /// of the software row-union sweep.
    pub tile: Option<usize>,
}

impl Default for SparseOptions {
    fn default() -> Self {
        Self {
            max_closure_bytes: 1 << 30,
            tile: None,
        }
    }
}

enum DagClosure {
    Exact(BitMatrix),
    OnDemand,
}

/// Fill-in (number of reachable vertex pairs, reflexive) — exact or a
/// sampled estimate, always labeled.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Fill {
    /// Reachable ordered pairs `(u, v)` including `u = v`.
    pub pairs: f64,
    /// True when `pairs` was counted exactly rather than sampled.
    pub exact: bool,
}

/// Occupancy/footprint summary of a [`SparseClosure`], for `--stats`.
#[derive(Clone, Debug)]
pub struct SparseStats {
    /// Vertex count of the input graph.
    pub n: usize,
    /// Edge count of the input graph.
    pub edges: usize,
    /// Strongly connected component count.
    pub scc_count: usize,
    /// Components with more than one vertex.
    pub nontrivial_sccs: usize,
    /// Edges of the condensed DAG.
    pub dag_edges: usize,
    /// Closure representation in use.
    pub mode: ClosureMode,
    /// Analytic heap footprint of the solver (graph + condensation +
    /// closure matrix when Exact).
    pub memory_bytes: usize,
    /// Reflexive-transitive fill-in.
    pub fill: Fill,
}

/// Transitive closure of a [`CsrGraph`] answered through the condensation,
/// with the dense `n×n` expansion replaced by a query API.
pub struct SparseClosure {
    cond: SparseCondensation,
    closed: DagClosure,
    graph_bytes: usize,
}

impl SparseClosure {
    /// Closes `g` with [`SparseOptions::default`].
    pub fn new(g: &CsrGraph) -> Self {
        Self::with_options(g, SparseOptions::default())
    }

    /// Closes `g`, choosing [`ClosureMode`] by the memory budget.
    pub fn with_options(g: &CsrGraph, opts: SparseOptions) -> Self {
        let cond = condense_csr(g);
        let c = cond.len();
        let closure_bytes = Self::exact_closure_bytes(c);
        let closed = if closure_bytes <= opts.max_closure_bytes {
            let bits = match opts.tile {
                Some(t) => {
                    let edges: Vec<(u32, u32)> = cond.dag.edges().collect();
                    systolic_partition::tiled::tiled_dag_closure(c, &edges, t).0
                }
                None => {
                    // Ascending-id sweep: every condensed edge (a, b) has
                    // a > b, so row b is complete before row a reads it.
                    let mut m = BitMatrix::identity(c);
                    for a in 0..c {
                        for &b in cond.dag.successors(a) {
                            m.or_row_into(b as usize, a);
                        }
                    }
                    m
                }
            };
            DagClosure::Exact(bits)
        } else {
            DagClosure::OnDemand
        };
        let graph_bytes = g.memory_bytes();
        Self {
            cond,
            closed,
            graph_bytes,
        }
    }

    fn exact_closure_bytes(c: usize) -> usize {
        c.saturating_mul(c.div_ceil(64)).saturating_mul(8)
    }

    /// The underlying condensation.
    pub fn condensation(&self) -> &SparseCondensation {
        &self.cond
    }

    /// Which representation the budget selected.
    pub fn mode(&self) -> ClosureMode {
        match self.closed {
            DagClosure::Exact(_) => ClosureMode::Exact,
            DagClosure::OnDemand => ClosureMode::OnDemand,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.cond.comp_of.len()
    }

    /// Reflexive reachability `u →* v`.
    pub fn reachable(&self, u: usize, v: usize) -> bool {
        if u == v {
            return true;
        }
        let (cu, cv) = (self.cond.comp_of[u] as usize, self.cond.comp_of[v] as usize);
        if cu == cv {
            return true;
        }
        match &self.closed {
            DagClosure::Exact(m) => m.get(cu, cv),
            DagClosure::OnDemand => {
                // Reverse-topological ids: a component only reaches lower
                // ids, so cu < cv is immediately unreachable and the DFS
                // prunes below the target.
                if cu < cv {
                    return false;
                }
                self.dfs_reaches(cu, cv)
            }
        }
    }

    fn dfs_reaches(&self, from: usize, target: usize) -> bool {
        let c = self.cond.len();
        let mut visited = vec![0u64; c.div_ceil(64)];
        let mut work = vec![from as u32];
        visited[from / 64] |= 1u64 << (from % 64);
        while let Some(x) = work.pop() {
            for &y in self.cond.dag.successors(x as usize) {
                let y = y as usize;
                if y == target {
                    return true;
                }
                // Ids below the target cannot reach back up.
                if y < target {
                    continue;
                }
                let (w, b) = (y / 64, 1u64 << (y % 64));
                if visited[w] & b == 0 {
                    visited[w] |= b;
                    work.push(y as u32);
                }
            }
        }
        false
    }

    /// Component ids reachable from component `from` (inclusive), by DFS.
    fn dfs_reach_set(&self, from: usize) -> Vec<u32> {
        let c = self.cond.len();
        let mut visited = vec![0u64; c.div_ceil(64)];
        let mut out = vec![from as u32];
        visited[from / 64] |= 1u64 << (from % 64);
        let mut head = 0;
        while head < out.len() {
            let x = out[head] as usize;
            head += 1;
            for &y in self.cond.dag.successors(x) {
                let (w, b) = (y as usize / 64, 1u64 << (y as usize % 64));
                if visited[w] & b == 0 {
                    visited[w] |= b;
                    out.push(y);
                }
            }
        }
        out
    }

    /// Component ids reachable from `comp` (inclusive), whatever the mode.
    fn reach_comps(&self, comp: usize) -> Vec<u32> {
        match &self.closed {
            DagClosure::Exact(m) => {
                let mut out = Vec::new();
                for (w, &word) in m.row_words(comp).iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        let cid = w * 64 + b;
                        if cid < self.cond.len() {
                            out.push(cid as u32);
                        }
                        bits &= bits - 1;
                    }
                }
                out
            }
            DagClosure::OnDemand => self.dfs_reach_set(comp),
        }
    }

    /// All vertices reachable from `u` (including `u`), ascending. This is
    /// the sparse replacement for a dense closure row.
    pub fn row(&self, u: usize) -> Vec<u32> {
        let comps = self.reach_comps(self.cond.comp_of[u] as usize);
        let mut out = Vec::new();
        for &cid in &comps {
            out.extend_from_slice(self.cond.component(cid as usize));
        }
        out.sort_unstable();
        out
    }

    /// Number of vertices reachable from `u` (including `u`) without
    /// materializing the row.
    pub fn row_len(&self, u: usize) -> usize {
        self.reach_comps(self.cond.comp_of[u] as usize)
            .iter()
            .map(|&cid| self.cond.component(cid as usize).len())
            .sum()
    }

    /// Reflexive-transitive fill-in. Exact (component-size-weighted count
    /// over the closure matrix) when the component count is small enough
    /// to scan; otherwise a labeled estimate from `samples` random source
    /// vertices (deterministic in `seed`).
    pub fn fill(&self, samples: usize, seed: u64) -> Fill {
        const EXACT_COMP_LIMIT: usize = 20_000;
        let n = self.n();
        if n == 0 {
            return Fill {
                pairs: 0.0,
                exact: true,
            };
        }
        let c = self.cond.len();
        if matches!(self.closed, DagClosure::Exact(_)) && c <= EXACT_COMP_LIMIT {
            let mut pairs = 0f64;
            for cu in 0..c {
                let reach: usize = self
                    .reach_comps(cu)
                    .iter()
                    .map(|&cid| self.cond.component(cid as usize).len())
                    .sum();
                pairs += (self.cond.component(cu).len() * reach) as f64;
            }
            return Fill { pairs, exact: true };
        }
        // Sampled: mean reachable-set size over random vertices × n.
        let mut rng = systolic_util::Rng::seed_from_u64(seed);
        let k = samples.max(1).min(n);
        let mut total = 0f64;
        for _ in 0..k {
            let u = rng.gen_usize(n);
            total += self.row_len(u) as f64;
        }
        Fill {
            pairs: total / k as f64 * n as f64,
            exact: false,
        }
    }

    /// Analytic heap footprint: CSR graph + condensation arrays + the
    /// closure matrix when Exact. The point of the sparse plane: this is
    /// `O(n + e + c²/8)`, never `n²/8`.
    pub fn memory_bytes(&self) -> usize {
        let cond_bytes = self.cond.comp_of.len() * 4
            + self.cond.comp_ptr.len() * std::mem::size_of::<usize>()
            + self.cond.comp_vertices.len() * 4
            + self.cond.dag.memory_bytes();
        let closure_bytes = match &self.closed {
            DagClosure::Exact(_) => Self::exact_closure_bytes(self.cond.len()),
            DagClosure::OnDemand => 0,
        };
        self.graph_bytes + cond_bytes + closure_bytes
    }

    /// Occupancy summary (fill via [`SparseClosure::fill`] with the given
    /// sampling parameters).
    pub fn stats(&self, fill_samples: usize, seed: u64) -> SparseStats {
        SparseStats {
            n: self.n(),
            edges: self.graph_edges(),
            scc_count: self.cond.len(),
            nontrivial_sccs: self.cond.nontrivial_count(),
            dag_edges: self.cond.dag.edge_count(),
            mode: self.mode(),
            memory_bytes: self.memory_bytes(),
            fill: self.fill(fill_samples, seed),
        }
    }

    fn graph_edges(&self) -> usize {
        // The input graph is not retained; recover the edge count from the
        // stored byte figure (row_ptr (n+1)·8 + col_idx e·4).
        (self.graph_bytes - (self.n() + 1) * std::mem::size_of::<usize>()) / 4
    }

    /// Expands to the dense vertex-level closure — **test/oracle use
    /// only**, defeats the entire point at scale.
    ///
    /// # Panics
    /// Panics in OnDemand mode (the expansion would imply the budget was
    /// wrong) — use Exact mode for oracle comparisons.
    pub fn to_bitmatrix(&self) -> BitMatrix {
        let DagClosure::Exact(m) = &self.closed else {
            panic!("to_bitmatrix on an OnDemand closure");
        };
        let n = self.n();
        let mut out = BitMatrix::zeros(n);
        for cu in 0..self.cond.len() {
            let comps = self.reach_comps(cu);
            let _ = m; // closure matrix consumed through reach_comps
            for &u in self.cond.component(cu) {
                for &cid in &comps {
                    for &v in self.cond.component(cid as usize) {
                        out.set(u as usize, v as usize, true);
                    }
                }
            }
        }
        out
    }
}

/// Convenience: close `g` with default options.
pub fn sparse_closure(g: &CsrGraph) -> SparseClosure {
    SparseClosure::new(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{bowtie, gnp_csr, powerlaw};

    fn oracle(g: &CsrGraph) -> BitMatrix {
        crate::closure_via_condensation(&g.to_digraph())
    }

    #[test]
    fn condense_csr_matches_dense_condensation() {
        let g = gnp_csr(80, 0.05, 21);
        let sparse = condense_csr(&g);
        let dense = crate::Condensation::from_graph(&g.to_digraph());
        let mut a: Vec<Vec<u32>> = sparse.components().map(|s| s.to_vec()).collect();
        let mut b: Vec<Vec<u32>> = dense
            .components
            .iter()
            .map(|c| c.iter().map(|&v| v as u32).collect())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        for (a, b) in sparse.dag.edges() {
            assert!(a > b, "edge {a}→{b} not reverse-topological");
        }
    }

    #[test]
    fn exact_mode_matches_oracle() {
        for (n, p, seed) in [
            (1usize, 0.5, 1u64),
            (17, 0.1, 2),
            (64, 0.06, 3),
            (96, 0.03, 4),
        ] {
            let g = gnp_csr(n, p, seed);
            let sc = SparseClosure::new(&g);
            assert_eq!(sc.mode(), ClosureMode::Exact);
            assert_eq!(sc.to_bitmatrix(), oracle(&g), "n={n} seed={seed}");
        }
    }

    #[test]
    fn ondemand_mode_matches_oracle_querywise() {
        let g = powerlaw(120, 3, 7);
        // Force OnDemand with a zero budget.
        let sc = SparseClosure::with_options(
            &g,
            SparseOptions {
                max_closure_bytes: 0,
                tile: None,
            },
        );
        assert_eq!(sc.mode(), ClosureMode::OnDemand);
        let want = oracle(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(
                    sc.reachable(u, v),
                    want.get(u, v),
                    "query ({u}, {v}) diverged"
                );
            }
        }
    }

    #[test]
    fn rows_match_oracle_in_both_modes() {
        let g = bowtie(90, 11);
        let want = oracle(&g);
        for opts in [
            SparseOptions::default(),
            SparseOptions {
                max_closure_bytes: 0,
                tile: None,
            },
        ] {
            let sc = SparseClosure::with_options(&g, opts);
            for u in 0..g.n() {
                let row = sc.row(u);
                let dense_row: Vec<u32> = (0..g.n())
                    .filter(|&v| want.get(u, v))
                    .map(|v| v as u32)
                    .collect();
                assert_eq!(row, dense_row, "row {u}");
                assert_eq!(sc.row_len(u), dense_row.len());
            }
        }
    }

    #[test]
    fn fill_exact_matches_pair_count() {
        let g = gnp_csr(70, 0.04, 13);
        let sc = SparseClosure::new(&g);
        let fill = sc.fill(10, 0);
        assert!(fill.exact);
        let want = oracle(&g).count_ones() as f64;
        assert_eq!(fill.pairs, want);
    }

    #[test]
    fn fill_sampled_is_plausible() {
        let g = powerlaw(200, 3, 5);
        let sc = SparseClosure::with_options(
            &g,
            SparseOptions {
                max_closure_bytes: 0,
                tile: None,
            },
        );
        let exact = oracle(&g).count_ones() as f64;
        let est = sc.fill(200, 42);
        assert!(!est.exact);
        // Full-population sampling (k = n) still averages per-vertex rows;
        // allow a broad band.
        assert!(est.pairs > exact * 0.5 && est.pairs < exact * 2.0);
    }

    #[test]
    fn memory_stays_linear_in_dag() {
        let g = powerlaw(4000, 4, 9);
        let sc = SparseClosure::new(&g);
        let s = sc.stats(50, 1);
        assert_eq!(s.n, 4000);
        assert!(s.scc_count <= 4000);
        assert!(s.edges >= 4000);
        // Never n²/8 = 2 MB dense: the budget keeps it at O(n+e+c²/8).
        assert!(s.memory_bytes < 1 << 30);
        assert!(s.nontrivial_sccs > 0);
    }

    #[test]
    fn empty_and_singleton() {
        let sc = SparseClosure::new(&CsrGraph::empty(0));
        assert_eq!(sc.n(), 0);
        assert_eq!(sc.fill(4, 0).pairs, 0.0);
        let sc = SparseClosure::new(&CsrGraph::empty(1));
        assert!(sc.reachable(0, 0));
        assert_eq!(sc.row(0), vec![0]);
    }
}
