//! Compressed-sparse-row graph storage and a Matrix-Market-style text
//! format.
//!
//! [`CsrGraph`] stores a digraph as two flat arrays — `row_ptr` (n+1
//! offsets) and `col_idx` (edge targets) — so a graph with `e` edges costs
//! `O(n + e)` memory regardless of density. This is the entry format of
//! the sparse data plane: generators emit it directly, the Matrix-Market
//! loader parses into it, and [`crate::sparse`] condenses it without ever
//! materializing a dense `n×n` adjacency.
//!
//! The text format is the coordinate Matrix-Market dialect used by sparse
//! linear-algebra tools: `%`-prefixed comment lines, one `rows cols nnz`
//! size line, then one `row col` pair per line, **1-based**. Writing a
//! graph and reading it back is bit-identical (edges come out sorted and
//! deduplicated both ways).

use std::fmt;

/// A digraph in compressed-sparse-row form. Vertex ids fit in `u32`
/// (4 billion vertices is beyond the data plane's ambitions; halving the
/// index width halves the edge array).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `row_ptr[u]..row_ptr[u+1]` spans `col_idx` entries of vertex `u`.
    row_ptr: Vec<usize>,
    /// Edge targets, sorted and deduplicated within each row.
    col_idx: Vec<u32>,
}

impl CsrGraph {
    /// An edgeless graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            row_ptr: vec![0; n + 1],
            col_idx: Vec::new(),
        }
    }

    /// Builds from an edge list via counting-sort scatter: `O(n + e)`, two
    /// passes, no per-vertex `Vec` allocations. Self-loops are kept if
    /// present (the closure is reflexive anyway); duplicates are removed.
    ///
    /// # Panics
    /// Panics if any endpoint is `≥ n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut row_ptr = vec![0usize; n + 1];
        for &(u, _) in edges {
            assert!((u as usize) < n, "edge source {u} out of range (n={n})");
            row_ptr[u as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; edges.len()];
        let mut cursor = row_ptr.clone();
        for &(u, v) in edges {
            assert!((v as usize) < n, "edge target {v} out of range (n={n})");
            col_idx[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        let mut g = Self { row_ptr, col_idx };
        g.sort_dedup_rows();
        g
    }

    /// Builds from per-row successor lists that are **already sorted and
    /// deduplicated** (generators producing ordered output use this to
    /// skip the normalization pass).
    pub(crate) fn from_sorted_rows(rows: Vec<Vec<u32>>) -> Self {
        let n = rows.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let total: usize = rows.iter().map(Vec::len).sum();
        let mut col_idx = Vec::with_capacity(total);
        for row in rows {
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row not sorted");
            col_idx.extend_from_slice(&row);
            row_ptr.push(col_idx.len());
        }
        Self { row_ptr, col_idx }
    }

    fn sort_dedup_rows(&mut self) {
        let n = self.n();
        let mut write = 0usize;
        let mut new_ptr = vec![0usize; n + 1];
        for u in 0..n {
            let (lo, hi) = (self.row_ptr[u], self.row_ptr[u + 1]);
            self.col_idx[lo..hi].sort_unstable();
            let mut prev: Option<u32> = None;
            for i in lo..hi {
                let v = self.col_idx[i];
                if prev != Some(v) {
                    self.col_idx[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            new_ptr[u + 1] = write;
        }
        self.col_idx.truncate(write);
        self.row_ptr = new_ptr;
    }

    /// Converts an adjacency-list [`crate::DiGraph`].
    pub fn from_digraph(g: &crate::DiGraph) -> Self {
        let rows = (0..g.n())
            .map(|u| {
                let mut row: Vec<u32> = g.successors(u).iter().map(|&v| v as u32).collect();
                row.sort_unstable();
                row
            })
            .collect();
        Self::from_sorted_rows(rows)
    }

    /// Converts back to an adjacency-list [`crate::DiGraph`] (small graphs
    /// only — the dense solvers take `DiGraph`).
    pub fn to_digraph(&self) -> crate::DiGraph {
        let mut g = crate::DiGraph::new(self.n());
        for u in 0..self.n() {
            for &v in self.successors(u) {
                g.add_edge(u, v as usize);
            }
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.col_idx.len()
    }

    /// Successors of `u`, sorted ascending.
    #[inline]
    pub fn successors(&self, u: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[u]..self.row_ptr[u + 1]]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.row_ptr[u + 1] - self.row_ptr[u]
    }

    /// True iff the edge `u → v` is present (binary search within the row).
    pub fn has_edge(&self, u: usize, v: u32) -> bool {
        self.successors(u).binary_search(&v).is_ok()
    }

    /// Iterates all edges in `(source, target)` order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n()).flat_map(move |u| self.successors(u).iter().map(move |&v| (u as u32, v)))
    }

    /// The reverse (transpose) graph, built in `O(n + e)`.
    pub fn transpose(&self) -> Self {
        let n = self.n();
        let mut row_ptr = vec![0usize; n + 1];
        for &v in &self.col_idx {
            row_ptr[v as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; self.col_idx.len()];
        let mut cursor = row_ptr.clone();
        // Sources visited in ascending order, so each transposed row comes
        // out already sorted.
        for u in 0..n {
            for &v in self.successors(u) {
                col_idx[cursor[v as usize]] = u as u32;
                cursor[v as usize] += 1;
            }
        }
        Self { row_ptr, col_idx }
    }

    /// Degree / occupancy statistics for `--stats` style reports.
    pub fn stats(&self) -> CsrStats {
        let n = self.n();
        let e = self.edge_count();
        let max_degree = (0..n).map(|u| self.degree(u)).max().unwrap_or(0);
        let isolated = (0..n).filter(|&u| self.degree(u) == 0).count();
        CsrStats {
            vertices: n,
            edges: e,
            avg_degree: if n == 0 { 0.0 } else { e as f64 / n as f64 },
            max_degree,
            isolated,
            density: if n == 0 {
                0.0
            } else {
                e as f64 / (n as f64 * n as f64)
            },
        }
    }

    /// Approximate heap footprint in bytes (the two flat arrays).
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
    }

    /// Serializes in the coordinate Matrix-Market dialect (1-based).
    pub fn to_matrix_market(&self) -> String {
        let mut out = String::new();
        out.push_str("%%MatrixMarket matrix coordinate pattern general\n");
        out.push_str("% systolic CsrGraph edge list (1-based: row col)\n");
        out.push_str(&format!(
            "{} {} {}\n",
            self.n(),
            self.n(),
            self.edge_count()
        ));
        for (u, v) in self.edges() {
            out.push_str(&format!("{} {}\n", u + 1, v + 1));
        }
        out
    }

    /// Parses the coordinate Matrix-Market dialect. Errors (never panics)
    /// on malformed headers, out-of-range or non-numeric coordinates, and
    /// truncated entry lists. Duplicate entries are deduplicated, so
    /// `parse(write(g)) == g` exactly.
    pub fn parse_matrix_market(text: &str) -> Result<Self, LoadError> {
        let mut lines = text.lines().enumerate();
        // Size line: first non-comment, non-blank line.
        let (n, declared_nnz) = loop {
            let Some((idx, raw)) = lines.next() else {
                return Err(LoadError::new(0, "missing size line `rows cols nnz`"));
            };
            let line = raw.trim();
            if line.is_empty() || line.starts_with('%') {
                continue;
            }
            let mut it = line.split_whitespace();
            let (Some(r), Some(c), Some(z), None) = (it.next(), it.next(), it.next(), it.next())
            else {
                return Err(LoadError::new(
                    idx + 1,
                    "size line must be exactly `rows cols nnz`",
                ));
            };
            let rows: usize = r
                .parse()
                .map_err(|_| LoadError::new(idx + 1, format!("bad row count {r:?}")))?;
            let cols: usize = c
                .parse()
                .map_err(|_| LoadError::new(idx + 1, format!("bad column count {c:?}")))?;
            if rows != cols {
                return Err(LoadError::new(
                    idx + 1,
                    format!("adjacency matrix must be square, got {rows}×{cols}"),
                ));
            }
            if rows > u32::MAX as usize {
                return Err(LoadError::new(
                    idx + 1,
                    format!("{rows} vertices exceeds the u32 id space"),
                ));
            }
            let nnz: usize = z
                .parse()
                .map_err(|_| LoadError::new(idx + 1, format!("bad entry count {z:?}")))?;
            break (rows, nnz);
        };
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(declared_nnz.min(1 << 24));
        for (idx, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('%') {
                continue;
            }
            let mut it = line.split_whitespace();
            let (Some(a), Some(b)) = (it.next(), it.next()) else {
                return Err(LoadError::new(idx + 1, "entry line must be `row col`"));
            };
            // A third token is tolerated (pattern files written with a
            // weight column); more is malformed.
            let _weight = it.next();
            if it.next().is_some() {
                return Err(LoadError::new(idx + 1, "too many fields on entry line"));
            }
            let u: usize = a
                .parse()
                .map_err(|_| LoadError::new(idx + 1, format!("bad row index {a:?}")))?;
            let v: usize = b
                .parse()
                .map_err(|_| LoadError::new(idx + 1, format!("bad column index {b:?}")))?;
            if u == 0 || v == 0 || u > n || v > n {
                return Err(LoadError::new(
                    idx + 1,
                    format!("entry ({u}, {v}) outside 1..={n}"),
                ));
            }
            edges.push(((u - 1) as u32, (v - 1) as u32));
        }
        if edges.len() != declared_nnz {
            return Err(LoadError::new(
                0,
                format!(
                    "size line declared {declared_nnz} entries but file has {}",
                    edges.len()
                ),
            ));
        }
        Ok(Self::from_edges(n, &edges))
    }

    /// Reads a Matrix-Market file from disk.
    pub fn load(path: &std::path::Path) -> Result<Self, LoadError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| LoadError::new(0, format!("{}: {e}", path.display())))?;
        Self::parse_matrix_market(&text)
    }

    /// Writes a Matrix-Market file to disk.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_matrix_market())
    }
}

/// Degree and occupancy summary of a [`CsrGraph`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CsrStats {
    /// Vertex count.
    pub vertices: usize,
    /// Edge count (after dedup).
    pub edges: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Largest out-degree.
    pub max_degree: usize,
    /// Vertices with no outgoing edges.
    pub isolated: usize,
    /// Edge density `e / n²`.
    pub density: f64,
}

impl fmt::Display for CsrStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} edges={} avg_deg={:.2} max_deg={} isolated={} density={:.2e}",
            self.vertices,
            self.edges,
            self.avg_degree,
            self.max_degree,
            self.isolated,
            self.density
        )
    }
}

/// A Matrix-Market parse/IO failure: line number (1-based, 0 when the
/// error is not tied to one line) plus a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadError {
    /// 1-based line of the offending input, 0 for file-level errors.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl LoadError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for LoadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_sorts_and_dedups() {
        let g = CsrGraph::from_edges(4, &[(2, 1), (0, 3), (0, 1), (0, 3), (2, 0)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.successors(0), &[1, 3]);
        assert_eq!(g.successors(1), &[] as &[u32]);
        assert_eq!(g.successors(2), &[0, 1]);
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(3, 0));
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn digraph_round_trip() {
        let mut d = crate::DiGraph::new(5);
        for (u, v) in [(0, 2), (2, 4), (4, 0), (1, 3)] {
            d.add_edge(u, v);
        }
        let g = CsrGraph::from_digraph(&d);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.to_digraph(), d);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (2, 1)]);
        let t = g.transpose();
        assert_eq!(t.successors(1), &[0, 2]);
        assert_eq!(t.successors(2), &[0]);
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn matrix_market_round_trip_is_bit_identical() {
        let g = CsrGraph::from_edges(6, &[(0, 5), (5, 0), (3, 3), (1, 2), (2, 1)]);
        let text = g.to_matrix_market();
        let back = CsrGraph::parse_matrix_market(&text).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.to_matrix_market(), text);
    }

    #[test]
    fn parser_accepts_comments_and_weight_column() {
        let text = "% leading comment\n\n3 3 2\n1 2 7.5\n% interior comment\n3 1\n";
        let g = CsrGraph::parse_matrix_market(text).unwrap();
        assert_eq!(g.n(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn parser_errors_not_panics() {
        let cases: &[(&str, &str)] = &[
            ("", "missing size line"),
            ("3 3\n", "exactly"),
            ("3 4 0\n", "square"),
            ("x 3 0\n", "bad row count"),
            ("2 2 1\n0 1\n", "outside"),
            ("2 2 1\n1 3\n", "outside"),
            ("2 2 1\na b\n", "bad row index"),
            ("2 2 1\n1 2 0 0\n", "too many fields"),
            ("2 2 2\n1 2\n", "declared 2 entries"),
            ("2 2 1\n1\n", "entry line must be"),
        ];
        for (text, needle) in cases {
            let err = CsrGraph::parse_matrix_market(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "input {text:?}: error {err} missing {needle:?}"
            );
        }
    }

    #[test]
    fn stats_report_degrees() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let s = g.stats();
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.isolated, 2);
        assert!((s.avg_degree - 1.0).abs() < 1e-12);
        assert!(s.to_string().contains("max_deg=3"));
    }

    #[test]
    fn empty_graph_is_well_formed() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.stats().density, 0.0);
        let text = g.to_matrix_market();
        assert_eq!(CsrGraph::parse_matrix_market(&text).unwrap(), g);
    }
}
