//! LSGP / coalescing baseline (§2, Fig. 1).
//!
//! Coalescing assigns each cell a fixed *component* of the G-graph and the
//! cell executes its component sequentially; communication between
//! components maps onto the array interconnect. The paper's reservation:
//! "requires local storage within each cell … such storage requirements
//! might be large (i.e., O(n) or O(n²))". This module quantifies that.
//!
//! For the transitive-closure G-graph, the natural coalescing gives cell
//! `c` the `h`-columns with `h ≡ c (mod m)`… but any contiguous assignment
//! must buffer, inside the cell, every column stream flowing between two
//! of its own G-nodes that it cannot consume immediately — `Θ(n²/m)` words
//! per cell — while cut-and-pile keeps cells at `O(1)` registers and puts
//! the `Θ(n²)` state in external memories shared across the schedule.

use systolic_semiring::{DenseMatrix, PathSemiring};
use systolic_transform::GGraph;

/// Storage/makespan model of a coalesced (LSGP) linear implementation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CoalescingModel {
    /// Problem size.
    pub n: usize,
    /// Cell count.
    pub m: usize,
}

impl CoalescingModel {
    /// Creates the model.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(m >= 1 && n >= 2);
        Self { n, m }
    }

    /// G-nodes per component (cell): `⌈n(n+1)/m⌉`.
    pub fn gnodes_per_cell(&self) -> usize {
        (self.n * (self.n + 1)).div_ceil(self.m)
    }

    /// Local words each cell must buffer: one full column stream (`n`
    /// words) per `h`-column owned, since the component executes its
    /// G-nodes one at a time and every inter-row stream between two owned
    /// G-nodes stays inside the cell: `Θ(n²/m)`.
    pub fn local_words_per_cell(&self) -> usize {
        let columns_owned = (2 * self.n).div_ceil(self.m);
        columns_owned * self.n
    }

    /// Cut-and-pile's local words per cell for comparison: the stream
    /// latch plus link registers — a constant.
    pub fn cut_and_pile_local_words(&self) -> usize {
        4
    }

    /// Sequential makespan of one cell's component (`gnodes × n` cycles);
    /// with balanced components this matches cut-and-pile's `n²(n+1)/m`,
    /// i.e. coalescing trades memory, not time.
    pub fn makespan_cycles(&self) -> u64 {
        self.gnodes_per_cell() as u64 * self.n as u64
    }

    /// Functional execution of the coalesced schedule (components
    /// sequential, one G-node at a time) — identical results to the
    /// G-graph stream semantics, demonstrating LSGP computes the same
    /// closure while needing the buffered state.
    pub fn closure<S: PathSemiring>(&self, a: &DenseMatrix<S>) -> DenseMatrix<S> {
        // Coalescing reorders execution but preserves dependences; the
        // G-graph evaluator is its functional specification.
        GGraph::new(self.n).eval::<S>(&systolic_semiring::reflexive(a))
    }
}

/// The §2 combined scheme: cut-and-pile first into super-partitions larger
/// than the array, then coalescing within each super-partition — "such
/// scheme would help reducing the memory requirements of applying
/// coalescing alone".
///
/// With super-partitions of `p` G-graph columns (`p ≥ m`), a cell only
/// buffers the streams of its share of one super-partition at a time:
/// `(p/m)·n` words instead of `(2n/m)·n`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HybridModel {
    /// Problem size.
    pub n: usize,
    /// Cell count.
    pub m: usize,
    /// Super-partition width in G-graph columns (`m ≤ p ≤ 2n`).
    pub partition_width: usize,
}

impl HybridModel {
    /// Creates the model.
    pub fn new(n: usize, m: usize, partition_width: usize) -> Self {
        assert!(m >= 1 && n >= 2);
        assert!(
            partition_width >= m,
            "super-partitions must cover the array"
        );
        Self {
            n,
            m,
            partition_width,
        }
    }

    /// Local words per cell: each cell coalesces `p/m` columns of the
    /// current super-partition.
    pub fn local_words_per_cell(&self) -> usize {
        self.partition_width.div_ceil(self.m) * self.n
    }

    /// Memory saving factor versus coalescing alone.
    pub fn saving_vs_coalescing(&self) -> f64 {
        let alone = CoalescingModel::new(self.n, self.m).local_words_per_cell();
        alone as f64 / self.local_words_per_cell() as f64
    }

    /// Number of super-partitions executed sequentially (the cut-and-pile
    /// outer level).
    pub fn super_partitions(&self) -> usize {
        (2 * self.n).div_ceil(self.partition_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::{warshall, Bool};

    #[test]
    fn local_storage_scales_as_n_squared_over_m() {
        let a = CoalescingModel::new(64, 8);
        assert_eq!(a.local_words_per_cell(), 16 * 64);
        let b = CoalescingModel::new(128, 8);
        // Doubling n quadruples local storage.
        assert_eq!(b.local_words_per_cell(), 4 * a.local_words_per_cell());
        // Cut-and-pile stays constant.
        assert_eq!(a.cut_and_pile_local_words(), b.cut_and_pile_local_words());
    }

    #[test]
    fn makespan_matches_cut_and_pile_ideal() {
        let mdl = CoalescingModel::new(32, 4);
        let ideal = 32u64 * 32 * 33 / 4;
        let slack = mdl.makespan_cycles() as f64 / ideal as f64;
        assert!((0.95..1.1).contains(&slack), "slack {slack}");
    }

    #[test]
    fn hybrid_interpolates_between_the_two_schemes() {
        let (n, m) = (64usize, 4usize);
        let alone = CoalescingModel::new(n, m).local_words_per_cell();
        // p = 2n degenerates to coalescing alone.
        let full = HybridModel::new(n, m, 2 * n);
        assert_eq!(full.local_words_per_cell(), alone);
        assert_eq!(full.super_partitions(), 1);
        // p = m degenerates to cut-and-pile's per-column residency.
        let tight = HybridModel::new(n, m, m);
        assert_eq!(tight.local_words_per_cell(), n);
        assert_eq!(tight.super_partitions(), 2 * n / m);
        // In between, memory shrinks proportionally.
        let mid = HybridModel::new(n, m, 16);
        assert!(mid.local_words_per_cell() < alone);
        assert!(mid.saving_vs_coalescing() > 4.0);
    }

    #[test]
    fn coalesced_execution_is_functionally_correct() {
        let mut a = DenseMatrix::<Bool>::zeros(6, 6);
        for (i, j) in [(0, 3), (3, 1), (1, 5), (5, 0), (2, 4)] {
            a.set(i, j, true);
        }
        let got = CoalescingModel::new(6, 3).closure(&a);
        assert_eq!(got, warshall(&a));
    }

    #[test]
    fn simulated_lsgp_engine_realizes_the_model() {
        // The model's predictions, checked against the *simulated* LSGP
        // engine (`systolic-partition::LsgpEngine`). The engine's measured
        // per-cell peak is exactly ⌈n/m⌉·n — the live column window — and
        // the model's ⌈2n/m⌉·n counts every owned column, so when m | n
        // the measured/analytic ratio is exactly 1/2: same Θ(n²/m), and
        // the model is a safe upper bound.
        use systolic_partition::{ClosureEngine, LsgpEngine};
        for (n, m) in [(12usize, 3usize), (16, 4), (24, 8)] {
            let mut a = DenseMatrix::<Bool>::zeros(n, n);
            for i in 0..n {
                a.set(i, (i * 5 + 3) % n, true);
            }
            let eng = LsgpEngine::new(m);
            let (got, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
            assert_eq!(got, warshall(&a), "n={n} m={m}");

            let mdl = CoalescingModel::new(n, m);
            let peak = eng.peak_local_words(&stats);
            assert_eq!(peak, n.div_ceil(m) * n, "n={n} m={m}: peak local words");
            assert_eq!(2 * peak, mdl.local_words_per_cell(), "n={n} m={m}");
            // Makespan: measured cycles exceed the sequential component
            // time only by pipeline fill/skew (≤ 30% at these sizes).
            let slack = stats.cycles as f64 / mdl.makespan_cycles() as f64;
            assert!(
                (1.0..=1.3).contains(&slack),
                "n={n} m={m}: {} cycles vs model {} (slack {slack:.3})",
                stats.cycles,
                mdl.makespan_cycles()
            );
        }
    }
}
