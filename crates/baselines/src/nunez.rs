//! The Núñez–Torralba decomposition baseline \[22\].
//!
//! Their partitioning transforms transitive closure into a *block*
//! algorithm: for each diagonal block, (1) close the block, (2) propagate
//! through the block's row and column panels, (3) rank-update the rest —
//! every step a sequence of `b × b` matrix multiplications executed on a
//! `b × b` array. The decomposition is algorithm-specific (the paper's
//! point: such schemes "depend on the algorithm and consequently might be
//! different from one algorithm to another") and the chaining needs host
//! control between every sub-problem.

use systolic_partition::EngineError;
use systolic_semiring::{matmul, matmul_acc, warshall_inplace, DenseMatrix, PathSemiring};

/// Functional blocked transitive closure with tile size `b` (the \[22\]
/// decomposition; identical in structure to
/// [`systolic_semiring::warshall_blocked`], restated here with explicit
/// sub-problem accounting).
///
/// # Panics
/// Panics on a zero tile size; use [`NunezEngine::closure`] to handle
/// that as an error.
pub fn nunez_closure<S: PathSemiring>(a: &DenseMatrix<S>, b: usize) -> DenseMatrix<S> {
    NunezEngine::new(b).closure(a).expect("valid tile size").0
}

/// Cost/control accounting of one blocked run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NunezCost {
    /// Tile side `b` (the array is `b × b`).
    pub tile: usize,
    /// Diagonal-block closures executed.
    pub diagonal_closures: usize,
    /// `b × b` matrix-multiply sub-problems executed.
    pub multiplies: usize,
    /// Host control steps: one per sub-problem chained onto the array
    /// (reconfigure sources/destinations between sub-problems).
    pub control_steps: usize,
    /// Words moved between host memory and the array: every sub-problem
    /// loads its operand tiles and unloads its result tile.
    pub load_store_words: u64,
    /// Cycles spent in compute phases (systolic `b × b` matmul pipe:
    /// `3b - 2` fill + `b` drain per sub-problem at one result column per
    /// cycle ≈ `4b` cycles each; diagonal closures take `b` passes).
    pub compute_cycles: u64,
    /// Cycles spent in non-overlapped load/unload phases (the partitioning
    /// overhead `d_i` of §4.1 — zero for cut-and-pile, nonzero here).
    pub transfer_cycles: u64,
}

impl NunezCost {
    /// Total cycles.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.transfer_cycles
    }

    /// Fraction of time lost to non-overlapped transfers.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_cycles() == 0 {
            0.0
        } else {
            self.transfer_cycles as f64 / self.total_cycles() as f64
        }
    }
}

/// Blocked-closure engine with sub-problem accounting.
#[derive(Clone, Debug)]
pub struct NunezEngine {
    b: usize,
}

impl NunezEngine {
    /// Creates an engine for a `b × b` array. A zero tile is
    /// representable but rejected by [`NunezEngine::closure`] with
    /// [`EngineError::BadInput`].
    pub fn new(b: usize) -> Self {
        Self { b }
    }

    /// Computes `A⁺` and the cost account.
    ///
    /// # Errors
    /// [`EngineError::BadInput`] on a zero tile size or a non-square
    /// input.
    pub fn closure<S: PathSemiring>(
        &self,
        a: &DenseMatrix<S>,
    ) -> Result<(DenseMatrix<S>, NunezCost), EngineError> {
        if self.b == 0 {
            return Err(EngineError::BadInput(
                "blocked closure needs a positive tile size (b ≥ 1)".into(),
            ));
        }
        if !a.is_square() {
            return Err(EngineError::BadInput(format!(
                "blocked closure input must be square, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let b = self.b;
        let mut x = systolic_semiring::reflexive(a);
        let tiles = n.div_ceil(b);
        let span = |t: usize| -> (usize, usize) {
            let lo = t * b;
            (lo, (lo + b).min(n) - lo)
        };
        let mut cost = NunezCost {
            tile: b,
            ..Default::default()
        };
        // Phase accounting per sub-problem: the [22] array loads operands,
        // computes, unloads — transfers do not overlap compute.
        let bb = b as u64;
        let mul_compute = 4 * bb; // pipe fill + drain of a b×b systolic matmul
        let mul_transfer = 3 * bb * bb / (2 * bb).max(1); // 3 tiles over 2b ports
        let mac = |cost: &mut NunezCost| {
            cost.multiplies += 1;
            cost.control_steps += 1;
            cost.load_store_words += 3 * bb * bb;
            cost.compute_cycles += mul_compute;
            cost.transfer_cycles += mul_transfer;
        };
        for t in 0..tiles {
            let (k0, kb) = span(t);
            let mut diag = x.block(k0, k0, kb, kb);
            warshall_inplace(&mut diag);
            x.set_block(k0, k0, &diag);
            cost.diagonal_closures += 1;
            cost.control_steps += 1;
            cost.load_store_words += 2 * bb * bb;
            cost.compute_cycles += bb * bb; // b passes of b cycles
            cost.transfer_cycles += bb * bb / (2 * bb).max(1) * 2;
            for u in 0..tiles {
                if u == t {
                    continue;
                }
                let (c0, cb) = span(u);
                let panel = x.block(k0, c0, kb, cb);
                let prod = matmul(&diag, &panel);
                x.set_block(k0, c0, &panel.ewise_add(&prod));
                mac(&mut cost);
                let cpanel = x.block(c0, k0, cb, kb);
                let cprod = matmul(&cpanel, &diag);
                x.set_block(c0, k0, &cpanel.ewise_add(&cprod));
                mac(&mut cost);
            }
            for u in 0..tiles {
                if u == t {
                    continue;
                }
                let (r0, rb) = span(u);
                let left = x.block(r0, k0, rb, kb);
                for v in 0..tiles {
                    if v == t {
                        continue;
                    }
                    let (c0, cb) = span(v);
                    let top = x.block(k0, c0, kb, cb);
                    let mut tgt = x.block(r0, c0, rb, cb);
                    matmul_acc(&mut tgt, &left, &top);
                    x.set_block(r0, c0, &tgt);
                    mac(&mut cost);
                }
            }
        }
        Ok((x, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::{warshall, Bool, MinPlus};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut a = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            a.set(i, j, true);
        }
        a
    }

    #[test]
    fn blocked_closure_is_correct_for_many_tiles() {
        let a = bool_adj(9, &[(0, 4), (4, 8), (8, 2), (2, 6), (6, 0), (1, 5), (5, 3)]);
        let want = warshall(&a);
        for b in [1usize, 2, 3, 4, 5, 9, 12] {
            assert_eq!(nunez_closure(&a, b), want, "tile {b}");
        }
    }

    #[test]
    fn blocked_closure_minplus() {
        let n = 6;
        let mut a = DenseMatrix::<MinPlus>::zeros(n, n);
        for (i, j, w) in [
            (0, 1, 1u64),
            (1, 2, 1),
            (2, 3, 1),
            (3, 4, 1),
            (4, 5, 1),
            (0, 5, 9),
        ] {
            a.set(i, j, w);
        }
        let (got, _) = NunezEngine::new(2).closure(&a).unwrap();
        assert_eq!(got, warshall(&a));
        assert_eq!(*got.get(0, 5), 5);
    }

    #[test]
    fn subproblem_counts_match_the_decomposition() {
        // tiles = t: per diagonal step, 2(t-1) panel products + (t-1)² rank
        // updates + 1 closure.
        let n = 12;
        let b = 4;
        let t = n / b;
        let a = bool_adj(n, &[(0, 11), (11, 5)]);
        let (_, cost) = NunezEngine::new(b).closure(&a).unwrap();
        assert_eq!(cost.diagonal_closures, t);
        assert_eq!(cost.multiplies, t * (2 * (t - 1) + (t - 1) * (t - 1)));
        assert_eq!(cost.control_steps, cost.diagonal_closures + cost.multiplies);
    }

    #[test]
    fn zero_tile_is_an_error_not_a_panic() {
        let a = bool_adj(4, &[(0, 1)]);
        match NunezEngine::new(0).closure(&a) {
            Err(EngineError::BadInput(msg)) => assert!(msg.contains("tile"), "{msg}"),
            other => panic!("expected BadInput, got {other:?}"),
        }
    }

    #[test]
    fn decomposition_has_nonzero_overhead_unlike_cut_and_pile() {
        let a = bool_adj(16, &[(0, 15), (15, 7), (7, 3)]);
        let (_, cost) = NunezEngine::new(4).closure(&a).unwrap();
        assert!(cost.transfer_cycles > 0);
        assert!(cost.overhead_fraction() > 0.1, "{cost:?}");
        assert!(cost.load_store_words > 0);
    }
}
