//! Operating-discipline model of S.Y. Kung's fixed-size transitive-closure
//! array \[23\], used by the paper's §3.2 comparison.
//!
//! The paper quotes \[23\]: data must "be first loaded in the nodes and then
//! reused for a period of n cycles", so "certain control is required in the
//! systolic array". We model exactly that discipline: per problem instance,
//! a non-overlapped load phase (the `n × n` matrix enters over the array's
//! `n` boundary ports), then an `n`-cycle compute/reuse period, plus a
//! mode-switch control signal between phases. The Fig. 17 array overlaps
//! transfers with computation and needs no mode control, which is the
//! claimed advantage.

/// Phase model of Kung's array for problem size `n`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KungArrayModel {
    /// Problem size.
    pub n: usize,
}

impl KungArrayModel {
    /// Creates the model.
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    /// Load-phase cycles per instance: `n² words / n boundary ports`.
    pub fn load_cycles(&self) -> u64 {
        self.n as u64
    }

    /// Compute/reuse cycles per instance (the quoted "period of n cycles").
    pub fn compute_cycles(&self) -> u64 {
        self.n as u64
    }

    /// Cycles per chained instance: load and compute do not overlap.
    pub fn cycles_per_instance(&self) -> u64 {
        self.load_cycles() + self.compute_cycles()
    }

    /// Throughput `1/(2n)` — half the Fig. 17 array's `1/n`.
    pub fn throughput(&self) -> f64 {
        1.0 / self.cycles_per_instance() as f64
    }

    /// Distinct control modes each cell must support (load vs reuse) —
    /// the "certain control" of \[23\]. The Fig. 17 array needs one.
    pub fn control_modes(&self) -> usize {
        2
    }

    /// Communication paths between neighbor cells (\[23\] uses separate
    /// load and compute paths; Fig. 17 uses a single path).
    pub fn comm_paths(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_metrics::FixedModel;

    #[test]
    fn kung_throughput_is_half_of_ours() {
        let n = 32;
        let kung = KungArrayModel::new(n);
        let ours = FixedModel { n };
        assert!((kung.throughput() - 1.0 / 64.0).abs() < 1e-12);
        assert!((ours.throughput() / kung.throughput() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kung_needs_more_control() {
        let kung = KungArrayModel::new(8);
        assert_eq!(kung.control_modes(), 2);
        assert_eq!(kung.comm_paths(), 2);
    }
}
