//! A cycle-level `s × s` matrix-product systolic array — the execution
//! substrate of the Núñez–Torralba decomposition \[22\], whose sub-algorithms
//! are "sequences of matrix multiplications".
//!
//! Classic stationary-C organization with **explicit, non-overlapped
//! phases**, which is exactly the operating discipline the paper holds
//! against decomposition schemes:
//!
//! 1. **Load**: the `C` tile shifts in row-wise from the left boundary
//!    (`s` cycles plus skew) into per-cell accumulators;
//! 2. **Compute**: `A` streams in from the left, `B` from the top; each
//!    cell multiply-accumulates and forwards (`s` cycles plus skew);
//! 3. **Unload**: accumulators shift out row-wise to the left boundary.
//!
//! [`MatmulArray::multiply_acc`] measures the full cycle cost of
//! `C ⊕ A⊗B` on the simulator, with tile padding for ragged edges.

use systolic_arraysim::{
    ArraySim, RunStats, SimError, StreamDst, StreamSrc, Task, TaskKind, TaskLabel,
};
use systolic_semiring::{DenseMatrix, Semiring};

/// An `s × s` stationary-C matrix-product array.
#[derive(Copy, Clone, Debug)]
pub struct MatmulArray {
    s: usize,
}

impl MatmulArray {
    /// Creates an `s × s` array (`s ≥ 1`).
    pub fn new(s: usize) -> Self {
        assert!(s >= 1);
        Self { s }
    }

    /// Tile side.
    pub fn side(&self) -> usize {
        self.s
    }

    /// Computes `C ⊕ (A ⊗ B)` for `s × s` operands on the simulated array,
    /// returning the result and the measured run statistics.
    ///
    /// # Errors
    /// Propagates simulator failures (a wiring bug; does not occur for
    /// well-formed operands).
    ///
    /// # Panics
    /// Panics if operand shapes are not `s × s`.
    pub fn multiply_acc<S: Semiring>(
        &self,
        c: &DenseMatrix<S>,
        a: &DenseMatrix<S>,
        b: &DenseMatrix<S>,
    ) -> Result<(DenseMatrix<S>, RunStats), SimError> {
        let s = self.s;
        assert!(
            c.rows() == s
                && c.cols() == s
                && a.rows() == s
                && a.cols() == s
                && b.rows() == s
                && b.cols() == s,
            "operands must be {s}x{s}"
        );
        let cell = |i: usize, j: usize| i * s + j;
        let mut sim = ArraySim::<S>::new(s * s);

        // Link families: a-links rightward, b-links downward, u-links
        // leftward (unload).
        let mut al = vec![usize::MAX; s * s];
        let mut bl = vec![usize::MAX; s * s];
        let mut ul = vec![usize::MAX; s * s];
        for i in 0..s {
            for j in 0..s {
                if j + 1 < s {
                    al[cell(i, j)] = sim.add_link();
                }
                if i + 1 < s {
                    bl[cell(i, j)] = sim.add_link();
                }
                if j >= 1 {
                    ul[cell(i, j)] = sim.add_link();
                }
            }
        }
        // Banks: row feeders (C then A) 0..s, column feeders (B) s..2s,
        // result collectors handled as outputs.
        for _ in 0..2 * s {
            sim.add_bank();
        }
        sim.set_memory_connections(3 * s); // left in, top in, left out
        let out0 = sim.add_outputs(s);

        for i in 0..s {
            // Row feeder: C row (reversed: the first word settles at the
            // rightmost cell) followed by A row in k order.
            for j in (0..s).rev() {
                sim.bank_mut(i).preload(0, c.get(i, j).clone());
            }
            for k in 0..s {
                sim.bank_mut(i).preload(0, a.get(i, k).clone());
            }
            // Column feeder: B column in k order.
            for k in 0..s {
                sim.bank_mut(s + i).preload(0, b.get(k, i).clone());
            }
        }

        let mk = |kind: TaskKind, len: usize| Task {
            kind,
            len,
            col_in: None,
            pivot_in: None,
            col_out: None,
            pivot_out: None,
            head_out: None,
            duration: 1,
            useful_ops: 0,
            label: TaskLabel::default(),
        };

        for i in 0..s {
            for j in 0..s {
                let id = cell(i, j);
                let from_left = if j == 0 {
                    StreamSrc::Bank { bank: i, slot: 0 }
                } else {
                    StreamSrc::Link(al[cell(i, j - 1)])
                };
                let to_right = if j + 1 < s {
                    Some(StreamDst::Link(al[id]))
                } else {
                    None
                };
                let from_top = if i == 0 {
                    StreamSrc::Bank {
                        bank: s + j,
                        slot: 0,
                    }
                } else {
                    StreamSrc::Link(bl[cell(i - 1, j)])
                };
                let to_bottom = if i + 1 < s {
                    Some(StreamDst::Link(bl[id]))
                } else {
                    None
                };
                let to_unload = if j == 0 {
                    StreamDst::Output { stream: out0 + i }
                } else {
                    StreamDst::Link(ul[id])
                };
                let from_unload_right = if j + 1 < s {
                    Some(StreamSrc::Link(ul[cell(i, j + 1)]))
                } else {
                    None
                };

                // Phase 1: shift the C row in; this cell forwards s-1-j
                // words and keeps the next.
                if s - 1 - j > 0 {
                    let mut t = mk(TaskKind::Pass, s - 1 - j);
                    t.col_in = Some(from_left);
                    t.col_out = to_right;
                    sim.push_task(id, t);
                }
                let mut t = mk(TaskKind::LoadAcc, 1);
                t.col_in = Some(from_left);
                sim.push_task(id, t);

                // Phase 2: multiply-accumulate over the k dimension.
                let mut t = mk(TaskKind::Mac, s);
                t.col_in = Some(from_left);
                t.pivot_in = Some(from_top);
                t.col_out = to_right;
                t.pivot_out = to_bottom;
                t.useful_ops = s as u64;
                sim.push_task(id, t);

                // Phase 3: unload leftward; emit own accumulator, then pass
                // the s-1-j accumulators arriving from the right.
                let mut t = mk(TaskKind::EmitAcc, 1);
                t.col_out = Some(to_unload);
                sim.push_task(id, t);
                if let Some(src) = from_unload_right {
                    let mut t = mk(TaskKind::Pass, s - 1 - j);
                    t.col_in = Some(src);
                    t.col_out = Some(to_unload);
                    sim.push_task(id, t);
                }
            }
        }

        sim.set_max_cycles(200 * (s as u64 + 2) + 10_000);
        let stats = sim.run()?;
        let mut out = DenseMatrix::<S>::zeros(s, s);
        for i in 0..s {
            let row = &sim.outputs()[out0 + i];
            assert_eq!(row.len(), s, "row {i} incomplete");
            for (j, v) in row.iter().enumerate() {
                out.set(i, j, v.clone());
            }
        }
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::{matmul, Bool, Counting, MinPlus};

    #[test]
    fn computes_products_over_counting() {
        let s = 4;
        let a = DenseMatrix::<Counting>::from_fn(s, s, |i, j| ((i * 3 + j) % 5) as u64);
        let b = DenseMatrix::<Counting>::from_fn(s, s, |i, j| ((i + 2 * j) % 4) as u64);
        let c = DenseMatrix::<Counting>::zeros(s, s);
        let (got, stats) = MatmulArray::new(s).multiply_acc(&c, &a, &b).unwrap();
        assert_eq!(got, matmul(&a, &b));
        // Explicit phases: load + compute + unload ≥ 3s cycles.
        assert!(stats.cycles >= (3 * s) as u64, "cycles {}", stats.cycles);
    }

    #[test]
    fn accumulates_into_c() {
        let s = 3;
        let a = DenseMatrix::<MinPlus>::from_fn(s, s, |i, j| (i + j + 1) as u64);
        let b = DenseMatrix::<MinPlus>::from_fn(s, s, |i, j| (2 * i + j + 1) as u64);
        let c = DenseMatrix::<MinPlus>::from_fn(s, s, |i, j| ((i * s + j) % 4 + 1) as u64);
        let (got, _) = MatmulArray::new(s).multiply_acc(&c, &a, &b).unwrap();
        let want = c.ewise_add(&matmul(&a, &b));
        assert_eq!(got, want);
    }

    #[test]
    fn boolean_products() {
        let s = 5;
        let a = DenseMatrix::<Bool>::from_fn(s, s, |i, j| (i + j) % 3 == 0);
        let b = DenseMatrix::<Bool>::from_fn(s, s, |i, j| (i * j) % 2 == 1);
        let c = DenseMatrix::<Bool>::zeros(s, s);
        let (got, _) = MatmulArray::new(s).multiply_acc(&c, &a, &b).unwrap();
        assert_eq!(got, matmul(&a, &b));
    }

    #[test]
    fn single_cell_array() {
        let a = DenseMatrix::<Counting>::from_fn(1, 1, |_, _| 6);
        let b = DenseMatrix::<Counting>::from_fn(1, 1, |_, _| 7);
        let c = DenseMatrix::<Counting>::from_fn(1, 1, |_, _| 1);
        let (got, _) = MatmulArray::new(1).multiply_acc(&c, &a, &b).unwrap();
        assert_eq!(*got.get(0, 0), 43);
    }
}
