//! Baseline schemes the paper compares against (§1, §2).
//!
//! * [`nunez`] — Núñez & Torralba's block-partitioned transitive closure
//!   \[22\]: the algorithm is *decomposed* into sub-algorithms (sequences of
//!   matrix multiplications) chained on a fixed-size square array. Both a
//!   functional implementation (verified against Warshall) and a phase
//!   cost model (load/compute/unload + chaining control) are provided —
//!   the paper's criticism is precisely the decomposition's "rather complex
//!   control to chain the different sub-problems".
//! * [`kung`] — S.Y. Kung's fixed-size transitive-closure array \[23\],
//!   modelled by its published operating discipline: data is "first loaded
//!   in the nodes and then reused for a period of n cycles", i.e. transfer
//!   and compute do not overlap, unlike the Fig. 17 array.
//! * [`coalescing`] — the LSGP alternative of §2 (Fig. 1): each cell owns a
//!   contiguous slice of the G-graph and needs `O(n²/m)` local words,
//!   versus cut-and-pile's `O(1)` per cell plus boundary memories.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalescing;
pub mod kung;
pub mod matmul_array;
pub mod nunez;
pub mod nunez_sim;

pub use coalescing::{CoalescingModel, HybridModel};
pub use kung::KungArrayModel;
pub use matmul_array::MatmulArray;
pub use nunez::{nunez_closure, NunezCost, NunezEngine};
pub use nunez_sim::{NunezSimEngine, NunezSimStats};
