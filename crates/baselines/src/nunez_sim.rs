//! The Núñez–Torralba decomposition executed *on the simulated array*
//! (upgrade of the analytic [`crate::nunez`] model): every sub-problem of
//! the blocked transitive closure is a matrix product run on the
//! [`crate::MatmulArray`], with the diagonal tile closed by repeated
//! squaring of `I ⊕ D` — their partitioning reduces everything to
//! "sequences of matrix multiplications".
//!
//! The host performs the chaining: it collects each sub-problem's result,
//! rebuilds the next sub-problem's operands, and charges one control step
//! per dispatch. Nothing overlaps across sub-problems — which is precisely
//! the structural cost the paper's cut-and-pile avoids, and what experiment
//! E15 measures against the linear partitioned array at equal cell count.

use crate::matmul_array::MatmulArray;
use systolic_arraysim::SimError;
use systolic_semiring::{DenseMatrix, PathSemiring};

/// Aggregated measurements of a simulated blocked-closure run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NunezSimStats {
    /// Tile side (the array is `tile × tile` = `m` cells).
    pub tile: usize,
    /// Matrix-product sub-problems dispatched to the array.
    pub subproblems: usize,
    /// Host control steps (one per dispatch).
    pub control_steps: usize,
    /// Total simulated cycles across all sub-problems (nothing overlaps
    /// between dispatches).
    pub total_cycles: u64,
    /// Cycles spent in multiply-accumulate phases.
    pub mac_cycles: u64,
    /// Cycles spent loading/unloading the stationary tile (the
    /// non-overlapped transfer overhead, zero for cut-and-pile).
    pub transfer_cycles: u64,
}

impl NunezSimStats {
    /// Fraction of array time lost to non-overlapped load/unload phases.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.transfer_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// Blocked transitive closure executed sub-problem by sub-problem on a
/// simulated `b × b` matrix-product array.
#[derive(Copy, Clone, Debug)]
pub struct NunezSimEngine {
    b: usize,
}

impl NunezSimEngine {
    /// Creates an engine backed by a `b × b` array.
    pub fn new(b: usize) -> Self {
        assert!(b >= 1);
        Self { b }
    }

    /// Computes `A⁺` (reflexive) with all products measured on the array.
    ///
    /// # Errors
    /// Propagates simulator failures.
    pub fn closure<S: PathSemiring>(
        &self,
        a: &DenseMatrix<S>,
    ) -> Result<(DenseMatrix<S>, NunezSimStats), SimError> {
        let n = a.rows();
        let b = self.b;
        let array = MatmulArray::new(b);
        let mut x = systolic_semiring::reflexive(a);
        let tiles = n.div_ceil(b);
        let mut stats = NunezSimStats {
            tile: b,
            ..Default::default()
        };

        // Padded tile extraction: out-of-range positions read 0̸, except the
        // diagonal pad of diagonal tiles which reads 1 so that closure of
        // the padded tile equals the padded closure.
        let get_tile = |x: &DenseMatrix<S>, r0: usize, c0: usize, diag_pad: bool| {
            DenseMatrix::<S>::from_fn(b, b, |i, j| {
                let (r, c) = (r0 + i, c0 + j);
                if r < n && c < n {
                    x.get(r, c).clone()
                } else if diag_pad && r == c {
                    S::one()
                } else {
                    S::zero()
                }
            })
        };
        let put_tile = |x: &mut DenseMatrix<S>, r0: usize, c0: usize, t: &DenseMatrix<S>| {
            for i in 0..b {
                for j in 0..b {
                    let (r, c) = (r0 + i, c0 + j);
                    if r < n && c < n {
                        x.set(r, c, t.get(i, j).clone());
                    }
                }
            }
        };

        let dispatch = |stats: &mut NunezSimStats,
                        c: &DenseMatrix<S>,
                        lhs: &DenseMatrix<S>,
                        rhs: &DenseMatrix<S>|
         -> Result<DenseMatrix<S>, SimError> {
            let (out, run) = array.multiply_acc(c, lhs, rhs)?;
            stats.subproblems += 1;
            stats.control_steps += 1;
            stats.total_cycles += run.cycles;
            // Mac phase ≈ s cycles of the k dimension plus 2(s-1) skew; the
            // remainder of the run is load/unload transfer.
            let mac = (3 * b).saturating_sub(2) as u64;
            stats.mac_cycles += mac.min(run.cycles);
            stats.transfer_cycles += run.cycles.saturating_sub(mac);
            Ok(out)
        };

        let zeros = DenseMatrix::<S>::zeros(b, b);
        for t in 0..tiles {
            let k0 = t * b;
            // (1) Close the diagonal tile by repeated squaring of (I ⊕ D):
            // ⌈log₂ b⌉ products on the array.
            let mut diag = get_tile(&x, k0, k0, true);
            diag.reflexive_closure();
            let mut len = 1usize;
            while len < b {
                diag = dispatch(&mut stats, &zeros, &diag, &diag)?;
                len *= 2;
            }
            put_tile(&mut x, k0, k0, &diag);
            // (2) Row and column panels.
            for u in 0..tiles {
                if u == t {
                    continue;
                }
                let c0 = u * b;
                let panel = get_tile(&x, k0, c0, false);
                let np = dispatch(&mut stats, &panel, &diag, &panel)?;
                put_tile(&mut x, k0, c0, &np);
                let cpanel = get_tile(&x, c0, k0, false);
                let ncp = dispatch(&mut stats, &cpanel, &cpanel, &diag)?;
                put_tile(&mut x, c0, k0, &ncp);
            }
            // (3) Rank update of the remainder.
            for u in 0..tiles {
                if u == t {
                    continue;
                }
                let r0 = u * b;
                let left = get_tile(&x, r0, k0, false);
                for v in 0..tiles {
                    if v == t {
                        continue;
                    }
                    let c0 = v * b;
                    let top = get_tile(&x, k0, c0, false);
                    let tgt = get_tile(&x, r0, c0, false);
                    let nt = dispatch(&mut stats, &tgt, &left, &top)?;
                    put_tile(&mut x, r0, c0, &nt);
                }
            }
        }
        Ok((x, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::{warshall, Bool, MinPlus};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut a = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            a.set(i, j, true);
        }
        a
    }

    #[test]
    fn simulated_blocked_closure_is_exact() {
        let a = bool_adj(9, &[(0, 4), (4, 8), (8, 2), (2, 6), (6, 0), (1, 5), (5, 3)]);
        let want = warshall(&a);
        for b in [2usize, 3, 4, 5] {
            let (got, stats) = NunezSimEngine::new(b).closure(&a).unwrap();
            assert_eq!(got, want, "tile {b}");
            assert!(stats.subproblems > 0);
            assert!(stats.transfer_cycles > 0, "phases measured");
        }
    }

    #[test]
    fn simulated_blocked_closure_minplus() {
        let n = 7;
        let mut a = DenseMatrix::<MinPlus>::zeros(n, n);
        for (i, j, w) in [
            (0, 1, 1u64),
            (1, 2, 1),
            (2, 3, 1),
            (3, 4, 1),
            (4, 5, 1),
            (5, 6, 1),
            (0, 6, 9),
        ] {
            a.set(i, j, w);
        }
        let (got, _) = NunezSimEngine::new(3).closure(&a).unwrap();
        assert_eq!(got, warshall(&a));
        assert_eq!(*got.get(0, 6), 6);
    }

    #[test]
    fn overhead_is_substantial_and_control_grows_cubically() {
        let a = bool_adj(16, &[(0, 15), (15, 7), (7, 3), (3, 11)]);
        let (_, s4) = NunezSimEngine::new(4).closure(&a).unwrap();
        assert!(s4.overhead_fraction() > 0.3, "{s4:?}");
        // tiles t = 4: per step 1 closure chain + 2(t-1) panels + (t-1)²
        // updates → dominated by t³ products.
        assert!(s4.subproblems >= 4 * ((4 - 1) * (4 - 1) + 2 * 3));
        assert_eq!(s4.control_steps, s4.subproblems);
    }

    #[test]
    fn ragged_sizes_are_padded_correctly() {
        let a = bool_adj(10, &[(0, 9), (9, 4), (4, 7), (7, 0), (2, 5)]);
        let want = warshall(&a);
        for b in [3usize, 4, 6, 7] {
            let (got, _) = NunezSimEngine::new(b).closure(&a).unwrap();
            assert_eq!(got, want, "tile {b}");
        }
    }
}
