//! E06/E07 — the fixed-size arrays of Fig. 17 and §3.2: simulation cost of
//! one problem instance (the cycle-level results live in EXPERIMENTS.md;
//! this measures the simulator's wall-clock cost).

use std::time::Duration;
use systolic_closure::gnp;
use systolic_partition::{ClosureEngine, FixedArrayEngine, FixedLinearEngine};
use systolic_semiring::Bool;
use systolic_util::{black_box, Bench};

fn main() {
    let bench = Bench::new("fixed_array")
        .samples(10)
        .warmup(Duration::from_millis(300));
    for n in [8usize, 16, 24] {
        let a = gnp(n, 0.15, 3).adjacency_matrix();
        let full = FixedArrayEngine::new();
        bench.bench(format!("fig17_full/{n}"), || {
            black_box(ClosureEngine::<Bool>::closure(&full, &a).unwrap());
        });
        let linear = FixedLinearEngine::new();
        bench.bench(format!("linear_collapsed/{n}"), || {
            black_box(ClosureEngine::<Bool>::closure(&linear, &a).unwrap());
        });
    }
}
