//! E06/E07 — the fixed-size arrays of Fig. 17 and §3.2: simulation cost of
//! one problem instance (the cycle-level results live in EXPERIMENTS.md;
//! this measures the simulator's wall-clock cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_closure::gnp;
use systolic_partition::{ClosureEngine, FixedArrayEngine, FixedLinearEngine};
use systolic_semiring::Bool;

fn bench_fixed(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed_array");
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.sample_size(10);
    for n in [8usize, 16, 24] {
        let a = gnp(n, 0.15, 3).adjacency_matrix();
        g.bench_with_input(BenchmarkId::new("fig17_full", n), &a, |b, a| {
            let eng = FixedArrayEngine::new();
            b.iter(|| black_box(ClosureEngine::<Bool>::closure(&eng, a).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("linear_collapsed", n), &a, |b, a| {
            let eng = FixedLinearEngine::new();
            b.iter(|| black_box(ClosureEngine::<Bool>::closure(&eng, a).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fixed);
criterion_main!(benches);
