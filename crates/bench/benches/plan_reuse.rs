//! Compile-once vs re-plan-per-call: the same batch through a fresh
//! `LinearEngine` each call (plan built from scratch every time) and
//! through one engine whose memoized `CompiledPlan` and cached simulator
//! are reused across calls. Prints the measured speedup explicitly.

use std::time::Duration;
use systolic_bench::parallel_batch_input;
use systolic_partition::{ClosureEngine, LinearEngine};
use systolic_util::{black_box, Bench};

fn main() {
    let instances = 8;
    let n = 24;
    let m = 4;
    let batch = parallel_batch_input(instances, n, 0x5eed);
    let bench = Bench::new("plan_reuse")
        .samples(5)
        .warmup(Duration::from_millis(300));

    let t_fresh = bench.bench(format!("fresh/{instances}x{n}"), || {
        let engine = LinearEngine::new(m);
        black_box(engine.closure_many(&batch).unwrap());
    });

    let engine = LinearEngine::new(m);
    engine.closure_many(&batch).unwrap(); // warm the plan + sim caches
    let t_cached = bench.bench(format!("cached/{instances}x{n}"), || {
        black_box(engine.closure_many(&batch).unwrap());
    });

    println!(
        "  speedup from plan reuse: {:.2}x",
        t_fresh.as_secs_f64() / t_cached.as_secs_f64()
    );
}
