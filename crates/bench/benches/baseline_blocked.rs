//! E15 — the Núñez–Torralba blocked decomposition \[22\] vs the plain and
//! blocked reference kernels.

use std::time::Duration;
use systolic_baselines::NunezEngine;
use systolic_closure::gnp;
use systolic_semiring::{warshall, warshall_blocked, Bool, DenseMatrix};
use systolic_util::{black_box, Bench};

fn adj(n: usize) -> DenseMatrix<Bool> {
    gnp(n, 0.08, 17).adjacency_matrix()
}

fn main() {
    let bench = Bench::new("baseline_blocked")
        .samples(10)
        .warmup(Duration::from_millis(300));
    for n in [32usize, 64] {
        let a = adj(n);
        bench.bench(format!("warshall/{n}"), || {
            black_box(warshall(&a));
        });
        bench.bench(format!("warshall_blocked_b8/{n}"), || {
            black_box(warshall_blocked(&a, 8));
        });
        let eng = NunezEngine::new(8);
        bench.bench(format!("nunez_b8/{n}"), || {
            black_box(eng.closure(&a).expect("valid tile size"));
        });
    }
}
