//! E15 — the Núñez–Torralba blocked decomposition \[22\] vs the plain and
//! blocked reference kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_baselines::NunezEngine;
use systolic_closure::gnp;
use systolic_semiring::{warshall, warshall_blocked, Bool, DenseMatrix};

fn adj(n: usize) -> DenseMatrix<Bool> {
    gnp(n, 0.08, 17).adjacency_matrix()
}

fn bench_blocked(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_blocked");
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for n in [32usize, 64] {
        let a = adj(n);
        g.bench_with_input(BenchmarkId::new("warshall", n), &a, |b, a| {
            b.iter(|| black_box(warshall(a)))
        });
        g.bench_with_input(BenchmarkId::new("warshall_blocked_b8", n), &a, |b, a| {
            b.iter(|| black_box(warshall_blocked(a, 8)))
        });
        g.bench_with_input(BenchmarkId::new("nunez_b8", n), &a, |b, a| {
            let eng = NunezEngine::new(8);
            b.iter(|| black_box(eng.closure(a)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_blocked);
criterion_main!(benches);
