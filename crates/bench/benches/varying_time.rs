//! E13 — Fig. 22 varying-computation-time analysis cost across problem
//! sizes and mappings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_metrics::{mapping_utilization, MappingKind};
use systolic_transform::lu_time_grid;

fn bench_varying(c: &mut Criterion) {
    let mut g = c.benchmark_group("varying_time");
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for n in [64usize, 256, 1024] {
        let grid = lu_time_grid(n);
        g.bench_with_input(BenchmarkId::new("linear", n), &grid, |b, grid| {
            b.iter(|| black_box(mapping_utilization(grid, 16, MappingKind::Linear)))
        });
        g.bench_with_input(BenchmarkId::new("linear_packed", n), &grid, |b, grid| {
            b.iter(|| black_box(mapping_utilization(grid, 16, MappingKind::LinearPacked)))
        });
        g.bench_with_input(BenchmarkId::new("two_dimensional", n), &grid, |b, grid| {
            b.iter(|| black_box(mapping_utilization(grid, 16, MappingKind::TwoDimensional)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_varying);
criterion_main!(benches);
