//! E13 — Fig. 22 varying-computation-time analysis cost across problem
//! sizes and mappings.

use std::time::Duration;
use systolic_metrics::{mapping_utilization, MappingKind};
use systolic_transform::lu_time_grid;
use systolic_util::{black_box, Bench};

fn main() {
    let bench = Bench::new("varying_time")
        .samples(10)
        .warmup(Duration::from_millis(300));
    for n in [64usize, 256, 1024] {
        let grid = lu_time_grid(n);
        bench.bench(format!("linear/{n}"), || {
            black_box(mapping_utilization(&grid, 16, MappingKind::Linear));
        });
        bench.bench(format!("linear_packed/{n}"), || {
            black_box(mapping_utilization(&grid, 16, MappingKind::LinearPacked));
        });
        bench.bench(format!("two_dimensional/{n}"), || {
            black_box(mapping_utilization(&grid, 16, MappingKind::TwoDimensional));
        });
    }
}
