//! Sparse-vs-dense closure on the pinned n = 4096 power-law graph.
//!
//! `sparse_4096` runs the full sparse pipeline (CSR Tarjan, component-DAG
//! row-union closure) from scratch each sample; `dense_4096` runs the
//! cache-blocked `BitMatrix` pivot sweep on the same graph. Both medians
//! land in `BENCH_partition.json`, where `scripts/bench_smoke.sh` gates
//! their same-run ratio at ≥ 20× — the sparse data plane's acceptance
//! bar. `tiled_dag_4096` additionally times the tiled systolic bridge
//! over the condensed DAG (informational).

use std::time::Duration;
use systolic_bench::sparse::{compare_graph, TILE};
use systolic_closure::{condense_csr, SparseClosure};
use systolic_partition::tiled_dag_closure;
use systolic_semiring::BitMatrix;
use systolic_util::{black_box, Bench};

fn main() {
    let g = compare_graph();
    let n = g.n();
    let mut dense_in = BitMatrix::zeros(n);
    for (u, v) in g.edges() {
        dense_in.set(u as usize, v as usize, true);
    }
    let cond = condense_csr(&g);
    let dag_edges: Vec<(u32, u32)> = cond.dag.edges().collect();

    let bench = Bench::new("sparse_closure")
        .samples(5)
        .warmup(Duration::from_millis(300));
    bench.bench(format!("sparse_{n}"), || {
        black_box(SparseClosure::new(&g));
    });
    bench.bench(format!("tiled_dag_{n}"), || {
        black_box(tiled_dag_closure(cond.len(), &dag_edges, TILE));
    });
    bench.bench(format!("dense_{n}"), || {
        black_box(dense_in.transitive_closure());
    });
}
