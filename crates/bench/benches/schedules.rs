//! E10 — G-set schedule construction and legality verification at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_partition::GsetSchedule;

fn bench_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedules");
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for n in [32usize, 128, 512] {
        g.bench_with_input(BenchmarkId::new("linear_build_m8", n), &n, |b, &n| {
            b.iter(|| black_box(GsetSchedule::linear(n, 8)))
        });
        g.bench_with_input(BenchmarkId::new("grid_build_s4", n), &n, |b, &n| {
            b.iter(|| black_box(GsetSchedule::grid(n, 4)))
        });
        let sched = GsetSchedule::linear(n, 8);
        g.bench_with_input(BenchmarkId::new("verify_legal_m8", n), &sched, |b, s| {
            b.iter(|| {
                s.verify_legal().unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
