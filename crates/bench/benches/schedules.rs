//! E10 — G-set schedule construction and legality verification at scale.

use std::time::Duration;
use systolic_partition::GsetSchedule;
use systolic_util::{black_box, Bench};

fn main() {
    let bench = Bench::new("schedules")
        .samples(10)
        .warmup(Duration::from_millis(300));
    for n in [32usize, 128, 512] {
        bench.bench(format!("linear_build_m8/{n}"), || {
            black_box(GsetSchedule::linear(n, 8));
        });
        bench.bench(format!("grid_build_s4/{n}"), || {
            black_box(GsetSchedule::grid(n, 4));
        });
        let sched = GsetSchedule::linear(n, 8);
        bench.bench(format!("verify_legal_m8/{n}"), || {
            sched.verify_legal().unwrap();
        });
    }
}
