//! E08 — Fig. 18's linear partitioned array: simulation cost across cell
//! counts `m` for a fixed problem size (the measured-cycle tables live in
//! EXPERIMENTS.md).

use std::time::Duration;
use systolic_closure::gnp;
use systolic_partition::{ClosureEngine, LinearEngine};
use systolic_semiring::Bool;
use systolic_util::{black_box, Bench};

fn main() {
    let bench = Bench::new("linear_partitioned")
        .samples(10)
        .warmup(Duration::from_millis(300));
    let n = 24;
    let a = gnp(n, 0.15, 11).adjacency_matrix();
    for m in [2usize, 4, 8, 12] {
        let eng = LinearEngine::new(m);
        bench.bench(format!("cells/{m}"), || {
            black_box(ClosureEngine::<Bool>::closure(&eng, &a).unwrap());
        });
    }
    // Problem-size sweep at fixed m, the T = m/(n²(n+1)) scaling.
    for n in [12usize, 24, 36] {
        let a = gnp(n, 0.15, 12).adjacency_matrix();
        let eng = LinearEngine::new(4);
        bench.bench(format!("n_sweep_m4/{n}"), || {
            black_box(ClosureEngine::<Bool>::closure(&eng, &a).unwrap());
        });
    }
}
