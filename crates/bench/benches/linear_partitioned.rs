//! E08 — Fig. 18's linear partitioned array: simulation cost across cell
//! counts `m` for a fixed problem size (the measured-cycle tables live in
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_closure::gnp;
use systolic_partition::{ClosureEngine, LinearEngine};
use systolic_semiring::Bool;

fn bench_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("linear_partitioned");
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.sample_size(10);
    let n = 24;
    let a = gnp(n, 0.15, 11).adjacency_matrix();
    for m in [2usize, 4, 8, 12] {
        g.bench_with_input(BenchmarkId::new("cells", m), &a, |b, a| {
            let eng = LinearEngine::new(m);
            b.iter(|| black_box(ClosureEngine::<Bool>::closure(&eng, a).unwrap()))
        });
    }
    // Problem-size sweep at fixed m, the T = m/(n²(n+1)) scaling.
    for n in [12usize, 24, 36] {
        let a = gnp(n, 0.15, 12).adjacency_matrix();
        g.bench_with_input(BenchmarkId::new("n_sweep_m4", n), &a, |b, a| {
            let eng = LinearEngine::new(4);
            b.iter(|| black_box(ClosureEngine::<Bool>::closure(&eng, a).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_linear);
criterion_main!(benches);
