//! E09 — Fig. 19's two-dimensional partitioned array: simulation cost
//! across grid sides, compared with the equal-cell linear array.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_closure::gnp;
use systolic_partition::{ClosureEngine, GridEngine, LinearEngine};
use systolic_semiring::Bool;

fn bench_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid_partitioned");
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.sample_size(10);
    let n = 24;
    let a = gnp(n, 0.15, 13).adjacency_matrix();
    for s in [2usize, 3, 4] {
        g.bench_with_input(BenchmarkId::new("grid_side", s), &a, |b, a| {
            let eng = GridEngine::new(s);
            b.iter(|| black_box(ClosureEngine::<Bool>::closure(&eng, a).unwrap()))
        });
        // Equal-cell linear array for the §4.2 comparison.
        g.bench_with_input(BenchmarkId::new("linear_same_cells", s * s), &a, |b, a| {
            let eng = LinearEngine::new(s * s);
            b.iter(|| black_box(ClosureEngine::<Bool>::closure(&eng, a).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_grid);
criterion_main!(benches);
