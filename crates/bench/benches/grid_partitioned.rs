//! E09 — Fig. 19's two-dimensional partitioned array: simulation cost
//! across grid sides, compared with the equal-cell linear array.

use std::time::Duration;
use systolic_closure::gnp;
use systolic_partition::{ClosureEngine, GridEngine, LinearEngine};
use systolic_semiring::Bool;
use systolic_util::{black_box, Bench};

fn main() {
    let bench = Bench::new("grid_partitioned")
        .samples(10)
        .warmup(Duration::from_millis(300));
    let n = 24;
    let a = gnp(n, 0.15, 13).adjacency_matrix();
    for s in [2usize, 3, 4] {
        let grid = GridEngine::new(s);
        bench.bench(format!("grid_side/{s}"), || {
            black_box(ClosureEngine::<Bool>::closure(&grid, &a).unwrap());
        });
        // Equal-cell linear array for the §4.2 comparison.
        let lin = LinearEngine::new(s * s);
        bench.bench(format!("linear_same_cells/{}", s * s), || {
            black_box(ClosureEngine::<Bool>::closure(&lin, &a).unwrap());
        });
    }
}
