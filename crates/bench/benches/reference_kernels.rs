//! Software reference kernels: scalar Warshall vs bit-parallel vs blocked
//! vs repeated squaring. Establishes the software baseline the simulated
//! arrays' operation counts are compared against (DESIGN.md §3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_closure::gnp;
use systolic_semiring::{
    closure_by_squaring, warshall, warshall_blocked, BitMatrix, Bool, DenseMatrix,
};

fn adj(n: usize, seed: u64) -> DenseMatrix<Bool> {
    gnp(n, 0.05, seed).adjacency_matrix()
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("reference_kernels");
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for n in [32usize, 64, 128] {
        let a = adj(n, 7);
        g.bench_with_input(BenchmarkId::new("warshall_scalar", n), &a, |b, a| {
            b.iter(|| black_box(warshall(a)))
        });
        g.bench_with_input(BenchmarkId::new("warshall_blocked_b16", n), &a, |b, a| {
            b.iter(|| black_box(warshall_blocked(a, 16)))
        });
        g.bench_with_input(BenchmarkId::new("closure_by_squaring", n), &a, |b, a| {
            b.iter(|| black_box(closure_by_squaring(a)))
        });
        let bits = BitMatrix::from_dense(&a);
        g.bench_with_input(
            BenchmarkId::new("warshall_bitparallel", n),
            &bits,
            |b, m| b.iter(|| black_box(m.transitive_closure())),
        );
    }
    // Thread scaling of the bit-parallel kernel at a size where the
    // per-pivot spawn cost is amortized.
    let big = BitMatrix::from_dense(&adj(768, 9));
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("warshall_bitparallel_threads", threads),
            &big,
            |b, m| b.iter(|| black_box(m.transitive_closure_parallel(threads))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
