//! Software reference kernels: scalar Warshall vs bit-parallel vs blocked
//! vs repeated squaring. Establishes the software baseline the simulated
//! arrays' operation counts are compared against (DESIGN.md §3).

use std::time::Duration;
use systolic_closure::gnp;
use systolic_semiring::{
    closure_by_squaring, warshall, warshall_blocked, BitMatrix, Bool, DenseMatrix,
};
use systolic_util::{black_box, Bench};

fn adj(n: usize, seed: u64) -> DenseMatrix<Bool> {
    gnp(n, 0.05, seed).adjacency_matrix()
}

fn main() {
    let bench = Bench::new("reference_kernels")
        .samples(10)
        .warmup(Duration::from_millis(300));
    for n in [32usize, 64, 128] {
        let a = adj(n, 7);
        bench.bench(format!("warshall_scalar/{n}"), || {
            black_box(warshall(&a));
        });
        bench.bench(format!("warshall_blocked_b16/{n}"), || {
            black_box(warshall_blocked(&a, 16));
        });
        bench.bench(format!("closure_by_squaring/{n}"), || {
            black_box(closure_by_squaring(&a));
        });
        let bits = BitMatrix::from_dense(&a);
        bench.bench(format!("warshall_bitparallel/{n}"), || {
            black_box(bits.transitive_closure());
        });
    }
    // Thread scaling of the bit-parallel kernel at a size where the
    // per-pivot dispatch cost is amortized.
    let big = BitMatrix::from_dense(&adj(768, 9));
    for threads in [1usize, 2, 4] {
        bench.bench(format!("warshall_bitparallel_threads/{threads}"), || {
            black_box(big.transitive_closure_parallel(threads));
        });
    }
}
