//! The batch-throughput acceptance workload: `closure_many` batches on a
//! single reused engine, per mapping and per lane plane.
//!
//! With compiled-plan memoization the schedule is built once for the
//! batch shape and every subsequent call only streams data through the
//! cached simulator. The scalar `LinearEngine` chains the instances
//! through the array one at a time; `LsgpEngine` runs the same batch on
//! the coalescing mapping (same cell count, Θ(n²/m) local buffering);
//! `PackedEngine` bit-slices the instances into the lanes of one element
//! word and simulates a single instance's worth of events — 64/128/256
//! Boolean lanes for `W = 1/2/4` words, and 8 saturating u8 tropical
//! lanes for the SWAR min-plus plane. The `bitmatrix_*` rows compare the
//! cache-blocked software pivot sweep against the classic one at small
//! and large `n`. `scripts/bench_smoke.sh` records every median in
//! `BENCH_partition.json` and gates on the same-run ratios.

use std::time::Duration;
use systolic_bench::{minplus_batch_input, parallel_batch_input};
use systolic_partition::{ClosureEngine, LinearEngine, LsgpEngine, PackedEngine};
use systolic_semiring::{BitMatrix, BoolLanes, MinPlusSwar8};
use systolic_util::{black_box, Bench, Rng};

fn random_bitmatrix(n: usize, seed: u64) -> BitMatrix {
    let mut rng = Rng::seed_from_u64(seed);
    let mut m = BitMatrix::identity(n);
    for _ in 0..(n * 8) {
        m.set(rng.gen_usize(n), rng.gen_usize(n), true);
    }
    m
}

fn main() {
    let instances = 32;
    let n = 32;
    let m = 4;
    let batch = parallel_batch_input(instances, n, 0x5eed);
    let bench = Bench::new("batched_closure")
        .samples(5)
        .warmup(Duration::from_millis(300));

    let engine = LinearEngine::new(m);
    bench.bench(format!("linear_m{m}/{instances}x{n}"), || {
        black_box(engine.closure_many(&batch).unwrap());
    });

    let lsgp = LsgpEngine::new(m);
    bench.bench(format!("lsgp_m{m}/{instances}x{n}"), || {
        black_box(lsgp.closure_many(&batch).unwrap());
    });

    let packed = PackedEngine::new(m);
    bench.bench(format!("packed_m{m}/{instances}x{n}"), || {
        black_box(packed.closure_many(&batch).unwrap());
    });

    // Lane-width sweep: one 128-instance batch is 2 groups at W = 1, and a
    // single group at W = 2 and W = 4.
    let wide = parallel_batch_input(128, n, 0x5eed);
    let w1 = PackedEngine::new(m);
    bench.bench(format!("packed_w1_m{m}/128x{n}"), || {
        black_box(w1.closure_many(&wide).unwrap());
    });
    let w2 = PackedEngine::<BoolLanes<2>>::over(m);
    bench.bench(format!("packed_w2_m{m}/128x{n}"), || {
        black_box(w2.closure_many(&wide).unwrap());
    });
    let w4 = PackedEngine::<BoolLanes<4>>::over(m);
    bench.bench(format!("packed_w4_m{m}/128x{n}"), || {
        black_box(w4.closure_many(&wide).unwrap());
    });

    // Weighted plane: scalar min-plus vs 8 SWAR u8 lanes, same batch,
    // inside the lanes' exact domain ((n − 1) · wmax = 248 < 255).
    let weighted = minplus_batch_input(instances, n, 0x5eed, 8);
    let minplus = LinearEngine::new(m);
    bench.bench(format!("minplus_m{m}/{instances}x{n}"), || {
        black_box(minplus.closure_many(&weighted).unwrap());
    });
    let swar = PackedEngine::<MinPlusSwar8>::over(m);
    bench.bench(format!("minplus_packed_m{m}/{instances}x{n}"), || {
        black_box(swar.closure_many(&weighted).unwrap());
    });
    assert_eq!(
        (swar.packed_runs(), swar.fallback_runs()).1,
        0,
        "min-plus bench batch must stay on the packed path"
    );

    // Software pivot sweep: cache-blocked vs classic, small and large n.
    for bn in [256usize, 2048] {
        let input = random_bitmatrix(bn, 0xb17 + bn as u64);
        bench.bench(format!("bitmatrix_unblocked/{bn}"), || {
            let mut w = input.clone();
            w.warshall_in_place_unblocked();
            black_box(w);
        });
        bench.bench(format!("bitmatrix_blocked/{bn}"), || {
            let mut w = input.clone();
            w.warshall_in_place_blocked();
            black_box(w);
        });
    }
}
