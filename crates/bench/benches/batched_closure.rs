//! The batch-throughput acceptance workload: one `closure_many` batch
//! (32 instances, n = 32, m = 4) on a single reused engine, per mapping.
//!
//! With compiled-plan memoization the schedule is built once for the
//! batch shape and every subsequent call only streams data through the
//! cached simulator. The scalar `LinearEngine` chains the 32 instances
//! through the array one at a time; `LsgpEngine` runs the same batch on
//! the coalescing mapping (same cell count, Θ(n²/m) local buffering);
//! `PackedEngine` bit-slices the instances into the lanes of one `u64`
//! word and simulates a single instance's worth of events.
//! `scripts/bench_smoke.sh` records every mapping's median in
//! `BENCH_partition.json` and gates on the packed/scalar ratio.

use std::time::Duration;
use systolic_bench::parallel_batch_input;
use systolic_partition::{ClosureEngine, LinearEngine, LsgpEngine, PackedEngine};
use systolic_util::{black_box, Bench};

fn main() {
    let instances = 32;
    let n = 32;
    let m = 4;
    let batch = parallel_batch_input(instances, n, 0x5eed);
    let bench = Bench::new("batched_closure")
        .samples(5)
        .warmup(Duration::from_millis(300));

    let engine = LinearEngine::new(m);
    bench.bench(format!("linear_m{m}/{instances}x{n}"), || {
        black_box(engine.closure_many(&batch).unwrap());
    });

    let lsgp = LsgpEngine::new(m);
    bench.bench(format!("lsgp_m{m}/{instances}x{n}"), || {
        black_box(lsgp.closure_many(&batch).unwrap());
    });

    let packed = PackedEngine::new(m);
    bench.bench(format!("packed_m{m}/{instances}x{n}"), || {
        black_box(packed.closure_many(&batch).unwrap());
    });
}
