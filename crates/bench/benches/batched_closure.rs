//! The plan-compilation acceptance workload: one serial `closure_many`
//! batch (32 instances, n = 32, m = 4) on a single reused `LinearEngine`.
//!
//! With compiled-plan memoization the schedule is built once for the
//! batch shape and every subsequent call only streams data through the
//! cached simulator; `scripts/bench_smoke.sh` records this bench's
//! median in `BENCH_partition.json`.

use std::time::Duration;
use systolic_bench::parallel_batch_input;
use systolic_partition::{ClosureEngine, LinearEngine};
use systolic_util::{black_box, Bench};

fn main() {
    let instances = 32;
    let n = 32;
    let m = 4;
    let batch = parallel_batch_input(instances, n, 0x5eed);
    let bench = Bench::new("batched_closure")
        .samples(5)
        .warmup(Duration::from_millis(300));

    let engine = LinearEngine::new(m);
    bench.bench(format!("linear_m{m}/{instances}x{n}"), || {
        black_box(engine.closure_many(&batch).unwrap());
    });
}
