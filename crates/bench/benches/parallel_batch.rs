//! Host-side batch parallelism: serial chained batch vs `ParallelEngine`
//! sharding the same batch across engine replicas on a worker pool.
//!
//! Prints the measured speedup explicitly; the 4-thread row on a
//! 32-instance n=64 Boolean batch is the headline number in
//! EXPERIMENTS.md.

use std::time::Duration;
use systolic_bench::parallel_batch_input;
use systolic_partition::{ClosureEngine, LinearEngine, ParallelEngine};
use systolic_util::{black_box, Bench};

fn main() {
    let instances = 32;
    let n = 64;
    let cells = 8;
    let batch = parallel_batch_input(instances, n, 0x5eed);
    let bench = Bench::new("parallel_batch")
        .samples(5)
        .warmup(Duration::from_millis(300));

    let serial = LinearEngine::new(cells);
    let t_serial = bench.bench(format!("serial/{instances}x{n}"), || {
        black_box(serial.closure_many(&batch).unwrap());
    });

    for threads in [2usize, 4, 8] {
        let par = ParallelEngine::new(LinearEngine::new(cells), threads);
        let t = bench.bench(format!("pool{threads}/{instances}x{n}"), || {
            black_box(par.closure_many(&batch).unwrap());
        });
        println!(
            "  speedup over serial at {threads} threads: {:.2}x",
            t_serial.as_secs_f64() / t.as_secs_f64()
        );
    }
}
