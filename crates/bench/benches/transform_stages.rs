//! E03–E05 — transformation-pass cost: building each stage graph and
//! evaluating the G-graph stream semantics.

use std::time::Duration;
use systolic_closure::gnp;
use systolic_semiring::{reflexive, Bool};
use systolic_transform::{pipelined, regular, unidirectional, GGraph};
use systolic_util::{black_box, Bench};

fn main() {
    let bench = Bench::new("transform_stages")
        .samples(10)
        .warmup(Duration::from_millis(300));
    for n in [8usize, 16, 24] {
        bench.bench(format!("build_pipelined/{n}"), || {
            black_box(pipelined(n));
        });
        bench.bench(format!("build_unidirectional/{n}"), || {
            black_box(unidirectional(n));
        });
        bench.bench(format!("build_regular/{n}"), || {
            black_box(regular(n));
        });
        let a = reflexive(&gnp(n, 0.2, 5).adjacency_matrix());
        let gg = GGraph::new(a.rows());
        bench.bench(format!("ggraph_eval/{n}"), || {
            black_box(gg.eval::<Bool>(&a));
        });
    }
}
