//! E03–E05 — transformation-pass cost: building each stage graph and
//! evaluating the G-graph stream semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_closure::gnp;
use systolic_semiring::{reflexive, Bool};
use systolic_transform::{pipelined, regular, unidirectional, GGraph};

fn bench_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform_stages");
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for n in [8usize, 16, 24] {
        g.bench_with_input(BenchmarkId::new("build_pipelined", n), &n, |b, &n| {
            b.iter(|| black_box(pipelined(n)))
        });
        g.bench_with_input(BenchmarkId::new("build_unidirectional", n), &n, |b, &n| {
            b.iter(|| black_box(unidirectional(n)))
        });
        g.bench_with_input(BenchmarkId::new("build_regular", n), &n, |b, &n| {
            b.iter(|| black_box(regular(n)))
        });
        let a = reflexive(&gnp(n, 0.2, 5).adjacency_matrix());
        g.bench_with_input(BenchmarkId::new("ggraph_eval", n), &a, |b, a| {
            let gg = GGraph::new(a.rows());
            b.iter(|| black_box(gg.eval::<Bool>(a)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
