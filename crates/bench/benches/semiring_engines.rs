//! E17 — semiring generality: the same partitioned array across the four
//! path semirings.

use std::time::Duration;
use systolic_closure::random_weighted;
use systolic_partition::{ClosureEngine, LinearEngine};
use systolic_semiring::{reflexive, Bool, DenseMatrix, MaxMin, MinMax, MinPlus};
use systolic_util::{black_box, Bench};

fn main() {
    let bench = Bench::new("semiring_engines")
        .samples(10)
        .warmup(Duration::from_millis(300));
    let n = 16;
    let w = random_weighted(n, 0.3, 1, 100, 23);
    let eng = LinearEngine::new(4);

    let boolm: DenseMatrix<Bool> = DenseMatrix::from_fn(n, n, |i, j| {
        *w.distance_matrix().get(i, j) != u64::MAX || i == j
    });
    bench.bench(format!("boolean/{n}"), || {
        black_box(ClosureEngine::<Bool>::closure(&eng, &boolm).unwrap());
    });
    let dist = w.distance_matrix();
    bench.bench(format!("min_plus/{n}"), || {
        black_box(ClosureEngine::<MinPlus>::closure(&eng, &dist).unwrap());
    });
    let cap = w.capacity_matrix();
    bench.bench(format!("max_min/{n}"), || {
        black_box(ClosureEngine::<MaxMin>::closure(&eng, &cap).unwrap());
    });
    let mm = w.minimax_matrix();
    bench.bench(format!("min_max/{n}"), || {
        black_box(ClosureEngine::<MinMax>::closure(&eng, &mm).unwrap());
    });
    // Software reference for scale.
    let r = reflexive(&dist);
    bench.bench(format!("reference_min_plus/{n}"), || {
        black_box(systolic_semiring::warshall(&r));
    });
}
