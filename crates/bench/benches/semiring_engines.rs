//! E17 — semiring generality: the same partitioned array across the four
//! path semirings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_closure::random_weighted;
use systolic_partition::{ClosureEngine, LinearEngine};
use systolic_semiring::{reflexive, Bool, DenseMatrix, MaxMin, MinMax, MinPlus};

fn bench_semirings(c: &mut Criterion) {
    let mut g = c.benchmark_group("semiring_engines");
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.sample_size(10);
    let n = 16;
    let w = random_weighted(n, 0.3, 1, 100, 23);
    let eng = LinearEngine::new(4);

    let boolm: DenseMatrix<Bool> = DenseMatrix::from_fn(n, n, |i, j| {
        *w.distance_matrix().get(i, j) != u64::MAX || i == j
    });
    g.bench_function(BenchmarkId::new("boolean", n), |b| {
        b.iter(|| black_box(ClosureEngine::<Bool>::closure(&eng, &boolm).unwrap()))
    });
    let dist = w.distance_matrix();
    g.bench_function(BenchmarkId::new("min_plus", n), |b| {
        b.iter(|| black_box(ClosureEngine::<MinPlus>::closure(&eng, &dist).unwrap()))
    });
    let cap = w.capacity_matrix();
    g.bench_function(BenchmarkId::new("max_min", n), |b| {
        b.iter(|| black_box(ClosureEngine::<MaxMin>::closure(&eng, &cap).unwrap()))
    });
    let mm = w.minimax_matrix();
    g.bench_function(BenchmarkId::new("min_max", n), |b| {
        b.iter(|| black_box(ClosureEngine::<MinMax>::closure(&eng, &mm).unwrap()))
    });
    // Software reference for scale.
    let r = reflexive(&dist);
    g.bench_function(BenchmarkId::new("reference_min_plus", n), |b| {
        b.iter(|| black_box(systolic_semiring::warshall(&r)))
    });
    g.finish();
}

criterion_group!(benches, bench_semirings);
criterion_main!(benches);
