//! Serve-stream benchmark driver (E26): replays a pinned seeded command
//! stream through a [`ReachService`], measuring per-`REACH` latency
//! percentiles and sustained command throughput.
//!
//! The driver is self-gating on protocol correctness: every `REACH`
//! answer is checked against a full-recompute Warshall oracle (outside
//! the timed region), so a throughput number from a service that answers
//! wrong is impossible — `ok` flips false and the smoke script fails.

use std::sync::Arc;
use std::time::Instant;
use systolic_closure::DiGraph;
use systolic_partition::{AdmissionBatcher, PackedEngine};
use systolic_semiring::BitMatrix;
use systolic_service::{seeded_stream, Command, ReachService, Response};

/// One measured serve-stream run.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    /// Label (`software` or `batched_mM`).
    pub id: String,
    /// Vertices served.
    pub n: usize,
    /// Commands replayed.
    pub commands: usize,
    /// `REACH` queries among them.
    pub reaches: usize,
    /// Sustained commands per second (service time only, oracle excluded).
    pub qps: f64,
    /// Median `REACH` latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile `REACH` latency in microseconds.
    pub p99_us: f64,
    /// Worst `REACH` latency in microseconds (a delete-triggered recompute).
    pub max_us: f64,
    /// Every `REACH` answer matched the recompute oracle.
    pub ok: bool,
}

impl ServeBenchReport {
    /// One parse-stable line for the perf-smoke script.
    pub fn smoke_line(&self) -> String {
        format!(
            "serve_stream/{} n={} cmds={} qps={:.0} p50_us={:.1} p99_us={:.1} max_us={:.1} ok={}",
            self.id,
            self.n,
            self.commands,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.ok
        )
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Replays `seeded_stream(n, count, seed)` through a service; `cells`
/// selects the batched recompute path on a packed engine of that many
/// cells, `None` the software path.
pub fn run_serve_bench(
    n: usize,
    count: usize,
    seed: u64,
    cells: Option<usize>,
) -> ServeBenchReport {
    let (id, mut svc) = match cells {
        Some(m) => (
            format!("batched_m{m}"),
            ReachService::with_batcher(
                DiGraph::new(n),
                Arc::new(AdmissionBatcher::new(PackedEngine::new(m))),
            ),
        ),
        None => ("software".to_string(), ReachService::new(DiGraph::new(n))),
    };
    let cmds = seeded_stream(n, count, seed);
    let mut oracle = DiGraph::new(n);
    let mut closed: Option<BitMatrix> = None;
    let mut reach_us: Vec<f64> = Vec::new();
    let mut total = std::time::Duration::ZERO;
    let mut ok = true;
    for &cmd in &cmds {
        let t0 = Instant::now();
        let resp = svc.execute(cmd);
        let dt = t0.elapsed();
        total += dt;
        match (cmd, resp) {
            (Command::Reach(u, v), Response::Reach { reachable, .. }) => {
                reach_us.push(dt.as_secs_f64() * 1e6);
                let want = closed
                    .get_or_insert_with(|| {
                        BitMatrix::from_dense(&oracle.adjacency_matrix()).transitive_closure()
                    })
                    .get(u, v);
                ok &= reachable == want;
            }
            (Command::Insert(u, v), Response::Inserted { .. }) => {
                if !oracle.has_edge(u, v) {
                    oracle.add_edge(u, v);
                    closed = None;
                }
            }
            (Command::Delete(u, v), Response::Deleted { .. }) => {
                if oracle.remove_edge(u, v) {
                    closed = None;
                }
            }
            _ => ok = false,
        }
    }
    reach_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ServeBenchReport {
        id,
        n,
        commands: cmds.len(),
        reaches: reach_us.len(),
        qps: cmds.len() as f64 / total.as_secs_f64().max(1e-9),
        p50_us: percentile(&reach_us, 0.50),
        p99_us: percentile(&reach_us, 0.99),
        max_us: percentile(&reach_us, 1.0),
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_run_is_correct_and_counts_add_up() {
        let r = run_serve_bench(16, 400, 3, None);
        assert!(r.ok, "service diverged from oracle");
        assert_eq!(r.commands, 400);
        assert!(r.reaches > 200 && r.reaches < 400);
        assert!(r.p50_us <= r.p99_us && r.p99_us <= r.max_us);
        assert!(r.qps > 0.0);
        assert!(r.smoke_line().contains("ok=true"));
    }

    #[test]
    fn batched_run_is_correct() {
        let r = run_serve_bench(12, 120, 9, Some(2));
        assert!(r.ok, "batched service diverged from oracle");
        assert_eq!(r.id, "batched_m2");
    }
}
