//! Serve-stream benchmark driver (E26): replays a pinned seeded command
//! stream through a [`ReachService`], measuring per-`REACH` latency
//! percentiles and sustained command throughput.
//!
//! The driver is self-gating on protocol correctness: every `REACH`
//! answer is checked against a full-recompute Warshall oracle (outside
//! the timed region), so a throughput number from a service that answers
//! wrong is impossible — `ok` flips false and the smoke script fails.

use std::sync::Arc;
use std::time::Instant;
use systolic_closure::DiGraph;
use systolic_partition::{AdmissionBatcher, PackedEngine};
use systolic_semiring::BitMatrix;
use systolic_service::{seeded_stream, Command, ReachService, Response};

/// One measured serve-stream run.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    /// Label (`software` or `batched_mM`).
    pub id: String,
    /// Vertices served.
    pub n: usize,
    /// Commands replayed.
    pub commands: usize,
    /// `REACH` queries among them.
    pub reaches: usize,
    /// Sustained commands per second (service time only, oracle excluded).
    pub qps: f64,
    /// Median `REACH` latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile `REACH` latency in microseconds.
    pub p99_us: f64,
    /// Worst `REACH` latency in microseconds (a delete-triggered recompute).
    pub max_us: f64,
    /// Every `REACH` answer matched the recompute oracle.
    pub ok: bool,
}

impl ServeBenchReport {
    /// One parse-stable line for the perf-smoke script.
    pub fn smoke_line(&self) -> String {
        format!(
            "serve_stream/{} n={} cmds={} qps={:.0} p50_us={:.3} p99_us={:.3} max_us={:.3} ok={}",
            self.id,
            self.n,
            self.commands,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.ok
        )
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Replays `seeded_stream(n, count, seed)` through a service; `cells`
/// selects the batched recompute path on a packed engine of that many
/// cells, `None` the software path.
pub fn run_serve_bench(
    n: usize,
    count: usize,
    seed: u64,
    cells: Option<usize>,
) -> ServeBenchReport {
    let (id, mut svc) = match cells {
        Some(m) => (
            format!("batched_m{m}"),
            ReachService::with_batcher(
                DiGraph::new(n),
                Arc::new(AdmissionBatcher::new(PackedEngine::new(m))),
            ),
        ),
        None => ("software".to_string(), ReachService::new(DiGraph::new(n))),
    };
    let cmds = seeded_stream(n, count, seed);
    let mut oracle = DiGraph::new(n);
    let mut closed: Option<BitMatrix> = None;
    let mut reach_us: Vec<f64> = Vec::new();
    let mut total = std::time::Duration::ZERO;
    let mut ok = true;
    for cmd in &cmds {
        let t0 = Instant::now();
        let resp = svc.execute(cmd.clone());
        let dt = t0.elapsed();
        total += dt;
        match (cmd.clone(), resp) {
            (Command::Reach(u, v), Response::Reach { reachable, .. }) => {
                reach_us.push(dt.as_secs_f64() * 1e6);
                let want = closed
                    .get_or_insert_with(|| {
                        BitMatrix::from_dense(&oracle.adjacency_matrix()).transitive_closure()
                    })
                    .get(u, v);
                ok &= reachable == want;
            }
            (Command::Insert(u, v), Response::Inserted { .. }) => {
                if !oracle.has_edge(u, v) {
                    oracle.add_edge(u, v);
                    closed = None;
                }
            }
            (Command::Delete(u, v), Response::Deleted { .. }) => {
                if oracle.remove_edge(u, v) {
                    closed = None;
                }
            }
            _ => ok = false,
        }
    }
    reach_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ServeBenchReport {
        id,
        n,
        commands: cmds.len(),
        reaches: reach_us.len(),
        qps: cmds.len() as f64 / total.as_secs_f64().max(1e-9),
        p50_us: percentile(&reach_us, 0.50),
        p99_us: percentile(&reach_us, 0.99),
        max_us: percentile(&reach_us, 1.0),
        ok,
    }
}

/// One measured concurrent-TCP run: `clients` sessions hammering one
/// shared closure, every answer oracle-checked by the client.
#[derive(Clone, Debug)]
pub struct ConcurrentBenchReport {
    /// Concurrent client sessions.
    pub clients: usize,
    /// Vertices served.
    pub n: usize,
    /// Total `REACH` queries across all clients.
    pub queries: usize,
    /// Sustained queries per second across the whole concurrent run.
    pub qps: f64,
    /// Every answer matched the Warshall oracle and no session failed.
    pub ok: bool,
}

impl ConcurrentBenchReport {
    /// One parse-stable line for the perf-smoke script.
    pub fn smoke_line(&self) -> String {
        format!(
            "serve_concurrent/c{} n={} queries={} qps={:.0} ok={}",
            self.clients, self.n, self.queries, self.qps, self.ok
        )
    }
}

/// Serves a seeded pre-built graph over TCP to `clients` concurrent
/// sessions of `queries` oracle-checked `REACH`es each, measuring
/// aggregate throughput (connection setup included, oracle build
/// excluded).
pub fn run_concurrent_bench(
    n: usize,
    clients: usize,
    queries: usize,
    seed: u64,
) -> ConcurrentBenchReport {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::net::{TcpListener, TcpStream};
    use systolic_service::{serve_tcp, SessionLimits, SharedService};
    use systolic_util::Rng;

    let mut g = DiGraph::new(n);
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..(3 * n) {
        g.add_edge(rng.gen_usize(n), rng.gen_usize(n));
    }
    let want = Arc::new(BitMatrix::from_dense(&g.adjacency_matrix()).transitive_closure());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound address");
    let shared = Arc::new(SharedService::new(
        ReachService::new(g),
        SessionLimits::default(),
    ));
    let server = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || serve_tcp(&shared, &listener, clients, Some(clients)))
    };
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let want = Arc::clone(&want);
            std::thread::spawn(move || -> std::io::Result<bool> {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                let mut reader = BufReader::new(stream.try_clone()?);
                let mut w = stream;
                let mut rng = Rng::seed_from_u64(seed ^ (0xC11E << 8) ^ c as u64);
                let mut ok = true;
                let mut resp = String::new();
                for _ in 0..queries {
                    let (u, v) = (rng.gen_usize(want.n()), rng.gen_usize(want.n()));
                    writeln!(w, "REACH {u} {v}")?;
                    resp.clear();
                    reader.read_line(&mut resp)?;
                    ok &= resp.trim_end() == format!("REACH {u} {v} {}", want.get(u, v));
                }
                writeln!(w, "QUIT")?;
                resp.clear();
                reader.read_line(&mut resp)?;
                Ok(ok && resp.trim_end() == "BYE")
            })
        })
        .collect();
    let mut ok = true;
    for h in workers {
        ok &= h.join().is_ok_and(|r| r.unwrap_or(false));
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let summary = server
        .join()
        .expect("server thread")
        .expect("serve_tcp is infallible after bind");
    ok &= summary.failed_sessions == 0 && summary.sessions == clients as u64;
    ConcurrentBenchReport {
        clients,
        n,
        queries: clients * queries,
        qps: (clients * queries) as f64 / wall,
        ok,
    }
}

/// One measured kill-and-recover run: a durable service is dropped cold
/// and reopened; recovery (snapshot load + WAL replay + closure build)
/// is timed and the recovered closure oracle-checked.
#[derive(Clone, Debug)]
pub struct RecoverBenchReport {
    /// Vertices served.
    pub n: usize,
    /// Mutations committed before the simulated crash.
    pub ops: usize,
    /// WAL bytes replayed at recovery.
    pub wal_bytes: u64,
    /// Wall-clock recovery time in milliseconds.
    pub recover_ms: f64,
    /// The recovered closure equals a full recompute of the committed
    /// history.
    pub ok: bool,
}

impl RecoverBenchReport {
    /// One parse-stable line for the perf-smoke script.
    pub fn smoke_line(&self) -> String {
        format!(
            "serve_recover/n{} ops={} wal_bytes={} recover_ms={:.2} ok={}",
            self.n, self.ops, self.wal_bytes, self.recover_ms, self.ok
        )
    }
}

/// Commits a seeded mutation stream through a durable service, drops it
/// cold (simulated `kill -9`), then times `Durability::open` + closure
/// rebuild and checks the result against a Warshall recompute.
pub fn run_recover_bench(n: usize, ops: usize, seed: u64) -> RecoverBenchReport {
    use systolic_service::Durability;
    use systolic_util::Rng;

    let wal = std::env::temp_dir().join(format!(
        "systolic-recover-bench-{}-{seed}.wal",
        std::process::id()
    ));
    let scrub = |p: &std::path::Path| {
        std::fs::remove_file(p).ok();
        std::fs::remove_file(Durability::snapshot_path(p)).ok();
    };
    scrub(&wal);
    let mut shadow = DiGraph::new(n);
    {
        let (d, g, _) = Durability::open(&wal, None, DiGraph::new(n)).expect("fresh wal");
        let mut svc = ReachService::new(g).with_durability(d);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..ops {
            let (u, v) = (rng.gen_usize(n), rng.gen_usize(n));
            if rng.gen_bool(0.8) {
                shadow.add_edge(u, v);
                svc.execute(Command::Insert(u, v));
            } else {
                shadow.remove_edge(u, v);
                svc.execute(Command::Delete(u, v));
            }
        }
    } // crash: dropped cold, WAL holds the committed history
    let t0 = Instant::now();
    let (_d, g, report) = Durability::open(&wal, None, DiGraph::new(n)).expect("recover");
    let mut svc = ReachService::new(g);
    let recovered = svc.closure().clone();
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let want = BitMatrix::from_dense(&shadow.adjacency_matrix()).transitive_closure();
    let ok = recovered == want && report.torn_bytes == 0;
    scrub(&wal);
    RecoverBenchReport {
        n,
        ops,
        wal_bytes: report.wal_bytes,
        recover_ms,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_run_is_correct_and_counts_add_up() {
        let r = run_serve_bench(16, 400, 3, None);
        assert!(r.ok, "service diverged from oracle");
        assert_eq!(r.commands, 400);
        assert!(r.reaches > 200 && r.reaches < 400);
        assert!(r.p50_us <= r.p99_us && r.p99_us <= r.max_us);
        assert!(r.qps > 0.0);
        assert!(r.smoke_line().contains("ok=true"));
    }

    #[test]
    fn batched_run_is_correct() {
        let r = run_serve_bench(12, 120, 9, Some(2));
        assert!(r.ok, "batched service diverged from oracle");
        assert_eq!(r.id, "batched_m2");
    }

    #[test]
    fn concurrent_run_is_correct() {
        let r = run_concurrent_bench(16, 3, 50, 5);
        assert!(r.ok, "a concurrent answer diverged or a session failed");
        assert_eq!(r.queries, 150);
        assert!(r.qps > 0.0);
        assert!(r.smoke_line().starts_with("serve_concurrent/c3 "));
    }

    #[test]
    fn recover_run_is_correct() {
        let r = run_recover_bench(24, 300, 11);
        assert!(r.ok, "recovered closure diverged from the oracle");
        assert!(r.wal_bytes > 0, "mutations were committed");
        assert!(r.recover_ms >= 0.0);
        assert!(r.smoke_line().contains("recover_ms="));
    }
}
