//! Experiment implementations regenerating every quantitative claim of the
//! paper (the E01–E26 index of `DESIGN.md`).
//!
//! Each `eNN` function runs its experiment and returns a Markdown section
//! with paper-vs-measured rows; the `experiments` binary assembles them
//! into `EXPERIMENTS.md`. Criterion benches under `benches/` wrap the same
//! workloads for wall-clock measurement.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod serve;
pub mod sparse;

pub use sparse::e29;

use campaign::{run_campaign, CampaignConfig};
use std::fmt::Write as _;
use systolic_baselines::{CoalescingModel, KungArrayModel, NunezEngine};
use systolic_closure::{gnp, random_weighted, ClosureSolver};
use systolic_dgraph::{
    broadcast_census, closure_full, closure_lean, direction_census, level_histogram, longest_path,
    superfluous_count,
};
use systolic_metrics::{
    compare_grid_run, compare_linear_run, mapping_utilization, tradeoff_row, FixedLinearModel,
    FixedModel, LinearModel, MappingKind, MetricRow,
};
use systolic_partition::{
    elimination_input, level_durations, run_elimination_timed, Algo, ClosureEngine,
    EliminationMapping, FixedArrayEngine, FixedLinearEngine, GridEngine, GsetSchedule,
    LinearEngine, LsgpEngine, PackedEngine, ParallelEngine,
};
use systolic_semiring::{warshall, Bool, DenseMatrix};
use systolic_transform::{lu_time_grid, pipelined, regular, unidirectional, validate_stage};

/// Default problem size for simulation-backed experiments.
pub const N_SIM: usize = 24;
/// Default instance count for throughput measurements.
pub const CHAIN: usize = 6;

fn adj(n: usize, seed: u64) -> DenseMatrix<Bool> {
    let g = gnp(n, 0.15, seed);
    g.adjacency_matrix()
}

/// Deterministic Boolean batch shared by the `parallel_batch` bench and
/// E21: `instances` random `n × n` adjacency matrices.
pub fn parallel_batch_input(instances: usize, n: usize, seed: u64) -> Vec<DenseMatrix<Bool>> {
    (0..instances)
        .map(|i| adj(n, seed.wrapping_add(i as u64)))
        .collect()
}

/// Deterministic weighted batch for the packed min-plus bench and E28:
/// `instances` random `n × n` distance matrices whose finite weights are
/// `1..=wmax`, chosen so the batch stays inside the SWAR u8 lanes' exact
/// domain when `(n − 1) · wmax < 255`.
pub fn minplus_batch_input(
    instances: usize,
    n: usize,
    seed: u64,
    wmax: u64,
) -> Vec<DenseMatrix<systolic_semiring::MinPlus>> {
    (0..instances)
        .map(|i| random_weighted(n, 0.15, 1, wmax, seed.wrapping_add(i as u64)).distance_matrix())
        .collect()
}

fn rows_table(out: &mut String, rows: &[MetricRow]) {
    let _ = writeln!(out, "| metric | paper | measured | measured/paper |");
    let _ = writeln!(out, "|---|---:|---:|---:|");
    for r in rows {
        let ratio = if r.paper == 0.0 {
            "n/a".to_string()
        } else {
            format!("{:.3}", r.ratio())
        };
        let _ = writeln!(
            out,
            "| {} | {:.6} | {:.6} | {} |",
            r.metric, r.paper, r.measured, ratio
        );
    }
}

/// Steady-state cycles per instance: runs a short and a long chained batch
/// and differences them, eliminating the pipeline fill/drain cost.
fn marginal_cycles<E: ClosureEngine<Bool>>(
    eng: &E,
    n: usize,
    seed0: u64,
    k1: usize,
    k2: usize,
) -> f64 {
    let run = |k: usize| -> u64 {
        let batch: Vec<_> = (0..k).map(|i| adj(n, seed0 + i as u64)).collect();
        let (res, stats) = eng.closure_many(&batch).unwrap();
        for (i, r) in res.iter().enumerate() {
            assert_eq!(*r, warshall(&batch[i]));
        }
        stats.cycles
    };
    (run(k2) - run(k1)) as f64 / (k2 - k1) as f64
}

/// E01 — Fig. 10: fully-parallel graph structure.
pub fn e01() -> String {
    let mut out = String::from("## E01 — Fully-parallel dependence graph (Fig. 10)\n\n");
    let _ = writeln!(
        out,
        "| n | nodes (paper n³) | levels | longest path (paper n) | max fan-out |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|");
    for n in [4usize, 8, 16, 24] {
        let g = closure_full(n);
        let bc = broadcast_census(&g);
        let _ = writeln!(
            out,
            "| {n} | {} / {} | {} | {} / {n} | {} |",
            g.compute_node_count(),
            n * n * n,
            level_histogram(&g).len(),
            longest_path(&g),
            bc.max_fanout
        );
    }
    out.push('\n');
    out
}

/// E02 — Fig. 11: superfluous-node elimination.
pub fn e02() -> String {
    let mut out = String::from("## E02 — Superfluous nodes (Fig. 11, §4.2)\n\n");
    let _ = writeln!(
        out,
        "| n | total n³ | superfluous (paper 3n²−2n) | useful (paper n(n−1)(n−2)) | builder useful |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|");
    for n in [4usize, 8, 16, 32] {
        let (total, sup, useful) = superfluous_count(n);
        let built = closure_lean(n).compute_node_count();
        let _ = writeln!(out, "| {n} | {total} | {sup} | {useful} | {built} |");
        assert_eq!(useful, built);
    }
    out.push('\n');
    out
}

/// E03 — Fig. 12: broadcast removal by pipelining.
pub fn e03() -> String {
    let mut out = String::from("## E03 — Broadcast removal (Fig. 12)\n\n");
    let _ = writeln!(out, "| n | max fan-out before | after pipelining |");
    let _ = writeln!(out, "|---:|---:|---:|");
    for n in [8usize, 16, 24] {
        let before = broadcast_census(&closure_lean(n)).max_fanout;
        let after = broadcast_census(&pipelined(n)).max_fanout;
        let _ = writeln!(out, "| {n} | {before} | {after} |");
    }
    let _ = writeln!(
        out,
        "\nFan-out drops from Θ(n) to a small constant; evaluation of the transformed graph still equals Warshall's (checked by the test suite).\n"
    );
    out
}

/// E04 — Fig. 13–14: bi-directional flow removal.
pub fn e04() -> String {
    let mut out = String::from("## E04 — Flipping to uni-directional flow (Fig. 13–14)\n\n");
    let _ = writeln!(out, "| n | stage | unidirectional x | unidirectional y |");
    let _ = writeln!(out, "|---:|---|---|---|");
    for n in [8usize, 16] {
        let b = direction_census(&pipelined(n));
        let a = direction_census(&unidirectional(n));
        let _ = writeln!(
            out,
            "| {n} | pipelined (Fig. 12) | {} | {} |",
            b.unidirectional_x(),
            b.unidirectional_y()
        );
        let _ = writeln!(
            out,
            "| {n} | flipped (Fig. 14) | {} | {} |",
            a.unidirectional_x(),
            a.unidirectional_y()
        );
    }
    out.push('\n');
    out
}

/// E05 — Fig. 15–16: communication regularization.
pub fn e05() -> String {
    let mut out = String::from("## E05 — Regularization by delay nodes (Fig. 15–16)\n\n");
    let _ = writeln!(
        out,
        "| n | wrap reach before (Θ(n)) | after (O(1)) | inter-strip patterns after |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|");
    for n in [8usize, 16, 24] {
        let before = validate_stage(&unidirectional(n));
        let after = validate_stage(&regular(n));
        let _ = writeln!(
            out,
            "| {n} | {} | {} | {} |",
            before.inter_max_abs_dx, after.inter_max_abs_dx, after.inter_patterns
        );
    }
    out.push('\n');
    out
}

/// E06 — Fig. 17: fixed-size array throughput 1/n.
pub fn e06() -> String {
    let mut out = String::from("## E06 — Fixed-size array (Fig. 17): throughput 1/n\n\n");
    let _ = writeln!(
        out,
        "| n | steady-state cycles/instance | paper n | measured/paper |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|");
    for n in [8usize, 16, 24] {
        let eng = FixedArrayEngine::new();
        let per = marginal_cycles(&eng, n, 0, CHAIN, 3 * CHAIN);
        let model = FixedModel { n };
        let _ = writeln!(
            out,
            "| {n} | {per:.1} | {:.0} | {:.3} |",
            1.0 / model.throughput(),
            per * model.throughput()
        );
    }
    let _ = writeln!(
        out,
        "\nData transfers overlap computation (no load phase) and instances chain without gaps; compare E14.\n"
    );
    out
}

/// E07 — §3.2: linear fixed-size array, throughput 1/(n(n+1)).
pub fn e07() -> String {
    let mut out =
        String::from("## E07 — Linear fixed-size array (§3.2): throughput 1/(n(n+1))\n\n");
    let _ = writeln!(
        out,
        "| n | steady-state cycles/instance | paper n(n+1) | measured/paper |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|");
    for n in [6usize, 10, 14] {
        let eng = FixedLinearEngine::new();
        let per = marginal_cycles(&eng, n, 10, CHAIN, 3 * CHAIN);
        let model = FixedLinearModel { n };
        let _ = writeln!(
            out,
            "| {n} | {per:.1} | {:.0} | {:.3} |",
            1.0 / model.throughput(),
            per * model.throughput()
        );
    }
    out.push('\n');
    out
}

/// E08 — Fig. 18 / §4.2: linear partitioned array.
pub fn e08() -> String {
    let mut out = String::from("## E08 — Linear partitioned array (Fig. 18, §4.2)\n\n");
    for (n, m) in [(N_SIM, 4usize), (N_SIM, 8), (32, 4)] {
        let batch: Vec<_> = (0..3).map(|i| adj(n, 20 + i as u64)).collect();
        let eng = LinearEngine::new(m);
        let (res, stats) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        for (i, r) in res.iter().enumerate() {
            assert_eq!(*r, warshall(&batch[i]));
        }
        let _ = writeln!(
            out,
            "### n = {n}, m = {m} ({} chained instances)\n",
            batch.len()
        );
        let mut rows = compare_linear_run(n, m, &stats, batch.len() as u64);
        rows.push(MetricRow {
            metric: "steady-state throughput (marginal)".into(),
            paper: LinearModel { n, m }.throughput(),
            measured: 1.0 / marginal_cycles(&eng, n, 20, 2, 5),
        });
        rows_table(&mut out, &rows);
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "The gap between total and steady-state throughput is pipeline fill; the residual steady-state gap is the paper's acknowledged boundary-set idling (partial G-sets at the parallelogram edges), which vanishes as n/m grows.\n"
    );
    out
}

/// E09 — Fig. 19 / §4.2: 2-D partitioned array.
pub fn e09() -> String {
    let mut out = String::from("## E09 — Two-dimensional partitioned array (Fig. 19, §4.2)\n\n");
    for (n, s) in [(N_SIM, 2usize), (N_SIM, 3), (32, 2)] {
        let batch: Vec<_> = (0..3).map(|i| adj(n, 30 + i as u64)).collect();
        let eng = GridEngine::new(s);
        let (res, stats) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        for (i, r) in res.iter().enumerate() {
            assert_eq!(*r, warshall(&batch[i]));
        }
        let _ = writeln!(
            out,
            "### n = {n}, √m = {s} ({} chained instances)\n",
            batch.len()
        );
        let mut rows = compare_grid_run(n, s, &stats, batch.len() as u64);
        rows.push(MetricRow {
            metric: "steady-state throughput (marginal)".into(),
            paper: LinearModel { n, m: s * s }.throughput(),
            measured: 1.0 / marginal_cycles(&eng, n, 30, 2, 5),
        });
        rows_table(&mut out, &rows);
        out.push('\n');
    }
    out
}

/// E10 — Fig. 20: G-set scheduling legality and pipelining.
pub fn e10() -> String {
    let mut out = String::from("## E10 — G-set schedule (Fig. 20)\n\n");
    let _ = writeln!(
        out,
        "| n | m | mapping | G-sets | paper n(n+1)/m | boundary sets | legal |"
    );
    let _ = writeln!(out, "|---:|---:|---|---:|---:|---:|---|");
    for (n, m, grid) in [
        (24usize, 4usize, false),
        (24, 6, false),
        (24, 2, true),
        (24, 3, true),
    ] {
        let sched = if grid {
            GsetSchedule::grid(n, m)
        } else {
            GsetSchedule::linear(n, m)
        };
        let cells = if grid { m * m } else { m };
        let legal = sched.verify_legal().is_ok();
        let _ = writeln!(
            out,
            "| {n} | {cells} | {} | {} | {:.1} | {} | {legal} |",
            if grid { "grid" } else { "linear" },
            sched.len(),
            (n * (n + 1)) as f64 / cells as f64,
            sched.boundary_sets()
        );
        assert!(legal);
    }
    let _ = writeln!(
        out,
        "\nEarliest-start tags follow t(k,g) = 2k + g (the Fig. 20 wavefront); G-sets initiate every n cycles.\n"
    );
    out
}

/// E11 — Fig. 21: host I/O bandwidth m/n.
pub fn e11() -> String {
    let mut out = String::from("## E11 — Host I/O bandwidth (Fig. 21): D = m/n\n\n");
    let _ = writeln!(
        out,
        "| n | array | cells m | paper m/n | measured words/cycle | ratio |"
    );
    let _ = writeln!(out, "|---:|---|---:|---:|---:|---:|");
    for (n, m) in [(24usize, 4usize), (24, 8), (32, 4)] {
        let batch: Vec<_> = (0..3).map(|i| adj(n, 40 + i as u64)).collect();
        let (_, lstats) =
            ClosureEngine::<Bool>::closure_many(&LinearEngine::new(m), &batch).unwrap();
        let model = LinearModel { n, m };
        let _ = writeln!(
            out,
            "| {n} | linear | {m} | {:.4} | {:.4} | {:.3} |",
            model.io_bandwidth(),
            lstats.io_bandwidth(),
            lstats.io_bandwidth() / model.io_bandwidth()
        );
    }
    for (n, s) in [(24usize, 2usize), (24, 3)] {
        let batch: Vec<_> = (0..3).map(|i| adj(n, 50 + i as u64)).collect();
        let (_, gstats) = ClosureEngine::<Bool>::closure_many(&GridEngine::new(s), &batch).unwrap();
        let model = LinearModel { n, m: s * s };
        let _ = writeln!(
            out,
            "| {n} | grid | {} | {:.4} | {:.4} | {:.3} |",
            s * s,
            model.io_bandwidth(),
            gstats.io_bandwidth(),
            gstats.io_bandwidth() / model.io_bandwidth()
        );
    }
    let _ = writeln!(
        out,
        "\nLinear and 2-D arrays draw the same bandwidth from the host, as §3.2 concludes. The R-block chain decouples transfer from compute: for n = 24, m = 4 the host runs strictly below one word/cycle while peak R-block buffering stays bounded (measured peak {} words for a 3-instance run).\n",
        {
            let batch: Vec<_> = (0..3).map(|i| adj(24, 40 + i as u64)).collect();
            let (_, s) = ClosureEngine::<Bool>::closure_many(&LinearEngine::new(4), &batch).unwrap();
            s.host_peak_resident
        }
    );
    out
}

/// E12 — §4.2: linear vs 2-D trade-off sweep.
pub fn e12() -> String {
    let mut out = String::from("## E12 — Linear vs 2-D trade-off (§4.2)\n\n");
    let _ = writeln!(
        out,
        "| n | m | throughput | utilization | D_io | mem conn linear (m+1) | mem conn grid (2√m) | boundary idle linear | boundary idle grid |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for n in [16usize, 32, 64, 128] {
        for s in [2usize, 4] {
            let r = tradeoff_row(n, s);
            let _ = writeln!(
                out,
                "| {n} | {} | {:.2e} | {:.4} | {:.3} | {} | {} | {:.3} | {:.3} |",
                r.m,
                r.throughput,
                r.utilization,
                r.io_bandwidth,
                r.linear_mem_connections,
                r.grid_mem_connections,
                r.linear_boundary_idle,
                r.grid_boundary_idle
            );
        }
    }
    out.push('\n');
    out
}

/// E13 — Fig. 22 / §4.3: varying G-node computation time.
pub fn e13() -> String {
    let mut out =
        String::from("## E13 — Varying G-node times (Fig. 22, §4.3): LU decomposition\n\n");
    let _ = writeln!(
        out,
        "| n | m | linear interior U | 2-D interior U | linear-packed total U | 2-D total U |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|");
    for n in [16usize, 32, 64] {
        for m in [4usize, 16] {
            let grid = lu_time_grid(n);
            let lin = mapping_utilization(&grid, m, MappingKind::Linear);
            let packed = mapping_utilization(&grid, m, MappingKind::LinearPacked);
            let two = mapping_utilization(&grid, m, MappingKind::TwoDimensional);
            let _ = writeln!(
                out,
                "| {n} | {m} | {:.4} | {:.4} | {:.4} | {:.4} |",
                lin.interior_utilization(),
                two.interior_utilization(),
                packed.utilization,
                two.utilization
            );
        }
    }
    let _ = writeln!(
        out,
        "\nEqual-time paths give the linear mapping interior utilization 1.0 while any 2-D G-set mixes times (< 1), the Fig. 22 claim. Note an honest nuance: the 2-D mapping's triangular boundary sets amortize raggedness, so on *total* utilization the path-at-a-time linear mapping can trail; packing paths end-to-end restores the linear win.\n"
    );
    out
}

/// E14 — §3.2 vs \[23\]: Kung's array comparison.
pub fn e14() -> String {
    let mut out = String::from("## E14 — Fixed-size array vs S.Y. Kung's array [23]\n\n");
    let _ = writeln!(out, "| n | ours cycles/instance (measured) | Kung load+reuse (model) | speedup | ours control modes | Kung control modes |");
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|");
    for n in [8usize, 16, 24] {
        let per = marginal_cycles(&FixedArrayEngine::new(), n, 60, CHAIN, 3 * CHAIN);
        let kung = KungArrayModel::new(n);
        let _ = writeln!(
            out,
            "| {n} | {per:.1} | {} | {:.2}× | 1 | {} |",
            kung.cycles_per_instance(),
            kung.cycles_per_instance() as f64 / per,
            kung.control_modes()
        );
    }
    out.push('\n');
    out
}

/// E15 — §1 vs \[22\]: Núñez–Torralba decomposition overhead, with both
/// partitioning schemes *measured* on the cycle-level simulator at equal
/// cell count (`m = b²`).
pub fn e15() -> String {
    use systolic_baselines::NunezSimEngine;
    let mut out = String::from("## E15 — Decomposition baseline (Núñez–Torralba [22])\n\n");
    let _ = writeln!(out, "### Analytic sub-problem accounting\n");
    let _ = writeln!(out, "| n | tile b | sub-problems | control steps | transfer overhead fraction | cut-and-pile overhead |");
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|");
    for (n, b) in [(24usize, 4usize), (24, 8), (32, 8)] {
        let a = adj(n, 70);
        let (res, cost) = NunezEngine::new(b).closure(&a).expect("valid tile");
        assert_eq!(res, warshall(&a));
        let _ = writeln!(
            out,
            "| {n} | {b} | {} | {} | {:.3} | 0.000 |",
            cost.diagonal_closures + cost.multiplies,
            cost.control_steps,
            cost.overhead_fraction()
        );
    }
    let _ = writeln!(
        out,
        "\n### Measured on the simulator (equal cells m = b²)\n"
    );
    let _ = writeln!(
        out,
        "| n | cells m | [22] cycles (b×b matmul array) | [22] transfer fraction | cut-and-pile cycles (linear, m cells) | slowdown |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|");
    for (n, b) in [(16usize, 3usize), (24, 4)] {
        let a = adj(n, 71);
        let want = warshall(&a);
        let (res, nsim) = NunezSimEngine::new(b).closure(&a).unwrap();
        assert_eq!(res, want);
        let (res2, lin) = ClosureEngine::<Bool>::closure(&LinearEngine::new(b * b), &a).unwrap();
        assert_eq!(res2, want);
        let _ = writeln!(
            out,
            "| {n} | {} | {} | {:.3} | {} | {:.2}× |",
            b * b,
            nsim.total_cycles,
            nsim.overhead_fraction(),
            lin.cycles,
            nsim.total_cycles as f64 / lin.cycles as f64
        );
    }
    let _ = writeln!(
        out,
        "\nThe decomposition computes the same closure but chains O((n/b)³) sub-problems with host control and non-overlapped tile load/unload phases; cut-and-pile overlaps every transfer with computation (§4.2), and the measured head-to-head at equal cell count shows the resulting slowdown.\n"
    );
    out
}

/// E16 — §2: coalescing (LSGP) memory requirements.
pub fn e16() -> String {
    let mut out = String::from("## E16 — Coalescing (LSGP) memory vs cut-and-pile (§2)\n\n");
    let _ = writeln!(
        out,
        "| n | m | LSGP words/cell (Θ(n²/m)) | cut-and-pile words/cell | LSGP makespan / ideal |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|");
    for (n, m) in [(32usize, 4usize), (64, 4), (128, 8)] {
        let c = CoalescingModel::new(n, m);
        let ideal = (n * n * (n + 1) / m) as f64;
        let _ = writeln!(
            out,
            "| {n} | {m} | {} | {} | {:.3} |",
            c.local_words_per_cell(),
            c.cut_and_pile_local_words(),
            c.makespan_cycles() as f64 / ideal
        );
    }
    out.push('\n');
    out
}

/// E17 — semiring generality: the same arrays solve the whole algebraic
/// path family.
pub fn e17() -> String {
    use systolic_closure::Backend;
    let mut out = String::from("## E17 — Semiring generality (methodology extension)\n\n");
    let _ = writeln!(
        out,
        "| problem | semiring | backend | agrees with reference |"
    );
    let _ = writeln!(out, "|---|---|---|---|");
    let g = random_weighted(12, 0.3, 1, 50, 77);
    let reference = ClosureSolver::new(Backend::Reference);
    for (name, backend) in [
        ("linear m=4", Backend::Linear { cells: 4 }),
        ("grid 2×2", Backend::Grid { side: 2 }),
        ("fixed array", Backend::FixedArray),
    ] {
        let solver = ClosureSolver::new(backend);
        let sp = solver.shortest_paths(&g).unwrap() == reference.shortest_paths(&g).unwrap();
        let wp = solver.widest_paths(&g).unwrap() == reference.widest_paths(&g).unwrap();
        let mm = solver.minimax_paths(&g).unwrap() == reference.minimax_paths(&g).unwrap();
        let _ = writeln!(out, "| shortest paths | min-plus | {name} | {sp} |");
        let _ = writeln!(out, "| widest paths | max-min | {name} | {wp} |");
        let _ = writeln!(out, "| minimax paths | min-max | {name} | {mm} |");
        assert!(sp && wp && mm);
    }
    out.push('\n');
    out
}

/// E18 — Fig. 6/Fig. 8: G-node grouping alternatives and their computation
/// time patterns.
pub fn e18() -> String {
    use systolic_transform::{grouping_profile, GroupingAxis};
    let mut out = String::from("## E18 — Grouping alternatives (Fig. 6, Fig. 8)\n\n");
    let _ = writeln!(
        out,
        "| n | axis | G-nodes | uniform times | rows uniform | max time |"
    );
    let _ = writeln!(out, "|---:|---|---:|---|---|---:|");
    for n in [8usize, 16] {
        let g = systolic_dgraph::closure_lean(n);
        for axis in [
            GroupingAxis::Horizontal,
            GroupingAxis::Vertical,
            GroupingAxis::Diagonal,
            GroupingAxis::Block(4),
        ] {
            let grid = grouping_profile(&g, axis);
            let _ = writeln!(
                out,
                "| {n} | {axis:?} | {} | {} | {} | {} |",
                grid.len(),
                grid.is_uniform(),
                grid.rows_uniform(),
                grid.max_time()
            );
        }
    }
    let _ = writeln!(
        out,
        "\nFor partitioned execution only the nodes of one G-set need equal time (Fig. 8), which is why the method has freedom the fixed-size design lacks (Fig. 9); the delay-regularized grouping used by the engines achieves fully uniform G-nodes (E06).\n"
    );
    out
}

/// E19 — §5: fault tolerance of linear vs 2-D arrays, measured.
pub fn e19() -> String {
    use systolic_partition::{grid_fault_capacity, linear_fault_capacity, FaultyLinearEngine};
    let mut out = String::from("## E19 — Fault tolerance (§5)\n\n");
    let n = 16;
    let m = 8;
    let a = adj(n, 90);
    let (_, healthy) = ClosureEngine::<Bool>::closure(&LinearEngine::new(m), &a).unwrap();
    let _ = writeln!(
        out,
        "Linear array, n = {n}, m = {m}, bypass reconfiguration; every degraded run still computes the exact closure.\n"
    );
    let _ = writeln!(
        out,
        "| faults | cells left | measured slowdown | ideal m/(m−f) |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|");
    for f in 1..=4usize {
        let fault_set: Vec<usize> = (0..f).map(|i| 2 * i + 1).collect();
        let eng = FaultyLinearEngine::new(m, &fault_set).unwrap();
        let (got, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
        assert_eq!(got, warshall(&a));
        let _ = writeln!(
            out,
            "| {f} | {} | {:.3} | {:.3} |",
            eng.healthy_cells(),
            stats.cycles as f64 / healthy.cycles as f64,
            m as f64 / (m - f) as f64
        );
    }
    let _ = writeln!(out, "\nWorst-case remaining capacity (m = 16 cells):\n");
    let _ = writeln!(
        out,
        "| faults | linear bypass | 4×4 mesh row+column retirement |"
    );
    let _ = writeln!(out, "|---:|---:|---:|");
    for f in 0..=4usize {
        let _ = writeln!(
            out,
            "| {f} | {:.3} | {:.3} |",
            linear_fault_capacity(16, f),
            grid_fault_capacity(4, f)
        );
    }
    out.push('\n');
    out
}

/// E20 — §4.3's full algorithm list: varying-time profiles for LU, Faddeev,
/// Givens and triangular inverse, with linear vs 2-D mapping utilization.
pub fn e20() -> String {
    use systolic_transform::{faddeev_time_grid, givens_time_grid, triangular_inverse_time_grid};
    let mut out = String::from("## E20 — §4.3 algorithm family: varying G-node times\n\n");
    let _ = writeln!(
        out,
        "| algorithm | time pattern | linear interior U | 2-D interior U (m=16) |"
    );
    let _ = writeln!(out, "|---|---|---:|---:|");
    let cases: Vec<(&str, &str, systolic_transform::TimeGrid)> = vec![
        ("LU decomposition", "decreasing", lu_time_grid(32)),
        ("Faddeev", "decreasing (2n wide)", faddeev_time_grid(16)),
        (
            "Givens triangularization",
            "decreasing",
            givens_time_grid(32),
        ),
        (
            "triangular inverse",
            "increasing",
            triangular_inverse_time_grid(32),
        ),
    ];
    for (name, pattern, grid) in cases {
        let lin = mapping_utilization(&grid, 16, MappingKind::Linear);
        let two = mapping_utilization(&grid, 16, MappingKind::TwoDimensional);
        let _ = writeln!(
            out,
            "| {name} | {pattern} | {:.4} | {:.4} |",
            lin.interior_utilization(),
            two.interior_utilization()
        );
        assert!((lin.interior_utilization() - 1.0).abs() < 1e-12);
        assert!(two.interior_utilization() < 1.0);
    }
    let _ = writeln!(
        out,
        "\nEvery §4.3 example has equal-time paths (linear mapping: interior utilization 1.0) that no 2-D G-set can match — the paper's closing argument for linear arrays.\n"
    );
    out
}

/// E21 — host-side batch parallelism: `ParallelEngine` sharding a batch
/// across engine replicas is bit-identical to the serial chained batch for
/// every thread count, with thread-count-invariant merged counters.
pub fn e21() -> String {
    let mut out = String::from("## E21 — host-side batch parallelism (ParallelEngine)\n\n");
    let batch = parallel_batch_input(8, N_SIM, 77);
    let serial = LinearEngine::new(8);
    let expected: Vec<_> = batch.iter().map(|a| serial.closure(a).unwrap().0).collect();
    let base = ParallelEngine::new(LinearEngine::new(8), 1)
        .closure_many(&batch)
        .unwrap()
        .1;
    let _ = writeln!(
        out,
        "| threads | results == serial | merged cycles | merged useful ops | stats == 1-thread |"
    );
    let _ = writeln!(out, "|---:|---|---:|---:|---|");
    for threads in [1usize, 2, 4] {
        let par = ParallelEngine::new(LinearEngine::new(8), threads);
        let (got, stats) = par.closure_many(&batch).unwrap();
        let identical = got == expected;
        let invariant = stats == base;
        let _ = writeln!(
            out,
            "| {threads} | {identical} | {} | {} | {invariant} |",
            stats.cycles, stats.useful_ops
        );
        assert!(identical, "parallel results diverged at {threads} threads");
        assert!(invariant, "merged stats diverged at {threads} threads");
    }
    let _ = writeln!(
        out,
        "\nEach instance runs the exact single-instance simulation on a pool replica; merged stats fold in instance order, so only wall time depends on the thread count (see the `parallel_batch` bench for the speedup).\n"
    );
    out
}

/// E22 — fault-injection campaign: ABFT checksum detection coverage and
/// checkpoint-retry recovery on the linear partitioned array.
pub fn e22() -> String {
    let mut out =
        String::from("## E22 — fault-injection campaign (detection coverage and recovery)\n\n");
    let _ = writeln!(
        out,
        "| campaign | rate | injected | detected | escaped | harmless | coverage | retries | bypasses | (m−f)/m | cycle overhead | deterministic |"
    );
    let _ = writeln!(
        out,
        "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|"
    );
    let base = CampaignConfig::default();
    let rows: Vec<(&str, CampaignConfig)> = vec![
        (
            "transients, low",
            CampaignConfig {
                rate: 1e-5,
                ..base.clone()
            },
        ),
        ("transients, pinned", base.clone()),
        (
            "transients, heavy",
            CampaignConfig {
                rate: 3e-4,
                instances: 48,
                ..base.clone()
            },
        ),
        (
            "hot cell 1 (marginal)",
            CampaignConfig {
                instances: 6,
                hot_cell: Some((1, 200.0)),
                ..base.clone()
            },
        ),
    ];
    for (label, cfg) in rows {
        let r1 = run_campaign(&cfg).unwrap();
        let r2 = run_campaign(&cfg).unwrap();
        let deterministic = r1 == r2;
        let harmless: u64 = r1.kinds.iter().map(|k| k.harmless).sum();
        let escaped: u64 = r1.kinds.iter().map(|k| k.escaped).sum();
        let _ = writeln!(
            out,
            "| {label} | {:.0e} | {} | {} | {escaped} | {harmless} | {} | {} | {} | {:.2} | {:.2}× | {deterministic} |",
            cfg.rate,
            r1.fault.injected,
            r1.fault.detected,
            match r1.coverage() {
                Some(c) => format!("{:.1}%", 100.0 * c),
                None => "n/a".into(),
            },
            r1.fault.retries,
            r1.fault.bypasses,
            r1.degradation(cfg.cells),
            r1.cycle_overhead(),
        );
        assert!(
            deterministic,
            "{label}: same seed must reproduce the report"
        );
        assert_eq!(
            r1.unexplained_mismatches, 0,
            "{label}: a closure diverged without any injected fault to blame"
        );
        if label.contains("pinned") {
            assert!(
                r1.fault.injected >= 100,
                "pinned campaign must inject ≥ 100 faults, got {}",
                r1.fault.injected
            );
            let c = r1.coverage().expect("pinned campaign injects VC faults");
            assert!(c >= 0.95, "pinned coverage {c} below the 95% claim");
        }
        if label.contains("hot") {
            assert!(r1.fault.bypasses >= 1, "hot cell must be retired");
            assert!(r1.bypassed_cells >= 1);
            assert!(r1.results_match, "post-bypass closures must be exact");
        }
    }
    let _ = writeln!(
        out,
        "\nEvery row is audited against the software reference: *detected* faults hit attempts the semiring-checksum verifier (or the simulator itself) rejected, triggering a checkpoint retry; *harmless* faults were masked by the idempotent fold; *escaped* faults produced an accepted closure that differs from the reference — always the documented blind spot (a corruption whose transitive consequences were fully re-closed into a self-witnessing closure of a larger input), never an unexplained divergence. The heavy row drives a cell past its retry budget: escalation retires it onto the bypass chain (E19) and the batch finishes exactly on m − f cells, which is also how the marginal hot cell ends. Reproduce any row with `systolic campaign --seed {} --rate R`.\n",
        CampaignConfig::default().seed
    );
    out
}

/// One E23 row: runs `batch` with a fresh engine per call (empty plan
/// cache, schedule rebuilt every time) and with one long-lived engine
/// (compile-once plan cache plus recycled simulator), asserting the two
/// modes are byte-identical before timing them.
fn plan_reuse_row<E: ClosureEngine<Bool>>(
    out: &mut String,
    label: &str,
    batch: &[DenseMatrix<Bool>],
    make: impl Fn() -> E,
) {
    use std::time::Instant;
    let iters = 5u32;
    let warm = make();
    let (first_res, first_stats) = warm.closure_many(batch).unwrap();
    let (cached_res, cached_stats) = warm.closure_many(batch).unwrap();
    let (fresh_res, fresh_stats) = make().closure_many(batch).unwrap();
    for (r, a) in fresh_res.iter().zip(batch) {
        assert_eq!(*r, warshall(a), "{label}: fresh run diverged from Warshall");
    }
    let results_ok = cached_res == fresh_res && first_res == fresh_res;
    let stats_ok = cached_stats == fresh_stats && first_stats == fresh_stats;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = make().closure_many(batch).unwrap();
    }
    let fresh_t = t0.elapsed().as_secs_f64() / f64::from(iters);
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = warm.closure_many(batch).unwrap();
    }
    let cached_t = t0.elapsed().as_secs_f64() / f64::from(iters);
    let _ = writeln!(
        out,
        "| {label} | {results_ok} | {stats_ok} | {:.2} ms | {:.2} ms | {:.2}× |",
        1e3 * fresh_t,
        1e3 * cached_t,
        fresh_t / cached_t
    );
    assert!(results_ok, "{label}: cached plan changed the results");
    assert!(stats_ok, "{label}: cached plan changed the run stats");
}

/// E23 — compile-once G-set schedules: executing a batch from the memoized
/// `CompiledPlan` (and a recycled simulator) is byte-identical to
/// rebuilding the schedule on every call; only construction time differs.
pub fn e23() -> String {
    let mut out = String::from("## E23 — compile-once schedules (plan-cache reuse)\n\n");
    let _ = writeln!(
        out,
        "| engine | results identical | stats identical | fresh build | cached plan | speedup |"
    );
    let _ = writeln!(out, "|---|---|---|---:|---:|---:|");
    let batch = parallel_batch_input(8, N_SIM, 91);
    plan_reuse_row(&mut out, "linear m=4", &batch, || LinearEngine::new(4));
    plan_reuse_row(&mut out, "grid 2×2", &batch, || GridEngine::new(2));
    let small = parallel_batch_input(6, 12, 92);
    plan_reuse_row(&mut out, "fixed n×(n+1)", &small, FixedArrayEngine::new);
    plan_reuse_row(&mut out, "fixed linear", &small, FixedLinearEngine::new);
    let _ = writeln!(
        out,
        "\nEvery engine memoizes one `CompiledPlan` per `(n, batch)` shape — interned stream slots, task programs, host demand order — and replays it on a reset simulator; `RunStats` equality covers every counter except wall time. Reproduce with `systolic plancache`.\n"
    );
    out
}

/// E24 — bit-sliced 64-lane Boolean data plane: `PackedEngine` transposes
/// a Boolean batch into `u64` lane words and runs the cached single-
/// instance plan once per 64-instance group. Results and instance-order
/// merged stats are bit-identical to the scalar per-instance runs; the
/// simulated-event count (and with it wall time) drops by the lane
/// occupancy of each group.
pub fn e24() -> String {
    let mut out = String::from("## E24 — bit-sliced 64-lane Boolean batches (PackedEngine)\n\n");
    let _ = writeln!(
        out,
        "| batch | lane groups | results identical | merged stats identical | scalar cycles | packed sim cycles | cycle ratio |"
    );
    let _ = writeln!(out, "|---:|---:|---|---|---:|---:|---:|");
    let scalar = LinearEngine::new(4);
    let packed = PackedEngine::new(4);
    for instances in [1usize, 32, 64, 65, 128] {
        let batch = parallel_batch_input(instances, N_SIM, 24);
        // The scalar per-instance contract both engines must agree on.
        let mut want = Vec::with_capacity(instances);
        let mut want_stats: Option<systolic_arraysim::RunStats> = None;
        for a in &batch {
            let (c, s) = scalar.closure(a).expect("scalar closure");
            want.push(c);
            match &mut want_stats {
                None => want_stats = Some(s),
                Some(acc) => acc.merge(&s),
            }
        }
        let want_stats = want_stats.expect("non-empty batch");
        let (got, got_stats) = packed.closure_many(&batch).expect("packed closure");
        let results_ok = got == want;
        let stats_ok = got_stats == want_stats;
        // Cycles actually *simulated* by the packed path: merged cycles
        // are lane-scaled for the per-instance contract, so divide each
        // group back down to the single shared run it really executed.
        let groups = instances.div_ceil(64);
        let per_run = want_stats.cycles / instances as u64;
        let sim_cycles = per_run * groups as u64;
        let _ = writeln!(
            out,
            "| {instances} | {groups} | {results_ok} | {stats_ok} | {} | {sim_cycles} | {:.1}× |",
            want_stats.cycles,
            want_stats.cycles as f64 / sim_cycles as f64,
        );
        assert!(results_ok, "packed results diverged at batch {instances}");
        assert!(stats_ok, "packed stats diverged at batch {instances}");
    }
    let _ = writeln!(
        out,
        "\nThe schedule never inspects values, so 64 Boolean instances ride the lanes of one `u64` through a single simulated run per group (`OR`/`AND` are per-lane word ops — SWAR bit-slicing); armed fault plans fall back to the scalar path so injection semantics are untouched. Reproduce with `systolic packed`.\n"
    );
    out
}

/// E25 — §2 realized: the simulated coalescing (LSGP) engine against E16's
/// analytic model. Every instance must match Warshall bit-for-bit, the
/// measured per-cell storage high-water mark must land at exactly
/// `⌈n/m⌉·n` words (the live column window — half the model's `⌈2n/m⌉·n`
/// upper bound over all owned columns, same `Θ(n²/m)`), and the measured
/// makespan must track the model's sequential component time.
pub fn e25() -> String {
    let mut out =
        String::from("## E25 — simulated coalescing (LSGP) engine vs analytic model (§2)\n\n");
    let _ = writeln!(
        out,
        "| n | m | matches Warshall | measured words/cell | model Θ(n²/m) | measured/model | measured cycles | model makespan | slack |"
    );
    let _ = writeln!(out, "|---:|---:|---|---:|---:|---:|---:|---:|---:|");
    for (n, m) in [(12usize, 3usize), (24, 8), (32, 4), (64, 4)] {
        let eng = LsgpEngine::new(m);
        let batch = [adj(n, 7), adj(n, 8)];
        let (res, stats) = eng.closure_many(&batch).expect("lsgp closure");
        let ok = res.iter().zip(&batch).all(|(r, a)| *r == warshall(a));
        assert!(ok, "LSGP diverged from Warshall at n={n} m={m}");
        let mdl = CoalescingModel::new(n, m);
        let peak = eng.peak_local_words(&stats);
        // The paper's Θ(n²/m) reservation, pinned exactly: the resident
        // window is the ⌈n/m⌉ live columns of the current row sweep.
        assert_eq!(peak, n.div_ceil(m) * n, "peak words at n={n} m={m}");
        // Batched run: compare per-instance cycles to the one-instance model.
        let per_inst = stats.cycles / batch.len() as u64;
        let slack = per_inst as f64 / mdl.makespan_cycles() as f64;
        let _ = writeln!(
            out,
            "| {n} | {m} | {ok} | {peak} | {} | {:.3} | {per_inst} | {} | {:.3} |",
            mdl.local_words_per_cell(),
            peak as f64 / mdl.local_words_per_cell() as f64,
            mdl.makespan_cycles(),
            slack,
        );
        assert!(
            (0.8..=1.4).contains(&slack),
            "LSGP makespan slack {slack:.3} out of band at n={n} m={m}"
        );
    }
    let _ = writeln!(
        out,
        "\nE16 models coalescing's memory cost analytically; here the LSGP mapping actually *runs* on the cycle-level simulator (`MappedEngine<LsgpMapping>`): column streams stay in the owning cell's private bank (the measured high-water mark above), pivots ride the `c → c+1` ring with one wrap bank — `m + 1` memory connections, like the linear cut-and-pile array, but `Θ(n²/m)` local words instead of `O(1)`. Reproduce with `systolic closure --backend lsgp:4 …`.\n"
    );
    out
}

/// E26 — the long-running reachability service (`systolic serve`):
/// sustained command throughput and per-`REACH` latency of the maintained
/// closure under a pinned seeded stream (70% `REACH`, 20% `INSERT`, 10%
/// `DELETE`). Inserts are rank-1 `R* ⊕ R*·e_uv·R*` bitset sweeps; deletes
/// dirty the closure and coalesce into one per-SCC recompute at the next
/// read — in software, or packed with other tenants through the admission
/// batcher onto the 64-lane engine. Every answer is cross-checked against
/// a full-recompute Warshall oracle before a number is reported.
pub fn e26() -> String {
    let mut out = String::from("## E26 — reachability service throughput & latency (serve)\n\n");
    let _ = writeln!(
        out,
        "| recompute path | n | commands | REACH queries | cmd/s | p50 µs | p99 µs | max µs | oracle-checked |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|---:|---|");
    for (n, count, cells) in [(64usize, 20_000usize, None), (24, 2_000, Some(4usize))] {
        let r = serve::run_serve_bench(n, count, 20_260_808, cells);
        assert!(r.ok, "serve stream diverged from the recompute oracle");
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.0} | {:.3} | {:.3} | {:.3} | {} |",
            r.id, r.n, r.commands, r.reaches, r.qps, r.p50_us, r.p99_us, r.max_us, r.ok
        );
    }
    let _ = writeln!(
        out,
        "\np50 is an O(1) bit probe of the maintained `R*`; the tail (p99/max) is \
         where a preceding `DELETE` forces the per-SCC recompute, so it tracks the \
         condensation cost rather than the query. Absolute numbers are \
         machine-dependent — the perf smoke (`scripts/bench_smoke.sh`) records them \
         in `BENCH_partition.json` and gates only on protocol correctness \
         (`ok=true`). Reproduce with `systolic serve` or `cargo run --release -p \
         systolic-bench --bin serve_bench`.\n"
    );
    out
}

/// E28 — the widened packed data plane: Boolean lane-width sweep
/// (64/128/256 lanes), the SWAR tropical plane vs scalar min-plus, and
/// the lane-targeted fault campaign's containment audit.
///
/// Wall-clock numbers are machine-dependent (the perf smoke gates the
/// ratios); the containment columns are deterministic in the pinned seed.
pub fn e28() -> String {
    use campaign::{run_packed_campaign, PackedCampaignConfig};
    use systolic_semiring::{BoolLanes, MinPlusSwar8};

    fn timed<R>(mut f: impl FnMut() -> R) -> f64 {
        f(); // warm the plan cache so only streaming is measured
        let started = std::time::Instant::now();
        systolic_util::black_box(f());
        started.elapsed().as_secs_f64() * 1e3
    }

    let mut out = String::from(
        "## E28 — widened packed data plane (W-word lanes, SWAR min-plus, packed faults)\n\n",
    );
    let (m, n) = (4usize, 32usize);

    // Boolean lane-width sweep over one 128-instance batch.
    let wide = parallel_batch_input(128, n, 0x5eed);
    let scalar = LinearEngine::new(m);
    let scalar_ms = timed(|| scalar.closure_many(&wide).unwrap());
    let w1 = PackedEngine::new(m);
    let w2 = PackedEngine::<BoolLanes<2>>::over(m);
    let w4 = PackedEngine::<BoolLanes<4>>::over(m);
    let (w1_ms, w2_ms, w4_ms) = (
        timed(|| w1.closure_many(&wide).unwrap()),
        timed(|| w2.closure_many(&wide).unwrap()),
        timed(|| w4.closure_many(&wide).unwrap()),
    );
    let _ = writeln!(
        out,
        "| engine | lanes | groups for 128×n={n} | batch ms | speedup vs scalar |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|");
    for (name, lanes, ms) in [
        ("linear (scalar)", 1usize, scalar_ms),
        ("linear-packed (W=1)", 64, w1_ms),
        ("linear-packed-w2", 128, w2_ms),
        ("linear-packed-w4", 256, w4_ms),
    ] {
        let _ = writeln!(
            out,
            "| {name} | {lanes} | {} | {ms:.2} | {:.1}× |",
            wide.len().div_ceil(lanes),
            scalar_ms / ms
        );
    }

    // SWAR tropical plane vs scalar min-plus, inside the exact domain.
    let weighted = minplus_batch_input(32, n, 0x5eed, 8);
    let mp_ms = timed(|| {
        ClosureEngine::<systolic_semiring::MinPlus>::closure_many(&scalar, &weighted).unwrap()
    });
    let swar = PackedEngine::<MinPlusSwar8>::over(m);
    let swar_ms = timed(|| swar.closure_many(&weighted).unwrap());
    let _ = writeln!(
        out,
        "\n| weighted plane | lanes | batch ms | speedup | bit-identical |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---|");
    let reference: Vec<_> = weighted.iter().map(warshall).collect();
    let exact = swar.closure_many(&weighted).unwrap().0 == reference
        && ClosureEngine::<systolic_semiring::MinPlus>::closure_many(&scalar, &weighted)
            .unwrap()
            .0
            == reference;
    let _ = writeln!(
        out,
        "| min-plus (scalar) | 1 | {mp_ms:.2} | 1.0× | {exact} |"
    );
    let _ = writeln!(
        out,
        "| min-plus-swar-8x8 | 8 | {swar_ms:.2} | {:.1}× | {exact} |",
        mp_ms / swar_ms
    );

    // Lane-targeted fault campaign: containment audit (deterministic).
    let cfg = PackedCampaignConfig::default();
    let r = run_packed_campaign(&cfg).expect("packed campaign runs clean");
    let _ = writeln!(
        out,
        "\n| packed campaign | injected | mismatched | off-target | unexplained | scalar fallbacks | contained |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---|");
    let _ = writeln!(
        out,
        "| lane {} of {} (seed {}) | {} | {} | {} | {} | {} | {} |",
        cfg.target_lane,
        r.lanes,
        cfg.seed,
        r.injected,
        r.mismatched_instances,
        r.off_target_mismatches,
        r.unexplained_mismatches,
        r.raw_fallback_runs + r.recovering_fallback_runs,
        r.contained()
    );
    assert!(r.contained(), "packed campaign containment must hold");
    let _ = writeln!(
        out,
        "\nThe W-word planes pay one simulated event stream per 64·W instances, so \
         throughput rises until a single group covers the batch; past that the wider \
         word only adds per-event cost. The SWAR plane carries 8 saturating u8 \
         distances per word and is exact whenever (n−1)·wmax < 255 (here 31·8 = 248); \
         out-of-domain batches fall back to the scalar path automatically. The \
         campaign shows a lane-targeted fault corrupting only its own instance, with \
         per-instance blame and no scalar fallback — `systolic campaign --packed-lane L` \
         reproduces it. Wall-clock gates live in `scripts/bench_smoke.sh`.\n"
    );
    out
}

/// The §4.3 numbers behind E30 and the perf smoke's
/// `varying_utilization/` line: LU with per-level durations `n - k` run on
/// a 4-cell linear chain and a 2×2 grid, measured cell occupancy next to
/// the lock-step analytic model over the same time grid.
#[derive(Clone, Debug)]
pub struct VaryingMeasurement {
    /// LU problem size.
    pub n: usize,
    /// Cells in both arrays (m = s² = 4).
    pub cells: usize,
    /// Measured occupancy of the linear chain (m = 4).
    pub measured_linear: f64,
    /// Measured occupancy of the 2×2 grid.
    pub measured_grid: f64,
    /// Lock-step analytic utilization, linear mapping.
    pub analytic_linear: f64,
    /// Lock-step analytic utilization, two-dimensional mapping.
    pub analytic_grid: f64,
    /// Analytic interior utilization (boundary raggedness excluded),
    /// linear mapping — 1.0, since equal-time paths never mix.
    pub interior_linear: f64,
    /// Analytic interior utilization, two-dimensional mapping.
    pub interior_grid: f64,
    /// Simulated cycles, linear chain.
    pub cycles_linear: u64,
    /// Simulated cycles, 2×2 grid.
    pub cycles_grid: u64,
}

/// Pinned tolerance between measured occupancy and the lock-step analytic
/// model: the simulator pays pipeline fill/drain and link latency the
/// closed form ignores, which lands within ±0.02 for n ≥ 16.
pub const E30_TOLERANCE: f64 = 0.02;

impl VaryingMeasurement {
    /// True when the §4.3 claims hold on this run: linear occupancy is at
    /// least the grid's, and both measurements sit within
    /// [`E30_TOLERANCE`] of their analytic predictions.
    pub fn gates_hold(&self) -> bool {
        self.measured_linear >= self.measured_grid
            && (self.measured_linear - self.analytic_linear).abs() <= E30_TOLERANCE
            && (self.measured_grid - self.analytic_grid).abs() <= E30_TOLERANCE
    }
}

/// Runs the E30 workload at problem size `n` and cross-checks that both
/// mappings produce bit-identical factors before reporting utilization.
pub fn varying_measurement(n: usize) -> VaryingMeasurement {
    let durs = level_durations(Algo::Lu, n);
    let a = elimination_input(n, 24);
    let (f_lin, lin) =
        run_elimination_timed(Algo::Lu, EliminationMapping::Linear { m: 4 }, &a, &durs)
            .expect("linear elimination runs clean");
    let (f_grid, grid) =
        run_elimination_timed(Algo::Lu, EliminationMapping::Grid { s: 2 }, &a, &durs)
            .expect("grid elimination runs clean");
    assert_eq!(f_lin, f_grid, "mappings must agree bit-for-bit");
    let tg = Algo::Lu.graph(n).with_row_durations(&durs).time_grid();
    let a_lin = mapping_utilization(&tg, 4, MappingKind::Linear);
    let a_grid = mapping_utilization(&tg, 4, MappingKind::TwoDimensional);
    VaryingMeasurement {
        n,
        cells: 4,
        measured_linear: lin.occupancy(),
        measured_grid: grid.occupancy(),
        analytic_linear: a_lin.utilization,
        analytic_grid: a_grid.utilization,
        interior_linear: a_lin.interior_utilization(),
        interior_grid: a_grid.interior_utilization(),
        cycles_linear: lin.cycles,
        cycles_grid: grid.cycles,
    }
}

/// E30 — §4.3 linear vs grid utilization under varying G-node times,
/// measured on the simulated LU pipeline and cross-validated against the
/// lock-step analytic model of `systolic_metrics::varying`.
pub fn e30() -> String {
    let mut out = String::from(
        "## E30 — varying G-node times: measured linear vs grid utilization (§4.3, LU)\n\n",
    );
    let _ = writeln!(
        out,
        "| n | cells | measured linear | measured grid | analytic linear | analytic grid | interior linear | interior grid | within ±{E30_TOLERANCE} |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|---:|---:|---|");
    for n in [16usize, 24, 32] {
        let m = varying_measurement(n);
        let _ = writeln!(
            out,
            "| {} | {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {} |",
            m.n,
            m.cells,
            m.measured_linear,
            m.measured_grid,
            m.analytic_linear,
            m.analytic_grid,
            m.interior_linear,
            m.interior_grid,
            m.gates_hold()
        );
        assert!(
            m.gates_hold(),
            "E30 gate failed at n={n}: measured ({:.4}, {:.4}) vs analytic ({:.4}, {:.4})",
            m.measured_linear,
            m.measured_grid,
            m.analytic_linear,
            m.analytic_grid
        );
    }
    let _ = writeln!(
        out,
        "\nLevel k of LU still works on an (n−k)×(n−k) trailing submatrix, so its \
         per-word duration is n−k: rows of the G-graph are equal-time paths. The \
         linear chain maps each G-set inside one row (zero time mixing — analytic \
         interior utilization exactly 1.0), while a 2×2 grid block chains a fast \
         row behind a slow one and idles for the rate difference. The measured \
         occupancy of the event-driven simulator lands within ±{E30_TOLERANCE} of the \
         lock-step closed form for both mappings, and the linear array wins at \
         equal cell count — the §4.3 conclusion, measured. Both runs produce \
         bit-identical L\\U factors. Reproduce with `systolic algo lu --timed` and \
         `cargo run --release -p systolic-bench --bin experiments e30`.\n"
    );
    out
}

/// Runs every experiment, returning the full Markdown report body.
pub fn run_all() -> String {
    let mut out = String::new();
    for (name, f) in [
        ("E01", e01 as fn() -> String),
        ("E02", e02),
        ("E03", e03),
        ("E04", e04),
        ("E05", e05),
        ("E06", e06),
        ("E07", e07),
        ("E08", e08),
        ("E09", e09),
        ("E10", e10),
        ("E11", e11),
        ("E12", e12),
        ("E13", e13),
        ("E14", e14),
        ("E15", e15),
        ("E16", e16),
        ("E17", e17),
        ("E18", e18),
        ("E19", e19),
        ("E20", e20),
        ("E21", e21),
        ("E22", e22),
        ("E23", e23),
        ("E24", e24),
        ("E25", e25),
        ("E26", e26),
        ("E28", e28),
        ("E29", e29),
        ("E30", e30),
    ] {
        eprintln!("running {name}…");
        out.push_str(&f());
    }
    out
}
