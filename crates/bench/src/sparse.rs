//! The sparse data plane's scaling sweep: shared by experiment E29, the
//! `sparse_bench` binary (whose `sparse_scale/...` lines feed
//! `scripts/bench_smoke.sh`) and the `sparse_closure` criterion-style
//! bench.

use std::fmt::Write as _;
use systolic_closure::{powerlaw, ClosureMode, CsrGraph, SparseClosure};
use systolic_partition::{tiled_dag_closure, TileStats};

/// Average out-edges per vertex for the pinned power-law workload. With
/// the generator's ~28 % reciprocal edges the mean total out-degree lands
/// near 8 — the "avg degree ~8" web-graph density of the scaling story.
pub const POWERLAW_D: usize = 6;

/// Seed of the pinned benchmark graphs.
pub const POWERLAW_SEED: u64 = 0x5eed;

/// Tile size used for the condensed-DAG occupancy accounting.
pub const TILE: usize = 64;

/// One row of the scaling sweep.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Vertex count.
    pub n: usize,
    /// Edge count of the generated graph.
    pub edges: usize,
    /// Milliseconds to generate the graph (CSR-native path).
    pub gen_ms: f64,
    /// Milliseconds to condense + close.
    pub close_ms: f64,
    /// SCC count.
    pub scc: usize,
    /// Condensed-DAG edge count.
    pub dag_edges: usize,
    /// Closure representation chosen by the memory budget.
    pub mode: ClosureMode,
    /// Reachable pairs (reflexive).
    pub fill_pairs: f64,
    /// Whether the fill figure is exact.
    pub fill_exact: bool,
    /// Analytic solver footprint in bytes.
    pub mem_bytes: usize,
    /// Process peak RSS (VmHWM) right after this row, when available.
    /// Monotonic across rows — run ascending sizes.
    pub peak_rss_bytes: Option<u64>,
    /// Tile occupancy of the condensed DAG at [`TILE`].
    pub tiles: TileStats,
}

/// Generates the pinned power-law graph and runs the sparse closure,
/// returning the measured row.
pub fn scale_row(n: usize) -> ScaleRow {
    let t0 = std::time::Instant::now();
    let g = powerlaw(n, POWERLAW_D, POWERLAW_SEED);
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = std::time::Instant::now();
    let sc = SparseClosure::new(&g);
    let close_ms = t1.elapsed().as_secs_f64() * 1e3;
    let stats = sc.stats(1000, 42);
    let cond = sc.condensation();
    let dag_edges: Vec<(u32, u32)> = cond.dag.edges().collect();
    let (_, tiles) = tiled_dag_closure(cond.len(), &dag_edges, TILE);
    ScaleRow {
        n,
        edges: g.edge_count(),
        gen_ms,
        close_ms,
        scc: stats.scc_count,
        dag_edges: stats.dag_edges,
        mode: stats.mode,
        fill_pairs: stats.fill.pairs,
        fill_exact: stats.fill.exact,
        mem_bytes: stats.memory_bytes,
        peak_rss_bytes: systolic_util::peak_rss_bytes(),
        tiles,
    }
}

/// The pinned n=4096 comparison graph for the sparse-vs-dense gate.
pub fn compare_graph() -> CsrGraph {
    powerlaw(4096, POWERLAW_D, POWERLAW_SEED)
}

/// E29 — sparse data plane scaling (CSR + condensation vs dense n×n).
pub fn e29() -> String {
    let mut out = String::from("## E29 — sparse data plane: 10⁴–10⁶-node power-law closure\n\n");
    let _ = writeln!(
        out,
        "Pinned power-law graphs (`powerlaw(n, d={POWERLAW_D}, seed={POWERLAW_SEED:#x})`, \
         ~28 % reciprocal edges ⇒ avg out-degree ≈ 8). The sparse plane condenses on CSR \
         and closes only the component DAG; the dense plane would need `n²/8` bytes before \
         doing any work (125 GB at n = 10⁶).\n"
    );
    let _ = writeln!(
        out,
        "| n | edges | SCCs | DAG edges | tile occupancy (t={TILE}) | fill-in pairs | solver MiB | dense MiB (for scale) | gen ms | close ms |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for n in [10_000usize, 100_000, 1_000_000] {
        let r = scale_row(n);
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {}/{} ({:.1}%) | {:.3e}{} | {:.1} | {:.0} | {:.0} | {:.0} |",
            r.n,
            r.edges,
            r.scc,
            r.dag_edges,
            r.tiles.occupied_output_tiles,
            r.tiles.total_tiles,
            r.tiles.output_occupancy() * 100.0,
            r.fill_pairs,
            if r.fill_exact { "" } else { " (sampled)" },
            r.mem_bytes as f64 / (1024.0 * 1024.0),
            (r.n as f64 * r.n as f64 / 8.0) / (1024.0 * 1024.0),
            r.gen_ms,
            r.close_ms,
        );
    }
    // The head-to-head the smoke gate pins: sparse vs dense BitMatrix at
    // n = 4096 on the same graph.
    let g = compare_graph();
    let t0 = std::time::Instant::now();
    let sc = SparseClosure::new(&g);
    let sparse_ms = t0.elapsed().as_secs_f64() * 1e3;
    let dense_in = {
        let mut m = systolic_semiring::BitMatrix::zeros(g.n());
        for (u, v) in g.edges() {
            m.set(u as usize, v as usize, true);
        }
        m
    };
    let t1 = std::time::Instant::now();
    let dense = dense_in.transitive_closure();
    let dense_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        sc.to_bitmatrix(),
        dense,
        "sparse and dense closures diverged at n=4096"
    );
    let _ = writeln!(
        out,
        "\nHead-to-head at n = 4096 (same graph, bit-identical results): sparse {sparse_ms:.1} ms \
         vs dense BitMatrix {dense_ms:.1} ms — {:.0}× (`bench_smoke.sh` gates ≥ 20×). Peak \
         resident memory at n = 10⁵ is gated by the same script.\n",
        dense_ms / sparse_ms
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_row_is_consistent_at_small_n() {
        let r = scale_row(2000);
        assert_eq!(r.n, 2000);
        assert!(r.edges > 2000);
        assert!(r.scc <= r.n);
        assert!(r.fill_pairs >= r.n as f64);
        assert!(r.mem_bytes > 0);
        assert!(r.tiles.total_tiles > 0);
    }

    #[test]
    fn compare_graph_is_pinned() {
        let g = compare_graph();
        assert_eq!(g.n(), 4096);
        let s = g.stats();
        assert!(
            s.avg_degree > 6.0 && s.avg_degree < 9.5,
            "pinned workload drifted: avg degree {}",
            s.avg_degree
        );
    }
}
