//! Machine-readable serve-stream perf lines for `scripts/bench_smoke.sh`.
//!
//! Usage:
//! ```text
//! cargo run --release -p systolic-bench --bin serve_bench [commands]
//! ```
//! Prints one `serve_stream/...` line per recompute path (software and
//! batched), one `serve_concurrent/...` line for the 4-client shared-TCP
//! run, and one `serve_recover/...` line for the kill-and-recover timing.
//! Exits nonzero if any `REACH` answer diverged from the full-recompute
//! oracle, any concurrent session failed, or recovery produced a wrong
//! closure — a number is only worth recording when the protocol is right.

use systolic_bench::serve::{run_concurrent_bench, run_recover_bench, run_serve_bench};

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .map(|a| {
            a.parse().unwrap_or_else(|_| {
                eprintln!("serve_bench: bad command count `{a}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(20_000);
    let software = run_serve_bench(64, count, 20_260_808, None);
    println!("{}", software.smoke_line());
    let batched = run_serve_bench(24, count.div_ceil(10), 20_260_808, Some(4));
    println!("{}", batched.smoke_line());
    let concurrent = run_concurrent_bench(48, 4, count.div_ceil(20), 20_260_808);
    println!("{}", concurrent.smoke_line());
    let recover = run_recover_bench(64, count.div_ceil(4), 20_260_808);
    println!("{}", recover.smoke_line());
    if !(software.ok && batched.ok && concurrent.ok && recover.ok) {
        eprintln!("serve_bench: a run diverged from its oracle or lost a session");
        std::process::exit(1);
    }
}
