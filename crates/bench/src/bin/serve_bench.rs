//! Machine-readable serve-stream perf lines for `scripts/bench_smoke.sh`.
//!
//! Usage:
//! ```text
//! cargo run --release -p systolic-bench --bin serve_bench [commands]
//! ```
//! Prints one `serve_stream/...` line per recompute path (software and
//! batched). Exits nonzero if any `REACH` answer diverged from the
//! full-recompute oracle — a throughput number is only worth recording
//! when the protocol is right.

use systolic_bench::serve::run_serve_bench;

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .map(|a| {
            a.parse().unwrap_or_else(|_| {
                eprintln!("serve_bench: bad command count `{a}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(20_000);
    let software = run_serve_bench(64, count, 20_260_808, None);
    println!("{}", software.smoke_line());
    let batched = run_serve_bench(24, count.div_ceil(10), 20_260_808, Some(4));
    println!("{}", batched.smoke_line());
    if !(software.ok && batched.ok) {
        eprintln!("serve_bench: REACH answers diverged from the recompute oracle");
        std::process::exit(1);
    }
}
