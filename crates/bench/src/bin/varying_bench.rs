//! Perf-smoke driver for the §4.3 varying-time utilization comparison
//! (experiment E30): prints one machine-parseable line consumed by
//! `scripts/bench_smoke.sh`, which records the utilization keys in
//! `BENCH_partition.json` and gates linear ≥ grid.

use systolic_bench::varying_measurement;

fn main() {
    let n = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("usage: varying_bench [n]"))
        .unwrap_or(24);
    let m = varying_measurement(n);
    println!(
        "varying_utilization/lu_n{} cells={} linear={:.4} grid={:.4} \
         analytic_linear={:.4} analytic_grid={:.4} interior_linear={:.4} \
         interior_grid={:.4} cycles_linear={} cycles_grid={} ok={}",
        m.n,
        m.cells,
        m.measured_linear,
        m.measured_grid,
        m.analytic_linear,
        m.analytic_grid,
        m.interior_linear,
        m.interior_grid,
        m.cycles_linear,
        m.cycles_grid,
        m.gates_hold()
    );
}
