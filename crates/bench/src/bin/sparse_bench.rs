//! Sparse data plane smoke driver for `scripts/bench_smoke.sh`.
//!
//! Prints one `sparse_scale/<n>` line per scaling row (ascending, so the
//! monotonic `VmHWM` snapshot after the 10⁵ row is not polluted by the
//! 10⁶ run) and a `sparse_tiles/<n>` occupancy line for the smallest row.
//! The smoke script parses the `key=value` pairs into
//! `BENCH_partition.json` and gates the 10⁵ peak-memory ceiling; the
//! 20× sparse-vs-dense gate comes from the `sparse_closure` bench's
//! median rows instead (same-run ratio like every other gate).
//!
//! Usage: `sparse_bench [max_n]` — rows above `max_n` are skipped
//! (default runs all three: 10⁴, 10⁵, 10⁶).

use systolic_bench::sparse::{scale_row, TILE};

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    for n in [10_000usize, 100_000, 1_000_000] {
        if n > max_n {
            continue;
        }
        let r = scale_row(n);
        // VmHWM is process-lifetime-monotonic: the snapshot taken inside
        // scale_row(n) ran before any larger row, so it bounds THIS row.
        println!(
            "sparse_scale/{n} edges={} scc={} dag_edges={} mode={:?} fill_pairs={:.3e} \
             fill_exact={} mem_bytes={} peak_rss_bytes={} gen_ms={:.1} close_ms={:.1}",
            r.edges,
            r.scc,
            r.dag_edges,
            r.mode,
            r.fill_pairs,
            r.fill_exact,
            r.mem_bytes,
            r.peak_rss_bytes.unwrap_or(0),
            r.gen_ms,
            r.close_ms,
        );
        if n == 10_000 {
            println!(
                "sparse_tiles/{n} tile={TILE} grid={} total={} occupied_in={} occupied_out={} \
                 muls={} skipped={}",
                r.tiles.grid,
                r.tiles.total_tiles,
                r.tiles.occupied_input_tiles,
                r.tiles.occupied_output_tiles,
                r.tiles.tile_muls,
                r.tiles.skipped_muls,
            );
        }
    }
}
