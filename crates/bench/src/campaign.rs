//! Seeded fault-injection campaigns over the recovering linear engine.
//!
//! A campaign runs a deterministic batch of random closure instances
//! through a [`RecoveringEngine`] wrapping a fault-armed [`LinearEngine`],
//! then audits every instance outcome against the software reference
//! (`warshall`) to classify each injected fault:
//!
//! * **detected** — the fault hit an attempt whose result the verifier (or
//!   the simulator itself) rejected; the attempt was retried, so nothing
//!   escaped;
//! * **harmless** — the fault hit an accepted attempt whose result still
//!   equals the reference (the upset was masked by the semiring fold);
//! * **escaped** — the fault hit an accepted attempt whose result differs
//!   from the reference: silent data corruption.
//!
//! Coverage is reported over *value-corrupting* faults only (corrupted
//! emissions and bank flips); dropped/duplicated words and stuck cells are
//! structural faults that surface as simulation errors or schedule skew and
//! are tabulated separately. The whole campaign is a pure function of its
//! [`CampaignConfig`], so running it twice must reproduce the identical
//! [`CampaignReport`] — the CLI and experiment E22 both assert this.

use std::fmt::Write as _;
use systolic_arraysim::{FaultKind, FaultPlan, FaultReport};
use systolic_closure::gnp;
use systolic_partition::{
    ClosureEngine, EngineError, Escalation, LinearEngine, RecoveringEngine, RecoveryPolicy,
};
use systolic_semiring::{warshall, Bool, DenseMatrix};

/// Parameters of a fault-injection campaign (see [`run_campaign`]).
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignConfig {
    /// Base seed for graph generation and the fault plan.
    pub seed: u64,
    /// Vertices per instance.
    pub n: usize,
    /// Edge probability of the random instance graphs. Escape rates are
    /// density-dependent: a fabricated reachability bit can only masquerade
    /// as a valid closure when it points into a cycle (see
    /// `systolic-partition::verify`), so mid-density graphs with a large
    /// strongly-connected component are the verifier's hardest case.
    pub density: f64,
    /// Linear-array cells `m`.
    pub cells: usize,
    /// Batch size (problem instances).
    pub instances: usize,
    /// Transient-fault rate fed to [`FaultPlan::transients`].
    pub rate: f64,
    /// Retry budget per array configuration before escalating.
    pub max_retries: u32,
    /// Optional marginal cell `(index, weight)`: its emissions fail
    /// `weight` times more often, driving the escalation-to-bypass path.
    pub hot_cell: Option<(usize, f64)>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 2026,
            n: 16,
            density: 0.06,
            cells: 4,
            instances: 300,
            rate: 3e-5,
            max_retries: 10,
            hot_cell: None,
        }
    }
}

/// Names of the per-kind tally rows, in [`kind_index`] order.
pub const KIND_NAMES: [&str; 5] = [
    "corrupt-emit",
    "drop-word",
    "dup-word",
    "bank-flip",
    "stick-cell",
];

fn kind_index(k: &FaultKind) -> usize {
    match k {
        FaultKind::CorruptEmit { .. } => 0,
        FaultKind::DropWord { .. } => 1,
        FaultKind::DuplicateWord { .. } => 2,
        FaultKind::BankFlip { .. } => 3,
        FaultKind::StickCell { .. } => 4,
    }
}

/// Per-fault-kind audit counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindTally {
    /// Faults of this kind applied by the injector.
    pub injected: u64,
    /// Faults whose attempt was rejected (retried before escaping).
    pub detected: u64,
    /// Faults present in an accepted result that differs from the
    /// reference.
    pub escaped: u64,
    /// Faults present in an accepted result that still equals the
    /// reference (masked upsets).
    pub harmless: u64,
}

/// The audited outcome of one campaign run.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// Merged engine-side counters, with `escaped` filled in from the
    /// reference comparison.
    pub fault: FaultReport,
    /// Per-kind tallies, indexed like [`KIND_NAMES`].
    pub kinds: [KindTally; 5],
    /// Detected value-corrupting faults (corrupt-emit + bank-flip).
    pub detected_vc: u64,
    /// Escaped value-corrupting faults (silent data corruption).
    pub escaped_vc: u64,
    /// True iff every accepted closure equals the software reference.
    pub results_match: bool,
    /// Instances whose accepted closure differs from the reference.
    pub mismatched_instances: u64,
    /// Mismatching instances with *no* accepted fault to blame — this
    /// would mean the engine corrupts results without any injected cause,
    /// and must always be zero.
    pub unexplained_mismatches: u64,
    /// Batch cycles of a fault-free run of the same engine.
    pub clean_cycles: u64,
    /// Batch cycles of the faulty run, retries included.
    pub faulty_cycles: u64,
    /// Cells retired onto the bypass chain by the end of the batch.
    pub bypassed_cells: usize,
    /// Total attempts consumed across the batch.
    pub attempts: u64,
}

impl CampaignReport {
    /// Detection coverage over value-corrupting faults, `None` when no
    /// such fault was injected.
    pub fn coverage(&self) -> Option<f64> {
        let total = self.detected_vc + self.escaped_vc;
        (total > 0).then(|| self.detected_vc as f64 / total as f64)
    }

    /// Structural throughput factor `(m − f)/m` after retiring `f` cells.
    pub fn degradation(&self, cells: usize) -> f64 {
        (cells - self.bypassed_cells) as f64 / cells as f64
    }

    /// Measured cycle inflation of the faulty run over the clean run.
    pub fn cycle_overhead(&self) -> f64 {
        self.faulty_cycles as f64 / self.clean_cycles as f64
    }
}

/// Runs one campaign: clean baseline, faulty recovering run, reference
/// audit. Deterministic in `cfg` — same config, same report.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, EngineError> {
    let batch: Vec<DenseMatrix<Bool>> = (0..cfg.instances)
        .map(|i| gnp(cfg.n, cfg.density, cfg.seed.wrapping_add(i as u64)).adjacency_matrix())
        .collect();
    let reference: Vec<_> = batch.iter().map(warshall).collect();

    let clean = LinearEngine::new(cfg.cells);
    let (clean_res, clean_stats) = ClosureEngine::<Bool>::closure_many(&clean, &batch)?;
    assert_eq!(clean_res, reference, "clean baseline must be exact");

    let mut plan = FaultPlan::transients(cfg.seed ^ 0xFA57_FA57, cfg.rate);
    if let Some((cell, weight)) = cfg.hot_cell {
        plan = plan.with_hot_cell(cell, weight);
    }
    let eng = RecoveringEngine::new(LinearEngine::new(cfg.cells).with_fault_plan(plan))
        .with_policy(RecoveryPolicy {
            max_retries: cfg.max_retries,
            escalation: Escalation::Bypass,
        });
    let (res, stats) = ClosureEngine::<Bool>::closure_many(&eng, &batch)?;

    let mut kinds = [KindTally::default(); 5];
    let (mut detected_vc, mut escaped_vc) = (0u64, 0u64);
    let (mut attempts, mut bypassed_cells) = (0u64, 0usize);
    let mut results_match = true;
    let (mut mismatched_instances, mut unexplained_mismatches) = (0u64, 0u64);
    for o in eng.outcomes() {
        attempts += u64::from(o.attempts);
        bypassed_cells = bypassed_cells.max(o.bypassed.len());
        for ev in &o.rejected_events {
            let k = kind_index(&ev.kind);
            kinds[k].injected += 1;
            kinds[k].detected += 1;
            if ev.kind.is_value_corrupting() {
                detected_vc += 1;
            }
        }
        let exact = res[o.instance] == reference[o.instance];
        results_match &= exact;
        if !exact {
            mismatched_instances += 1;
            if o.accepted_events.is_empty() {
                unexplained_mismatches += 1;
            }
        }
        for ev in &o.accepted_events {
            let k = kind_index(&ev.kind);
            kinds[k].injected += 1;
            if exact {
                kinds[k].harmless += 1;
            } else {
                kinds[k].escaped += 1;
                if ev.kind.is_value_corrupting() {
                    escaped_vc += 1;
                }
            }
        }
    }
    let mut fault = stats.fault;
    fault.escaped = escaped_vc;
    debug_assert_eq!(
        fault.injected,
        kinds.iter().map(|k| k.injected).sum::<u64>(),
        "engine and audit disagree on injected faults"
    );

    Ok(CampaignReport {
        fault,
        kinds,
        detected_vc,
        escaped_vc,
        results_match,
        mismatched_instances,
        unexplained_mismatches,
        clean_cycles: clean_stats.cycles,
        faulty_cycles: stats.cycles,
        bypassed_cells,
        attempts,
    })
}

/// Renders a campaign report as the CLI's detection-coverage table.
pub fn render_campaign(cfg: &CampaignConfig, r: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault campaign: seed {}, {} instances of n = {} (density {}), linear m = {}, rate {:.1e}, retry budget {}{}",
        cfg.seed,
        cfg.instances,
        cfg.n,
        cfg.density,
        cfg.cells,
        cfg.rate,
        cfg.max_retries,
        match cfg.hot_cell {
            Some((c, w)) => format!(", hot cell {c} (×{w:.0})"),
            None => String::new(),
        }
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| fault kind | injected | detected | escaped | harmless |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|");
    for (name, k) in KIND_NAMES.iter().zip(r.kinds.iter()) {
        let _ = writeln!(
            out,
            "| {name} | {} | {} | {} | {} |",
            k.injected, k.detected, k.escaped, k.harmless
        );
    }
    let _ = writeln!(
        out,
        "| total | {} | {} | {} | {} |",
        r.fault.injected,
        r.fault.detected,
        r.kinds.iter().map(|k| k.escaped).sum::<u64>(),
        r.kinds.iter().map(|k| k.harmless).sum::<u64>()
    );
    let _ = writeln!(out);
    match r.coverage() {
        Some(c) => {
            let _ = writeln!(
                out,
                "detection coverage (value-corrupting): {}/{} = {:.1}%",
                r.detected_vc,
                r.detected_vc + r.escaped_vc,
                100.0 * c
            );
        }
        None => {
            let _ = writeln!(
                out,
                "detection coverage: n/a (no value-corrupting fault injected)"
            );
        }
    }
    let _ = writeln!(
        out,
        "recovery: {} attempts for {} instances, {} retries, {} bypass escalations; all closures exact: {}",
        r.attempts, cfg.instances, r.fault.retries, r.fault.bypasses, r.results_match
    );
    if !r.results_match {
        let _ = writeln!(
            out,
            "silent corruption: {} instance(s) differ from the reference, every one explained \
             by an escaped fault: {}",
            r.mismatched_instances,
            r.unexplained_mismatches == 0
        );
    }
    let _ = writeln!(
        out,
        "throughput: {} cycles faulty vs {} clean ({:.2}× overhead); structural (m−f)/m = {:.2}",
        r.faulty_cycles,
        r.clean_cycles,
        r.cycle_overhead(),
        r.degradation(cfg.cells)
    );
    out
}
