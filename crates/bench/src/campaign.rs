//! Seeded fault-injection campaigns over the recovering linear engine.
//!
//! A campaign runs a deterministic batch of random closure instances
//! through a [`RecoveringEngine`] wrapping a fault-armed [`LinearEngine`],
//! then audits every instance outcome against the software reference
//! (`warshall`) to classify each injected fault:
//!
//! * **detected** — the fault hit an attempt whose result the verifier (or
//!   the simulator itself) rejected; the attempt was retried, so nothing
//!   escaped;
//! * **harmless** — the fault hit an accepted attempt whose result still
//!   equals the reference (the upset was masked by the semiring fold);
//! * **escaped** — the fault hit an accepted attempt whose result differs
//!   from the reference: silent data corruption.
//!
//! Coverage is reported over *value-corrupting* faults only (corrupted
//! emissions and bank flips); dropped/duplicated words and stuck cells are
//! structural faults that surface as simulation errors or schedule skew and
//! are tabulated separately. The whole campaign is a pure function of its
//! [`CampaignConfig`], so running it twice must reproduce the identical
//! [`CampaignReport`] — the CLI and experiment E22 both assert this.

use std::fmt::Write as _;
use systolic_arraysim::{FaultKind, FaultPlan, FaultReport};
use systolic_closure::gnp;
use systolic_partition::{
    ClosureEngine, EngineError, Escalation, LinearEngine, PackedEngine, RecoveringEngine,
    RecoveryPolicy,
};
use systolic_semiring::{warshall, Bool, DenseMatrix};

/// Parameters of a fault-injection campaign (see [`run_campaign`]).
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignConfig {
    /// Base seed for graph generation and the fault plan.
    pub seed: u64,
    /// Vertices per instance.
    pub n: usize,
    /// Edge probability of the random instance graphs. Escape rates are
    /// density-dependent: a fabricated reachability bit can only masquerade
    /// as a valid closure when it points into a cycle (see
    /// `systolic-partition::verify`), so mid-density graphs with a large
    /// strongly-connected component are the verifier's hardest case.
    pub density: f64,
    /// Linear-array cells `m`.
    pub cells: usize,
    /// Batch size (problem instances).
    pub instances: usize,
    /// Transient-fault rate fed to [`FaultPlan::transients`].
    pub rate: f64,
    /// Retry budget per array configuration before escalating.
    pub max_retries: u32,
    /// Optional marginal cell `(index, weight)`: its emissions fail
    /// `weight` times more often, driving the escalation-to-bypass path.
    pub hot_cell: Option<(usize, f64)>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 2026,
            n: 16,
            density: 0.06,
            cells: 4,
            instances: 300,
            rate: 3e-5,
            max_retries: 10,
            hot_cell: None,
        }
    }
}

/// Names of the per-kind tally rows, in `kind_index` order.
pub const KIND_NAMES: [&str; 5] = [
    "corrupt-emit",
    "drop-word",
    "dup-word",
    "bank-flip",
    "stick-cell",
];

fn kind_index(k: &FaultKind) -> usize {
    match k {
        FaultKind::CorruptEmit { .. } => 0,
        FaultKind::DropWord { .. } => 1,
        FaultKind::DuplicateWord { .. } => 2,
        FaultKind::BankFlip { .. } => 3,
        FaultKind::StickCell { .. } => 4,
    }
}

/// Per-fault-kind audit counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindTally {
    /// Faults of this kind applied by the injector.
    pub injected: u64,
    /// Faults whose attempt was rejected (retried before escaping).
    pub detected: u64,
    /// Faults present in an accepted result that differs from the
    /// reference.
    pub escaped: u64,
    /// Faults present in an accepted result that still equals the
    /// reference (masked upsets).
    pub harmless: u64,
}

/// The audited outcome of one campaign run.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// Merged engine-side counters, with `escaped` filled in from the
    /// reference comparison.
    pub fault: FaultReport,
    /// Per-kind tallies, indexed like [`KIND_NAMES`].
    pub kinds: [KindTally; 5],
    /// Detected value-corrupting faults (corrupt-emit + bank-flip).
    pub detected_vc: u64,
    /// Escaped value-corrupting faults (silent data corruption).
    pub escaped_vc: u64,
    /// True iff every accepted closure equals the software reference.
    pub results_match: bool,
    /// Instances whose accepted closure differs from the reference.
    pub mismatched_instances: u64,
    /// Mismatching instances with *no* accepted fault to blame — this
    /// would mean the engine corrupts results without any injected cause,
    /// and must always be zero.
    pub unexplained_mismatches: u64,
    /// Batch cycles of a fault-free run of the same engine.
    pub clean_cycles: u64,
    /// Batch cycles of the faulty run, retries included.
    pub faulty_cycles: u64,
    /// Cells retired onto the bypass chain by the end of the batch.
    pub bypassed_cells: usize,
    /// Total attempts consumed across the batch.
    pub attempts: u64,
}

impl CampaignReport {
    /// Detection coverage over value-corrupting faults, `None` when no
    /// such fault was injected.
    pub fn coverage(&self) -> Option<f64> {
        let total = self.detected_vc + self.escaped_vc;
        (total > 0).then(|| self.detected_vc as f64 / total as f64)
    }

    /// Structural throughput factor `(m − f)/m` after retiring `f` cells.
    pub fn degradation(&self, cells: usize) -> f64 {
        (cells - self.bypassed_cells) as f64 / cells as f64
    }

    /// Measured cycle inflation of the faulty run over the clean run.
    pub fn cycle_overhead(&self) -> f64 {
        self.faulty_cycles as f64 / self.clean_cycles as f64
    }
}

/// Runs one campaign: clean baseline, faulty recovering run, reference
/// audit. Deterministic in `cfg` — same config, same report.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, EngineError> {
    let batch: Vec<DenseMatrix<Bool>> = (0..cfg.instances)
        .map(|i| gnp(cfg.n, cfg.density, cfg.seed.wrapping_add(i as u64)).adjacency_matrix())
        .collect();
    let reference: Vec<_> = batch.iter().map(warshall).collect();

    let clean = LinearEngine::new(cfg.cells);
    let (clean_res, clean_stats) = ClosureEngine::<Bool>::closure_many(&clean, &batch)?;
    assert_eq!(clean_res, reference, "clean baseline must be exact");

    let mut plan = FaultPlan::transients(cfg.seed ^ 0xFA57_FA57, cfg.rate);
    if let Some((cell, weight)) = cfg.hot_cell {
        plan = plan.with_hot_cell(cell, weight);
    }
    let eng = RecoveringEngine::new(LinearEngine::new(cfg.cells).with_fault_plan(plan))
        .with_policy(RecoveryPolicy {
            max_retries: cfg.max_retries,
            escalation: Escalation::Bypass,
        });
    let (res, stats) = ClosureEngine::<Bool>::closure_many(&eng, &batch)?;

    let mut kinds = [KindTally::default(); 5];
    let (mut detected_vc, mut escaped_vc) = (0u64, 0u64);
    let (mut attempts, mut bypassed_cells) = (0u64, 0usize);
    let mut results_match = true;
    let (mut mismatched_instances, mut unexplained_mismatches) = (0u64, 0u64);
    for o in eng.outcomes() {
        attempts += u64::from(o.attempts);
        bypassed_cells = bypassed_cells.max(o.bypassed.len());
        for ev in &o.rejected_events {
            let k = kind_index(&ev.kind);
            kinds[k].injected += 1;
            kinds[k].detected += 1;
            if ev.kind.is_value_corrupting() {
                detected_vc += 1;
            }
        }
        let exact = res[o.instance] == reference[o.instance];
        results_match &= exact;
        if !exact {
            mismatched_instances += 1;
            if o.accepted_events.is_empty() {
                unexplained_mismatches += 1;
            }
        }
        for ev in &o.accepted_events {
            let k = kind_index(&ev.kind);
            kinds[k].injected += 1;
            if exact {
                kinds[k].harmless += 1;
            } else {
                kinds[k].escaped += 1;
                if ev.kind.is_value_corrupting() {
                    escaped_vc += 1;
                }
            }
        }
    }
    let mut fault = stats.fault;
    fault.escaped = escaped_vc;
    debug_assert_eq!(
        fault.injected,
        kinds.iter().map(|k| k.injected).sum::<u64>(),
        "engine and audit disagree on injected faults"
    );

    Ok(CampaignReport {
        fault,
        kinds,
        detected_vc,
        escaped_vc,
        results_match,
        mismatched_instances,
        unexplained_mismatches,
        clean_cycles: clean_stats.cycles,
        faulty_cycles: stats.cycles,
        bypassed_cells,
        attempts,
    })
}

/// Parameters of a packed-plane campaign (see [`run_packed_campaign`]).
#[derive(Clone, Debug, PartialEq)]
pub struct PackedCampaignConfig {
    /// Base seed for graph generation and the fault plan.
    pub seed: u64,
    /// Vertices per instance.
    pub n: usize,
    /// Edge probability of the random instance graphs.
    pub density: f64,
    /// Linear-array cells `m`.
    pub cells: usize,
    /// Batch size; pick `> 64` so the batch spans several lane groups.
    pub instances: usize,
    /// Per-opportunity rate of the value faults (`emit_corrupt` and
    /// `bank_flip`). Structural faults are left off: they tear the shared
    /// stream of a whole lane group, which is the scalar campaign's story.
    pub rate: f64,
    /// The lane the armed plan confines every value fault to.
    pub target_lane: usize,
    /// Value-fault rate of the recovering phase. Retries re-run one
    /// instance at a time, so this phase pins the plan to lane 0 (the only
    /// occupied lane of a group of one) and needs a rate low enough that a
    /// retry can come back clean — the raw phase's blast-radius rate would
    /// fault every attempt.
    pub recovery_rate: f64,
    /// Retry budget of the recovering phase.
    pub max_retries: u32,
}

impl Default for PackedCampaignConfig {
    fn default() -> Self {
        Self {
            seed: 2026,
            n: 12,
            density: 0.12,
            cells: 4,
            instances: 160,
            rate: 4e-3,
            target_lane: 9,
            recovery_rate: 4e-5,
            max_retries: 10,
        }
    }
}

/// The audited outcome of one packed-plane campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedCampaignReport {
    /// Lane count of the packed plane (64 for the Boolean default).
    pub lanes: usize,
    /// Faults applied during the raw packed batch.
    pub injected: u64,
    /// Instances whose raw packed result differs from the reference.
    pub mismatched_instances: u64,
    /// Mismatches at instances *outside* the target lane — corruption that
    /// leaked across lanes. Must be zero.
    pub off_target_mismatches: u64,
    /// Mismatched instances with no blame record attributing a
    /// value-corrupting fault to them. Must be zero.
    pub unexplained_mismatches: u64,
    /// Per-instance blame records the engine attributed to the target lane.
    pub blame_records: u64,
    /// Batches the raw phase ran packed / routed to the scalar path.
    pub raw_packed_runs: u64,
    /// Scalar fallbacks of the raw phase. Must be zero.
    pub raw_fallback_runs: u64,
    /// True iff every recovered closure equals the reference.
    pub recovered_exact: bool,
    /// Recovered instances that differ from the reference because an
    /// accepted fault escaped the verifier (its documented blind spot).
    pub recovery_escapes: u64,
    /// Recovered instances that differ from the reference with *no*
    /// accepted fault to blame. Must be zero.
    pub recovery_unexplained: u64,
    /// Verifier-driven retries consumed by the recovering phase.
    pub recovery_retries: u64,
    /// Packed batches executed by the recovering phase (includes retries).
    pub recovering_packed_runs: u64,
    /// Scalar fallbacks of the recovering phase. Must be zero.
    pub recovering_fallback_runs: u64,
}

impl PackedCampaignReport {
    /// True iff the packed fault story held end to end: no scalar
    /// fallback, no cross-lane leak, and every mismatch — raw or
    /// recovered — explained by a blamed or accepted fault. Escapes
    /// through the verifier's documented blind spot are tolerated (as in
    /// the scalar campaign); unexplained corruption is not.
    pub fn contained(&self) -> bool {
        self.raw_fallback_runs == 0
            && self.recovering_fallback_runs == 0
            && self.off_target_mismatches == 0
            && self.unexplained_mismatches == 0
            && self.recovery_unexplained == 0
    }
}

/// Runs a packed-plane fault campaign over the 64-lane Boolean engine.
///
/// Phase 1 (raw audit) runs the batch straight through a [`PackedEngine`]
/// whose armed plan targets one lane, and checks the blast radius: the run
/// stays packed, only instances `≡ target_lane (mod 64)` may differ from
/// `warshall`, and each mismatch is explained by a recorded per-instance
/// blame. Phase 2 wraps the same engine in a [`RecoveringEngine`] and
/// checks the campaign recovers to exact results without ever leaving the
/// packed path. Deterministic in `cfg`.
pub fn run_packed_campaign(
    cfg: &PackedCampaignConfig,
) -> Result<PackedCampaignReport, EngineError> {
    let lanes = <systolic_semiring::BoolLanes as systolic_semiring::Semiring>::LANE_COUNT;
    let batch: Vec<DenseMatrix<Bool>> = (0..cfg.instances)
        .map(|i| gnp(cfg.n, cfg.density, cfg.seed.wrapping_add(i as u64)).adjacency_matrix())
        .collect();
    let reference: Vec<_> = batch.iter().map(warshall).collect();

    let plan = FaultPlan {
        emit_corrupt: cfg.rate,
        bank_flip: cfg.rate,
        ..FaultPlan::none(cfg.seed ^ 0xFA57_FA57)
    }
    .with_target_lane(cfg.target_lane);

    // Phase 1: raw packed batch, audited against the reference.
    let raw = PackedEngine::from_engine(LinearEngine::new(cfg.cells).with_fault_plan(plan.clone()));
    let (res, stats) = raw.closure_many(&batch)?;
    let blame = raw.take_lane_blame();
    let target = cfg.target_lane % lanes;
    let (mut mismatched, mut off_target, mut unexplained) = (0u64, 0u64, 0u64);
    for (i, (got, expect)) in res.iter().zip(&reference).enumerate() {
        if got == expect {
            continue;
        }
        mismatched += 1;
        if i % lanes != target {
            off_target += 1;
        }
        if !blame.iter().any(|(inst, _)| *inst == i) {
            unexplained += 1;
        }
    }

    // Phase 2: a lane-targeted plan under the recovering wrapper. The
    // wrapper retries one instance at a time, and a group of one occupies
    // lane 0 only, so the plan targets lane 0 at the (lower) recovery
    // rate — otherwise every fault would land in an empty lane (trivially
    // clean) or every retry would be faulted (never converging).
    let recovery_plan = FaultPlan {
        emit_corrupt: cfg.recovery_rate,
        bank_flip: cfg.recovery_rate,
        ..FaultPlan::none(cfg.seed ^ 0x5EED_F00D)
    }
    .with_target_lane(0);
    let rec = RecoveringEngine::new(PackedEngine::from_engine(
        LinearEngine::new(cfg.cells).with_fault_plan(recovery_plan),
    ))
    .with_policy(RecoveryPolicy {
        max_retries: cfg.max_retries,
        escalation: Escalation::Fail,
    });
    let (rec_res, rec_stats) = ClosureEngine::<Bool>::closure_many(&rec, &batch)?;
    let recovered_exact = rec_res == reference;
    let (mut recovery_escapes, mut recovery_unexplained) = (0u64, 0u64);
    for o in rec.outcomes() {
        if rec_res[o.instance] == reference[o.instance] {
            continue;
        }
        if o.accepted_events
            .iter()
            .any(|e| e.kind.is_value_corrupting())
        {
            recovery_escapes += 1;
        } else {
            recovery_unexplained += 1;
        }
    }

    Ok(PackedCampaignReport {
        lanes,
        injected: stats.fault.injected,
        mismatched_instances: mismatched,
        off_target_mismatches: off_target,
        unexplained_mismatches: unexplained,
        blame_records: blame.len() as u64,
        raw_packed_runs: raw.packed_runs(),
        raw_fallback_runs: raw.fallback_runs(),
        recovered_exact,
        recovery_escapes,
        recovery_unexplained,
        recovery_retries: rec_stats.fault.retries,
        recovering_packed_runs: rec.inner().packed_runs(),
        recovering_fallback_runs: rec.inner().fallback_runs(),
    })
}

/// Renders a packed campaign report as the CLI's containment table.
pub fn render_packed_campaign(cfg: &PackedCampaignConfig, r: &PackedCampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "packed fault campaign: seed {}, {} instances of n = {} (density {}), linear m = {}, \
         value-fault rate {:.1e}, target lane {} of {}",
        cfg.seed,
        cfg.instances,
        cfg.n,
        cfg.density,
        cfg.cells,
        cfg.rate,
        cfg.target_lane % r.lanes,
        r.lanes,
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "| phase | packed runs | scalar fallbacks |");
    let _ = writeln!(out, "|---|---:|---:|");
    let _ = writeln!(
        out,
        "| raw batch | {} | {} |",
        r.raw_packed_runs, r.raw_fallback_runs
    );
    let _ = writeln!(
        out,
        "| recovering | {} | {} |",
        r.recovering_packed_runs, r.recovering_fallback_runs
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "blast radius: {} fault(s) injected, {} instance(s) mismatched, {} outside the target \
         lane, {} unexplained by the {} blame record(s)",
        r.injected,
        r.mismatched_instances,
        r.off_target_mismatches,
        r.unexplained_mismatches,
        r.blame_records,
    );
    let _ = writeln!(
        out,
        "recovery (lane-0 plan at rate {:.1e}): {} retry(ies), exact: {}, verifier escapes: {}, \
         unexplained: {}; containment held: {}",
        cfg.recovery_rate,
        r.recovery_retries,
        r.recovered_exact,
        r.recovery_escapes,
        r.recovery_unexplained,
        r.contained()
    );
    out
}

/// Renders a campaign report as the CLI's detection-coverage table.
pub fn render_campaign(cfg: &CampaignConfig, r: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault campaign: seed {}, {} instances of n = {} (density {}), linear m = {}, rate {:.1e}, retry budget {}{}",
        cfg.seed,
        cfg.instances,
        cfg.n,
        cfg.density,
        cfg.cells,
        cfg.rate,
        cfg.max_retries,
        match cfg.hot_cell {
            Some((c, w)) => format!(", hot cell {c} (×{w:.0})"),
            None => String::new(),
        }
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| fault kind | injected | detected | escaped | harmless |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|");
    for (name, k) in KIND_NAMES.iter().zip(r.kinds.iter()) {
        let _ = writeln!(
            out,
            "| {name} | {} | {} | {} | {} |",
            k.injected, k.detected, k.escaped, k.harmless
        );
    }
    let _ = writeln!(
        out,
        "| total | {} | {} | {} | {} |",
        r.fault.injected,
        r.fault.detected,
        r.kinds.iter().map(|k| k.escaped).sum::<u64>(),
        r.kinds.iter().map(|k| k.harmless).sum::<u64>()
    );
    let _ = writeln!(out);
    match r.coverage() {
        Some(c) => {
            let _ = writeln!(
                out,
                "detection coverage (value-corrupting): {}/{} = {:.1}%",
                r.detected_vc,
                r.detected_vc + r.escaped_vc,
                100.0 * c
            );
        }
        None => {
            let _ = writeln!(
                out,
                "detection coverage: n/a (no value-corrupting fault injected)"
            );
        }
    }
    let _ = writeln!(
        out,
        "recovery: {} attempts for {} instances, {} retries, {} bypass escalations; all closures exact: {}",
        r.attempts, cfg.instances, r.fault.retries, r.fault.bypasses, r.results_match
    );
    if !r.results_match {
        let _ = writeln!(
            out,
            "silent corruption: {} instance(s) differ from the reference, every one explained \
             by an escaped fault: {}",
            r.mismatched_instances,
            r.unexplained_mismatches == 0
        );
    }
    let _ = writeln!(
        out,
        "throughput: {} cycles faulty vs {} clean ({:.2}× overhead); structural (m−f)/m = {:.2}",
        r.faulty_cycles,
        r.clean_cycles,
        r.cycle_overhead(),
        r.degradation(cfg.cells)
    );
    out
}
