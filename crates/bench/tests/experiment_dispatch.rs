//! Guards against the missing-dispatch bug class: every `pub fn eNN`
//! experiment exported by the bench library must be reachable both from
//! the `experiments` binary's by-name dispatch and from `run_all`'s
//! labeled list. Two earlier PRs each shipped an experiment that silently
//! fell out of one of those two paths; this test scans the sources so the
//! third never lands.

use std::process::Command;

fn source(rel: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/src/").to_string() + rel;
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Every `pub fn eNN` in the library sources, sorted and deduplicated.
fn exported_experiments() -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for file in ["lib.rs", "sparse.rs"] {
        let text = source(file);
        for line in text.lines() {
            let Some(rest) = line.trim_start().strip_prefix("pub fn e") else {
                continue;
            };
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            if digits.len() == 2 && rest[digits.len()..].starts_with('(') {
                names.push(format!("e{digits}"));
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

#[test]
fn every_experiment_is_dispatched_by_name_and_listed_in_run_all() {
    let names = exported_experiments();
    assert!(
        names.len() >= 29,
        "expected at least 29 experiments, found {names:?}"
    );
    let dispatch = source("bin/experiments.rs");
    let lib = source("lib.rs");
    for name in &names {
        assert!(
            dispatch.contains(&format!("\"{name}\" => exp::{name}()")),
            "{name} has no by-name arm in src/bin/experiments.rs"
        );
        let label = name.to_uppercase();
        assert!(
            lib.contains(&format!("(\"{label}\"")),
            "{label} is missing from run_all's labeled list in lib.rs"
        );
    }
}

#[test]
fn experiments_binary_runs_e30_and_rejects_unknown_names() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("e30")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("## E30"), "{text}");
    assert!(text.contains("varying"), "{text}");

    let bad = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("e99")
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown experiment"));
}
