//! Durability: a write-ahead log of mutations plus periodic snapshots.
//!
//! Every effective `INSERT`/`DELETE` is appended to the WAL *before* it is
//! applied (log = commit), framed as
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]
//! payload = [seq: u64 LE][op: u8][u: u32 LE][v: u32 LE]
//! ```
//!
//! so every record is 25 bytes on disk. Recovery loads the newest valid
//! snapshot (if any), then replays WAL records with `seq` greater than the
//! snapshot's — stopping at the first frame whose header, length or CRC is
//! wrong and truncating that torn tail away, so a crash mid-append loses
//! at most the record being written: the recovered graph is always the
//! longest committed prefix of the mutation history.
//!
//! Snapshots are written atomically (`.tmp` + rename) every
//! `snapshot_every` logged mutations; after a successful snapshot the WAL
//! is truncated to zero. A crash between the rename and the truncate is
//! harmless: replay skips records whose `seq` the snapshot already covers.
//!
//! Appends are flushed per record but not fsynced — the contract is
//! process-crash durability (kill -9 safe), not power-loss durability.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use systolic_closure::DiGraph;

/// Fixed payload size of one WAL record.
const PAYLOAD_LEN: usize = 17;
/// Fixed on-disk size of one framed WAL record.
pub const FRAME_LEN: usize = 8 + PAYLOAD_LEN;
/// Snapshot file magic (versioned).
const SNAP_MAGIC: &[u8; 8] = b"SYSSNAP1";

/// One durable mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// Edge insertion.
    Insert,
    /// Edge deletion.
    Delete,
}

/// A decoded WAL record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone sequence number (1-based across the service's lifetime).
    pub seq: u64,
    /// What happened.
    pub op: WalOp,
    /// Source vertex.
    pub u: usize,
    /// Target vertex.
    pub v: usize,
}

/// What [`Durability::open`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number covered by the loaded snapshot (`None` = no
    /// snapshot on disk).
    pub snapshot_seq: Option<u64>,
    /// WAL records replayed on top of the snapshot/initial graph.
    pub replayed: u64,
    /// Bytes discarded from the WAL's torn tail (0 = clean shutdown).
    pub torn_bytes: u64,
    /// Valid WAL bytes retained after recovery.
    pub wal_bytes: u64,
}

/// CRC-32 (IEEE 802.3, reflected) — bitwise, no table; records are tiny.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn encode_frame(rec: &WalRecord) -> [u8; FRAME_LEN] {
    let mut payload = [0u8; PAYLOAD_LEN];
    payload[0..8].copy_from_slice(&rec.seq.to_le_bytes());
    payload[8] = match rec.op {
        WalOp::Insert => 0,
        WalOp::Delete => 1,
    };
    payload[9..13].copy_from_slice(&(rec.u as u32).to_le_bytes());
    payload[13..17].copy_from_slice(&(rec.v as u32).to_le_bytes());
    let mut frame = [0u8; FRAME_LEN];
    frame[0..4].copy_from_slice(&(PAYLOAD_LEN as u32).to_le_bytes());
    frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
    frame[8..].copy_from_slice(&payload);
    frame
}

/// Decodes the frame at `buf[at..]`; `None` when the frame is absent,
/// short, or fails its length/CRC/op-byte checks (the torn-tail rule:
/// replay stops here).
fn decode_frame(buf: &[u8], at: usize) -> Option<WalRecord> {
    let header = buf.get(at..at + 8)?;
    let len = u32::from_le_bytes(header[0..4].try_into().ok()?) as usize;
    if len != PAYLOAD_LEN {
        return None;
    }
    let want_crc = u32::from_le_bytes(header[4..8].try_into().ok()?);
    let payload = buf.get(at + 8..at + 8 + len)?;
    if crc32(payload) != want_crc {
        return None;
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let op = match payload[8] {
        0 => WalOp::Insert,
        1 => WalOp::Delete,
        _ => return None,
    };
    let u = u32::from_le_bytes(payload[9..13].try_into().ok()?) as usize;
    let v = u32::from_le_bytes(payload[13..17].try_into().ok()?) as usize;
    Some(WalRecord { seq, op, u, v })
}

fn snapshot_bytes(graph: &DiGraph, seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 8 * graph.edge_count());
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&(graph.n() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(graph.edge_count() as u64).to_le_bytes());
    for u in 0..graph.n() {
        for &v in graph.successors(u) {
            out.extend_from_slice(&(u as u32).to_le_bytes());
            out.extend_from_slice(&(v as u32).to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn parse_snapshot(bytes: &[u8]) -> Option<(DiGraph, u64)> {
    if bytes.len() < 28 + 4 || &bytes[0..8] != SNAP_MAGIC {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let want_crc = u32::from_le_bytes(tail.try_into().ok()?);
    if crc32(body) != want_crc {
        return None;
    }
    let n = u32::from_le_bytes(body[8..12].try_into().ok()?) as usize;
    let seq = u64::from_le_bytes(body[12..20].try_into().ok()?);
    let edges = u64::from_le_bytes(body[20..28].try_into().ok()?) as usize;
    if body.len() != 28 + 8 * edges {
        return None;
    }
    let mut g = DiGraph::new(n);
    for e in 0..edges {
        let at = 28 + 8 * e;
        let u = u32::from_le_bytes(body[at..at + 4].try_into().ok()?) as usize;
        let v = u32::from_le_bytes(body[at + 4..at + 8].try_into().ok()?) as usize;
        if u >= n || v >= n {
            return None;
        }
        g.add_edge(u, v);
    }
    Some((g, seq))
}

/// The durable mutation log: WAL appender plus snapshot writer.
///
/// Owned by a [`crate::ReachService`]; all calls happen under the server's
/// write lock, so the log needs no locking of its own.
pub struct Durability {
    file: File,
    wal_path: PathBuf,
    snap_path: PathBuf,
    wal_bytes: u64,
    next_seq: u64,
    snapshot_every: Option<u64>,
    since_snapshot: u64,
    snapshots_written: u64,
}

impl Durability {
    /// Where the snapshot for a given WAL path lives.
    pub fn snapshot_path(wal: &Path) -> PathBuf {
        let mut p = wal.as_os_str().to_os_string();
        p.push(".snap");
        PathBuf::from(p)
    }

    /// Opens (creating if absent) the WAL at `wal_path` and recovers the
    /// durable graph: newest valid snapshot if present (else `initial`),
    /// plus the WAL's longest committed record prefix. A torn final record
    /// is discarded and truncated away so later appends start clean.
    ///
    /// # Errors
    /// I/O errors, a snapshot that exists but fails validation (refusing
    /// to silently serve wrong data), or a snapshot whose vertex count
    /// disagrees with `initial`.
    pub fn open(
        wal_path: &Path,
        snapshot_every: Option<u64>,
        initial: DiGraph,
    ) -> io::Result<(Self, DiGraph, RecoveryReport)> {
        let snap_path = Self::snapshot_path(wal_path);
        let mut report = RecoveryReport::default();
        let mut graph = initial;
        let mut base_seq = 0u64;
        match std::fs::read(&snap_path) {
            Ok(bytes) => {
                let (snap, seq) = parse_snapshot(&bytes).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("snapshot {} is corrupt", snap_path.display()),
                    )
                })?;
                if snap.n() != graph.n() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "snapshot {} has n={}, service has n={}",
                            snap_path.display(),
                            snap.n(),
                            graph.n()
                        ),
                    ));
                }
                base_seq = seq;
                graph = snap;
                report.snapshot_seq = Some(seq);
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(wal_path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut at = 0usize;
        let mut last_seq = base_seq;
        while let Some(rec) = decode_frame(&buf, at) {
            at += FRAME_LEN;
            if rec.seq <= base_seq {
                continue; // snapshot already covers it (crash before truncate)
            }
            if rec.u >= graph.n() || rec.v >= graph.n() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "wal record seq={} touches vertex {}/{} outside n={}",
                        rec.seq,
                        rec.u,
                        rec.v,
                        graph.n()
                    ),
                ));
            }
            match rec.op {
                WalOp::Insert => graph.add_edge(rec.u, rec.v),
                WalOp::Delete => {
                    graph.remove_edge(rec.u, rec.v);
                }
            }
            last_seq = last_seq.max(rec.seq);
            report.replayed += 1;
        }
        if at < buf.len() {
            report.torn_bytes = (buf.len() - at) as u64;
            file.set_len(at as u64)?;
        }
        file.seek(SeekFrom::Start(at as u64))?;
        report.wal_bytes = at as u64;
        Ok((
            Self {
                file,
                wal_path: wal_path.to_path_buf(),
                snap_path,
                wal_bytes: at as u64,
                next_seq: last_seq + 1,
                snapshot_every,
                since_snapshot: 0,
                snapshots_written: 0,
            },
            graph,
            report,
        ))
    }

    /// Appends one mutation record (flushed before returning) and hands
    /// back its sequence number. Call *before* applying the mutation:
    /// the log is the commit point.
    ///
    /// # Errors
    /// The append's I/O error; the record must then be treated as not
    /// committed (the caller answers `ERR` and does not apply).
    pub fn log(&mut self, op: WalOp, u: usize, v: usize) -> io::Result<u64> {
        let rec = WalRecord {
            seq: self.next_seq,
            op,
            u,
            v,
        };
        let frame = encode_frame(&rec);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.next_seq += 1;
        self.wal_bytes += FRAME_LEN as u64;
        self.since_snapshot += 1;
        Ok(rec.seq)
    }

    /// Writes a snapshot of `graph` if the per-snapshot mutation budget is
    /// spent. Call *after* applying the mutation that [`Durability::log`]
    /// committed, so the snapshot state matches its sequence number.
    ///
    /// # Errors
    /// Snapshot write/rename or WAL truncation errors.
    pub fn maybe_snapshot(&mut self, graph: &DiGraph) -> io::Result<bool> {
        match self.snapshot_every {
            Some(every) if self.since_snapshot >= every => {
                self.force_snapshot(graph)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Unconditionally snapshots `graph` at the last committed sequence
    /// number, then truncates the WAL (its records are now covered).
    ///
    /// # Errors
    /// Snapshot write/rename or WAL truncation errors.
    pub fn force_snapshot(&mut self, graph: &DiGraph) -> io::Result<()> {
        let seq = self.next_seq - 1;
        let bytes = snapshot_bytes(graph, seq);
        let tmp = {
            let mut p = self.snap_path.as_os_str().to_os_string();
            p.push(".tmp");
            PathBuf::from(p)
        };
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.snap_path)?;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.wal_bytes = 0;
        self.since_snapshot = 0;
        self.snapshots_written += 1;
        Ok(())
    }

    /// Valid WAL bytes currently on disk.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Snapshots written by this process (not counting any loaded at open).
    pub fn snapshots(&self) -> u64 {
        self.snapshots_written
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The WAL file path.
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Durability(wal: {}, bytes: {}, next_seq: {}, snapshots: {})",
            self.wal_path.display(),
            self.wal_bytes,
            self.next_seq,
            self.snapshots_written
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::BitMatrix;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("systolic-wal-{}-{name}", std::process::id()));
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(Durability::snapshot_path(&p)).ok();
        p
    }

    fn cleanup(p: &Path) {
        std::fs::remove_file(p).ok();
        std::fs::remove_file(Durability::snapshot_path(p)).ok();
    }

    fn closure_of(g: &DiGraph) -> BitMatrix {
        BitMatrix::from_dense(&g.adjacency_matrix()).transitive_closure()
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn log_reopen_round_trip() {
        let path = tmp("roundtrip");
        let ops = [
            (WalOp::Insert, 0, 1),
            (WalOp::Insert, 1, 2),
            (WalOp::Delete, 0, 1),
            (WalOp::Insert, 2, 3),
        ];
        {
            let (mut d, g, report) = Durability::open(&path, None, DiGraph::new(5)).unwrap();
            assert_eq!(report, RecoveryReport::default());
            assert_eq!(g.edge_count(), 0);
            for &(op, u, v) in &ops {
                d.log(op, u, v).unwrap();
            }
            assert_eq!(d.wal_bytes(), (ops.len() * FRAME_LEN) as u64);
        }
        let (d, g, report) = Durability::open(&path, None, DiGraph::new(5)).unwrap();
        assert_eq!(report.replayed, 4);
        assert_eq!(report.torn_bytes, 0);
        assert!(g.has_edge(1, 2) && g.has_edge(2, 3) && !g.has_edge(0, 1));
        assert_eq!(d.next_seq(), 5);
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_discarded_and_appends_restart_clean() {
        let path = tmp("torn");
        {
            let (mut d, _, _) = Durability::open(&path, None, DiGraph::new(4)).unwrap();
            d.log(WalOp::Insert, 0, 1).unwrap();
            d.log(WalOp::Insert, 1, 2).unwrap();
        }
        // Simulate a crash mid-append: half a frame of garbage.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB; FRAME_LEN / 2]).unwrap();
        }
        let (mut d, g, report) = Durability::open(&path, None, DiGraph::new(4)).unwrap();
        assert_eq!(report.replayed, 2);
        assert_eq!(report.torn_bytes, (FRAME_LEN / 2) as u64);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
        // The file was truncated, so a fresh append lands on a clean tail.
        d.log(WalOp::Insert, 2, 3).unwrap();
        drop(d);
        let (_, g2, r2) = Durability::open(&path, None, DiGraph::new(4)).unwrap();
        assert_eq!(r2.replayed, 3);
        assert_eq!(r2.torn_bytes, 0);
        assert!(g2.has_edge(2, 3));
        cleanup(&path);
    }

    #[test]
    fn snapshot_cycle_truncates_wal_and_recovers_exactly() {
        let path = tmp("snap");
        {
            let (mut d, _, _) = Durability::open(&path, Some(3), DiGraph::new(6)).unwrap();
            let mut g = DiGraph::new(6);
            for (i, &(u, v)) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)].iter().enumerate() {
                d.log(WalOp::Insert, u, v).unwrap();
                g.add_edge(u, v);
                d.maybe_snapshot(&g).unwrap();
                let expect_snaps = ((i + 1) / 3) as u64;
                assert_eq!(d.snapshots(), expect_snaps, "after {} ops", i + 1);
            }
            assert_eq!(d.wal_bytes(), (2 * FRAME_LEN) as u64, "2 ops since snap");
        }
        let (_, g, report) = Durability::open(&path, Some(3), DiGraph::new(6)).unwrap();
        assert_eq!(report.snapshot_seq, Some(3));
        assert_eq!(report.replayed, 2, "only the wal tail replays");
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)] {
            assert!(g.has_edge(u, v));
        }
        cleanup(&path);
    }

    #[test]
    fn snapshot_seq_guard_skips_already_covered_records() {
        let path = tmp("seqguard");
        // Crash window: snapshot renamed into place, WAL truncate never ran.
        {
            let (mut d, _, _) = Durability::open(&path, None, DiGraph::new(4)).unwrap();
            d.log(WalOp::Insert, 0, 1).unwrap();
            d.log(WalOp::Insert, 1, 2).unwrap();
            d.log(WalOp::Delete, 0, 1).unwrap();
            // Write the snapshot by hand *without* truncating the WAL.
            let mut g = DiGraph::new(4);
            g.add_edge(1, 2);
            std::fs::write(Durability::snapshot_path(&path), snapshot_bytes(&g, 3)).unwrap();
        }
        let (d, g, report) = Durability::open(&path, None, DiGraph::new(4)).unwrap();
        assert_eq!(report.snapshot_seq, Some(3));
        assert_eq!(report.replayed, 0, "all wal records are seq <= 3");
        assert!(g.has_edge(1, 2) && !g.has_edge(0, 1));
        assert_eq!(d.next_seq(), 4);
        cleanup(&path);
    }

    #[test]
    fn corrupt_snapshot_is_refused_loudly() {
        let path = tmp("badsnap");
        std::fs::write(Durability::snapshot_path(&path), b"SYSSNAP1 garbage").unwrap();
        let err = Durability::open(&path, None, DiGraph::new(4)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        cleanup(&path);
    }

    #[test]
    fn truncation_sweep_recovers_longest_committed_prefix() {
        let path = tmp("sweep");
        let n = 8;
        let mut rng = systolic_util::Rng::seed_from_u64(42);
        let mut ops: Vec<(WalOp, usize, usize)> = Vec::new();
        {
            let (mut d, _, _) = Durability::open(&path, None, DiGraph::new(n)).unwrap();
            let mut g = DiGraph::new(n);
            for _ in 0..20 {
                let (u, v) = (rng.gen_usize(n), rng.gen_usize(n));
                let op = if g.has_edge(u, v) && rng.gen_bool(0.5) {
                    WalOp::Delete
                } else {
                    WalOp::Insert
                };
                match op {
                    WalOp::Insert => g.add_edge(u, v),
                    WalOp::Delete => {
                        g.remove_edge(u, v);
                    }
                }
                d.log(op, u, v).unwrap();
                ops.push((op, u, v));
            }
        }
        let full = std::fs::read(&path).unwrap();
        assert_eq!(full.len(), 20 * FRAME_LEN);
        let cut = tmp("sweep-cut");
        for len in 0..=full.len() {
            std::fs::write(&cut, &full[..len]).unwrap();
            std::fs::remove_file(Durability::snapshot_path(&cut)).ok();
            let (_, g, report) =
                Durability::open(&cut, None, DiGraph::new(n)).unwrap_or_else(|e| {
                    panic!("recovery must never fail on truncation (len {len}): {e}")
                });
            let committed = len / FRAME_LEN;
            assert_eq!(report.replayed as usize, committed, "len {len}");
            assert_eq!(report.torn_bytes as usize, len - committed * FRAME_LEN);
            let mut want = DiGraph::new(n);
            for &(op, u, v) in &ops[..committed] {
                match op {
                    WalOp::Insert => want.add_edge(u, v),
                    WalOp::Delete => {
                        want.remove_edge(u, v);
                    }
                }
            }
            assert_eq!(
                closure_of(&g),
                closure_of(&want),
                "closure diverged at truncation {len}"
            );
        }
        cleanup(&path);
        cleanup(&cut);
    }
}
