//! The long-running reachability service (ROADMAP item 2).
//!
//! A server owns one transitive closure `R*` and answers a command stream
//! — the datacenter query/update pattern where reads vastly outnumber
//! structural changes:
//!
//! * `REACH u v` — O(1) bit probe of the maintained closure;
//! * `INSERT u v` — the rank-1 semiring update
//!   `R* ← R* ⊕ R*·e_uv·R*` (`O(n²/64)` words, never a recompute);
//! * `DELETE u v` — marks the closure dirty; the next read triggers a
//!   per-SCC recompute through the condensation, so consecutive deletes
//!   coalesce into one;
//! * `STATS` / `QUIT` — introspection and session end.
//!
//! The recompute path can run in software
//! ([`systolic_closure::closure_via_condensation`]) or through a shared
//! [`systolic_partition::AdmissionBatcher`], which packs the pending
//! component-DAG closures of up to 64 tenants into one `BoolLanes` run on
//! the packed engine's memoized plan — a warm server never recompiles and
//! never runs scalar when it can pack.
//!
//! Production hardening on top of the core service:
//!
//! * [`wal`] — durability: a checksummed write-ahead log of mutations
//!   plus periodic snapshots; recovery replays the longest committed
//!   prefix and discards a torn tail.
//! * [`server::SharedService`] — many concurrent sessions over one
//!   `RwLock`-guarded service, with non-blocking degraded reads
//!   (`stale=true`) while a recompute holds the writer.
//! * [`chaos`] — seeded fault-injecting transport wrappers
//!   (disconnects, partial writes, bit flips) for chaos tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod protocol;
pub mod server;
pub mod service;
pub mod stream;
pub mod wal;

pub use chaos::{ChaosPlan, ChaosReader, ChaosWriter};
pub use protocol::{parse_command, Command, Response};
pub use server::{serve, serve_tcp, ServeSummary, SessionLimits, SharedService};
pub use service::{ReachService, ServiceError, ServiceStats, MAX_LOAD_VERTICES};
pub use stream::seeded_stream;
pub use wal::{Durability, RecoveryReport, WalOp, WalRecord};
