//! Transport loops: stdin/stdout line sessions and the TCP stretch goal.
//!
//! Both transports run the same session loop: read a line, parse, execute,
//! write one response line, flush. Protocol errors answer `ERR ...` and
//! keep the session alive; `QUIT` (or EOF) ends it.

use crate::protocol::{parse_command, Response};
use crate::service::ReachService;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

/// What one session processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Lines that parsed into a command and were executed.
    pub commands: u64,
    /// Lines answered with `ERR` (parse or backend).
    pub errors: u64,
    /// True when the session ended with `QUIT` (false on EOF).
    pub quit: bool,
}

/// Runs one session over arbitrary line transports until `QUIT` or EOF.
///
/// # Errors
/// Propagates transport I/O errors (a closed pipe mid-write); protocol
/// and backend errors are answered in-band and do not end the session.
pub fn serve<R: BufRead, W: Write>(
    svc: &mut ReachService,
    input: R,
    mut out: W,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        let cmd = match parse_command(&line) {
            Ok(Some(c)) => c,
            Ok(None) => continue,
            Err(msg) => {
                svc.note_error();
                summary.errors += 1;
                writeln!(out, "{}", Response::Err(msg))?;
                out.flush()?;
                continue;
            }
        };
        let resp = svc.execute(cmd);
        summary.commands += 1;
        if matches!(resp, Response::Err(_)) {
            summary.errors += 1;
        }
        let is_bye = matches!(resp, Response::Bye);
        writeln!(out, "{resp}")?;
        out.flush()?;
        if is_bye {
            summary.quit = true;
            break;
        }
    }
    Ok(summary)
}

/// Serves TCP clients sequentially on an already-bound listener; each
/// connection is one [`serve`] session. Stops after `max_sessions`
/// connections when given (`None` loops forever — the CLI's daemon mode).
///
/// # Errors
/// Propagates accept/I-O errors.
pub fn serve_tcp(
    svc: &mut ReachService,
    listener: &TcpListener,
    max_sessions: Option<usize>,
) -> std::io::Result<ServeSummary> {
    let mut total = ServeSummary::default();
    for (session, conn) in listener.incoming().enumerate() {
        let stream = conn?;
        let reader = BufReader::new(stream.try_clone()?);
        let s = serve(svc, reader, stream)?;
        total.commands += s.commands;
        total.errors += s.errors;
        total.quit |= s.quit;
        if max_sessions.is_some_and(|m| session + 1 >= m) {
            break;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_closure::DiGraph;

    fn run(input: &str) -> (String, ServeSummary) {
        let mut svc = ReachService::new(DiGraph::new(4));
        let mut out = Vec::new();
        let summary = serve(&mut svc, input.as_bytes(), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn full_session_transcript() {
        let (out, summary) = run(
            "# build a path\nINSERT 0 1\nINSERT 1 2\nREACH 0 2\nDELETE 0 1\nREACH 0 2\nSTATS\nQUIT\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "OK INSERT 0 1 added=1");
        assert_eq!(lines[1], "OK INSERT 1 2 added=2");
        assert_eq!(lines[2], "REACH 0 2 true");
        assert_eq!(lines[3], "OK DELETE 0 1 removed=true");
        assert_eq!(lines[4], "REACH 0 2 false");
        assert!(lines[5].starts_with("STATS "), "{}", lines[5]);
        assert_eq!(lines[6], "BYE");
        assert_eq!(summary.commands, 7);
        assert_eq!(summary.errors, 0);
        assert!(summary.quit);
    }

    #[test]
    fn errors_answer_in_band_and_session_survives() {
        let (out, summary) = run("REACH 0\nFROB\nREACH 0 0\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("ERR "), "{}", lines[0]);
        assert!(lines[1].starts_with("ERR "), "{}", lines[1]);
        assert_eq!(lines[2], "REACH 0 0 true");
        assert_eq!(summary.errors, 2);
        assert!(!summary.quit, "EOF, not QUIT");
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead as _, BufReader, Write as _};
        use std::net::TcpStream;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            let mut ask = |line: &str| -> String {
                writeln!(w, "{line}").unwrap();
                let mut resp = String::new();
                reader.read_line(&mut resp).unwrap();
                resp.trim_end().to_string()
            };
            let a = ask("INSERT 0 1");
            let b = ask("REACH 0 1");
            let c = ask("QUIT");
            (a, b, c)
        });
        let mut svc = ReachService::new(DiGraph::new(2));
        let summary = serve_tcp(&mut svc, &listener, Some(1)).unwrap();
        let (a, b, c) = client.join().unwrap();
        assert_eq!(a, "OK INSERT 0 1 added=1");
        assert_eq!(b, "REACH 0 1 true");
        assert_eq!(c, "BYE");
        assert!(summary.quit);
        assert_eq!(summary.commands, 3);
    }
}
