//! Transport loops: concurrent TCP sessions and stdio, sharing one closure.
//!
//! All transports run the same session loop over a [`SharedService`]: read
//! a bounded line, parse, execute, write one response line, flush.
//! Protocol errors answer `ERR ...` and keep the session alive; `QUIT`
//! (or EOF, or an idle timeout) ends it.
//!
//! ## Lock discipline
//!
//! The service sits behind one `RwLock`. `REACH` on a clean closure takes
//! the read lock — arbitrarily many sessions answer concurrently.
//! Mutations (and the recomputes they force) serialize through the write
//! lock, appending to the WAL before applying. A `REACH` that finds the
//! closure dirty tries to upgrade (`try_write`) and refresh; if another
//! session already holds the writer, it answers from the last *published*
//! clean closure with `stale=true` instead of blocking — reads never
//! queue behind a recompute.
//!
//! ## Fault isolation
//!
//! A single session's I/O error (disconnect mid-line, reset, write to a
//! closed pipe) is counted as a failed session and logged to stderr; the
//! daemon keeps accepting. Only binding/listener setup errors are fatal.

use crate::protocol::{parse_command, Command, Response};
use crate::service::ReachService;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use std::time::Duration;
use systolic_semiring::BitMatrix;

/// Per-session overload/abuse bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionLimits {
    /// Longest accepted request line in bytes; longer lines are shed
    /// (consumed without buffering) and answered `ERR`.
    pub max_line: usize,
    /// Idle/read timeout per session (`None` = wait forever). On TCP this
    /// becomes `set_read_timeout`; a session that times out ends
    /// gracefully and is counted in [`ServeSummary::timeouts`].
    pub read_timeout: Option<Duration>,
}

impl Default for SessionLimits {
    fn default() -> Self {
        Self {
            max_line: 64 * 1024,
            read_timeout: None,
        }
    }
}

/// What one session (or a whole TCP daemon run) processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Lines that parsed into a command and were executed.
    pub commands: u64,
    /// Lines answered with `ERR` (parse, overlength, or backend).
    pub errors: u64,
    /// True when a session ended with `QUIT` (false on EOF/timeout).
    pub quit: bool,
    /// Sessions completed (TCP daemon totals; 0 for a single stdio loop).
    pub sessions: u64,
    /// Sessions that died on a transport I/O error (daemon survived).
    pub failed_sessions: u64,
    /// Sessions ended by the idle/read timeout.
    pub timeouts: u64,
    /// Lines shed for exceeding [`SessionLimits::max_line`].
    pub oversize: u64,
}

impl ServeSummary {
    fn absorb(&mut self, s: &ServeSummary) {
        self.commands += s.commands;
        self.errors += s.errors;
        self.quit |= s.quit;
        self.sessions += s.sessions;
        self.failed_sessions += s.failed_sessions;
        self.timeouts += s.timeouts;
        self.oversize += s.oversize;
    }
}

/// One [`ReachService`] shared by many concurrent sessions.
///
/// See the module docs for the lock discipline. The struct also owns the
/// *published snapshot*: an `Arc` of the last clean closure, swapped in
/// whenever the guarded service is observed clean, which degraded reads
/// answer from without touching the main lock.
pub struct SharedService {
    svc: RwLock<ReachService>,
    limits: SessionLimits,
    snapshot: Mutex<Arc<BitMatrix>>,
    stale_reads: AtomicU64,
    protocol_errors: AtomicU64,
    active: AtomicUsize,
}

impl SharedService {
    /// Wraps a service for concurrent use, publishing its current closure.
    pub fn new(svc: ReachService, limits: SessionLimits) -> Self {
        let snapshot = Arc::new(svc.stale_closure().clone());
        Self {
            svc: RwLock::new(svc),
            limits,
            snapshot: Mutex::new(snapshot),
            stale_reads: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            active: AtomicUsize::new(0),
        }
    }

    /// The session bounds in force.
    pub fn limits(&self) -> SessionLimits {
        self.limits
    }

    /// Reads answered from a stale published closure under contention.
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads.load(Relaxed)
    }

    /// Sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        self.active.load(Relaxed)
    }

    /// Direct access to the guarded service (CLI epilogue, tests).
    /// A poisoned lock is recovered, not propagated: a session that
    /// panicked must not wedge the daemon.
    pub fn read(&self) -> RwLockReadGuard<'_, ReachService> {
        self.svc.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Exclusive access to the guarded service (poison-recovering).
    pub fn write(&self) -> RwLockWriteGuard<'_, ReachService> {
        self.svc.write().unwrap_or_else(|p| p.into_inner())
    }

    fn try_read(&self) -> Option<RwLockReadGuard<'_, ReachService>> {
        match self.svc.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    fn try_write(&self) -> Option<RwLockWriteGuard<'_, ReachService>> {
        match self.svc.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Counts a protocol-level error (lock-free: must not block behind a
    /// recompute just to bump a counter).
    pub fn note_error(&self) {
        self.protocol_errors.fetch_add(1, Relaxed);
    }

    fn publish(&self, svc: &ReachService) {
        if !svc.is_dirty() {
            let fresh = Arc::new(svc.stale_closure().clone());
            *self.snapshot.lock().unwrap_or_else(|p| p.into_inner()) = fresh;
        }
    }

    fn snapshot(&self) -> Arc<BitMatrix> {
        Arc::clone(&self.snapshot.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Executes one command under the lock discipline described in the
    /// module docs. Never blocks a `REACH` behind an in-flight recompute.
    pub fn execute(&self, cmd: Command) -> Response {
        match cmd {
            Command::Reach(u, v) => {
                if let Some(resp) = self.fast_reach(u, v) {
                    return resp;
                }
                match self.try_write() {
                    Some(mut svc) => {
                        let resp = svc.execute(cmd);
                        self.publish(&svc);
                        resp
                    }
                    None => self.degraded_reach(u, v),
                }
            }
            Command::Insert(..) | Command::Delete(..) | Command::Load(..) => {
                let mut svc = self.write();
                let resp = svc.execute(cmd);
                self.publish(&svc);
                resp
            }
            Command::Stats => {
                let mut svc = self.write();
                let resp = svc.execute(cmd);
                self.publish(&svc);
                match resp {
                    Response::Stats(line) => Response::Stats(format!(
                        "{line} active_sessions={} stale_reads={} protocol_errors={}",
                        self.active.load(Relaxed),
                        self.stale_reads.load(Relaxed),
                        self.protocol_errors.load(Relaxed),
                    )),
                    other => other,
                }
            }
            Command::Quit => Response::Bye,
        }
    }

    /// Shared-read fast path: clean closure, no contention, no staleness.
    fn fast_reach(&self, u: usize, v: usize) -> Option<Response> {
        let svc = self.try_read()?;
        let reachable = svc.reach_clean(u, v)?;
        Some(Response::Reach {
            u,
            v,
            reachable,
            stale: false,
        })
    }

    /// A writer holds the lock (mutation or recompute in flight): answer
    /// from the published snapshot, flagged stale, instead of blocking.
    fn degraded_reach(&self, u: usize, v: usize) -> Response {
        let snap = self.snapshot();
        if u >= snap.n() || v >= snap.n() {
            self.note_error();
            return Response::Err(format!("vertex out of range (n={}): {u} {v}", snap.n()));
        }
        self.stale_reads.fetch_add(1, Relaxed);
        Response::Reach {
            u,
            v,
            reachable: snap.get(u, v),
            stale: true,
        }
    }
}

impl std::fmt::Debug for SharedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedService(active: {}, stale_reads: {}, limits: {:?})",
            self.active.load(Relaxed),
            self.stale_reads.load(Relaxed),
            self.limits,
        )
    }
}

/// Outcome of one bounded line read.
enum LineEvent {
    /// A complete line (without its newline) is in the buffer.
    Line,
    /// The line exceeded the bound; it was consumed but never buffered.
    TooLong { discarded: u64 },
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line into `buf`, never holding more than
/// `max` bytes: an overlong line is drained from the transport and
/// reported [`LineEvent::TooLong`] without being buffered — a
/// multi-megabyte request costs the server no memory.
fn read_bounded_line<R: BufRead>(
    r: &mut R,
    max: usize,
    buf: &mut Vec<u8>,
) -> io::Result<LineEvent> {
    buf.clear();
    loop {
        let (copy, consume, done) = {
            let chunk = match r.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                return Ok(if buf.is_empty() {
                    LineEvent::Eof
                } else {
                    LineEvent::Line // final line without trailing newline
                });
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => (pos, pos + 1, true),
                None => (chunk.len(), chunk.len(), false),
            }
        };
        if buf.len() + copy > max {
            // Shed without buffering: drain to the newline (or EOF).
            let mut discarded = (buf.len() + consume) as u64;
            buf.clear();
            if done {
                r.consume(consume);
                return Ok(LineEvent::TooLong {
                    discarded: discarded - 1,
                });
            }
            r.consume(consume);
            loop {
                let (n, end) = {
                    let chunk = match r.fill_buf() {
                        Ok(c) => c,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    };
                    if chunk.is_empty() {
                        return Ok(LineEvent::TooLong { discarded });
                    }
                    match chunk.iter().position(|&b| b == b'\n') {
                        Some(pos) => (pos + 1, true),
                        None => (chunk.len(), false),
                    }
                };
                r.consume(n);
                discarded += n as u64;
                if end {
                    return Ok(LineEvent::TooLong {
                        discarded: discarded - 1,
                    });
                }
            }
        }
        let chunk = r.fill_buf()?; // same data: BufRead contract, no consume yet
        buf.extend_from_slice(&chunk[..copy]);
        r.consume(consume);
        if done {
            return Ok(LineEvent::Line);
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Runs one session over arbitrary line transports until `QUIT`, EOF, or
/// an idle timeout. Input is bounded per [`SessionLimits`]: overlong
/// lines and invalid UTF-8 answer `ERR` in-band and the session lives on.
///
/// # Errors
/// Propagates transport I/O errors (a closed pipe mid-write, a reset
/// mid-read); protocol and backend errors never end the session.
pub fn serve<R: BufRead, W: Write>(
    shared: &SharedService,
    mut input: R,
    mut out: W,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let max_line = shared.limits().max_line;
    let mut buf = Vec::new();
    loop {
        match read_bounded_line(&mut input, max_line, &mut buf) {
            Ok(LineEvent::Eof) => break,
            Ok(LineEvent::TooLong { discarded }) => {
                shared.note_error();
                summary.errors += 1;
                summary.oversize += 1;
                writeln!(
                    out,
                    "{}",
                    Response::Err(format!(
                        "line too long ({discarded} bytes > {max_line} max), discarded"
                    ))
                )?;
                out.flush()?;
                continue;
            }
            Ok(LineEvent::Line) => {}
            Err(e) if is_timeout(&e) => {
                summary.timeouts += 1;
                break;
            }
            Err(e) => return Err(e),
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            shared.note_error();
            summary.errors += 1;
            writeln!(out, "{}", Response::Err("line is not valid UTF-8".into()))?;
            out.flush()?;
            continue;
        };
        let cmd = match parse_command(line) {
            Ok(Some(c)) => c,
            Ok(None) => continue,
            Err(msg) => {
                shared.note_error();
                summary.errors += 1;
                writeln!(out, "{}", Response::Err(msg))?;
                out.flush()?;
                continue;
            }
        };
        let resp = shared.execute(cmd);
        summary.commands += 1;
        if matches!(resp, Response::Err(_)) {
            summary.errors += 1;
        }
        let is_bye = matches!(resp, Response::Bye);
        writeln!(out, "{resp}")?;
        out.flush()?;
        if is_bye {
            summary.quit = true;
            break;
        }
    }
    Ok(summary)
}

/// Serves TCP clients concurrently on an already-bound listener: each
/// connection runs a [`serve`] session on its own thread, all sharing the
/// closure through `shared`'s lock discipline. At most `concurrency`
/// sessions run at once (further accepts wait for a slot); after
/// `max_sessions` total connections (when given) the daemon drains and
/// returns the merged summary — `None` loops forever, the CLI's daemon
/// mode.
///
/// A failed accept or a session I/O error is logged to stderr and counted
/// ([`ServeSummary::failed_sessions`]); it never terminates the daemon.
pub fn serve_tcp(
    shared: &Arc<SharedService>,
    listener: &TcpListener,
    concurrency: usize,
    max_sessions: Option<usize>,
) -> io::Result<ServeSummary> {
    let concurrency = concurrency.max(1);
    let totals = Arc::new(Mutex::new(ServeSummary::default()));
    let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut accepted = 0usize;
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: accept failed: {e}");
                let mut t = totals.lock().unwrap_or_else(|p| p.into_inner());
                t.failed_sessions += 1;
                continue;
            }
        };
        {
            let (count, cv) = &*gate;
            let mut active = count.lock().unwrap_or_else(|p| p.into_inner());
            while *active >= concurrency {
                active = cv.wait(active).unwrap_or_else(|p| p.into_inner());
            }
            *active += 1;
        }
        accepted += 1;
        let session = accepted;
        let shared = Arc::clone(shared);
        let totals = Arc::clone(&totals);
        let gate = Arc::clone(&gate);
        let timeout = shared.limits().read_timeout;
        handles.push(std::thread::spawn(move || {
            shared.active.fetch_add(1, Relaxed);
            let outcome = (|| -> io::Result<ServeSummary> {
                stream.set_nodelay(true)?; // line protocol: answer now, not post-Nagle
                stream.set_read_timeout(timeout)?;
                let reader = BufReader::new(stream.try_clone()?);
                serve(&shared, reader, &stream)
            })();
            {
                let mut t = totals.lock().unwrap_or_else(|p| p.into_inner());
                match outcome {
                    Ok(s) => {
                        t.absorb(&s);
                        t.sessions += 1;
                    }
                    Err(e) => {
                        eprintln!("serve: session {session} failed: {e}");
                        t.sessions += 1;
                        t.failed_sessions += 1;
                    }
                }
            }
            shared.active.fetch_sub(1, Relaxed);
            let (count, cv) = &*gate;
            *count.lock().unwrap_or_else(|p| p.into_inner()) -= 1;
            cv.notify_one();
        }));
        if max_sessions.is_some_and(|m| accepted >= m) {
            break;
        }
    }
    for h in handles {
        if h.join().is_err() {
            // A panicking session must not take the daemon down with it.
            let mut t = totals.lock().unwrap_or_else(|p| p.into_inner());
            t.failed_sessions += 1;
        }
    }
    let t = totals.lock().unwrap_or_else(|p| p.into_inner());
    Ok(*t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_closure::DiGraph;

    fn shared(n: usize) -> SharedService {
        SharedService::new(ReachService::new(DiGraph::new(n)), SessionLimits::default())
    }

    fn run(input: &str) -> (String, ServeSummary) {
        let svc = shared(4);
        let mut out = Vec::new();
        let summary = serve(&svc, input.as_bytes(), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn full_session_transcript() {
        let (out, summary) = run(
            "# build a path\nINSERT 0 1\nINSERT 1 2\nREACH 0 2\nDELETE 0 1\nREACH 0 2\nSTATS\nQUIT\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "OK INSERT 0 1 added=1");
        assert_eq!(lines[1], "OK INSERT 1 2 added=2");
        assert_eq!(lines[2], "REACH 0 2 true");
        assert_eq!(lines[3], "OK DELETE 0 1 removed=true");
        assert_eq!(lines[4], "REACH 0 2 false");
        assert!(lines[5].starts_with("STATS "), "{}", lines[5]);
        assert!(lines[5].contains("active_sessions="), "{}", lines[5]);
        assert!(lines[5].contains("wal_bytes="), "{}", lines[5]);
        assert_eq!(lines[6], "BYE");
        assert_eq!(summary.commands, 7);
        assert_eq!(summary.errors, 0);
        assert!(summary.quit);
    }

    #[test]
    fn errors_answer_in_band_and_session_survives() {
        let (out, summary) = run("REACH 0\nFROB\nREACH 0 0\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("ERR "), "{}", lines[0]);
        assert!(lines[1].starts_with("ERR "), "{}", lines[1]);
        assert_eq!(lines[2], "REACH 0 0 true");
        assert_eq!(summary.errors, 2);
        assert!(!summary.quit, "EOF, not QUIT");
    }

    #[test]
    fn oversized_lines_are_shed_without_buffering() {
        let svc = SharedService::new(
            ReachService::new(DiGraph::new(4)),
            SessionLimits {
                max_line: 32,
                read_timeout: None,
            },
        );
        let monster = "REACH ".to_string() + &"9".repeat(1 << 20) + "\nREACH 0 0\n";
        let mut out = Vec::new();
        let summary = serve(&svc, monster.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("ERR line too long"), "{}", lines[0]);
        assert_eq!(lines[1], "REACH 0 0 true", "session survived the monster");
        assert_eq!(summary.oversize, 1);
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn invalid_utf8_answers_err_in_band() {
        let svc = shared(4);
        let input: Vec<u8> = [b"REACH 0 0\n".as_slice(), &[0xFF, 0xFE, b'\n'], b"QUIT\n"].concat();
        let mut out = Vec::new();
        let summary = serve(&svc, input.as_slice(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "REACH 0 0 true");
        assert!(lines[1].starts_with("ERR "), "{}", lines[1]);
        assert_eq!(lines[2], "BYE");
        assert!(summary.quit);
    }

    #[test]
    fn degraded_reach_answers_stale_while_writer_holds_the_lock() {
        let svc = shared(4);
        svc.execute(parse_command("INSERT 0 1").unwrap().unwrap());
        svc.execute(parse_command("INSERT 1 2").unwrap().unwrap());
        // Dirty the closure, then simulate an in-flight recompute by
        // holding the write lock from this thread.
        svc.execute(parse_command("DELETE 0 1").unwrap().unwrap());
        let guard = svc.write();
        let resp = svc.execute(parse_command("REACH 0 2").unwrap().unwrap());
        assert_eq!(resp.to_string(), "REACH 0 2 true stale=true");
        assert_eq!(svc.stale_reads(), 1);
        drop(guard);
        // Writer released: the read refreshes and answers exactly.
        let resp = svc.execute(parse_command("REACH 0 2").unwrap().unwrap());
        assert_eq!(resp.to_string(), "REACH 0 2 false");
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead as _, BufReader, Write as _};
        use std::net::TcpStream;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            let mut ask = |line: &str| -> String {
                writeln!(w, "{line}").unwrap();
                let mut resp = String::new();
                reader.read_line(&mut resp).unwrap();
                resp.trim_end().to_string()
            };
            let a = ask("INSERT 0 1");
            let b = ask("REACH 0 1");
            let c = ask("QUIT");
            (a, b, c)
        });
        let svc = Arc::new(shared(2));
        let summary = serve_tcp(&svc, &listener, 1, Some(1)).unwrap();
        let (a, b, c) = client.join().unwrap();
        assert_eq!(a, "OK INSERT 0 1 added=1");
        assert_eq!(b, "REACH 0 1 true");
        assert_eq!(c, "BYE");
        assert!(summary.quit);
        assert_eq!(summary.commands, 3);
        assert_eq!(summary.sessions, 1);
        assert_eq!(summary.failed_sessions, 0);
    }

    #[test]
    fn client_disconnect_mid_session_does_not_kill_the_daemon() {
        use std::io::{BufRead as _, BufReader, Write as _};
        use std::net::TcpStream;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let clients = std::thread::spawn(move || {
            // Client 1: flood commands, never read a byte of the
            // responses, end on half a line, and slam the connection
            // shut — the server's answers land on a dead (usually RST)
            // socket mid-session.
            {
                let mut s = TcpStream::connect(addr).unwrap();
                for _ in 0..64 {
                    s.write_all(b"REACH 0 0\n").unwrap();
                }
                s.write_all(b"REACH 0").unwrap();
                drop(s);
            }
            // Client 2: a normal session afterwards must still work.
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            writeln!(w, "INSERT 0 1").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            writeln!(w, "QUIT").unwrap();
            let mut bye = String::new();
            reader.read_line(&mut bye).unwrap();
            (resp.trim_end().to_string(), bye.trim_end().to_string())
        });
        let svc = Arc::new(shared(2));
        let summary = serve_tcp(&svc, &listener, 2, Some(2)).unwrap();
        let (resp, bye) = clients.join().unwrap();
        assert_eq!(resp, "OK INSERT 0 1 added=1");
        assert_eq!(bye, "BYE");
        assert_eq!(summary.sessions, 2);
        assert!(
            summary.failed_sessions <= 1,
            "an abrupt reset may or may not surface as an error: {summary:?}"
        );
        assert!(summary.quit, "the healthy session completed");
    }
}
