//! Seeded transport fault injection, in the spirit of `arraysim::inject`.
//!
//! A [`ChaosReader`]/[`ChaosWriter`] wraps any `Read`/`Write` and applies a
//! seeded [`ChaosPlan`]: mid-stream disconnects (an `io::Error` after a
//! pinned byte budget), short reads/writes (partial progress per call),
//! and byte corruption (seeded bit flips). The plan is a pure function of
//! its seed, so every chaos run replays exactly — the same discipline the
//! simulator's `FaultPlan` gives the array is applied to the protocol
//! layer, where the test subject is the *server's* survival: a session hit
//! by chaos may die, but it must die alone (counted, logged, daemon still
//! accepting) and must never corrupt the shared closure.

use std::io::{self, Read, Write};
use systolic_util::Rng;

/// Seeded description of transport misbehavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// PRNG seed (fragmentation and corruption draws).
    pub seed: u64,
    /// Disconnect (ConnectionReset) after this many transported bytes.
    pub cut_after: Option<u64>,
    /// Flip one random bit in roughly 1 out of `k` bytes.
    pub corrupt_one_in: Option<u64>,
    /// Fragment transfers: each call moves at most a seeded 1..=7 bytes.
    pub fragment: bool,
}

impl ChaosPlan {
    /// A plan that does nothing (wrapping with it is transparent).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            cut_after: None,
            corrupt_one_in: None,
            fragment: false,
        }
    }

    /// Disconnect after `bytes` transported bytes.
    pub fn cut(seed: u64, bytes: u64) -> Self {
        Self {
            seed,
            cut_after: Some(bytes),
            corrupt_one_in: None,
            fragment: false,
        }
    }

    /// Corrupt roughly 1-in-`k` bytes and fragment every transfer.
    pub fn noisy(seed: u64, one_in: u64) -> Self {
        Self {
            seed,
            cut_after: None,
            corrupt_one_in: Some(one_in),
            fragment: true,
        }
    }
}

#[derive(Debug)]
struct ChaosState {
    rng: Rng,
    plan: ChaosPlan,
    transported: u64,
    cut: bool,
}

impl ChaosState {
    fn new(plan: ChaosPlan) -> Self {
        Self {
            rng: Rng::seed_from_u64(plan.seed),
            plan,
            transported: 0,
            cut: false,
        }
    }

    /// How many of `want` bytes this call may move; `Err` = disconnected.
    fn admit(&mut self, want: usize) -> io::Result<usize> {
        if self.cut {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection already cut",
            ));
        }
        let mut quota = want;
        if self.plan.fragment && want > 1 {
            quota = quota.min(1 + self.rng.gen_usize(7));
        }
        if let Some(cut) = self.plan.cut_after {
            let left = cut.saturating_sub(self.transported);
            if left == 0 {
                self.cut = true;
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("chaos: cut after {cut} bytes"),
                ));
            }
            quota = quota.min(left as usize);
        }
        Ok(quota)
    }

    fn corrupt(&mut self, buf: &mut [u8]) {
        if let Some(k) = self.plan.corrupt_one_in {
            for b in buf {
                if self.rng.gen_usize(k.max(1) as usize) == 0 {
                    *b ^= 1 << self.rng.gen_usize(8);
                }
            }
        }
    }
}

/// A `Read` that injects the wrapped plan's faults into the byte stream.
#[derive(Debug)]
pub struct ChaosReader<R> {
    inner: R,
    state: ChaosState,
}

impl<R: Read> ChaosReader<R> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: R, plan: ChaosPlan) -> Self {
        Self {
            inner,
            state: ChaosState::new(plan),
        }
    }

    /// Total bytes delivered before any cut.
    pub fn transported(&self) -> u64 {
        self.state.transported
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let quota = self.state.admit(buf.len())?;
        let n = self.inner.read(&mut buf[..quota])?;
        self.state.corrupt(&mut buf[..n]);
        self.state.transported += n as u64;
        Ok(n)
    }
}

/// A `Write` that injects the wrapped plan's faults into the byte stream.
#[derive(Debug)]
pub struct ChaosWriter<W> {
    inner: W,
    state: ChaosState,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: W, plan: ChaosPlan) -> Self {
        Self {
            inner,
            state: ChaosState::new(plan),
        }
    }

    /// Total bytes accepted before any cut.
    pub fn transported(&self) -> u64 {
        self.state.transported
    }

    /// The wrapped writer (to inspect what actually arrived).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let quota = self.state.admit(buf.len())?;
        let mut chunk = buf[..quota].to_vec();
        self.state.corrupt(&mut chunk);
        let n = self.inner.write(&chunk)?;
        self.state.transported += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Cursor};

    #[test]
    fn inert_plan_is_transparent() {
        let data = b"INSERT 0 1\nREACH 0 1\n";
        let mut r = ChaosReader::new(Cursor::new(data.to_vec()), ChaosPlan::none(7));
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        assert_eq!(got, data);
        let mut w = ChaosWriter::new(Vec::new(), ChaosPlan::none(7));
        w.write_all(data).unwrap();
        assert_eq!(w.into_inner(), data);
    }

    #[test]
    fn cut_disconnects_mid_stream_exactly_once_replayable() {
        let data = vec![0x55u8; 100];
        let run = |seed| {
            let mut r = ChaosReader::new(Cursor::new(data.clone()), ChaosPlan::cut(seed, 37));
            let mut got = Vec::new();
            let err = r.read_to_end(&mut got).unwrap_err();
            (got.len(), err.kind())
        };
        let (n1, k1) = run(3);
        let (n2, k2) = run(3);
        assert_eq!((n1, k1), (n2, k2), "chaos replays exactly");
        assert_eq!(n1, 37);
        assert_eq!(k1, io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn fragmented_writer_still_delivers_everything_via_write_all() {
        let data: Vec<u8> = (0..=255).collect();
        let mut w = ChaosWriter::new(
            Vec::new(),
            ChaosPlan {
                seed: 11,
                cut_after: None,
                corrupt_one_in: None,
                fragment: true,
            },
        );
        w.write_all(&data).unwrap();
        assert_eq!(w.into_inner(), data, "write_all loops over short writes");
    }

    #[test]
    fn corruption_flips_bits_deterministically() {
        let data = vec![0u8; 4096];
        let run = || {
            let mut r = ChaosReader::new(Cursor::new(data.clone()), ChaosPlan::noisy(9, 16));
            let mut got = Vec::new();
            r.read_to_end(&mut got).unwrap();
            got
        };
        let a = run();
        assert_eq!(a, run(), "corruption is seeded");
        let flipped = a.iter().filter(|&&b| b != 0).count();
        assert!(
            flipped > 100,
            "about 1/16 of 4096 bytes flip, got {flipped}"
        );
    }

    #[test]
    fn buffered_reading_over_chaos_yields_lines_until_the_cut() {
        let text = b"REACH 0 1\nREACH 1 2\nREACH 2 3\n".to_vec();
        let r = ChaosReader::new(Cursor::new(text), ChaosPlan::cut(5, 15));
        let mut lines = BufReader::new(r);
        let mut line = String::new();
        lines.read_line(&mut line).unwrap();
        assert_eq!(line, "REACH 0 1\n");
        line.clear();
        let err = lines.read_line(&mut line).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }
}
