//! The service core: one graph, one maintained closure, command execution.

use crate::protocol::{Command, Response};
use crate::wal::{Durability, WalOp};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use systolic_closure::{DiGraph, IncrementalClosure, RecomputeJob};
use systolic_partition::{AdmissionBatcher, EngineError, Ticket};

/// Largest graph `LOAD` accepts. The served closure is a dense `n×n`
/// bitset so each rank-1 insert costs `O(n²/64)` words; at 32 768
/// vertices that is a 128 MiB closure and ~16 M words per insert —
/// roughly the point where staying dense per-SCC stops paying for
/// interactive update latencies. Beyond it, the sparse offline path
/// (`systolic closure --sparse`) is the right tool.
pub const MAX_LOAD_VERTICES: usize = 32_768;

/// Service-level counters (superset of the closure's own update stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// `REACH` queries answered.
    pub queries: u64,
    /// Protocol or backend errors reported (session survived them).
    pub errors: u64,
}

/// Why a command could not be executed. Everything here is answered
/// in-band as `ERR ...`; nothing terminates the session or the daemon.
#[derive(Debug)]
pub enum ServiceError {
    /// Backend engine failure (including [`EngineError::Busy`] shedding).
    Engine(EngineError),
    /// WAL/snapshot I/O failure — the mutation was *not* committed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Busy renders bare so the wire line starts `ERR BUSY ...`
            // (a parseable backpressure signal, not a generic backend
            // failure).
            ServiceError::Engine(e @ EngineError::Busy { .. }) => write!(f, "{e}"),
            ServiceError::Engine(e) => write!(f, "backend: {e}"),
            ServiceError::Io(e) => write!(f, "wal: {e}"),
        }
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// A reachability service over one graph.
///
/// Owns an [`IncrementalClosure`], optionally a [`Durability`] log (every
/// effective mutation is WAL-committed before it is applied, snapshots
/// roll the log up), and optionally a shared [`AdmissionBatcher`] for
/// engine-packed delete-fallback recomputes. Mutations arriving while the
/// closure is dirty join a pending-recompute queue whose depth is capped
/// by [`set_max_pending`](ReachService::set_max_pending): past the cap
/// they answer `ERR BUSY` instead of growing the backlog without bound.
pub struct ReachService {
    inc: IncrementalClosure,
    batcher: Option<Arc<AdmissionBatcher>>,
    durability: Option<Durability>,
    /// A submitted-but-unclaimed recompute (two-phase batching).
    pending: Option<(RecomputeJob, Ticket)>,
    /// Mutations deferred behind the dirty closure since the last
    /// recompute — the admission-queue depth the `BUSY` cap bounds.
    pending_depth: u64,
    max_pending: Option<u64>,
    queries: AtomicU64,
    errors: AtomicU64,
}

impl ReachService {
    /// A service computing delete-fallback recomputes in software.
    pub fn new(graph: DiGraph) -> Self {
        Self {
            inc: IncrementalClosure::new(graph),
            batcher: None,
            durability: None,
            pending: None,
            pending_depth: 0,
            max_pending: None,
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// A service routing recomputes through a shared admission batcher.
    pub fn with_batcher(graph: DiGraph, batcher: Arc<AdmissionBatcher>) -> Self {
        let mut svc = Self::new(graph);
        svc.batcher = Some(batcher);
        svc
    }

    /// Attaches a durability log (builder style). The caller recovers the
    /// graph through [`Durability::open`] first and constructs the service
    /// from the recovered graph, so closure state ≡ the committed history.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Caps the pending-recompute queue: mutations arriving while the
    /// closure is dirty and `cap` are already queued answer `ERR BUSY`.
    /// `None` (the default) keeps the queue unbounded.
    pub fn set_max_pending(&mut self, cap: Option<u64>) {
        self.max_pending = cap;
    }

    /// Number of vertices served.
    pub fn n(&self) -> usize {
        self.inc.n()
    }

    /// The underlying incremental closure (mainly for tests/benches).
    pub fn closure(&mut self) -> &systolic_semiring::BitMatrix {
        self.pending_depth = 0;
        self.inc.closure()
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.queries.load(Relaxed),
            errors: self.errors.load(Relaxed),
        }
    }

    /// True when a delete has left the closure stale.
    pub fn is_dirty(&self) -> bool {
        self.inc.is_dirty()
    }

    /// Mutations queued behind the dirty closure (0 when clean).
    pub fn queue_depth(&self) -> u64 {
        self.pending_depth
    }

    /// WAL bytes on disk (0 without a durability log).
    pub fn wal_bytes(&self) -> u64 {
        self.durability.as_ref().map_or(0, Durability::wal_bytes)
    }

    /// Snapshots written this run (0 without a durability log).
    pub fn snapshots(&self) -> u64 {
        self.durability.as_ref().map_or(0, Durability::snapshots)
    }

    /// Answers `REACH u v` without any mutable access, provided the
    /// closure is clean — the concurrent server's shared-read fast path.
    /// `None` when dirty (or out of range): the caller must take the slow
    /// path. Counts the query when it answers.
    pub fn reach_clean(&self, u: usize, v: usize) -> Option<bool> {
        if u >= self.n() || v >= self.n() {
            return None;
        }
        let closed = self.inc.closure_if_clean()?;
        self.queries.fetch_add(1, Relaxed);
        Some(closed.get(u, v))
    }

    /// The maintained closure as-is, possibly stale (missing deletes
    /// since the last recompute) — what the concurrent server publishes
    /// as its degraded-read snapshot.
    pub fn stale_closure(&self) -> &systolic_semiring::BitMatrix {
        self.inc.stale_closure()
    }

    /// Answers `REACH u v` from the possibly-stale closure (missing
    /// deletes since the last recompute) — the degraded read a server
    /// gives under overload rather than blocking. Counts the query.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range (callers bounds-check first).
    pub fn reach_stale(&self, u: usize, v: usize) -> bool {
        assert!(u < self.n() && v < self.n(), "vertex out of range");
        self.queries.fetch_add(1, Relaxed);
        self.inc.stale_closure().get(u, v)
    }

    /// Phase one of a batched recompute: submit this tenant's pending
    /// component-DAG closure to the shared batcher (no-op when clean or
    /// already submitted, or when running in software). Returns whether a
    /// request was submitted.
    ///
    /// # Errors
    /// Propagates the batcher's admission error (including
    /// [`EngineError::Busy`] from a bounded queue).
    pub fn enqueue_recompute(&mut self) -> Result<bool, EngineError> {
        let Some(batcher) = &self.batcher else {
            return Ok(false);
        };
        if self.pending.is_some() || !self.inc.is_dirty() {
            return Ok(false);
        }
        let Some(job) = self.inc.prepare_recompute() else {
            return Ok(false); // raced clean — nothing to do
        };
        let ticket = batcher.submit(job.dag.clone())?;
        self.pending = Some((job, ticket));
        Ok(true)
    }

    /// Phase two: claim the flushed result and install it. Returns whether
    /// a pending recompute was completed. If the ticket never resolved
    /// (the shared flush failed, or this is called before any flush) the
    /// service falls back to a software recompute instead of panicking —
    /// a lost batch degrades to the slow path, it does not wedge the
    /// closure dirty.
    pub fn finish_recompute(&mut self) -> bool {
        let Some((job, ticket)) = self.pending.take() else {
            return false;
        };
        let claimed = self.batcher.as_ref().and_then(|b| {
            let got = b.take(ticket);
            if got.is_none() {
                b.cancel(ticket); // don't leave an orphan in the queue
            }
            got
        });
        match claimed {
            Some(closed) => self.inc.complete_recompute(&job, &closed),
            None => self.inc.refresh(),
        }
        self.pending_depth = 0;
        true
    }

    /// Brings the closure current: software refresh, or a single-tenant
    /// submit → flush → claim round through the shared batcher. A `BUSY`
    /// batcher sheds to the software path rather than failing the read.
    ///
    /// # Errors
    /// Propagates engine failures from the batched path.
    pub fn ensure_fresh(&mut self) -> Result<(), EngineError> {
        if !self.inc.is_dirty() && self.pending.is_none() {
            self.pending_depth = 0;
            return Ok(());
        }
        match &self.batcher {
            Some(_) => {
                match self.enqueue_recompute() {
                    Ok(_) => {}
                    Err(EngineError::Busy { .. }) => {
                        self.inc.refresh();
                        self.pending_depth = 0;
                        return Ok(());
                    }
                    Err(e) => return Err(e),
                }
                if let Some(batcher) = &self.batcher {
                    batcher.flush()?;
                }
                self.finish_recompute();
            }
            None => {
                self.inc.refresh();
            }
        }
        self.pending_depth = 0;
        Ok(())
    }

    /// Executes one command, returning the response line. Backend errors
    /// become [`Response::Err`]; the service stays usable.
    pub fn execute(&mut self, cmd: Command) -> Response {
        match self.try_execute(cmd) {
            Ok(r) => r,
            Err(e) => {
                self.errors.fetch_add(1, Relaxed);
                Response::Err(e.to_string())
            }
        }
    }

    /// Records a protocol-level error against this session's counters.
    pub fn note_error(&self) {
        self.errors.fetch_add(1, Relaxed);
    }

    fn check_vertices(&self, u: usize, v: usize) -> Result<(), ServiceError> {
        let n = self.n();
        if u >= n || v >= n {
            return Err(
                EngineError::BadInput(format!("vertex out of range (n={n}): {u} {v}")).into(),
            );
        }
        Ok(())
    }

    /// `ERR BUSY` backpressure: refuse mutations once the dirty-closure
    /// queue is at its cap.
    fn admit_mutation(&self) -> Result<(), ServiceError> {
        if let Some(cap) = self.max_pending {
            if self.inc.is_dirty() && self.pending_depth >= cap {
                return Err(EngineError::Busy {
                    pending: self.pending_depth as usize,
                    cap: cap as usize,
                }
                .into());
            }
        }
        Ok(())
    }

    /// One line of `STATS` counters.
    fn stats_line(&mut self) -> String {
        let s = self.inc.stats();
        format!(
            "n={} edges={} pairs={} queries={} inserts={} incremental={} \
             pairs_added={} deletes={} recomputes={} errors={} wal_bytes={} \
             snapshots={} queue_depth={} mode={}",
            self.inc.n(),
            self.inc.graph().edge_count(),
            self.inc.closure().count_ones(),
            self.queries.load(Relaxed),
            s.inserts,
            s.incremental_inserts,
            s.pairs_added,
            s.deletes,
            s.recomputes,
            self.errors.load(Relaxed),
            self.wal_bytes(),
            self.snapshots(),
            self.pending_depth,
            if self.batcher.is_some() {
                "batched"
            } else {
                "software"
            },
        )
    }

    fn try_execute(&mut self, cmd: Command) -> Result<Response, ServiceError> {
        match cmd {
            Command::Reach(u, v) => {
                self.check_vertices(u, v)?;
                self.ensure_fresh()?;
                self.queries.fetch_add(1, Relaxed);
                Ok(Response::Reach {
                    u,
                    v,
                    reachable: self.inc.reach(u, v),
                    stale: false,
                })
            }
            Command::Insert(u, v) => {
                self.check_vertices(u, v)?;
                self.admit_mutation()?;
                let effective = !self.inc.graph().has_edge(u, v);
                if effective {
                    if let Some(d) = self.durability.as_mut() {
                        d.log(WalOp::Insert, u, v)?; // commit point
                    }
                }
                let was_dirty = self.inc.is_dirty();
                let added = self.inc.insert(u, v);
                if effective && was_dirty {
                    self.pending_depth += 1;
                }
                if effective {
                    if let Some(d) = self.durability.as_mut() {
                        d.maybe_snapshot(self.inc.graph())?;
                    }
                }
                Ok(Response::Inserted { u, v, added })
            }
            Command::Delete(u, v) => {
                self.check_vertices(u, v)?;
                self.admit_mutation()?;
                let present = self.inc.graph().has_edge(u, v);
                if present {
                    if let Some(d) = self.durability.as_mut() {
                        d.log(WalOp::Delete, u, v)?; // commit point
                    }
                }
                let removed = self.inc.delete(u, v);
                if removed {
                    self.pending_depth += 1;
                    if let Some(d) = self.durability.as_mut() {
                        d.maybe_snapshot(self.inc.graph())?;
                    }
                }
                Ok(Response::Deleted { u, v, removed })
            }
            Command::Load(path) => {
                // A bulk load is not WAL-logged edge-by-edge, so on a
                // durable service it would silently diverge from the
                // recovery path — refuse instead of corrupting history.
                if self.durability.is_some() {
                    return Err(EngineError::BadInput(
                        "LOAD is not supported on a durable service (bulk loads bypass the WAL)"
                            .into(),
                    )
                    .into());
                }
                let g = systolic_closure::CsrGraph::load(std::path::Path::new(&path))
                    .map_err(|e| EngineError::BadInput(format!("LOAD {path}: {e}")))?;
                // The served closure stays dense n×n so rank-1 updates
                // remain O(n²/64); cap bulk loads where that stops being
                // reasonable (see DESIGN §17 for the cutoff argument).
                if g.n() > MAX_LOAD_VERTICES {
                    return Err(EngineError::BadInput(format!(
                        "LOAD {path}: {} vertices exceeds the dense service cap of {} \
                         (use `systolic closure --sparse` for offline queries at this scale)",
                        g.n(),
                        MAX_LOAD_VERTICES
                    ))
                    .into());
                }
                let edges = g.edge_count();
                let n = g.n();
                self.inc = IncrementalClosure::new(g.to_digraph());
                self.pending_depth = 0;
                Ok(Response::Loaded { n, edges })
            }
            Command::Stats => {
                self.ensure_fresh()?;
                Ok(Response::Stats(self.stats_line()))
            }
            Command::Quit => Ok(Response::Bye),
        }
    }
}

impl std::fmt::Debug for ReachService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ReachService(n: {}, dirty: {}, batched: {}, durable: {}, queue: {})",
            self.n(),
            self.is_dirty(),
            self.batcher.is_some(),
            self.durability.is_some(),
            self.pending_depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Durability;
    use systolic_partition::PackedEngine;

    fn line(svc: &mut ReachService, cmd: &str) -> String {
        match crate::protocol::parse_command(cmd).unwrap() {
            Some(c) => svc.execute(c).to_string(),
            None => String::new(),
        }
    }

    #[test]
    fn load_replaces_graph_then_serves_and_mutates() {
        let path =
            std::env::temp_dir().join(format!("systolic-svc-load-{}.mtx", std::process::id()));
        let g = systolic_closure::CsrGraph::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        g.save(&path).unwrap();
        let mut svc = ReachService::new(DiGraph::new(2));
        assert_eq!(
            line(&mut svc, &format!("LOAD {}", path.display())),
            "OK LOAD n=6 edges=3"
        );
        assert_eq!(line(&mut svc, "REACH 0 2"), "REACH 0 2 true");
        assert_eq!(line(&mut svc, "REACH 2 0"), "REACH 2 0 false");
        // Incremental updates keep working on the loaded graph.
        assert!(line(&mut svc, "INSERT 2 4").starts_with("OK INSERT"));
        assert_eq!(line(&mut svc, "REACH 0 5"), "REACH 0 5 true");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_errors_are_not_fatal() {
        let mut svc = ReachService::new(DiGraph::new(3));
        let resp = line(&mut svc, "LOAD /nonexistent/systolic.mtx");
        assert!(resp.starts_with("ERR"), "{resp}");
        // Session stays usable after the failed load.
        assert_eq!(line(&mut svc, "REACH 0 0"), "REACH 0 0 true");
    }

    #[test]
    fn load_rejected_on_durable_service() {
        let wal = std::env::temp_dir().join(format!(
            "systolic-svc-load-durable-{}.wal",
            std::process::id()
        ));
        std::fs::remove_file(&wal).ok();
        let mtx = std::env::temp_dir().join(format!(
            "systolic-svc-load-durable-{}.mtx",
            std::process::id()
        ));
        systolic_closure::CsrGraph::from_edges(3, &[(0, 1)])
            .save(&mtx)
            .unwrap();
        let (d, g, _report) = Durability::open(&wal, None, DiGraph::new(3)).unwrap();
        let mut svc = ReachService::new(g).with_durability(d);
        let resp = line(&mut svc, &format!("LOAD {}", mtx.display()));
        assert!(resp.contains("bypass the WAL"), "{resp}");
        std::fs::remove_file(&wal).ok();
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn session_walkthrough_software() {
        let mut svc = ReachService::new(DiGraph::new(5));
        assert_eq!(line(&mut svc, "REACH 0 3"), "REACH 0 3 false");
        assert_eq!(line(&mut svc, "INSERT 0 1"), "OK INSERT 0 1 added=1");
        assert_eq!(line(&mut svc, "INSERT 1 2"), "OK INSERT 1 2 added=2");
        assert_eq!(line(&mut svc, "INSERT 2 3"), "OK INSERT 2 3 added=3");
        assert_eq!(line(&mut svc, "REACH 0 3"), "REACH 0 3 true");
        assert_eq!(line(&mut svc, "DELETE 1 2"), "OK DELETE 1 2 removed=true");
        assert!(svc.is_dirty());
        assert_eq!(svc.queue_depth(), 1);
        assert_eq!(line(&mut svc, "REACH 0 3"), "REACH 0 3 false");
        assert!(!svc.is_dirty(), "query refreshed the closure");
        assert_eq!(svc.queue_depth(), 0, "refresh drained the queue");
        let stats = line(&mut svc, "STATS");
        assert!(stats.contains("recomputes=1"), "{stats}");
        assert!(stats.contains("mode=software"), "{stats}");
        assert!(stats.contains("wal_bytes=0"), "{stats}");
        assert!(stats.contains("queue_depth=0"), "{stats}");
    }

    #[test]
    fn batched_recompute_matches_software() {
        let batcher = Arc::new(AdmissionBatcher::new(PackedEngine::new(2)));
        let mut soft = ReachService::new(DiGraph::new(8));
        let mut hard = ReachService::with_batcher(DiGraph::new(8), Arc::clone(&batcher));
        for cmd in [
            "INSERT 0 1",
            "INSERT 1 2",
            "INSERT 2 0",
            "INSERT 2 3",
            "INSERT 3 4",
            "INSERT 4 5",
            "DELETE 2 3",
            "INSERT 5 6",
        ] {
            assert_eq!(line(&mut soft, cmd), line(&mut hard, cmd), "{cmd}");
        }
        for u in 0..8 {
            for v in 0..8 {
                let q = format!("REACH {u} {v}");
                assert_eq!(line(&mut soft, &q), line(&mut hard, &q), "{q}");
            }
        }
        assert!(batcher.stats().executed >= 1, "delete went through batcher");
    }

    #[test]
    fn out_of_range_vertices_error_without_killing_the_session() {
        let mut svc = ReachService::new(DiGraph::new(3));
        assert!(line(&mut svc, "REACH 0 9").starts_with("ERR "));
        assert!(line(&mut svc, "INSERT 9 0").starts_with("ERR "));
        assert_eq!(line(&mut svc, "REACH 0 0"), "REACH 0 0 true");
        assert_eq!(svc.stats().errors, 2);
    }

    #[test]
    fn reach_clean_answers_without_mut_and_reach_stale_degrades() {
        let mut svc = ReachService::new(DiGraph::new(4));
        line(&mut svc, "INSERT 0 1");
        line(&mut svc, "INSERT 1 2");
        assert_eq!(svc.reach_clean(0, 2), Some(true));
        assert_eq!(svc.reach_clean(0, 9), None, "out of range takes slow path");
        line(&mut svc, "DELETE 0 1");
        assert_eq!(
            svc.reach_clean(0, 2),
            None,
            "dirty closure has no fast path"
        );
        assert!(svc.reach_stale(0, 2), "stale read still sees the old path");
        assert_eq!(line(&mut svc, "REACH 0 2"), "REACH 0 2 false");
        assert!(svc.reach_clean(0, 2) == Some(false));
    }

    #[test]
    fn mutations_past_the_pending_cap_answer_busy() {
        let mut svc = ReachService::new(DiGraph::new(6));
        svc.set_max_pending(Some(2));
        for cmd in ["INSERT 0 1", "INSERT 1 2", "INSERT 2 3"] {
            line(&mut svc, cmd);
        }
        assert_eq!(line(&mut svc, "DELETE 0 1"), "OK DELETE 0 1 removed=true");
        assert_eq!(line(&mut svc, "DELETE 1 2"), "OK DELETE 1 2 removed=true");
        assert_eq!(svc.queue_depth(), 2);
        let busy = line(&mut svc, "DELETE 2 3");
        assert!(busy.starts_with("ERR BUSY"), "{busy}");
        let busy = line(&mut svc, "INSERT 4 5");
        assert!(busy.starts_with("ERR BUSY"), "{busy}");
        // Deleting an absent edge is refused too (it is a mutation
        // request arriving past the cap, shed before inspection).
        assert!(line(&mut svc, "DELETE 5 0").starts_with("ERR BUSY"));
        // A read drains the queue and admission reopens.
        assert_eq!(line(&mut svc, "REACH 0 2"), "REACH 0 2 false");
        assert_eq!(line(&mut svc, "INSERT 4 5"), "OK INSERT 4 5 added=1");
        // The graph reflects exactly the admitted mutations.
        assert!(svc.reach_stale(2, 3), "shed delete was not applied");
    }

    #[test]
    fn durable_service_survives_reopen() {
        let path =
            std::env::temp_dir().join(format!("systolic-svc-durable-{}.wal", std::process::id()));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(Durability::snapshot_path(&path)).ok();
        {
            let (d, g, _) = Durability::open(&path, Some(2), DiGraph::new(5)).unwrap();
            let mut svc = ReachService::new(g).with_durability(d);
            for cmd in [
                "INSERT 0 1",
                "INSERT 1 2",
                "INSERT 2 3",
                "DELETE 1 2",
                "INSERT 1 3",
            ] {
                assert!(!line(&mut svc, cmd).starts_with("ERR"));
            }
            assert!(svc.snapshots() >= 1, "snapshot_every=2 fired");
        }
        let (d, g, report) = Durability::open(&path, Some(2), DiGraph::new(5)).unwrap();
        assert!(report.snapshot_seq.is_some());
        let mut svc = ReachService::new(g).with_durability(d);
        assert_eq!(line(&mut svc, "REACH 0 3"), "REACH 0 3 true", "via 1→3");
        assert_eq!(
            line(&mut svc, "REACH 0 2"),
            "REACH 0 2 false",
            "1→2 deleted"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(Durability::snapshot_path(&path)).ok();
    }

    #[test]
    fn multi_tenant_recomputes_pack_into_one_flush() {
        let batcher = Arc::new(AdmissionBatcher::new(PackedEngine::new(2)));
        let mut tenants: Vec<_> = (0..5)
            .map(|t| {
                let mut g = DiGraph::new(6);
                g.add_edge(t % 6, (t + 1) % 6);
                g.add_edge((t + 1) % 6, (t + 2) % 6);
                ReachService::with_batcher(g, Arc::clone(&batcher))
            })
            .collect();
        // Dirty every tenant, then run the two-phase round by hand.
        for (t, svc) in tenants.iter_mut().enumerate() {
            let c = crate::protocol::parse_command(&format!("DELETE {} {}", t % 6, (t + 1) % 6))
                .unwrap()
                .unwrap();
            svc.execute(c);
            assert!(svc.enqueue_recompute().unwrap());
        }
        assert_eq!(batcher.pending(), 5);
        let report = batcher.flush().unwrap();
        assert_eq!(report.executed, 5);
        assert_eq!(report.lane_runs, 1, "five tenants share one lane run");
        for svc in &mut tenants {
            assert!(svc.finish_recompute());
            assert!(!svc.is_dirty());
        }
        // And the packed answers equal fresh software services.
        for (t, svc) in tenants.iter_mut().enumerate() {
            let mut g = DiGraph::new(6);
            g.add_edge(t % 6, (t + 1) % 6);
            g.add_edge((t + 1) % 6, (t + 2) % 6);
            g.remove_edge(t % 6, (t + 1) % 6);
            let mut soft = ReachService::new(g);
            for u in 0..6 {
                for v in 0..6 {
                    let q = crate::protocol::parse_command(&format!("REACH {u} {v}"))
                        .unwrap()
                        .unwrap();
                    assert_eq!(
                        svc.execute(q.clone()),
                        soft.execute(q),
                        "tenant {t} {u}->{v}"
                    );
                }
            }
        }
    }

    #[test]
    fn finish_without_flush_falls_back_to_software() {
        let batcher = Arc::new(AdmissionBatcher::new(PackedEngine::new(2)));
        let mut svc = ReachService::with_batcher(DiGraph::new(4), Arc::clone(&batcher));
        line(&mut svc, "INSERT 0 1");
        line(&mut svc, "INSERT 1 2");
        line(&mut svc, "DELETE 0 1");
        assert!(svc.enqueue_recompute().unwrap());
        // No flush happened: the ticket is unresolved. The old code
        // panicked here; now it cancels the orphan and recomputes in
        // software.
        assert!(svc.finish_recompute());
        assert!(!svc.is_dirty());
        assert_eq!(batcher.pending(), 0, "orphan ticket was cancelled");
        assert_eq!(line(&mut svc, "REACH 0 2"), "REACH 0 2 false");
        assert_eq!(line(&mut svc, "REACH 1 2"), "REACH 1 2 true");
    }
}
