//! The service core: one graph, one maintained closure, command execution.

use crate::protocol::{Command, Response};
use std::sync::Arc;
use systolic_closure::{DiGraph, IncrementalClosure, RecomputeJob};
use systolic_partition::{AdmissionBatcher, EngineError, Ticket};

/// Service-level counters (superset of the closure's own update stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// `REACH` queries answered.
    pub queries: u64,
    /// Protocol or backend errors reported (session survived them).
    pub errors: u64,
}

/// A reachability service over one graph.
///
/// Owns an [`IncrementalClosure`] and optionally shares an
/// [`AdmissionBatcher`]: with a batcher, delete-fallback recomputes are
/// submitted as component-DAG closure requests and packed with other
/// tenants' work into one `BoolLanes` engine run; without one they run in
/// software. Results are bit-identical either way.
pub struct ReachService {
    inc: IncrementalClosure,
    batcher: Option<Arc<AdmissionBatcher>>,
    /// A submitted-but-unclaimed recompute (two-phase batching).
    pending: Option<(RecomputeJob, Ticket)>,
    stats: ServiceStats,
}

impl ReachService {
    /// A service computing delete-fallback recomputes in software.
    pub fn new(graph: DiGraph) -> Self {
        Self {
            inc: IncrementalClosure::new(graph),
            batcher: None,
            pending: None,
            stats: ServiceStats::default(),
        }
    }

    /// A service routing recomputes through a shared admission batcher.
    pub fn with_batcher(graph: DiGraph, batcher: Arc<AdmissionBatcher>) -> Self {
        Self {
            inc: IncrementalClosure::new(graph),
            batcher: Some(batcher),
            pending: None,
            stats: ServiceStats::default(),
        }
    }

    /// Number of vertices served.
    pub fn n(&self) -> usize {
        self.inc.n()
    }

    /// The underlying incremental closure (mainly for tests/benches).
    pub fn closure(&mut self) -> &systolic_semiring::BitMatrix {
        self.inc.closure()
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// True when a delete has left the closure stale.
    pub fn is_dirty(&self) -> bool {
        self.inc.is_dirty()
    }

    /// Phase one of a batched recompute: submit this tenant's pending
    /// component-DAG closure to the shared batcher (no-op when clean or
    /// already submitted, or when running in software). Returns whether a
    /// request was submitted.
    ///
    /// # Errors
    /// Propagates the batcher's admission error.
    pub fn enqueue_recompute(&mut self) -> Result<bool, EngineError> {
        let Some(batcher) = &self.batcher else {
            return Ok(false);
        };
        if self.pending.is_some() || !self.inc.is_dirty() {
            return Ok(false);
        }
        let job = self
            .inc
            .prepare_recompute()
            .expect("dirty closure yields a job");
        let ticket = batcher.submit(job.dag.clone())?;
        self.pending = Some((job, ticket));
        Ok(true)
    }

    /// Phase two: claim the flushed result and install it. Returns whether
    /// a pending recompute was completed.
    ///
    /// # Panics
    /// Panics if called before the shared batcher flushed the ticket.
    pub fn finish_recompute(&mut self) -> bool {
        let Some((job, ticket)) = self.pending.take() else {
            return false;
        };
        let batcher = self.batcher.as_ref().expect("pending implies batcher");
        let closed = batcher
            .take(ticket)
            .expect("ticket flushed before finish_recompute");
        self.inc.complete_recompute(&job, &closed);
        true
    }

    /// Brings the closure current: software refresh, or a single-tenant
    /// submit → flush → claim round through the shared batcher.
    ///
    /// # Errors
    /// Propagates engine failures from the batched path.
    pub fn ensure_fresh(&mut self) -> Result<(), EngineError> {
        if !self.inc.is_dirty() && self.pending.is_none() {
            return Ok(());
        }
        if self.batcher.is_some() {
            self.enqueue_recompute()?;
            self.batcher.as_ref().expect("batched path").flush()?;
            self.finish_recompute();
        } else {
            self.inc.refresh();
        }
        Ok(())
    }

    /// Executes one command, returning the response line. Backend errors
    /// become [`Response::Err`]; the service stays usable.
    pub fn execute(&mut self, cmd: Command) -> Response {
        match self.try_execute(cmd) {
            Ok(r) => r,
            Err(e) => {
                self.stats.errors += 1;
                Response::Err(format!("backend: {e}"))
            }
        }
    }

    /// Records a protocol-level error against this session's counters.
    pub fn note_error(&mut self) {
        self.stats.errors += 1;
    }

    fn check_vertices(&self, u: usize, v: usize) -> Result<(), EngineError> {
        let n = self.n();
        if u >= n || v >= n {
            return Err(EngineError::BadInput(format!(
                "vertex out of range (n={n}): {u} {v}"
            )));
        }
        Ok(())
    }

    fn try_execute(&mut self, cmd: Command) -> Result<Response, EngineError> {
        match cmd {
            Command::Reach(u, v) => {
                self.check_vertices(u, v)?;
                self.ensure_fresh()?;
                self.stats.queries += 1;
                Ok(Response::Reach {
                    u,
                    v,
                    reachable: self.inc.reach(u, v),
                })
            }
            Command::Insert(u, v) => {
                self.check_vertices(u, v)?;
                Ok(Response::Inserted {
                    u,
                    v,
                    added: self.inc.insert(u, v),
                })
            }
            Command::Delete(u, v) => {
                self.check_vertices(u, v)?;
                Ok(Response::Deleted {
                    u,
                    v,
                    removed: self.inc.delete(u, v),
                })
            }
            Command::Stats => {
                self.ensure_fresh()?;
                let s = self.inc.stats();
                let line = format!(
                    "n={} edges={} pairs={} queries={} inserts={} incremental={} \
                     pairs_added={} deletes={} recomputes={} errors={} mode={}",
                    self.inc.n(),
                    self.inc.graph().edge_count(),
                    self.inc.closure().count_ones(),
                    self.stats.queries,
                    s.inserts,
                    s.incremental_inserts,
                    s.pairs_added,
                    s.deletes,
                    s.recomputes,
                    self.stats.errors,
                    if self.batcher.is_some() {
                        "batched"
                    } else {
                        "software"
                    },
                );
                Ok(Response::Stats(line))
            }
            Command::Quit => Ok(Response::Bye),
        }
    }
}

impl std::fmt::Debug for ReachService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ReachService(n: {}, dirty: {}, batched: {})",
            self.n(),
            self.is_dirty(),
            self.batcher.is_some()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_partition::PackedEngine;

    fn line(svc: &mut ReachService, cmd: &str) -> String {
        match crate::protocol::parse_command(cmd).unwrap() {
            Some(c) => svc.execute(c).to_string(),
            None => String::new(),
        }
    }

    #[test]
    fn session_walkthrough_software() {
        let mut svc = ReachService::new(DiGraph::new(5));
        assert_eq!(line(&mut svc, "REACH 0 3"), "REACH 0 3 false");
        assert_eq!(line(&mut svc, "INSERT 0 1"), "OK INSERT 0 1 added=1");
        assert_eq!(line(&mut svc, "INSERT 1 2"), "OK INSERT 1 2 added=2");
        assert_eq!(line(&mut svc, "INSERT 2 3"), "OK INSERT 2 3 added=3");
        assert_eq!(line(&mut svc, "REACH 0 3"), "REACH 0 3 true");
        assert_eq!(line(&mut svc, "DELETE 1 2"), "OK DELETE 1 2 removed=true");
        assert!(svc.is_dirty());
        assert_eq!(line(&mut svc, "REACH 0 3"), "REACH 0 3 false");
        assert!(!svc.is_dirty(), "query refreshed the closure");
        let stats = line(&mut svc, "STATS");
        assert!(stats.contains("recomputes=1"), "{stats}");
        assert!(stats.contains("mode=software"), "{stats}");
    }

    #[test]
    fn batched_recompute_matches_software() {
        let batcher = Arc::new(AdmissionBatcher::new(PackedEngine::new(2)));
        let mut soft = ReachService::new(DiGraph::new(8));
        let mut hard = ReachService::with_batcher(DiGraph::new(8), Arc::clone(&batcher));
        for cmd in [
            "INSERT 0 1",
            "INSERT 1 2",
            "INSERT 2 0",
            "INSERT 2 3",
            "INSERT 3 4",
            "INSERT 4 5",
            "DELETE 2 3",
            "INSERT 5 6",
        ] {
            assert_eq!(line(&mut soft, cmd), line(&mut hard, cmd), "{cmd}");
        }
        for u in 0..8 {
            for v in 0..8 {
                let q = format!("REACH {u} {v}");
                assert_eq!(line(&mut soft, &q), line(&mut hard, &q), "{q}");
            }
        }
        assert!(batcher.stats().executed >= 1, "delete went through batcher");
    }

    #[test]
    fn out_of_range_vertices_error_without_killing_the_session() {
        let mut svc = ReachService::new(DiGraph::new(3));
        assert!(line(&mut svc, "REACH 0 9").starts_with("ERR "));
        assert!(line(&mut svc, "INSERT 9 0").starts_with("ERR "));
        assert_eq!(line(&mut svc, "REACH 0 0"), "REACH 0 0 true");
        assert_eq!(svc.stats().errors, 2);
    }

    #[test]
    fn multi_tenant_recomputes_pack_into_one_flush() {
        let batcher = Arc::new(AdmissionBatcher::new(PackedEngine::new(2)));
        let mut tenants: Vec<_> = (0..5)
            .map(|t| {
                let mut g = DiGraph::new(6);
                g.add_edge(t % 6, (t + 1) % 6);
                g.add_edge((t + 1) % 6, (t + 2) % 6);
                ReachService::with_batcher(g, Arc::clone(&batcher))
            })
            .collect();
        // Dirty every tenant, then run the two-phase round by hand.
        for (t, svc) in tenants.iter_mut().enumerate() {
            let c = crate::protocol::parse_command(&format!("DELETE {} {}", t % 6, (t + 1) % 6))
                .unwrap()
                .unwrap();
            svc.execute(c);
            assert!(svc.enqueue_recompute().unwrap());
        }
        assert_eq!(batcher.pending(), 5);
        let report = batcher.flush().unwrap();
        assert_eq!(report.executed, 5);
        assert_eq!(report.lane_runs, 1, "five tenants share one lane run");
        for svc in &mut tenants {
            assert!(svc.finish_recompute());
            assert!(!svc.is_dirty());
        }
        // And the packed answers equal fresh software services.
        for (t, svc) in tenants.iter_mut().enumerate() {
            let mut g = DiGraph::new(6);
            g.add_edge(t % 6, (t + 1) % 6);
            g.add_edge((t + 1) % 6, (t + 2) % 6);
            g.remove_edge(t % 6, (t + 1) % 6);
            let mut soft = ReachService::new(g);
            for u in 0..6 {
                for v in 0..6 {
                    let q = crate::protocol::parse_command(&format!("REACH {u} {v}"))
                        .unwrap()
                        .unwrap();
                    assert_eq!(svc.execute(q), soft.execute(q), "tenant {t} {u}->{v}");
                }
            }
        }
    }
}
