//! Pinned seeded command streams for oracle tests and the serve bench.

use crate::protocol::Command;
use systolic_util::Rng;

/// Generates a reproducible mixed command stream over `n` vertices:
/// roughly 70% `REACH`, 20% `INSERT`, 10% `DELETE` (deletes pick earlier
/// inserted edges when possible, so they actually sever paths). The same
/// `(n, count, seed)` always yields the same stream — the acceptance
/// harness replays it against both the service and a recompute oracle.
pub fn seeded_stream(n: usize, count: usize, seed: u64) -> Vec<Command> {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = Rng::seed_from_u64(seed);
    let mut inserted: Vec<(usize, usize)> = Vec::new();
    let mut cmds = Vec::with_capacity(count);
    for _ in 0..count {
        let roll = rng.gen_usize(10);
        let cmd = if roll < 7 {
            Command::Reach(rng.gen_usize(n), rng.gen_usize(n))
        } else if roll < 9 {
            let (u, v) = (rng.gen_usize(n), rng.gen_usize(n));
            inserted.push((u, v));
            Command::Insert(u, v)
        } else if let Some(&(u, v)) =
            (!inserted.is_empty()).then(|| &inserted[rng.gen_usize(inserted.len())])
        {
            Command::Delete(u, v)
        } else {
            Command::Reach(rng.gen_usize(n), rng.gen_usize(n))
        };
        cmds.push(cmd);
    }
    cmds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_reproducible_and_mixed() {
        let a = seeded_stream(32, 1000, 7);
        let b = seeded_stream(32, 1000, 7);
        assert_eq!(a, b);
        let c = seeded_stream(32, 1000, 8);
        assert_ne!(a, c);
        let reaches = a.iter().filter(|c| matches!(c, Command::Reach(..))).count();
        let inserts = a
            .iter()
            .filter(|c| matches!(c, Command::Insert(..)))
            .count();
        let deletes = a
            .iter()
            .filter(|c| matches!(c, Command::Delete(..)))
            .count();
        assert_eq!(reaches + inserts + deletes, 1000);
        assert!(
            reaches > 500 && inserts > 100 && deletes > 30,
            "{reaches}/{inserts}/{deletes}"
        );
    }
}
