//! The line protocol: one command in, one response line out.
//!
//! Requests are ASCII lines; blank lines and `#` comments are ignored.
//! Responses are single lines: query answers echo the command, errors
//! start with `ERR` and never terminate the session (a malformed line is
//! the client's problem, not the server's).

use std::fmt;

/// One parsed protocol command.
///
/// (`Clone` but no longer `Copy`: `LOAD` carries its file path.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `REACH u v` — is `v` reachable from `u` (reflexively)?
    Reach(usize, usize),
    /// `INSERT u v` — add edge `u → v`.
    Insert(usize, usize),
    /// `DELETE u v` — remove edge `u → v`.
    Delete(usize, usize),
    /// `LOAD <path>` — replace the graph with a Matrix-Market edge list
    /// read server-side from `path` (bulk initial load; rejected on
    /// durable services, where it would bypass the WAL).
    Load(String),
    /// `STATS` — one line of service counters.
    Stats,
    /// `QUIT` — end the session.
    Quit,
}

/// One response line (the wire format is its `Display`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// `REACH u v true|false` (suffixed ` stale=true` for degraded reads)
    Reach {
        /// Source vertex.
        u: usize,
        /// Target vertex.
        v: usize,
        /// Whether a (possibly empty) path runs `u → v`.
        reachable: bool,
        /// True when answered from a stale closure under overload: a
        /// recompute was in flight and the server chose to degrade the
        /// read rather than block it. Exact answers omit the flag on the
        /// wire, so the common case is byte-identical to the old format.
        stale: bool,
    },
    /// `OK INSERT u v added=<pairs>`
    Inserted {
        /// Source vertex.
        u: usize,
        /// Target vertex.
        v: usize,
        /// Newly reachable pairs (0 when implied or deferred to a
        /// pending recompute).
        added: usize,
    },
    /// `OK DELETE u v removed=true|false`
    Deleted {
        /// Source vertex.
        u: usize,
        /// Target vertex.
        v: usize,
        /// Whether the edge was present.
        removed: bool,
    },
    /// `OK LOAD n=<vertices> edges=<edges>`
    Loaded {
        /// Vertex count of the loaded graph.
        n: usize,
        /// Edge count of the loaded graph.
        edges: usize,
    },
    /// `STATS <key=value ...>`
    Stats(String),
    /// `BYE`
    Bye,
    /// `ERR <message>`
    Err(String),
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Reach {
                u,
                v,
                reachable,
                stale,
            } => {
                write!(f, "REACH {u} {v} {reachable}")?;
                if *stale {
                    write!(f, " stale=true")?;
                }
                Ok(())
            }
            Response::Inserted { u, v, added } => write!(f, "OK INSERT {u} {v} added={added}"),
            Response::Deleted { u, v, removed } => {
                write!(f, "OK DELETE {u} {v} removed={removed}")
            }
            Response::Loaded { n, edges } => write!(f, "OK LOAD n={n} edges={edges}"),
            Response::Stats(s) => write!(f, "STATS {s}"),
            Response::Bye => write!(f, "BYE"),
            Response::Err(msg) => write!(f, "ERR {msg}"),
        }
    }
}

/// Parses one request line.
///
/// Returns `Ok(None)` for blank lines and `#` comments. Command words are
/// case-insensitive; vertex arguments are decimal, and trailing tokens
/// are rejected (a truncated or glued stream must not half-parse).
///
/// # Errors
/// A human-readable message describing the malformed line (the caller
/// wraps it in [`Response::Err`]).
pub fn parse_command(line: &str) -> Result<Option<Command>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let Some(word) = it.next() else {
        return Ok(None); // unreachable after the trim check, but never panic
    };
    let parse_pair =
        |it: &mut dyn Iterator<Item = &str>, word: &str| -> Result<(usize, usize), String> {
            let u = it
                .next()
                .ok_or_else(|| format!("{word} needs two vertex arguments"))?;
            let v = it
                .next()
                .ok_or_else(|| format!("{word} needs two vertex arguments"))?;
            let u = u
                .parse::<usize>()
                .map_err(|_| format!("bad vertex '{u}'"))?;
            let v = v
                .parse::<usize>()
                .map_err(|_| format!("bad vertex '{v}'"))?;
            Ok((u, v))
        };
    let cmd = match word.to_ascii_uppercase().as_str() {
        "REACH" => {
            let (u, v) = parse_pair(&mut it, "REACH")?;
            Command::Reach(u, v)
        }
        "INSERT" => {
            let (u, v) = parse_pair(&mut it, "INSERT")?;
            Command::Insert(u, v)
        }
        "DELETE" => {
            let (u, v) = parse_pair(&mut it, "DELETE")?;
            Command::Delete(u, v)
        }
        "LOAD" => {
            let path = it.next().ok_or("LOAD needs a file path")?;
            Command::Load(path.to_string())
        }
        "STATS" => Command::Stats,
        "QUIT" => Command::Quit,
        other => return Err(format!("unknown command '{other}'")),
    };
    if let Some(extra) = it.next() {
        return Err(format!("trailing token '{extra}' after {word}"));
    }
    Ok(Some(cmd))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_five_commands() {
        assert_eq!(parse_command("REACH 3 9"), Ok(Some(Command::Reach(3, 9))));
        assert_eq!(parse_command("insert 0 1"), Ok(Some(Command::Insert(0, 1))));
        assert_eq!(
            parse_command("  DELETE 5 5  "),
            Ok(Some(Command::Delete(5, 5)))
        );
        assert_eq!(parse_command("stats"), Ok(Some(Command::Stats)));
        assert_eq!(parse_command("QUIT"), Ok(Some(Command::Quit)));
    }

    #[test]
    fn parses_load_with_path() {
        assert_eq!(
            parse_command("LOAD /tmp/web.mtx"),
            Ok(Some(Command::Load("/tmp/web.mtx".into())))
        );
        assert!(parse_command("LOAD").is_err(), "missing path");
        assert!(parse_command("LOAD a b").is_err(), "trailing token");
        assert_eq!(
            Response::Loaded { n: 10, edges: 42 }.to_string(),
            "OK LOAD n=10 edges=42"
        );
    }

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        assert_eq!(parse_command(""), Ok(None));
        assert_eq!(parse_command("   "), Ok(None));
        assert_eq!(parse_command("# a comment"), Ok(None));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_command("REACH 1").is_err());
        assert!(parse_command("REACH one two").is_err());
        assert!(parse_command("REACH 1 2 3").is_err(), "trailing token");
        assert!(parse_command("STATS now").is_err(), "trailing token");
        assert!(parse_command("FROB 1 2").is_err());
        assert!(parse_command("REACH -1 2").is_err(), "negative vertex");
    }

    #[test]
    fn responses_render_the_wire_format() {
        assert_eq!(
            Response::Reach {
                u: 1,
                v: 2,
                reachable: true,
                stale: false
            }
            .to_string(),
            "REACH 1 2 true"
        );
        assert_eq!(
            Response::Reach {
                u: 1,
                v: 2,
                reachable: false,
                stale: true
            }
            .to_string(),
            "REACH 1 2 false stale=true"
        );
        assert_eq!(
            Response::Inserted {
                u: 1,
                v: 2,
                added: 7
            }
            .to_string(),
            "OK INSERT 1 2 added=7"
        );
        assert_eq!(
            Response::Deleted {
                u: 1,
                v: 2,
                removed: false
            }
            .to_string(),
            "OK DELETE 1 2 removed=false"
        );
        assert_eq!(Response::Bye.to_string(), "BYE");
        assert_eq!(Response::Err("nope".into()).to_string(), "ERR nope");
    }
}
