//! Transformation passes of the paper's §2 procedure, applied to transitive
//! closure in §3, plus the **G-graph** they produce (Fig. 17).
//!
//! Pipeline stages (each stage is a [`systolic_dgraph::DependenceGraph`]
//! whose evaluation must equal Warshall's — verified by tests):
//!
//! | Stage | Paper | Property established |
//! |---|---|---|
//! | `closure_lean` (from `systolic-dgraph`) | Fig. 11 | superfluous nodes removed |
//! | [`stages::pipelined`] | Fig. 12 | broadcasting → pipelined chains |
//! | [`stages::unidirectional`] | Fig. 13–14 | bi-directional flow removed by flipping |
//! | [`stages::regular`] | Fig. 15–16 | uniform communication via delay nodes |
//! | [`ggraph::GGraph`] | Fig. 17 | diagonal paths collapsed into G-nodes |
//!
//! [`validate`] re-checks each claimed property with the `systolic-dgraph`
//! analyses, and [`grouping`] explores the Fig. 6 G-node alternatives and
//! the §4.3 varying-computation-time profiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generic;
pub mod ggraph;
pub mod grouping;
pub mod stages;
pub mod validate;

pub use generic::{GRowSpec, GenRole, GenericGGraph};
pub use ggraph::{GGraph, GNodeRole, GnodeId};
pub use grouping::{
    faddeev_time_grid, givens_time_grid, grouping_profile, lu_time_grid,
    triangular_inverse_time_grid, GroupingAxis, TimeGrid,
};
pub use stages::{pipelined, regular, unidirectional};
pub use validate::{validate_stage, StageProperties};
