//! The three graph-transformation stages of §3.2.
//!
//! All three build transitive-closure graphs for size `n` whose evaluation
//! equals Warshall's algorithm; they differ in the *implementation
//! properties* established (broadcast-freedom, flow direction, communication
//! regularity), which [`crate::validate`] checks quantitatively.

use systolic_dgraph::{Coord, DependenceGraph, NodeId, OpKind, Port, Pos};

/// Tracks the most recent `(node, port)` producing each matrix element.
struct LastWriter {
    n: usize,
    slots: Vec<(NodeId, Port)>,
}

impl LastWriter {
    fn new(n: usize, ids: &[NodeId]) -> Self {
        Self {
            n,
            slots: ids.iter().map(|&id| (id, Port::X)).collect(),
        }
    }
    fn get(&self, i: usize, j: usize) -> (NodeId, Port) {
        self.slots[i * self.n + j]
    }
    fn set(&mut self, i: usize, j: usize, v: (NodeId, Port)) {
        self.slots[i * self.n + j] = v;
    }
}

fn add_inputs(g: &mut DependenceGraph, n: usize) -> Vec<NodeId> {
    let mut ids = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let id = g.add_node(
                OpKind::Input,
                Coord::new(0, i as u32, j as u32),
                Pos::new(j as i64, i as i64),
                0,
            );
            g.set_input(i as u32, j as u32, id);
            ids.push(id);
        }
    }
    ids
}

/// Common core of the pipelined (Fig. 12) and flipped (Fig. 13–14) stages.
///
/// Both replace the two broadcasts of the fully-parallel graph with chains
/// threaded through the consuming `Fuse` nodes (which forward their `P`/`Q`
/// operands). They differ only in chain *ordering* and in node layout:
///
/// * `flipped = false` (Fig. 12): consumers are chained outward from the
///   pivot in both directions — bi-directional flow.
/// * `flipped = true` (Fig. 13–14): consumers below/right of the pivot come
///   first and those above/left are "flipped" to the far end, giving a
///   single monotone chain — uni-directional flow. Layout positions are
///   rotated per level so the census sees the monotone drawing.
fn build_pipelined(n: usize, flipped: bool) -> DependenceGraph {
    assert!(n >= 1, "problem size must be at least 1");
    let mut g = DependenceGraph::new(n);
    let inputs = add_inputs(&mut g, n);
    let mut last = LastWriter::new(n, &inputs);
    let h = n as i64; // level height in the drawing

    for k in 0..n {
        let level = (k + 1) as u32;
        let prev: Vec<(NodeId, Port)> = (0..n * n).map(|t| last.get(t / n, t % n)).collect();

        // Layout of element (i, j) at this level.
        let pos = |i: usize, j: usize| -> Pos {
            if flipped {
                let r = (i + n - k - 1) % n;
                let c = (j + n - k - 1) % n;
                Pos::new(c as i64, (level as i64) * h + r as i64)
            } else {
                Pos::new(j as i64, (level as i64) * h + i as i64)
            }
        };

        let computes = |i: usize, j: usize| i != k && j != k && i != j;

        // Create this level's fuse nodes and wire their X lanes.
        let mut node_at = vec![None; n * n];
        for i in 0..n {
            for j in 0..n {
                if !computes(i, j) {
                    continue;
                }
                let id = g.add_node(
                    OpKind::Fuse,
                    Coord::new(level, i as u32, j as u32),
                    pos(i, j),
                    1,
                );
                let (xs, xp) = prev[i * n + j];
                g.add_edge(xs, xp, id, Port::X);
                node_at[i * n + j] = Some(id);
            }
        }

        // Chain orderings. `down_then_wrap(k, n)` yields k+1, …, n-1, 0, …,
        // k-1 — the flipped order; the un-flipped variant yields the two
        // outward chains from the pivot.
        let chains = |pivot: usize| -> Vec<Vec<usize>> {
            if flipped {
                let mut c = Vec::with_capacity(n - 1);
                for d in 1..n {
                    c.push((pivot + d) % n);
                }
                vec![c]
            } else {
                let down: Vec<usize> = (pivot + 1..n).collect();
                let up: Vec<usize> = (0..pivot).rev().collect();
                vec![down, up]
            }
        };

        // Q chains: value x^k[k][j] threads through column j's fuse nodes.
        for j in 0..n {
            if j == k {
                continue;
            }
            let (src, sp) = prev[k * n + j];
            for chain in chains(k) {
                let mut from = (src, sp);
                for i in chain {
                    if let Some(id) = node_at[i * n + j] {
                        g.add_edge(from.0, from.1, id, Port::Q);
                        from = (id, Port::Q);
                    }
                }
            }
        }

        // P chains: value x^k[i][k] threads through row i's fuse nodes.
        for i in 0..n {
            if i == k {
                continue;
            }
            let (src, sp) = prev[i * n + k];
            for chain in chains(k) {
                let mut from = (src, sp);
                for j in chain {
                    if let Some(id) = node_at[i * n + j] {
                        g.add_edge(from.0, from.1, id, Port::P);
                        from = (id, Port::P);
                    }
                }
            }
        }

        for i in 0..n {
            for j in 0..n {
                if let Some(id) = node_at[i * n + j] {
                    last.set(i, j, (id, Port::X));
                }
            }
        }
    }

    for i in 0..n {
        for j in 0..n {
            let (nd, p) = last.get(i, j);
            g.set_output(i as u32, j as u32, nd, p);
        }
    }
    g
}

/// **Fig. 12** — broadcasting replaced by pipelining: pivot-row values
/// thread down their column's fuse nodes (Q lane) and pivot-column values
/// thread along their row's fuse nodes (P lane), in two chains going
/// outward from the pivot. Maximum fan-out drops from `Θ(n)` to a small
/// constant, at the cost of bi-directional flow.
pub fn pipelined(n: usize) -> DependenceGraph {
    build_pipelined(n, false)
}

/// **Fig. 13–14** — bi-directional flow removed by flipping: nodes on the
/// "wrong" side of each broadcast source are moved to the far end of the
/// chain, so each chain is a single monotone run (rows rotate so the pivot
/// row is at the top of each level's drawing).
pub fn unidirectional(n: usize) -> DependenceGraph {
    build_pipelined(n, true)
}

/// **Fig. 15–16** — the regular graph: each level `k` is a full
/// `n × (n+1)` grid of primitive nodes in pivot-rotated strip coordinates
/// `(r, g)` (matrix row `i = (k+r) mod n`, matrix column `j = (k+g) mod n`
/// for `g < n`; `g = n` is the inserted **delay column** of Fig. 15c).
///
/// Every node now has the same local communication pattern:
/// * `X` values arrive from strip position `(r+1, g+1)` of the previous
///   level (the level-`k-1` element one down-right),
/// * `P` (pivot-column) values flow rightward along strip rows,
/// * `Q` (pivot-row) values flow downward along strip columns,
/// * the delay column returns the pivot-column stream to the next level.
///
/// Collapsing each strip column into one node yields the G-graph (Fig. 17).
pub fn regular(n: usize) -> DependenceGraph {
    assert!(n >= 2, "regular graph needs n ≥ 2");
    let mut g = DependenceGraph::new(n);
    let inputs = add_inputs(&mut g, n);
    let w = n + 1; // strip width including the delay column
    let h = (n + 1) as i64; // strip height in the drawing (rows + margin)

    // ids[level][r * w + g]
    let mut ids: Vec<Vec<NodeId>> = Vec::with_capacity(n);

    for k in 0..n {
        let level = (k + 1) as u32;
        let mut lvl = Vec::with_capacity(n * w);
        for r in 0..n {
            for gp in 0..w {
                let i = (k + r) % n;
                let j = (k + gp) % n; // for gp == n this aliases the pivot column
                let kind = if r == 0 || gp == 0 || gp == n || r == gp {
                    OpKind::Delay
                } else {
                    OpKind::Fuse
                };
                let id = g.add_node(
                    kind,
                    Coord::new(level, i as u32, j as u32),
                    Pos::new(gp as i64, (level as i64) * h + r as i64),
                    1,
                );
                lvl.push(id);
            }
        }
        let at = |r: usize, gp: usize| lvl[r * w + gp];

        // X lanes: from the previous level (or inputs at level 0).
        for r in 0..n {
            for gp in 0..n {
                let dst = at(r, gp);
                if k == 0 {
                    // Natural order: strip row r = matrix row r, column gp.
                    g.add_edge(inputs[r * n + gp], Port::X, dst, Port::X);
                } else {
                    let plv = &ids[k - 1];
                    let pat = |rr: usize, gg: usize| plv[rr * w + gg];
                    let (src, sp) = if r < n - 1 {
                        if gp + 1 < n {
                            // General case: one down-right in the previous strip.
                            (pat(r + 1, gp + 1), Port::X)
                        } else {
                            // Producer is the delay column (pivot-column return).
                            (pat(r + 1, n), Port::P)
                        }
                    } else {
                        // Element of the previous pivot row: read the bottom of
                        // the previous strip's Q chain (value emitted last).
                        if gp + 1 < n {
                            (pat(n - 1, gp + 1), Port::Q)
                        } else {
                            // Corner: previous pivot diagonal rides the row-0 P
                            // chain into the delay column.
                            (pat(0, n), Port::P)
                        }
                    };
                    g.add_edge(src, sp, dst, Port::X);
                }
            }
        }

        // Q chains: row 0's X value enters column gp and flows down.
        for gp in 1..n {
            let mut from = (at(0, gp), Port::X);
            for r in 1..n {
                g.add_edge(from.0, from.1, at(r, gp), Port::Q);
                from = (at(r, gp), Port::Q);
            }
        }

        // P chains: column 0's X value enters row r and flows right into the
        // delay column.
        for r in 0..n {
            let mut from = (at(r, 0), Port::X);
            for gp in 1..=n {
                g.add_edge(from.0, from.1, at(r, gp), Port::P);
                from = (at(r, gp), Port::P);
            }
        }

        ids.push(lvl);
    }

    // Outputs: X^n element (i, j).
    let klast = n - 1;
    let last = &ids[klast];
    let at = |r: usize, gp: usize| last[r * w + gp];
    for i in 0..n {
        for j in 0..n {
            let r = (i + n - klast) % n;
            let (nd, p) = if j == klast {
                (at(r, n), Port::P) // pivot column rides the delay column
            } else {
                let gp = (j + n - klast) % n;
                (at(r, gp), Port::X)
            };
            g.set_output(i as u32, j as u32, nd, p);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_dgraph::eval_closure_graph;
    use systolic_semiring::{reflexive, warshall, Bool, DenseMatrix, MinPlus};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut m = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            m.set(i, j, true);
        }
        m
    }

    fn check_all_stages(a: &DenseMatrix<Bool>) {
        let n = a.rows();
        let want = warshall(a);
        let ar = reflexive(a);
        for (name, g) in [
            ("pipelined", pipelined(n)),
            ("unidirectional", unidirectional(n)),
            ("regular", regular(n)),
        ] {
            g.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let got = eval_closure_graph::<Bool>(&g, &ar).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(got, want, "{name} n={n}");
        }
    }

    #[test]
    fn stages_compute_closure_on_cycle() {
        let n = 5;
        let mut edges = vec![];
        for i in 0..n {
            edges.push((i, (i + 1) % n));
        }
        check_all_stages(&bool_adj(n, &edges));
    }

    #[test]
    fn stages_compute_closure_on_dag() {
        check_all_stages(&bool_adj(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 5)]));
    }

    #[test]
    fn stages_compute_closure_on_empty_and_complete() {
        check_all_stages(&bool_adj(4, &[]));
        let mut edges = vec![];
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        check_all_stages(&bool_adj(4, &edges));
    }

    #[test]
    fn stages_work_over_minplus() {
        let n = 5;
        let mut a = DenseMatrix::<MinPlus>::zeros(n, n);
        a.set(0, 1, 2);
        a.set(1, 2, 2);
        a.set(2, 3, 2);
        a.set(3, 4, 2);
        a.set(0, 4, 100);
        let want = warshall(&a);
        let ar = reflexive(&a);
        for g in [pipelined(n), unidirectional(n), regular(n)] {
            assert_eq!(eval_closure_graph::<MinPlus>(&g, &ar).unwrap(), want);
        }
        assert_eq!(*want.get(0, 4), 8);
    }

    #[test]
    fn regular_graph_node_budget_is_n_levels_of_n_by_n_plus_1() {
        for n in [3usize, 4, 6] {
            let g = regular(n);
            assert_eq!(g.node_count(), n * n + n * n * (n + 1), "n={n}");
            assert_eq!(g.compute_node_count(), n * (n - 1) * (n - 2), "n={n}");
        }
    }

    #[test]
    fn pipelined_keeps_lean_compute_count() {
        for n in [3usize, 5] {
            assert_eq!(
                pipelined(n).compute_node_count(),
                n * (n - 1) * (n - 2),
                "n={n}"
            );
            assert_eq!(
                unidirectional(n).compute_node_count(),
                n * (n - 1) * (n - 2),
                "n={n}"
            );
        }
    }

    #[test]
    fn regular_handles_n_equals_2() {
        check_all_stages(&bool_adj(2, &[(0, 1)]));
        check_all_stages(&bool_adj(2, &[(0, 1), (1, 0)]));
    }
}
