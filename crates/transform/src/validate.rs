//! Stage validators: quantitative checks of the properties each
//! transformation claims to establish (E03–E05 of the experiment index).

use systolic_dgraph::{broadcast_census, direction_census, DependenceGraph};

/// Measured implementation properties of a dependence graph.
#[derive(Clone, Debug, PartialEq)]
pub struct StageProperties {
    /// Largest fan-out of any output lane.
    pub max_fanout: usize,
    /// Number of lanes with fan-out ≥ 2.
    pub broadcast_sources: usize,
    /// Intra-level (chain) horizontal flow is uni-directional.
    pub unidirectional_x: bool,
    /// Intra-level (chain) vertical flow is uni-directional.
    pub unidirectional_y: bool,
    /// Distinct inter-level displacement patterns.
    pub inter_patterns: usize,
    /// Largest horizontal reach of any inter-level edge (`Θ(n)` before
    /// regularization — the strip wrap-around — `O(1)` after).
    pub inter_max_abs_dx: i64,
    /// Compute node count.
    pub compute_nodes: usize,
    /// Delay node count (overhead inserted by regularization).
    pub delay_nodes: usize,
}

/// Measures the implementation properties of a graph.
pub fn validate_stage(g: &DependenceGraph) -> StageProperties {
    let bc = broadcast_census(g);
    let dc = direction_census(g);
    let delay_nodes = g
        .nodes()
        .iter()
        .filter(|nd| nd.kind == systolic_dgraph::OpKind::Delay)
        .count();
    StageProperties {
        max_fanout: bc.max_fanout,
        broadcast_sources: bc.broadcast_sources,
        unidirectional_x: dc.unidirectional_x(),
        unidirectional_y: dc.unidirectional_y(),
        inter_patterns: dc.inter_patterns,
        inter_max_abs_dx: dc.inter_max_abs_dx,
        compute_nodes: g.compute_node_count(),
        delay_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::{pipelined, regular, unidirectional};
    use systolic_dgraph::{closure_full, closure_lean};

    #[test]
    fn e03_pipelining_removes_broadcast() {
        let n = 8;
        let before = validate_stage(&closure_full(n));
        let lean = validate_stage(&closure_lean(n));
        let after = validate_stage(&pipelined(n));
        // Fully-parallel and lean graphs broadcast with fan-out Θ(n)…
        assert!(before.max_fanout >= n);
        assert!(lean.max_fanout >= n - 3);
        // …the pipelined graph bounds fan-out by a small constant: an
        // element's last writer feeds at most its X successor plus the heads
        // of two P chains and two Q chains.
        assert!(after.max_fanout <= 5, "max fanout {}", after.max_fanout);
    }

    #[test]
    fn e04_flipping_removes_bidirectional_flow() {
        let n = 8;
        let before = validate_stage(&pipelined(n));
        let after = validate_stage(&unidirectional(n));
        // Fig. 12's chains run outward from the pivot in both directions…
        assert!(!before.unidirectional_x, "{before:?}");
        assert!(!before.unidirectional_y, "{before:?}");
        // …Fig. 14's chains run one way on both axes.
        assert!(after.unidirectional_x, "{after:?}");
        assert!(after.unidirectional_y, "{after:?}");
        // Flipping must not change the amount of work.
        assert_eq!(before.compute_nodes, after.compute_nodes);
    }

    #[test]
    fn e05_regularization_localizes_communication() {
        // Before regularization, strips communicate through wrap-around
        // edges whose reach grows with n (Fig. 15's boundary irregularity)…
        for n in [8usize, 12, 16] {
            let p = validate_stage(&unidirectional(n));
            assert!(
                p.inter_max_abs_dx >= (n as i64) - 3,
                "n={n}: wrap reach {}",
                p.inter_max_abs_dx
            );
        }
        // …afterwards every inter-strip edge moves at most one position
        // horizontally, independent of n (Fig. 16).
        for n in [8usize, 12, 16] {
            let r = validate_stage(&regular(n));
            assert_eq!(r.inter_max_abs_dx, 1, "n={n}: {r:?}");
        }
        // And the number of distinct inter-strip patterns is a small
        // n-independent constant.
        let p8 = validate_stage(&regular(8)).inter_patterns;
        let p16 = validate_stage(&regular(16)).inter_patterns;
        assert_eq!(p8, p16);
        assert!(p8 <= 8, "patterns {p8}");
    }

    #[test]
    fn regular_graph_is_broadcast_free_and_unidirectional() {
        let p = validate_stage(&regular(9));
        assert_eq!(p.max_fanout, 1, "{p:?}");
        assert!(p.unidirectional_x, "{p:?}");
        assert!(p.unidirectional_y, "{p:?}");
        assert!(p.delay_nodes > 0);
        assert_eq!(p.compute_nodes, 9 * 8 * 7);
    }
}
