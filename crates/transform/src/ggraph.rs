//! The G-graph of Fig. 17: the regular graph with each strip column
//! collapsed into a single **G-node** of computation time `n`.
//!
//! Structure (see `DESIGN.md` §4 for the full derivation):
//!
//! * `n` rows of `n + 1` G-nodes; row `k` executes level `k` of Warshall.
//! * G-node `(k, 0)` is the **pivot head**: it turns the incoming pivot
//!   column into the rightward pivot stream.
//! * G-nodes `(k, 1..n-1)` are **fuse** nodes: each processes one matrix
//!   column as an `n`-element stream against the pivot stream.
//! * G-node `(k, n)` is the **delay tail** (the inserted delay column): it
//!   returns the pivot stream to the next level as a column.
//! * Column streams flow **down-left** `(k, g) → (k+1, g-1)`; pivot streams
//!   flow **right** `(k, g) → (k, g+1)`.
//!
//! In skewed coordinates `h = g + k` the G-graph is a parallelogram where
//! columns flow straight down — the drawing used for G-set selection and
//! scheduling (Fig. 18–20), exposed here as [`GGraph::h_of`] /
//! [`GGraph::h_range`].
//!
//! [`GGraph::eval`] is the functional stream semantics: the specification
//! every simulated array engine must match.

use systolic_semiring::{DenseMatrix, PathSemiring};

/// Role of a G-node within its row.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum GNodeRole {
    /// `(k, 0)`: consumes the pivot column, emits the pivot stream.
    PivotHead,
    /// `(k, 1..n-1)`: fuses one matrix column against the pivot stream.
    Fuse,
    /// `(k, n)`: delay column returning the pivot stream as a column.
    DelayTail,
}

/// Identifier of a G-node: `(row k, position g)` with `g ∈ 0..=n`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GnodeId {
    /// G-graph row (= Warshall level).
    pub k: usize,
    /// Position within the row, `0..=n`.
    pub g: usize,
}

/// The Fig. 17 G-graph for problem size `n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GGraph {
    n: usize,
}

impl GGraph {
    /// Builds the G-graph for an `n × n` problem (`n ≥ 2`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "G-graph needs n ≥ 2");
        Self { n }
    }

    /// Problem size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of G-graph rows (`n`).
    #[inline]
    pub fn rows(&self) -> usize {
        self.n
    }

    /// G-nodes per row (`n + 1`).
    #[inline]
    pub fn row_len(&self) -> usize {
        self.n + 1
    }

    /// Total number of G-nodes, `n(n+1)`.
    #[inline]
    pub fn gnode_count(&self) -> usize {
        self.n * (self.n + 1)
    }

    /// Computation time of every G-node (`n` cycles — one stream element per
    /// cycle). The uniformity of this value is what gives the fixed-size
    /// array maximal utilization (§3.2).
    #[inline]
    pub fn gnode_time(&self) -> usize {
        self.n
    }

    /// Role of G-node `(k, g)`.
    pub fn role(&self, id: GnodeId) -> GNodeRole {
        assert!(id.k < self.n && id.g <= self.n);
        match id.g {
            0 => GNodeRole::PivotHead,
            g if g == self.n => GNodeRole::DelayTail,
            _ => GNodeRole::Fuse,
        }
    }

    /// Matrix column processed by G-node `(k, g)` (`None` for the delay
    /// tail, whose "column" is the returning pivot stream).
    pub fn column_of(&self, id: GnodeId) -> Option<usize> {
        if id.g == self.n {
            None
        } else {
            Some((id.k + id.g) % self.n)
        }
    }

    /// Number of *useful* primitive operations inside G-node `(k, g)`:
    /// `n - 2` for fuse nodes (all rows except the pivot row and the
    /// diagonal element), `0` for the pivot head and delay tail. Summing
    /// over the graph gives the paper's `N = n(n-1)(n-2)`.
    pub fn useful_ops(&self, id: GnodeId) -> usize {
        match self.role(id) {
            GNodeRole::Fuse => self.n - 2,
            _ => 0,
        }
    }

    /// Producer of the column stream consumed by `(k, g)`: `(k-1, g+1)`,
    /// or `None` when the stream comes from the host (row 0).
    pub fn column_dep(&self, id: GnodeId) -> Option<GnodeId> {
        if id.k == 0 || id.g == self.n {
            None
        } else {
            Some(GnodeId {
                k: id.k - 1,
                g: id.g + 1,
            })
        }
    }

    /// Producer of the pivot stream consumed by `(k, g)`: `(k, g-1)`, or
    /// `None` for the pivot head (which generates it).
    pub fn pivot_dep(&self, id: GnodeId) -> Option<GnodeId> {
        if id.g == 0 {
            None
        } else {
            Some(GnodeId {
                k: id.k,
                g: id.g - 1,
            })
        }
    }

    /// Skewed horizontal coordinate `h = g + k` (parallelogram drawing, see
    /// `DESIGN.md`): column streams flow straight down in `h`, pivot streams
    /// flow right. G-set selection and scheduling operate in `(k, h)` space.
    #[inline]
    pub fn h_of(&self, id: GnodeId) -> usize {
        id.g + id.k
    }

    /// The inclusive range of `h` coordinates present in row `k`:
    /// `[k, k + n]`.
    pub fn h_range(&self, k: usize) -> (usize, usize) {
        (k, k + self.n)
    }

    /// Maximum `h` over the whole graph: `2n - 1`.
    #[inline]
    pub fn h_max(&self) -> usize {
        2 * self.n - 1
    }

    /// The G-node at `(k, h)` in skewed coordinates, if `h` falls inside
    /// row `k`'s parallelogram span.
    pub fn at_h(&self, k: usize, h: usize) -> Option<GnodeId> {
        if k < self.n && h >= k && h <= k + self.n {
            Some(GnodeId { k, g: h - k })
        } else {
            None
        }
    }

    /// Iterates over all G-node ids in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = GnodeId> + '_ {
        let n = self.n;
        (0..n).flat_map(move |k| (0..=n).map(move |g| GnodeId { k, g }))
    }

    /// Earliest start time of each G-node under fully pipelined execution
    /// (the Fig. 20 tags): `t(k, g) = 2k + g`, derived from unit skew on
    /// both the pivot and the column stream.
    pub fn earliest_start(&self, id: GnodeId) -> usize {
        2 * id.k + id.g
    }

    /// Functional stream evaluation of the whole G-graph — the semantic
    /// specification for every array engine.
    ///
    /// `a` must already be reflexive (diagonal ≥ `1`); use
    /// [`systolic_semiring::reflexive`].
    pub fn eval<S: PathSemiring>(&self, a: &DenseMatrix<S>) -> DenseMatrix<S> {
        let n = self.n;
        assert_eq!(a.rows(), n);
        assert_eq!(a.cols(), n);
        // cols[g] = column (k+g) mod n as a stream in row order starting at
        // the pivot row k (invariant maintained level by level).
        let mut cols: Vec<Vec<S::Elem>> = (0..n).map(|g| a.col(g)).collect();
        for _k in 0..n {
            let pivot = cols[0].clone();
            let mut next: Vec<Vec<S::Elem>> = Vec::with_capacity(n);
            for col in cols.iter().take(n).skip(1) {
                next.push(gnode_stream::<S>(col, &pivot));
            }
            next.push(rotate_stream::<S>(&pivot)); // delay tail
            cols = next;
        }
        // After n levels the columns are back in natural order.
        let mut out = DenseMatrix::<S>::zeros(n, n);
        for (g, col) in cols.iter().enumerate() {
            out.set_col(g, col);
        }
        out
    }
}

/// One fuse G-node's stream function: latch the head (the pivot-row element
/// `x[k][j]`), fuse the remaining elements against the pivot stream, and
/// re-emit the head last (rotating the stream to start at row `k+1`).
pub fn gnode_stream<S: PathSemiring>(col: &[S::Elem], pivot: &[S::Elem]) -> Vec<S::Elem> {
    let n = col.len();
    debug_assert_eq!(pivot.len(), n);
    let q = col[0].clone();
    let mut out = Vec::with_capacity(n);
    for r in 1..n {
        out.push(S::fuse(&col[r], &pivot[r], &q));
    }
    out.push(q);
    out
}

/// The delay tail's stream function: pure rotation (head emitted last).
pub fn rotate_stream<S: PathSemiring>(stream: &[S::Elem]) -> Vec<S::Elem> {
    let n = stream.len();
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&stream[1..]);
    out.push(stream[0].clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::{reflexive, warshall, Bool, DenseMatrix, MaxMin, MinPlus};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut m = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            m.set(i, j, true);
        }
        m
    }

    #[test]
    fn counts_match_fig17() {
        let g = GGraph::new(8);
        assert_eq!(g.gnode_count(), 8 * 9);
        assert_eq!(g.gnode_time(), 8);
        let useful: usize = g.iter().map(|id| g.useful_ops(id)).sum();
        assert_eq!(useful, 8 * 7 * 6); // n(n-1)(n-2)
    }

    #[test]
    fn roles_and_columns() {
        let g = GGraph::new(5);
        assert_eq!(g.role(GnodeId { k: 2, g: 0 }), GNodeRole::PivotHead);
        assert_eq!(g.role(GnodeId { k: 2, g: 3 }), GNodeRole::Fuse);
        assert_eq!(g.role(GnodeId { k: 2, g: 5 }), GNodeRole::DelayTail);
        assert_eq!(g.column_of(GnodeId { k: 2, g: 0 }), Some(2)); // pivot col
        assert_eq!(g.column_of(GnodeId { k: 2, g: 4 }), Some(1)); // (2+4)%5
        assert_eq!(g.column_of(GnodeId { k: 2, g: 5 }), None);
    }

    #[test]
    fn dependences_are_neighbor_only() {
        let g = GGraph::new(6);
        for id in g.iter() {
            if let Some(c) = g.column_dep(id) {
                assert_eq!(c.k + 1, id.k);
                assert_eq!(c.g, id.g + 1);
                // In skewed coordinates the column dependence is vertical.
                assert_eq!(g.h_of(c), g.h_of(id));
            }
            if let Some(p) = g.pivot_dep(id) {
                assert_eq!(p.k, id.k);
                assert_eq!(p.g + 1, id.g);
                assert_eq!(g.h_of(p) + 1, g.h_of(id));
            }
        }
    }

    #[test]
    fn earliest_start_respects_dependences() {
        let g = GGraph::new(7);
        for id in g.iter() {
            let t = g.earliest_start(id);
            if let Some(c) = g.column_dep(id) {
                assert!(g.earliest_start(c) < t);
            }
            if let Some(p) = g.pivot_dep(id) {
                assert!(g.earliest_start(p) < t);
            }
        }
    }

    #[test]
    fn eval_equals_warshall_bool() {
        for (n, edges) in [
            (4usize, vec![(0, 1), (1, 2), (2, 3)]),
            (5, vec![(0, 2), (2, 4), (4, 1), (1, 0)]),
            (6, vec![(5, 0), (0, 5), (1, 3), (3, 1), (2, 4)]),
        ] {
            let a = bool_adj(n, &edges);
            let got = GGraph::new(n).eval::<Bool>(&reflexive(&a));
            assert_eq!(got, warshall(&a), "n={n}");
        }
    }

    #[test]
    fn eval_equals_warshall_minplus_and_maxmin() {
        let n = 6;
        let mut d = DenseMatrix::<MinPlus>::zeros(n, n);
        let mut c = DenseMatrix::<MaxMin>::zeros(n, n);
        let edges = [
            (0, 1, 4),
            (1, 2, 1),
            (2, 5, 3),
            (0, 5, 20),
            (5, 3, 2),
            (3, 0, 7),
        ];
        for &(i, j, w) in &edges {
            d.set(i, j, w);
            c.set(i, j, w);
        }
        assert_eq!(GGraph::new(n).eval::<MinPlus>(&reflexive(&d)), warshall(&d));
        assert_eq!(GGraph::new(n).eval::<MaxMin>(&reflexive(&c)), warshall(&c));
    }

    #[test]
    fn h_coordinates_form_parallelogram() {
        let g = GGraph::new(5);
        assert_eq!(g.h_range(0), (0, 5));
        assert_eq!(g.h_range(4), (4, 9));
        assert_eq!(g.h_max(), 9);
        assert_eq!(g.at_h(2, 2), Some(GnodeId { k: 2, g: 0 }));
        assert_eq!(g.at_h(2, 7), Some(GnodeId { k: 2, g: 5 }));
        assert_eq!(g.at_h(2, 8), None);
        assert_eq!(g.at_h(2, 1), None);
    }

    #[test]
    fn stream_rotation_helpers() {
        let s = vec![10u64, 20, 30];
        assert_eq!(rotate_stream::<MinPlus>(&s), vec![20, 30, 10]);
    }
}
