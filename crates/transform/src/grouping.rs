//! G-node grouping alternatives (Fig. 6) and varying-computation-time
//! profiles (§4.3, Fig. 22).
//!
//! A *grouping* collapses the primitive nodes of a dependence graph into
//! G-nodes along a chosen family of paths; what the partitioning method
//! cares about afterwards is only each G-node's **computation time** (the
//! number of primitive nodes it contains, under the paper's unit-cost
//! assumption). [`grouping_profile`] computes that time grid for the three
//! path families of Fig. 6, and [`lu_time_grid`] produces the §4.3
//! LU-decomposition profile whose monotone variation drives the Fig. 22
//! linear-vs-2-D utilization analysis in `systolic-metrics`.

use std::collections::HashMap;
use systolic_dgraph::DependenceGraph;

/// Path family used to group primitive nodes into G-nodes (Fig. 6).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum GroupingAxis {
    /// Group by drawing row (`pos.y`): horizontal paths.
    Horizontal,
    /// Group by drawing column (`pos.x`): vertical paths.
    Vertical,
    /// Group by anti-diagonal (`pos.x + pos.y`): diagonal paths.
    Diagonal,
    /// Group by square blocks of the given side length.
    Block(usize),
}

/// A grid of G-node computation times: `times[row][col]`, in the grouping's
/// own coordinates. Rows/cols with no primitive nodes are absent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimeGrid {
    /// `times[r][c]` = computation time of G-node `(r, c)`.
    pub times: Vec<Vec<u64>>,
}

impl TimeGrid {
    /// Total computation time over all G-nodes.
    pub fn total_time(&self) -> u64 {
        self.times.iter().flatten().sum()
    }

    /// Number of G-nodes.
    pub fn len(&self) -> usize {
        self.times.iter().map(Vec::len).sum()
    }

    /// True when the grid has no G-nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when every G-node has the same computation time — the property
    /// that lets a direct implementation achieve maximal utilization
    /// (Fig. 8, fixed-size case).
    pub fn is_uniform(&self) -> bool {
        let mut it = self.times.iter().flatten();
        match it.next() {
            None => true,
            Some(first) => it.all(|t| t == first),
        }
    }

    /// True when each row is internally uniform (all G-nodes in a row share
    /// one time) even if rows differ — the §4.3 situation where a *linear*
    /// array can still achieve maximal utilization (Fig. 22b).
    pub fn rows_uniform(&self) -> bool {
        self.times
            .iter()
            .all(|row| row.windows(2).all(|w| w[0] == w[1]))
    }

    /// Maximum computation time.
    pub fn max_time(&self) -> u64 {
        self.times.iter().flatten().copied().max().unwrap_or(0)
    }
}

/// Groups a dependence graph's compute nodes into G-nodes along `axis` and
/// returns the resulting computation-time grid.
///
/// The grouping key is derived from each node's drawing position, per level:
/// grouping never merges nodes of different levels for the path families
/// (Fig. 6 groups within the drawing of the graph, which stacks levels).
pub fn grouping_profile(g: &DependenceGraph, axis: GroupingAxis) -> TimeGrid {
    // key = (major, minor) → accumulated time.
    let mut acc: HashMap<(i64, i64), u64> = HashMap::new();
    for nd in g.nodes() {
        if !nd.kind.is_compute() {
            continue;
        }
        let (x, y) = (nd.pos.x, nd.pos.y);
        let key = match axis {
            GroupingAxis::Horizontal => (y, 0),
            GroupingAxis::Vertical => (x, i64::from(nd.coord.level)),
            GroupingAxis::Diagonal => (x + y, 0),
            GroupingAxis::Block(b) => {
                let b = b as i64;
                (y.div_euclid(b), x.div_euclid(b))
            }
        };
        *acc.entry(key).or_insert(0) += u64::from(nd.cost);
    }
    // Arrange into a grid sorted by (major, minor).
    let mut keys: Vec<_> = acc.keys().copied().collect();
    keys.sort_unstable();
    let mut times: Vec<Vec<u64>> = Vec::new();
    let mut cur_major = None;
    for k in keys {
        if cur_major != Some(k.0) {
            times.push(Vec::new());
            cur_major = Some(k.0);
        }
        times.last_mut().unwrap().push(acc[&k]);
    }
    TimeGrid { times }
}

/// The §4.3 LU-decomposition G-node time grid: grouping level `k`'s
/// trapezoid by columns gives G-nodes of time `n - k - 1` within level `k`
/// (uniform inside a level, monotonically decreasing across levels) — the
/// Fig. 22a pattern.
pub fn lu_time_grid(n: usize) -> TimeGrid {
    assert!(n >= 2);
    let mut times = Vec::new();
    for k in 0..n - 1 {
        let t = (n - k - 1) as u64;
        // Columns k..n-1 of level k (multiplier column + updates).
        times.push(vec![t; n - k]);
    }
    TimeGrid { times }
}

/// §4.3 Faddeev-algorithm time grid (the paper's companion report \[21\]
/// partitions this algorithm): Gaussian elimination of the `A` block of the
/// `2n × 2n` compound matrix `[[A, B], [-C, D]]` — level `k ∈ 0..n` touches
/// a `(2n - k - 1)`-deep trapezoid, so G-node times decrease from `2n - 1`
/// to `n`, uniform within a level.
pub fn faddeev_time_grid(n: usize) -> TimeGrid {
    assert!(n >= 1);
    let m = 2 * n;
    let mut times = Vec::new();
    for k in 0..n {
        let t = (m - k - 1) as u64;
        times.push(vec![t; m - k]);
    }
    TimeGrid { times }
}

/// §4.3 Givens-triangularization time grid: rotation wave `k` generates one
/// rotation and applies it across the remaining `n - k - 1` columns of rows
/// below the diagonal — uniform-time paths within a wave, shrinking across
/// waves (the "triangularization by Givens rotations" case).
pub fn givens_time_grid(n: usize) -> TimeGrid {
    assert!(n >= 2);
    let mut times = Vec::new();
    for k in 0..n - 1 {
        let t = (n - k - 1) as u64;
        times.push(vec![t; n - k - 1 + 1]);
    }
    TimeGrid { times }
}

/// §4.3 upper-triangular-inverse time grid: computing `R⁻¹` column by
/// column, column `j` requires a back-substitution of depth `j`, so G-node
/// times *increase* across the graph — the monotonically increasing variant
/// the section mentions.
pub fn triangular_inverse_time_grid(n: usize) -> TimeGrid {
    assert!(n >= 2);
    let mut times = Vec::new();
    for j in 1..n {
        times.push(vec![j as u64; n - j]);
    }
    TimeGrid { times }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_dgraph::{closure_lean, lu_graph};

    #[test]
    fn closure_horizontal_grouping_total_matches_node_count() {
        let n = 6;
        let g = closure_lean(n);
        let grid = grouping_profile(&g, GroupingAxis::Horizontal);
        assert_eq!(grid.total_time(), (n * (n - 1) * (n - 2)) as u64);
    }

    #[test]
    fn closure_groupings_preserve_total_across_axes() {
        let g = closure_lean(5);
        let total = g.total_compute_time();
        for axis in [
            GroupingAxis::Horizontal,
            GroupingAxis::Vertical,
            GroupingAxis::Diagonal,
            GroupingAxis::Block(2),
            GroupingAxis::Block(3),
        ] {
            assert_eq!(grouping_profile(&g, axis).total_time(), total, "{axis:?}");
        }
    }

    #[test]
    fn faddeev_grid_matches_faddeev_graph_totals() {
        use systolic_dgraph::faddeev_graph;
        let n = 4;
        let grid = faddeev_time_grid(n);
        let g = faddeev_graph(n);
        assert_eq!(grid.total_time(), g.total_compute_time());
        assert!(grid.rows_uniform());
        assert!(!grid.is_uniform());
    }

    #[test]
    fn givens_grid_shrinks_and_triangular_inverse_grows() {
        let g = givens_time_grid(8);
        for w in g.times.windows(2) {
            assert!(w[0][0] > w[1][0], "Givens waves shrink");
        }
        let t = triangular_inverse_time_grid(8);
        for w in t.times.windows(2) {
            assert!(w[0][0] < w[1][0], "back-substitution depth grows");
        }
        assert!(g.rows_uniform() && t.rows_uniform());
    }

    #[test]
    fn all_varying_grids_defeat_two_dimensional_mappings() {
        // §4.3's list of algorithms: in every case, equal-time paths exist
        // (rows_uniform) so a linear mapping avoids time mixing, while a
        // 2-D G-set cannot.
        for grid in [
            lu_time_grid(12),
            faddeev_time_grid(6),
            givens_time_grid(12),
            triangular_inverse_time_grid(12),
        ] {
            assert!(grid.rows_uniform());
            assert!(!grid.is_uniform());
        }
    }

    #[test]
    fn lu_grid_matches_lu_graph_totals() {
        let n = 6;
        let grid = lu_time_grid(n);
        let g = lu_graph(n);
        assert_eq!(grid.total_time(), g.total_compute_time());
    }

    #[test]
    fn lu_grid_rows_uniform_but_not_global() {
        let grid = lu_time_grid(7);
        assert!(grid.rows_uniform());
        assert!(!grid.is_uniform());
        // Monotonically decreasing across rows (the Fig. 22 tagging).
        for w in grid.times.windows(2) {
            assert!(w[0][0] > w[1][0]);
        }
    }

    #[test]
    fn uniform_detection() {
        let grid = TimeGrid {
            times: vec![vec![4, 4], vec![4, 4]],
        };
        assert!(grid.is_uniform());
        assert!(grid.rows_uniform());
        let grid = TimeGrid {
            times: vec![vec![4, 4], vec![3, 3]],
        };
        assert!(!grid.is_uniform());
        assert!(grid.rows_uniform());
        assert_eq!(grid.max_time(), 4);
        assert_eq!(grid.len(), 4);
    }

    #[test]
    fn empty_grid() {
        let grid = TimeGrid::default();
        assert!(grid.is_empty());
        assert!(grid.is_uniform());
        assert_eq!(grid.max_time(), 0);
    }
}
