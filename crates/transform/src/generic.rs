//! Algorithm-generic G-graphs: the Fig. 17 closure parallelogram as *one
//! instance* of a wider family (§4.3).
//!
//! The partitioning method of §4 never inspects the arithmetic inside a
//! G-node — it only needs, per G-node, its **position** in `(k, h)` space,
//! its **role** (head / fuse / tail of a row), its **stream length** and
//! per-element **duration** (together, the computation time), and its
//! useful-operation count. [`GenericGGraph`] captures exactly that
//! interface, so the same G-set selection, scheduling and plan-building
//! machinery drives transitive closure, LU decomposition and the Faddeev
//! algorithm:
//!
//! * [`GenericGGraph::closure`] — `n` rows of `n + 1` uniform-time G-nodes
//!   with a delay tail (Fig. 17); [`GGraph::generic`] bridges the concrete
//!   closure G-graph into this form, byte-for-byte equivalent in geometry.
//! * [`GenericGGraph::lu`] / [`GenericGGraph::faddeev`] — shrinking
//!   trapezoids of Gaussian-elimination levels whose G-node times decrease
//!   monotonically across rows but stay uniform *within* a row: the §4.3
//!   shape that favors linear over two-dimensional partitions (Fig. 22).
//! * [`GenericGGraph::from_time_grid`] — any row-uniform
//!   [`TimeGrid`] (e.g. one produced by
//!   [`grouping_profile`](crate::grouping_profile) from an arbitrary
//!   dependence graph) becomes a generic G-graph directly.

use crate::ggraph::GGraph;
use crate::grouping::TimeGrid;

/// Role of a G-node within a generic G-graph row.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum GenRole {
    /// First node of the row: consumes its column stream and generates the
    /// rightward pivot stream (closure pivot head, LU divider head).
    Head,
    /// Interior node: fuses one column stream against the pivot stream.
    Fuse,
    /// Optional delay tail (closure only): returns the pivot stream as a
    /// column without computing.
    Tail,
}

/// Geometry of one G-graph row (one algorithm level).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GRowSpec {
    /// Skewed coordinate `h` of the row's first (head) G-node.
    pub h_lo: usize,
    /// Number of G-nodes in the row (head + fuses, plus the tail if any).
    pub width: usize,
    /// Whether the last node is a pure delay tail (closure) rather than a
    /// fuse (elimination levels have none — their streams shrink instead).
    pub has_tail: bool,
    /// Stream length processed by every G-node in the row.
    pub len: usize,
    /// Cycles a G-node's cell stays busy per stream element (§4.3 varying
    /// computation time; `1` is the classical single-cycle G-node).
    pub duration: u32,
    /// Useful primitive operations performed by each *fuse* node of the row
    /// (heads and tails contribute none).
    pub fuse_ops: u64,
}

impl GRowSpec {
    /// Skewed coordinate of the row's last G-node.
    #[inline]
    pub fn h_hi(&self) -> usize {
        self.h_lo + self.width - 1
    }

    /// Computation time of one G-node in this row: stream length times
    /// per-element duration.
    #[inline]
    pub fn gnode_time(&self) -> u64 {
        self.len as u64 * u64::from(self.duration)
    }
}

/// An algorithm-generic G-graph: a list of rows in skewed `(k, h)`
/// coordinates, where column streams flow straight down (same `h`, next
/// `k`) and pivot streams flow right along a row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenericGGraph {
    rows: Vec<GRowSpec>,
}

impl GenericGGraph {
    /// Builds a generic G-graph from explicit row specs.
    ///
    /// # Panics
    /// When a row is degenerate: zero width, zero stream length, zero
    /// duration, or a tail with no head before it.
    pub fn new(rows: Vec<GRowSpec>) -> Self {
        assert!(!rows.is_empty(), "generic G-graph needs at least one row");
        for (k, r) in rows.iter().enumerate() {
            assert!(r.width >= 1, "row {k}: width must be ≥ 1");
            assert!(r.len >= 1, "row {k}: stream length must be ≥ 1");
            assert!(r.duration >= 1, "row {k}: duration must be ≥ 1");
            assert!(
                !r.has_tail || r.width >= 2,
                "row {k}: a tail needs a head before it"
            );
        }
        Self { rows }
    }

    /// The Fig. 17 transitive-closure G-graph: `n` rows, each `n + 1` wide
    /// with a delay tail, uniform stream length `n`, unit duration, and
    /// `n - 2` useful operations per fuse.
    pub fn closure(n: usize) -> Self {
        assert!(n >= 2, "closure G-graph needs n ≥ 2");
        Self::new(
            (0..n)
                .map(|k| GRowSpec {
                    h_lo: k,
                    width: n + 1,
                    has_tail: true,
                    len: n,
                    duration: 1,
                    fuse_ops: (n - 2) as u64,
                })
                .collect(),
        )
    }

    /// The §4.3 LU-decomposition G-graph: level `k ∈ 0..n-1` spans
    /// `h = k..n-1` (matrix columns flow straight down, so the trapezoid
    /// shrinks), with stream length `n - k` and `n - k - 1` useful update
    /// operations per fuse.
    pub fn lu(n: usize) -> Self {
        assert!(n >= 2, "LU G-graph needs n ≥ 2");
        Self::elimination(n, n - 1)
    }

    /// The Faddeev-algorithm G-graph: Gaussian elimination of the first `n`
    /// columns of the `2n × 2n` compound matrix `[[A, B], [-C, D]]`; level
    /// `k ∈ 0..n` has stream length `2n - k`.
    pub fn faddeev(n: usize) -> Self {
        assert!(n >= 1, "Faddeev G-graph needs n ≥ 1");
        Self::elimination(2 * n, n)
    }

    /// Elimination-family geometry: `levels` rows over an `msize × msize`
    /// matrix, row `k` spanning `h = k..msize-1` with stream length
    /// `msize - k`.
    pub fn elimination(msize: usize, levels: usize) -> Self {
        assert!(levels >= 1 && levels < msize, "need 1 ≤ levels < msize");
        Self::new(
            (0..levels)
                .map(|k| GRowSpec {
                    h_lo: k,
                    width: msize - k,
                    has_tail: false,
                    len: msize - k,
                    duration: 1,
                    fuse_ops: (msize - k - 1) as u64,
                })
                .collect(),
        )
    }

    /// Builds a generic G-graph from any row-uniform [`TimeGrid`] (such as
    /// one computed by [`grouping_profile`](crate::grouping_profile)): row
    /// `r` gets `h_lo = r`, one G-node per grid entry, and stream length
    /// `t + 1` (a G-node of computation time `t` passes its stream head
    /// through untouched, so the stream carries `t + 1` words).
    ///
    /// # Panics
    /// When the grid is empty or some row mixes computation times.
    pub fn from_time_grid(grid: &TimeGrid) -> Self {
        assert!(
            !grid.is_empty(),
            "cannot build a G-graph from an empty grid"
        );
        assert!(
            grid.rows_uniform(),
            "generic G-graph rows must be time-uniform (equal-time paths, §4.3)"
        );
        Self::new(
            grid.times
                .iter()
                .enumerate()
                .map(|(r, row)| GRowSpec {
                    h_lo: r,
                    width: row.len(),
                    has_tail: false,
                    len: row[0] as usize + 1,
                    duration: 1,
                    fuse_ops: row[0],
                })
                .collect(),
        )
    }

    /// Overrides the per-element duration of each row (one entry per row):
    /// the §4.3 varying-computation-time knob.
    ///
    /// # Panics
    /// When `durs.len()` differs from the row count or a duration is zero.
    #[must_use]
    pub fn with_row_durations(mut self, durs: &[u32]) -> Self {
        assert_eq!(durs.len(), self.rows.len(), "one duration per row");
        for (r, &d) in self.rows.iter_mut().zip(durs) {
            assert!(d >= 1, "duration must be ≥ 1");
            r.duration = d;
        }
        self
    }

    /// Number of rows (algorithm levels).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// The spec of row `k`.
    #[inline]
    pub fn row(&self, k: usize) -> &GRowSpec {
        &self.rows[k]
    }

    /// Maximum `h` coordinate over the whole graph.
    pub fn h_max(&self) -> usize {
        self.rows.iter().map(GRowSpec::h_hi).max().unwrap()
    }

    /// Total number of G-nodes.
    pub fn gnode_count(&self) -> usize {
        self.rows.iter().map(|r| r.width).sum()
    }

    /// Role of the G-node at `(k, h)`, or `None` when `h` falls outside
    /// row `k`'s span.
    pub fn at_h(&self, k: usize, h: usize) -> Option<GenRole> {
        let r = self.rows.get(k)?;
        if h < r.h_lo || h > r.h_hi() {
            return None;
        }
        Some(if h == r.h_lo {
            GenRole::Head
        } else if r.has_tail && h == r.h_hi() {
            GenRole::Tail
        } else {
            GenRole::Fuse
        })
    }

    /// Useful primitive operations of the G-node at `(k, h)` (0 outside the
    /// graph, and for heads and tails).
    pub fn useful_ops(&self, k: usize, h: usize) -> u64 {
        match self.at_h(k, h) {
            Some(GenRole::Fuse) => self.rows[k].fuse_ops,
            _ => 0,
        }
    }

    /// Sum of useful operations over the whole graph.
    pub fn total_useful_ops(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| {
                let fuses = r.width - 1 - usize::from(r.has_tail);
                fuses as u64 * r.fuse_ops
            })
            .sum()
    }

    /// The computation-time grid of this G-graph: `len × duration` per
    /// G-node, row by row — the quantity the §4.3 utilization analysis in
    /// `systolic-metrics` consumes.
    pub fn time_grid(&self) -> TimeGrid {
        TimeGrid {
            times: self
                .rows
                .iter()
                .map(|r| vec![r.gnode_time(); r.width])
                .collect(),
        }
    }

    /// Lock-step row entry times: row `k` starts once rows `0..k` have each
    /// run for one full G-node time. With uniform time `n` this reduces to
    /// the closure schedule's analytic starts `k · n`.
    pub fn lockstep_starts(&self) -> Vec<u64> {
        let mut starts = Vec::with_capacity(self.rows.len());
        let mut t = 0u64;
        for r in &self.rows {
            starts.push(t);
            t += r.gnode_time();
        }
        starts
    }
}

impl GGraph {
    /// Views the concrete closure G-graph through the algorithm-generic
    /// interface (identical geometry; see the equivalence tests).
    pub fn generic(&self) -> GenericGGraph {
        GenericGGraph::closure(self.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ggraph::{GGraph, GNodeRole};
    use crate::grouping::{faddeev_time_grid, lu_time_grid};

    #[test]
    fn closure_generic_matches_concrete_ggraph() {
        for n in [2usize, 3, 5, 8] {
            let gg = GGraph::new(n);
            let gen = gg.generic();
            assert_eq!(gen.rows(), gg.rows());
            assert_eq!(gen.gnode_count(), gg.gnode_count());
            assert_eq!(gen.h_max(), gg.h_max());
            for k in 0..n {
                assert_eq!(gen.row(k).gnode_time(), gg.gnode_time() as u64);
                for h in 0..=gen.h_max() + 1 {
                    let got = gen.at_h(k, h);
                    let want = gg.at_h(k, h).map(|id| match gg.role(id) {
                        GNodeRole::PivotHead => GenRole::Head,
                        GNodeRole::Fuse => GenRole::Fuse,
                        GNodeRole::DelayTail => GenRole::Tail,
                    });
                    assert_eq!(got, want, "n={n} k={k} h={h}");
                    if let Some(id) = gg.at_h(k, h) {
                        assert_eq!(gen.useful_ops(k, h), gg.useful_ops(id) as u64);
                    }
                }
            }
            let concrete: usize = gg.iter().map(|id| gg.useful_ops(id)).sum();
            assert_eq!(gen.total_useful_ops(), concrete as u64);
        }
    }

    #[test]
    fn lu_geometry_shrinks_with_levels() {
        let n = 6;
        let g = GenericGGraph::lu(n);
        assert_eq!(g.rows(), n - 1);
        assert_eq!(g.h_max(), n - 1);
        for k in 0..n - 1 {
            let r = g.row(k);
            assert_eq!(r.h_lo, k);
            assert_eq!(r.width, n - k);
            assert_eq!(r.len, n - k);
            assert!(!r.has_tail);
            assert_eq!(g.at_h(k, k), Some(GenRole::Head));
            assert_eq!(g.at_h(k, n - 1), Some(GenRole::Fuse));
            assert_eq!(g.at_h(k, k.wrapping_sub(1)), None);
        }
        // One useful update per fuse per sub-diagonal row: Σ (n-k)(n-k-1)
        // over levels... expressed per-row: (width-1) fuses × (len-1) ops.
        let want: u64 = (0..n - 1).map(|k| ((n - k - 1) * (n - k - 1)) as u64).sum();
        assert_eq!(g.total_useful_ops(), want);
    }

    #[test]
    fn faddeev_covers_two_n_and_stops_after_n_levels() {
        let n = 3;
        let g = GenericGGraph::faddeev(n);
        assert_eq!(g.rows(), n);
        assert_eq!(g.h_max(), 2 * n - 1);
        assert_eq!(g.row(0).len, 2 * n);
        assert_eq!(g.row(n - 1).len, n + 1);
    }

    #[test]
    fn from_time_grid_reconstructs_elimination_geometry() {
        let n = 7;
        assert_eq!(
            GenericGGraph::from_time_grid(&lu_time_grid(n)),
            GenericGGraph::lu(n)
        );
        assert_eq!(
            GenericGGraph::from_time_grid(&faddeev_time_grid(n)),
            GenericGGraph::faddeev(n)
        );
    }

    #[test]
    fn time_grid_is_len_times_duration() {
        let g = GenericGGraph::lu(5).with_row_durations(&[3, 2, 1, 1]);
        let tg = g.time_grid();
        assert_eq!(tg.times[0], vec![15; 5]); // len 5 × dur 3
        assert_eq!(tg.times[1], vec![8; 4]);
        assert!(tg.rows_uniform());
        assert!(!tg.is_uniform());
    }

    #[test]
    fn lockstep_starts_reduce_to_analytic_for_uniform_times() {
        let n = 6;
        let g = GenericGGraph::closure(n);
        let starts = g.lockstep_starts();
        for (k, s) in starts.iter().enumerate() {
            assert_eq!(*s, (k * n) as u64);
        }
        // Varying times accumulate the actual per-row G-node time.
        let lu = GenericGGraph::lu(4); // lens 4, 3, 2
        assert_eq!(lu.lockstep_starts(), vec![0, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "time-uniform")]
    fn from_time_grid_rejects_mixed_rows() {
        let grid = TimeGrid {
            times: vec![vec![3, 2]],
        };
        let _ = GenericGGraph::from_time_grid(&grid);
    }
}
