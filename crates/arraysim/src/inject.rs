//! Runtime transient-fault injection (paper §5 made executable).
//!
//! The static bypass story (`systolic-partition::fault`) models cells that
//! are *known* dead before a run starts. This module models the faults that
//! actually happen at runtime: a seeded, fully deterministic [`FaultPlan`]
//! is consulted by the simulator every cycle and may
//!
//! * corrupt an element the moment a cell emits it ([`FaultKind::CorruptEmit`]),
//! * drop or duplicate a stream word on a neighbor link
//!   ([`FaultKind::DropWord`] / [`FaultKind::DuplicateWord`]),
//! * flip a word resident in an external memory [`crate::Bank`]
//!   ([`FaultKind::BankFlip`]),
//! * stick a cell for a bounded number of cycles ([`FaultKind::StickCell`]).
//!
//! Every fault that is *applied* (not merely rolled) is recorded in a
//! [`FaultLog`], which the run's [`crate::RunStats`] carries out verbatim so
//! detection and recovery layers can attribute blame. Determinism: the plan
//! owns a xoshiro256** stream seeded from [`FaultPlan::seed`], the simulator
//! is single-threaded, and every decision draw happens at a schedule-fixed
//! point — the same seed over the same task programs reproduces the same
//! fault sequence bit for bit.

use systolic_semiring::Semiring;
use systolic_util::Rng;

/// What a single applied fault did, and where.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The word cell `cell` emitted this cycle was replaced by a corrupted
    /// value (zero ↔ one flip in the run's semiring).
    CorruptEmit {
        /// Emitting cell.
        cell: usize,
    },
    /// A word written to link `link` was lost in transit.
    DropWord {
        /// Link index.
        link: usize,
    },
    /// A word written to link `link` was delivered twice.
    DuplicateWord {
        /// Link index.
        link: usize,
    },
    /// A word resident in bank `bank` was flipped in place.
    BankFlip {
        /// Bank index.
        bank: usize,
    },
    /// Cell `cell` made no progress for `cycles` cycles (transient stuck-at
    /// on the cell's sequencer; pure delay, never corrupts data).
    StickCell {
        /// Stuck cell.
        cell: usize,
        /// Duration of the stick.
        cycles: u64,
    },
}

impl FaultKind {
    /// True for faults that change a data value (emit corruption, bank
    /// flip). Drops/duplicates corrupt stream *structure* (usually a
    /// deadlock or a malformed output), sticks only cost time.
    pub fn is_value_corrupting(&self) -> bool {
        matches!(
            self,
            FaultKind::CorruptEmit { .. } | FaultKind::BankFlip { .. }
        )
    }

    /// Short site label for reports (`cell 3`, `link 1`, `bank 2`).
    pub fn site(&self) -> String {
        match self {
            FaultKind::CorruptEmit { cell } | FaultKind::StickCell { cell, .. } => {
                format!("cell {cell}")
            }
            FaultKind::DropWord { link } | FaultKind::DuplicateWord { link } => {
                format!("link {link}")
            }
            FaultKind::BankFlip { bank } => format!("bank {bank}"),
        }
    }
}

/// One applied fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the fault was applied.
    pub cycle: u64,
    /// What happened.
    pub kind: FaultKind,
}

/// The record of every fault applied during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Applied faults in cycle order.
    pub events: Vec<FaultEvent>,
}

impl FaultLog {
    /// Number of applied faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no fault was applied.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of value-corrupting faults (see
    /// [`FaultKind::is_value_corrupting`]).
    pub fn value_corrupting(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind.is_value_corrupting())
            .count()
    }
}

/// Aggregated fault accounting carried by [`crate::RunStats`] and merged
/// across batch instances / parallel workers.
///
/// The simulator fills `injected`; the detection and recovery layers fill
/// the rest (the simulator cannot know which of its own faults were caught
/// downstream). All-zero for fault-free runs, so equality of golden stats
/// is unaffected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults applied by the injector.
    pub injected: u64,
    /// Faults attributed to attempts that were rejected (checksum failure
    /// or simulation error) — i.e. caught before a result escaped.
    pub detected: u64,
    /// Value-corrupting faults present in an *accepted* result (silent data
    /// corruption). Filled by campaigns that compare against a reference.
    pub escaped: u64,
    /// Instance retries performed by a recovery wrapper.
    pub retries: u64,
    /// Permanent-fault escalations onto a bypass configuration.
    pub bypasses: u64,
}

impl FaultReport {
    /// Folds another report into this one (all counters are additive).
    pub fn merge(&mut self, other: &FaultReport) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.escaped += other.escaped;
        self.retries += other.retries;
        self.bypasses += other.bypasses;
    }

    /// True when every counter is zero (fault-free run).
    pub fn is_empty(&self) -> bool {
        *self == FaultReport::default()
    }
}

/// A seeded description of the transient faults to inject into a run.
///
/// All rates are per-opportunity probabilities: `emit_corrupt`, `link_drop`
/// and `link_dup` are rolled once per emitted/linked word, `bank_flip` and
/// `stick` once per cycle. `max_faults` caps the total number of applied
/// faults; a zero-rate plan (the [`FaultPlan::none`] constructor) injects
/// nothing and leaves the simulation bit-identical to an uninstrumented run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Base seed of the plan's deterministic decision stream.
    pub seed: u64,
    /// Probability that an emitted word is corrupted.
    pub emit_corrupt: f64,
    /// Probability that a word written to a link is dropped.
    pub link_drop: f64,
    /// Probability that a word written to a link is duplicated.
    pub link_dup: f64,
    /// Per-cycle probability of flipping one resident bank word.
    pub bank_flip: f64,
    /// Per-cycle probability of sticking one cell.
    pub stick: f64,
    /// Duration of a stick, in cycles.
    pub stick_cycles: u64,
    /// Hard cap on applied faults (`u64::MAX` = unlimited).
    pub max_faults: u64,
    /// Optional hot cell: `(cell, weight)` multiplies `emit_corrupt` for
    /// that cell's emissions, modelling a marginal cell that keeps failing
    /// until the recovery layer reclassifies it as permanently faulty.
    pub hot_cell: Option<(usize, f64)>,
    /// Optional per-lane fault mask: when set, every value corruption
    /// (emit corrupt, bank flip) touches only lane
    /// `target_lane % LANE_COUNT` of the packed element instead of the
    /// whole word, via [`Semiring::corrupt_lane`]. `None` (the default and
    /// every constructor's choice) keeps the legacy whole-element swap —
    /// scalar semirings are unaffected either way, since their one lane
    /// *is* the whole element. This is what lets a lane-packed engine keep
    /// an armed plan on the packed path: the fault blast radius is one
    /// resident instance, not all of them.
    pub target_lane: Option<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a control: the run must be
    /// bit-identical to one without any plan).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            emit_corrupt: 0.0,
            link_drop: 0.0,
            link_dup: 0.0,
            bank_flip: 0.0,
            stick: 0.0,
            stick_cycles: 0,
            max_faults: u64::MAX,
            hot_cell: None,
            target_lane: None,
        }
    }

    /// A balanced transient-upset plan: value corruption on emits and bank
    /// words at `rate`, structural link faults at a tenth of it, and short
    /// (3-cycle) sticks at `rate`.
    pub fn transients(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            emit_corrupt: rate,
            link_drop: rate / 10.0,
            link_dup: rate / 10.0,
            bank_flip: rate,
            stick: rate,
            stick_cycles: 3,
            max_faults: u64::MAX,
            hot_cell: None,
            target_lane: None,
        }
    }

    /// Marks `cell` as hot: its emissions fail `weight` times more often.
    pub fn with_hot_cell(mut self, cell: usize, weight: f64) -> Self {
        self.hot_cell = Some((cell, weight));
        self
    }

    /// Caps the number of applied faults.
    pub fn with_max_faults(mut self, max: u64) -> Self {
        self.max_faults = max;
        self
    }

    /// Confines value corruptions to one lane of a packed element (see
    /// [`FaultPlan::target_lane`]). The decision stream is unchanged —
    /// the same seed fires the same faults at the same cycles — only the
    /// blast radius of each value fault shrinks to a single lane.
    pub fn with_target_lane(mut self, lane: usize) -> Self {
        self.target_lane = Some(lane);
        self
    }

    /// The same plan reseeded for attempt `nonce` — retries of a failed
    /// instance must see a *different* transient-fault sequence, otherwise
    /// a deterministic replay would re-inject the identical fault forever.
    pub fn reseeded(&self, nonce: u64) -> Self {
        let mut p = self.clone();
        // splitmix64-style avalanche of (seed, nonce); any bijective mix
        // works, it only has to decorrelate consecutive nonces.
        let mut z = self
            .seed
            .wrapping_add(nonce.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        p.seed = z ^ (z >> 31);
        p
    }

    /// True when no fault can ever be applied.
    pub fn is_inert(&self) -> bool {
        (self.emit_corrupt <= 0.0
            && self.link_drop <= 0.0
            && self.link_dup <= 0.0
            && self.bank_flip <= 0.0
            && self.stick <= 0.0)
            || self.max_faults == 0
    }
}

/// The canonical value corruption: swap the additive identity with the
/// multiplicative one. Guaranteed to change the element in every
/// non-trivial semiring (where `0̸ ≠ 1`), and maps interior values to `0̸`,
/// which exercises both "lost edge" and "phantom edge" corruptions.
///
/// This is the one place the simulator manufactures a *value*, which makes
/// fault injection the one lane-width-dependent mechanism: over a packed
/// semiring like `BoolLanes` a whole-element corruption hits all resident
/// instances at once. Plans without a [`FaultPlan::target_lane`] mask keep
/// that legacy behavior (and lane-packed engines route them to the scalar
/// path); masked plans go through [`corrupt_value_in_lane`] instead, which
/// confines the fault to one lane so packed engines can stay packed
/// (DESIGN §10/§16).
pub fn corrupt_value<S: Semiring>(e: &S::Elem) -> S::Elem {
    if S::is_zero(e) {
        S::one()
    } else {
        S::zero()
    }
}

/// Lane-masked value corruption: the whole-element swap of
/// [`corrupt_value`] when `target` is `None`, or the single-lane swap
/// [`Semiring::corrupt_lane`] on lane `target % LANE_COUNT` when a plan
/// carries a [`FaultPlan::target_lane`] mask.
///
/// Over scalar semirings the two are the same map, so arming a target
/// lane never changes a scalar run; over packed semirings the mask is
/// what confines a fault to one resident instance.
pub fn corrupt_value_in_lane<S: Semiring>(e: &S::Elem, target: Option<usize>) -> S::Elem {
    match target {
        None => corrupt_value::<S>(e),
        Some(l) => S::corrupt_lane(e, l % S::LANE_COUNT),
    }
}

/// What the injector decided about one link-bound word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFate {
    /// Deliver normally.
    Deliver,
    /// Lose the word.
    Drop,
    /// Deliver it twice.
    Duplicate,
}

/// Runtime state of an active fault plan: the decision RNG, the applied
/// log and the per-cell stick deadlines.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng,
    log: FaultLog,
    stuck_until: Vec<u64>,
}

impl FaultInjector {
    /// Creates the injector for `cells` cells.
    pub fn new(plan: FaultPlan, cells: usize) -> Self {
        let rng = Rng::seed_from_u64(plan.seed);
        Self {
            plan,
            rng,
            log: FaultLog::default(),
            stuck_until: vec![0; cells],
        }
    }

    /// The applied-fault log so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// The plan's per-lane fault mask, forwarded to the corruption sites.
    pub fn target_lane(&self) -> Option<usize> {
        self.plan.target_lane
    }

    /// Takes the applied-fault events out of the log without cloning.
    pub fn take_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.log.events)
    }

    fn budget_left(&self) -> bool {
        (self.log.len() as u64) < self.plan.max_faults
    }

    fn record(&mut self, cycle: u64, kind: FaultKind) {
        self.log.events.push(FaultEvent { cycle, kind });
    }

    /// Rolls the per-cycle faults: possibly schedules a stick and possibly
    /// requests a bank flip. Returns `Some((bank_pick, word_pick))` when a
    /// flip should be applied; the caller maps `word_pick` onto the bank's
    /// resident words (an empty bank absorbs the fault harmlessly).
    pub fn begin_cycle(&mut self, now: u64, banks: usize) -> Option<(usize, usize)> {
        if self.plan.stick > 0.0 && self.budget_left() && self.rng.gen_bool(self.plan.stick) {
            let cell = self.rng.gen_usize(self.stuck_until.len().max(1));
            if cell < self.stuck_until.len() && self.stuck_until[cell] <= now {
                let d = self.plan.stick_cycles.max(1);
                self.stuck_until[cell] = now + d;
                self.record(now, FaultKind::StickCell { cell, cycles: d });
            }
        }
        if self.plan.bank_flip > 0.0
            && banks > 0
            && self.budget_left()
            && self.rng.gen_bool(self.plan.bank_flip)
        {
            let bank = self.rng.gen_usize(banks);
            let word = self.rng.next_u64() as usize;
            return Some((bank, word));
        }
        None
    }

    /// Records an applied bank flip (the caller confirmed the bank had a
    /// resident word to corrupt).
    pub fn log_bank_flip(&mut self, now: u64, bank: usize) {
        self.record(now, FaultKind::BankFlip { bank });
    }

    /// True while `cell` is stuck at cycle `now`.
    pub fn is_stuck(&self, cell: usize, now: u64) -> bool {
        self.stuck_until.get(cell).is_some_and(|&u| u > now)
    }

    /// True when any cell is currently stuck (the deadlock detector treats
    /// stuck cycles as pending progress, not quiescence).
    pub fn any_stuck(&self, now: u64) -> bool {
        self.stuck_until.iter().any(|&u| u > now)
    }

    /// Decides whether the word cell `cell` emits this cycle is corrupted.
    pub fn on_emit(&mut self, now: u64, cell: usize) -> bool {
        if self.plan.emit_corrupt <= 0.0 || !self.budget_left() {
            return false;
        }
        let mut p = self.plan.emit_corrupt;
        if let Some((hot, w)) = self.plan.hot_cell {
            if hot == cell {
                p *= w;
            }
        }
        if self.rng.gen_bool(p) {
            self.record(now, FaultKind::CorruptEmit { cell });
            true
        } else {
            false
        }
    }

    /// Decides the fate of a word written to link `link` this cycle.
    pub fn on_link_write(&mut self, now: u64, link: usize) -> LinkFate {
        if (self.plan.link_drop <= 0.0 && self.plan.link_dup <= 0.0) || !self.budget_left() {
            return LinkFate::Deliver;
        }
        if self.plan.link_drop > 0.0 && self.rng.gen_bool(self.plan.link_drop) {
            self.record(now, FaultKind::DropWord { link });
            return LinkFate::Drop;
        }
        if self.plan.link_dup > 0.0 && self.rng.gen_bool(self.plan.link_dup) {
            self.record(now, FaultKind::DuplicateWord { link });
            return LinkFate::Duplicate;
        }
        LinkFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::{Bool, MinPlus};

    #[test]
    fn corrupt_value_always_changes_nontrivial_elements() {
        assert!(corrupt_value::<Bool>(&false));
        assert!(!corrupt_value::<Bool>(&true));
        assert_eq!(corrupt_value::<MinPlus>(&MinPlus::zero()), MinPlus::one());
        assert_eq!(corrupt_value::<MinPlus>(&5), MinPlus::zero());
    }

    #[test]
    fn inert_plans_inject_nothing() {
        let plan = FaultPlan::none(1);
        assert!(plan.is_inert());
        let mut inj = FaultInjector::new(plan, 4);
        for now in 0..1000 {
            assert_eq!(inj.begin_cycle(now, 3), None);
            assert!(!inj.on_emit(now, 0));
            assert_eq!(inj.on_link_write(now, 0), LinkFate::Deliver);
        }
        assert!(inj.log().is_empty());
        assert!(FaultPlan::transients(1, 0.1).with_max_faults(0).is_inert());
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let roll = |seed: u64| {
            let mut inj = FaultInjector::new(FaultPlan::transients(seed, 0.05), 4);
            for now in 0..500 {
                inj.begin_cycle(now, 2);
                inj.on_emit(now, (now % 4) as usize);
                inj.on_link_write(now, 0);
            }
            inj.log().clone()
        };
        assert_eq!(roll(42), roll(42));
        assert_ne!(roll(42), roll(43));
        assert!(!roll(42).is_empty());
    }

    #[test]
    fn reseeding_decorrelates_attempts() {
        let plan = FaultPlan::transients(7, 0.05);
        assert_ne!(plan.reseeded(0).seed, plan.reseeded(1).seed);
        assert_eq!(plan.reseeded(3), plan.reseeded(3));
    }

    #[test]
    fn max_faults_caps_the_log() {
        let plan = FaultPlan::transients(3, 0.5).with_max_faults(5);
        let mut inj = FaultInjector::new(plan, 2);
        for now in 0..10_000 {
            inj.begin_cycle(now, 1);
            inj.on_emit(now, 0);
            inj.on_link_write(now, 0);
        }
        assert!(inj.log().len() <= 5, "log {:?}", inj.log());
    }

    #[test]
    fn sticks_expire() {
        let mut inj = FaultInjector::new(FaultPlan::transients(9, 0.0), 2);
        inj.plan.stick = 1.0;
        inj.plan.stick_cycles = 2;
        inj.begin_cycle(10, 0);
        let stuck: Vec<usize> = (0..2).filter(|&c| inj.is_stuck(c, 10)).collect();
        assert_eq!(stuck.len(), 1);
        assert!(inj.any_stuck(10));
        assert!(!inj.is_stuck(stuck[0], 12));
    }

    #[test]
    fn hot_cell_attracts_corruption() {
        let plan = FaultPlan {
            emit_corrupt: 0.01,
            ..FaultPlan::none(5)
        }
        .with_hot_cell(1, 60.0);
        let mut inj = FaultInjector::new(plan, 2);
        let mut hot = 0;
        let mut cold = 0;
        for now in 0..2000 {
            if inj.on_emit(now, 0) {
                cold += 1;
            }
            if inj.on_emit(now, 1) {
                hot += 1;
            }
        }
        assert!(hot > 10 * cold.max(1), "hot {hot} cold {cold}");
    }

    #[test]
    fn fault_log_counts_value_corrupting() {
        let log = FaultLog {
            events: vec![
                FaultEvent {
                    cycle: 1,
                    kind: FaultKind::CorruptEmit { cell: 0 },
                },
                FaultEvent {
                    cycle: 2,
                    kind: FaultKind::StickCell { cell: 1, cycles: 3 },
                },
                FaultEvent {
                    cycle: 3,
                    kind: FaultKind::BankFlip { bank: 2 },
                },
                FaultEvent {
                    cycle: 4,
                    kind: FaultKind::DropWord { link: 0 },
                },
            ],
        };
        assert_eq!(log.len(), 4);
        assert_eq!(log.value_corrupting(), 2);
        assert_eq!(log.events[0].kind.site(), "cell 0");
        assert_eq!(log.events[3].kind.site(), "link 0");
        assert!(!log.events[3].kind.is_value_corrupting());
    }
}
