//! Task-span tracing and a text Gantt renderer.
//!
//! With tracing enabled, every task records the cycle range it occupied its
//! cell; [`render_gantt`] draws one row per cell with each span labelled by
//! its G-graph row `k` — which makes the pipelined G-set schedule of
//! Fig. 20 directly visible (see `examples/cell_occupancy.rs`).

use crate::cell::TaskLabel;

/// One executed task's occupancy of a cell.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TaskSpan {
    /// Cell index.
    pub cell: usize,
    /// First cycle the task consumed an element.
    pub start: u64,
    /// Cycle after the last element was consumed.
    pub end: u64,
    /// The G-node the task implemented.
    pub label: TaskLabel,
}

/// Renders task spans as a text Gantt chart, one row per cell.
///
/// Each busy cycle prints the task's `k mod 10` digit; idle cycles print
/// `·`. `max_width` truncates long timelines (a `…` marks truncation).
pub fn render_gantt(spans: &[TaskSpan], cells: usize, cycles: u64, max_width: usize) -> String {
    let width = (cycles as usize).min(max_width);
    let mut rows = vec![vec![b'.'; width]; cells];
    for s in spans {
        if s.cell >= cells {
            continue;
        }
        let digit = b'0' + (s.label.k % 10) as u8;
        for t in s.start..s.end.min(width as u64) {
            rows[s.cell][t as usize] = digit;
        }
    }
    let mut out = String::new();
    for (c, row) in rows.iter().enumerate() {
        out.push_str(&format!("cell {c:>2} |"));
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        if (cycles as usize) > max_width {
            out.push('…');
        }
        out.push('\n');
    }
    out
}

/// Summarizes spans into per-cell (busy, span-count) pairs.
pub fn occupancy_summary(spans: &[TaskSpan], cells: usize) -> Vec<(u64, usize)> {
    let mut acc = vec![(0u64, 0usize); cells];
    for s in spans {
        if let Some(slot) = acc.get_mut(s.cell) {
            slot.0 += s.end - s.start;
            slot.1 += 1;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cell: usize, start: u64, end: u64, k: u32) -> TaskSpan {
        TaskSpan {
            cell,
            start,
            end,
            label: TaskLabel { k, h: 0 },
        }
    }

    #[test]
    fn gantt_draws_digits_and_idle_dots() {
        let spans = vec![span(0, 0, 3, 1), span(1, 2, 4, 12)];
        let g = render_gantt(&spans, 2, 6, 80);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines[0], "cell  0 |111...");
        assert_eq!(lines[1], "cell  1 |..22..");
    }

    #[test]
    fn gantt_truncates_to_width() {
        let spans = vec![span(0, 0, 100, 3)];
        let g = render_gantt(&spans, 1, 100, 10);
        assert!(g.contains('…'));
        assert_eq!(
            g.lines().next().unwrap().len(),
            "cell  0 |".len() + 10 + "…".len()
        );
    }

    #[test]
    fn summary_accumulates() {
        let spans = vec![span(0, 0, 3, 0), span(0, 5, 9, 1), span(1, 0, 1, 0)];
        let s = occupancy_summary(&spans, 2);
        assert_eq!(s[0], (7, 2));
        assert_eq!(s[1], (1, 1));
    }
}
