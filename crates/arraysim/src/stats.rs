//! Measured counters of a simulation run and the paper's derived measures.

/// Counters collected by [`crate::ArraySim::run`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Number of cells.
    pub cells: usize,
    /// Per-cell cycles in which the cell consumed/produced words.
    pub busy: Vec<u64>,
    /// Per-cell cycles in which the cell had a task but could not fire.
    pub stalls: Vec<u64>,
    /// Useful primitive operations executed (fuse updates, excluding
    /// pass-throughs and delays) — the `N` of the utilization formula.
    pub useful_ops: u64,
    /// Words injected by the host.
    pub host_words: u64,
    /// Cycle of the first host injection.
    pub host_first: Option<u64>,
    /// Cycle of the last host injection.
    pub host_last: Option<u64>,
    /// Peak words resident in the host R-block memories.
    pub host_peak_resident: usize,
    /// Total words written to external banks.
    pub bank_writes: u64,
    /// Total words read from external banks.
    pub bank_reads: u64,
    /// Largest single-cycle write burst into any one bank.
    pub max_bank_writes_per_cycle: u64,
    /// Peak words resident across all banks (external-memory footprint).
    pub peak_bank_resident: usize,
    /// Words transported over neighbor links.
    pub link_words: u64,
    /// Words delivered to output collectors.
    pub output_words: u64,
    /// Number of memory banks attached to the array (the paper's
    /// "connections to external memories": `m+1` linear, `2√m` grid).
    pub memory_connections: usize,
    /// Task spans (populated only when tracing was enabled on the array).
    pub spans: Vec<crate::trace::TaskSpan>,
}

impl RunStats {
    /// Cell-occupancy utilization: fraction of cell-cycles spent streaming
    /// (includes pass-through cycles — an upper bound on useful utilization).
    pub fn occupancy(&self) -> f64 {
        if self.cycles == 0 || self.cells == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy.iter().sum();
        busy as f64 / (self.cycles as f64 * self.cells as f64)
    }

    /// The paper's utilization `U = N / (m / T)` with `N` the useful
    /// operation count and `m/T` the total cell-cycles (§4.1).
    pub fn useful_utilization(&self) -> f64 {
        if self.cycles == 0 || self.cells == 0 {
            return 0.0;
        }
        self.useful_ops as f64 / (self.cycles as f64 * self.cells as f64)
    }

    /// Measured host I/O bandwidth in words/cycle — the paper's `D_I/O`.
    pub fn io_bandwidth(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.host_words as f64 / self.cycles as f64
    }

    /// Measured throughput for `problems` chained instances: problems per
    /// cycle (`T` of §4.1).
    pub fn throughput(&self, problems: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        problems as f64 / self.cycles as f64
    }

    /// Total stall cycles across cells.
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_measures() {
        let s = RunStats {
            cycles: 100,
            cells: 4,
            busy: vec![100, 100, 50, 50],
            stalls: vec![0, 0, 10, 10],
            useful_ops: 200,
            host_words: 25,
            ..Default::default()
        };
        assert!((s.occupancy() - 0.75).abs() < 1e-12);
        assert!((s.useful_utilization() - 0.5).abs() < 1e-12);
        assert!((s.io_bandwidth() - 0.25).abs() < 1e-12);
        assert!((s.throughput(2) - 0.02).abs() < 1e-12);
        assert_eq!(s.total_stalls(), 20);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let s = RunStats::default();
        assert_eq!(s.occupancy(), 0.0);
        assert_eq!(s.io_bandwidth(), 0.0);
        assert_eq!(s.throughput(1), 0.0);
    }
}
