//! Measured counters of a simulation run and the paper's derived measures.

/// Number of buckets in the per-cell busy-fraction histogram.
pub const BUSY_HISTOGRAM_BUCKETS: usize = 10;

/// Cycle breakdown of a run into load / compute / drain phases.
///
/// The boundaries are the first and last cycle in which any cell fired:
/// before that the array is filling from the host and banks, after it the
/// collectors are draining in-flight words.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Cycles before the first cell firing (array fill).
    pub load_cycles: u64,
    /// Cycles from the first through the last cell firing, inclusive.
    pub compute_cycles: u64,
    /// Cycles after the last cell firing (pipeline drain).
    pub drain_cycles: u64,
}

impl PhaseStats {
    /// Total cycles across the three phases.
    pub fn total(&self) -> u64 {
        self.load_cycles + self.compute_cycles + self.drain_cycles
    }

    /// Fraction of the run spent in the compute phase (0 when empty).
    pub fn compute_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        self.compute_cycles as f64 / t as f64
    }

    fn merge(&mut self, other: &PhaseStats) {
        self.load_cycles += other.load_cycles;
        self.compute_cycles += other.compute_cycles;
        self.drain_cycles += other.drain_cycles;
    }
}

/// Counters collected by [`crate::ArraySim::run`].
///
/// Equality ignores [`RunStats::wall_nanos`]: two runs of the same
/// simulation are bit-identical in every *measured* counter, while host
/// wall time is inherently noisy.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Number of cells.
    pub cells: usize,
    /// Per-cell cycles in which the cell consumed/produced words.
    pub busy: Vec<u64>,
    /// Per-cell cycles in which the cell had a task but could not fire.
    pub stalls: Vec<u64>,
    /// Useful primitive operations executed (fuse updates, excluding
    /// pass-throughs and delays) — the `N` of the utilization formula.
    pub useful_ops: u64,
    /// Words injected by the host.
    pub host_words: u64,
    /// Cycle of the first host injection.
    pub host_first: Option<u64>,
    /// Cycle of the last host injection.
    pub host_last: Option<u64>,
    /// Peak words resident in the host R-block memories.
    pub host_peak_resident: usize,
    /// Total words written to external banks.
    pub bank_writes: u64,
    /// Total words read from external banks.
    pub bank_reads: u64,
    /// Largest single-cycle write burst into any one bank.
    pub max_bank_writes_per_cycle: u64,
    /// Peak words resident across all banks (external-memory footprint).
    pub peak_bank_resident: usize,
    /// Per-bank high-water marks: the largest number of words each bank
    /// held at once, indexed by bank. This is the *local-storage* measure
    /// of a mapping — for the coalescing (LSGP) engine, banks `0..m` are
    /// the cells' private column stores, so `bank_peak_resident[c]` is
    /// cell `c`'s measured `Θ(n²/m)` words of local memory.
    pub bank_peak_resident: Vec<usize>,
    /// Words transported over neighbor links.
    pub link_words: u64,
    /// Words delivered to output collectors.
    pub output_words: u64,
    /// Number of memory banks attached to the array (the paper's
    /// "connections to external memories": `m+1` linear, `2√m` grid).
    pub memory_connections: usize,
    /// Load / compute / drain cycle breakdown.
    pub phases: PhaseStats,
    /// Histogram of per-cell busy fractions: bucket `b` counts cells with
    /// `busy/cycles` in `[b/10, (b+1)/10)` (the last bucket is closed).
    pub busy_histogram: [u64; BUSY_HISTOGRAM_BUCKETS],
    /// Host wall-clock time of the run in nanoseconds. Excluded from
    /// equality; merged stats carry the sum of per-run times unless the
    /// caller overwrites it with an end-to-end measurement.
    pub wall_nanos: u64,
    /// Task spans (populated only when tracing was enabled on the array).
    pub spans: Vec<crate::trace::TaskSpan>,
    /// Aggregated fault accounting (all-zero unless a fault plan was set
    /// or a recovery wrapper filled it in).
    pub fault: crate::inject::FaultReport,
    /// Every fault the injector applied during this run, in cycle order
    /// (empty without a fault plan). Recovery layers use the sites for
    /// blame attribution; merged stats concatenate in merge order.
    pub fault_events: Vec<crate::inject::FaultEvent>,
}

impl PartialEq for RunStats {
    fn eq(&self, other: &Self) -> bool {
        // Everything except wall_nanos.
        self.cycles == other.cycles
            && self.cells == other.cells
            && self.busy == other.busy
            && self.stalls == other.stalls
            && self.useful_ops == other.useful_ops
            && self.host_words == other.host_words
            && self.host_first == other.host_first
            && self.host_last == other.host_last
            && self.host_peak_resident == other.host_peak_resident
            && self.bank_writes == other.bank_writes
            && self.bank_reads == other.bank_reads
            && self.max_bank_writes_per_cycle == other.max_bank_writes_per_cycle
            && self.peak_bank_resident == other.peak_bank_resident
            && self.bank_peak_resident == other.bank_peak_resident
            && self.link_words == other.link_words
            && self.output_words == other.output_words
            && self.memory_connections == other.memory_connections
            && self.phases == other.phases
            && self.busy_histogram == other.busy_histogram
            && self.spans == other.spans
            && self.fault == other.fault
            && self.fault_events == other.fault_events
    }
}

impl RunStats {
    /// Cell-occupancy utilization: fraction of cell-cycles spent streaming
    /// (includes pass-through cycles — an upper bound on useful utilization).
    pub fn occupancy(&self) -> f64 {
        if self.cycles == 0 || self.cells == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy.iter().sum();
        busy as f64 / (self.cycles as f64 * self.cells as f64)
    }

    /// The paper's utilization `U = N / (m / T)` with `N` the useful
    /// operation count and `m/T` the total cell-cycles (§4.1).
    pub fn useful_utilization(&self) -> f64 {
        if self.cycles == 0 || self.cells == 0 {
            return 0.0;
        }
        self.useful_ops as f64 / (self.cycles as f64 * self.cells as f64)
    }

    /// Measured host I/O bandwidth in words/cycle — the paper's `D_I/O`.
    pub fn io_bandwidth(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.host_words as f64 / self.cycles as f64
    }

    /// Measured throughput for `problems` chained instances: problems per
    /// cycle (`T` of §4.1).
    pub fn throughput(&self, problems: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        problems as f64 / self.cycles as f64
    }

    /// Total stall cycles across cells.
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Folds another run's counters into this one.
    ///
    /// The semantics are "aggregate of independent runs": additive
    /// counters (cycles, words, ops, phases, histograms, wall time) sum,
    /// per-cell vectors add element-wise (shorter side zero-extended),
    /// peaks take the maximum, and `host_first`/`host_last` keep the
    /// min/max of the per-run cycle coordinates. The operation is
    /// deterministic given a merge order; fold in instance order to make
    /// batch stats independent of worker count.
    pub fn merge(&mut self, other: &RunStats) {
        self.cycles += other.cycles;
        self.cells = self.cells.max(other.cells);
        if self.busy.len() < other.busy.len() {
            self.busy.resize(other.busy.len(), 0);
        }
        for (d, s) in self.busy.iter_mut().zip(other.busy.iter()) {
            *d += *s;
        }
        if self.stalls.len() < other.stalls.len() {
            self.stalls.resize(other.stalls.len(), 0);
        }
        for (d, s) in self.stalls.iter_mut().zip(other.stalls.iter()) {
            *d += *s;
        }
        self.useful_ops += other.useful_ops;
        self.host_words += other.host_words;
        self.host_first = match (self.host_first, other.host_first) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.host_last = match (self.host_last, other.host_last) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.host_peak_resident = self.host_peak_resident.max(other.host_peak_resident);
        self.bank_writes += other.bank_writes;
        self.bank_reads += other.bank_reads;
        self.max_bank_writes_per_cycle = self
            .max_bank_writes_per_cycle
            .max(other.max_bank_writes_per_cycle);
        self.peak_bank_resident = self.peak_bank_resident.max(other.peak_bank_resident);
        if self.bank_peak_resident.len() < other.bank_peak_resident.len() {
            self.bank_peak_resident
                .resize(other.bank_peak_resident.len(), 0);
        }
        for (d, s) in self
            .bank_peak_resident
            .iter_mut()
            .zip(other.bank_peak_resident.iter())
        {
            *d = (*d).max(*s);
        }
        self.link_words += other.link_words;
        self.output_words += other.output_words;
        self.memory_connections = self.memory_connections.max(other.memory_connections);
        self.phases.merge(&other.phases);
        for (d, s) in self
            .busy_histogram
            .iter_mut()
            .zip(other.busy_histogram.iter())
        {
            *d += *s;
        }
        self.wall_nanos += other.wall_nanos;
        self.spans.extend(other.spans.iter().copied());
        self.fault.merge(&other.fault);
        self.fault_events.extend(other.fault_events.iter().copied());
    }

    /// Expands a clean single run into the stats of `lanes` identical
    /// independent runs: exactly [`RunStats::merge`] folded over `lanes`
    /// copies of `self`, minus the wall-time sum (each lane shared the one
    /// simulated run, so wall time is kept as measured).
    ///
    /// This is how a lane-packed run reports per-instance accounting: every
    /// simulated event moved one word per lane, so additive counters scale
    /// by the lane count while geometry, peaks and phase *boundaries*
    /// (extrema under merge) are those of the single shared run.
    ///
    /// Fault accounting does **not** scale: an applied fault is one event
    /// of the one shared run, and under a lane-targeted plan it touched
    /// exactly one resident instance — multiplying the counters would
    /// invent faults that never happened. The fault log and report are
    /// carried through unchanged.
    pub fn scaled(&self, lanes: u64) -> RunStats {
        let mut out = self.clone();
        out.cycles *= lanes;
        for b in &mut out.busy {
            *b *= lanes;
        }
        for s in &mut out.stalls {
            *s *= lanes;
        }
        out.useful_ops *= lanes;
        out.host_words *= lanes;
        out.bank_writes *= lanes;
        out.bank_reads *= lanes;
        out.link_words *= lanes;
        out.output_words *= lanes;
        out.phases.load_cycles *= lanes;
        out.phases.compute_cycles *= lanes;
        out.phases.drain_cycles *= lanes;
        for h in &mut out.busy_histogram {
            *h *= lanes;
        }
        out.spans = self
            .spans
            .iter()
            .cycle()
            .take(self.spans.len() * lanes as usize)
            .copied()
            .collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_measures() {
        let s = RunStats {
            cycles: 100,
            cells: 4,
            busy: vec![100, 100, 50, 50],
            stalls: vec![0, 0, 10, 10],
            useful_ops: 200,
            host_words: 25,
            ..Default::default()
        };
        assert!((s.occupancy() - 0.75).abs() < 1e-12);
        assert!((s.useful_utilization() - 0.5).abs() < 1e-12);
        assert!((s.io_bandwidth() - 0.25).abs() < 1e-12);
        assert!((s.throughput(2) - 0.02).abs() < 1e-12);
        assert_eq!(s.total_stalls(), 20);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let s = RunStats::default();
        assert_eq!(s.occupancy(), 0.0);
        assert_eq!(s.io_bandwidth(), 0.0);
        assert_eq!(s.throughput(1), 0.0);
        assert_eq!(s.phases.compute_fraction(), 0.0);
    }

    #[test]
    fn equality_ignores_wall_time() {
        let mut a = RunStats {
            cycles: 10,
            wall_nanos: 100,
            ..Default::default()
        };
        let b = RunStats {
            cycles: 10,
            wall_nanos: 999_999,
            ..Default::default()
        };
        assert_eq!(a, b);
        a.cycles = 11;
        assert_ne!(a, b);
    }

    #[test]
    fn merge_is_order_deterministic_and_additive() {
        let a = RunStats {
            cycles: 10,
            cells: 2,
            busy: vec![5, 3],
            stalls: vec![1, 0],
            useful_ops: 7,
            host_words: 4,
            host_first: Some(2),
            host_last: Some(9),
            peak_bank_resident: 6,
            bank_peak_resident: vec![4, 2],
            phases: PhaseStats {
                load_cycles: 2,
                compute_cycles: 7,
                drain_cycles: 1,
            },
            wall_nanos: 50,
            ..Default::default()
        };
        let b = RunStats {
            cycles: 20,
            cells: 2,
            busy: vec![10, 10],
            stalls: vec![0, 2],
            useful_ops: 11,
            host_words: 6,
            host_first: Some(1),
            host_last: Some(5),
            peak_bank_resident: 4,
            bank_peak_resident: vec![1, 3, 5],
            phases: PhaseStats {
                load_cycles: 3,
                compute_cycles: 15,
                drain_cycles: 2,
            },
            wall_nanos: 70,
            ..Default::default()
        };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.cycles, 30);
        assert_eq!(m.busy, vec![15, 13]);
        assert_eq!(m.stalls, vec![1, 2]);
        assert_eq!(m.useful_ops, 18);
        assert_eq!(m.host_first, Some(1));
        assert_eq!(m.host_last, Some(9));
        assert_eq!(m.peak_bank_resident, 6);
        assert_eq!(
            m.bank_peak_resident,
            vec![4, 3, 5],
            "per-bank peaks take the element-wise max, zero-extended"
        );
        assert_eq!(m.phases.total(), 30);
        assert_eq!(m.wall_nanos, 120);
    }

    #[test]
    fn scaled_equals_lanewise_merge() {
        let s = RunStats {
            cycles: 38,
            cells: 4,
            busy: vec![20, 18, 15, 9],
            stalls: vec![1, 0, 3, 2],
            useful_ops: 72,
            host_words: 24,
            host_first: Some(0),
            host_last: Some(30),
            host_peak_resident: 9,
            bank_writes: 40,
            bank_reads: 40,
            max_bank_writes_per_cycle: 3,
            peak_bank_resident: 12,
            bank_peak_resident: vec![7, 5],
            link_words: 55,
            output_words: 16,
            memory_connections: 5,
            phases: PhaseStats {
                load_cycles: 2,
                compute_cycles: 33,
                drain_cycles: 3,
            },
            busy_histogram: [0, 1, 0, 0, 2, 0, 0, 1, 0, 0],
            wall_nanos: 1234,
            ..Default::default()
        };
        for lanes in [1u64, 2, 63, 64] {
            let mut merged = s.clone();
            for _ in 1..lanes {
                merged.merge(&s);
            }
            // Equality already ignores wall time; scaled keeps the single
            // shared run's measurement instead of merge's sum.
            assert_eq!(s.scaled(lanes), merged, "lanes={lanes}");
            assert_eq!(s.scaled(lanes).wall_nanos, s.wall_nanos);
        }
    }

    #[test]
    fn phase_totals_and_fractions() {
        let p = PhaseStats {
            load_cycles: 5,
            compute_cycles: 10,
            drain_cycles: 5,
        };
        assert_eq!(p.total(), 20);
        assert!((p.compute_fraction() - 0.5).abs() < 1e-12);
    }
}
