//! The simulation driver.
//!
//! The whole data plane — cell payloads, link words, bank slots, host
//! streams, output collectors — is generic over the semiring element
//! `S::Elem` and never branches on its value, so the element's *lane
//! width* is the semiring's choice: a scalar run is the 1-lane
//! instantiation, while `systolic_semiring::BoolLanes` runs 64 bit-sliced
//! Boolean instances through one simulation with identical cycle-level
//! behavior. The only value-dependent machinery is fault injection
//! ([`crate::inject`]), which is why lane-packed engines fall back to the
//! scalar path when a fault plan is armed.

use crate::cell::{Cell, Fabric, Step, Task};
use crate::host::Host;
use crate::inject::{
    corrupt_value_in_lane, FaultEvent, FaultInjector, FaultLog, FaultPlan, FaultReport,
};
use crate::stats::{PhaseStats, RunStats, BUSY_HISTOGRAM_BUCKETS};
use crate::stream::{Bank, Link};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use systolic_semiring::Semiring;

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No cell made progress for longer than any in-flight latency while
    /// tasks remained — the schedule violates a dependence.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Tasks still pending per cell.
        pending: Vec<usize>,
        /// One line per blocked cell naming its stalled task and the
        /// streams it is waiting on.
        blocked: Vec<String>,
    },
    /// The run exceeded the configured cycle budget.
    Timeout {
        /// The configured budget.
        max_cycles: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock {
                cycle,
                pending,
                blocked,
            } => {
                write!(f, "deadlock at cycle {cycle}; pending tasks {pending:?}")?;
                for line in blocked {
                    write!(f, "\n  {line}")?;
                }
                Ok(())
            }
            SimError::Timeout { max_cycles } => write!(f, "exceeded {max_cycles} cycles"),
        }
    }
}

impl std::error::Error for SimError {}

/// Not scheduled / not asleep sentinel for the ready-tracking loop.
const IDLE: u64 = u64::MAX;

/// A configured systolic array: cells, links, banks, host and collectors.
pub struct ArraySim<S: Semiring> {
    cells: Vec<Cell<S>>,
    links: Vec<Link<S::Elem>>,
    banks: Vec<Bank<S::Elem>>,
    host: Host<S>,
    outputs: Vec<Vec<S::Elem>>,
    /// Number of memory banks that count as array↔memory connections.
    memory_connections: usize,
    max_cycles: u64,
    /// Peak external-memory footprint observed during the run.
    peak_bank_resident: usize,
    /// Transient-fault injector (absent on clean runs).
    injector: Option<FaultInjector>,
}

impl<S: Semiring> ArraySim<S> {
    /// Creates an array with `cells` cells and a host chain of equal length.
    pub fn new(cells: usize) -> Self {
        Self {
            cells: (0..cells).map(Cell::new).collect(),
            links: Vec::new(),
            banks: Vec::new(),
            host: Host::new(cells, 0),
            outputs: Vec::new(),
            memory_connections: 0,
            max_cycles: u64::MAX,
            peak_bank_resident: 0,
            injector: None,
        }
    }

    /// Arms a transient-fault plan for the run. The plan's decision stream
    /// is seeded and consulted at schedule-fixed points, so the same plan
    /// over the same programs injects the identical fault sequence.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan, self.cells.len()));
    }

    /// The log of faults applied so far (`None` without a fault plan).
    /// Valid after [`ArraySim::run`] returns — on *both* success and error,
    /// so failed runs can still be blamed on their injected faults.
    pub fn fault_log(&self) -> Option<&FaultLog> {
        self.injector.as_ref().map(FaultInjector::log)
    }

    /// Takes the applied-fault events out of the injector without cloning
    /// (empty without a fault plan). Call after collecting stats.
    pub fn take_fault_events(&mut self) -> Vec<FaultEvent> {
        self.injector
            .as_mut()
            .map_or_else(Vec::new, FaultInjector::take_events)
    }

    /// Sets the cycle budget (default: unlimited).
    pub fn set_max_cycles(&mut self, max: u64) {
        self.max_cycles = max;
    }

    /// Declares how many bank connections the structure exposes (reported in
    /// stats; the paper compares `m+1` vs `2√m`).
    pub fn set_memory_connections(&mut self, c: usize) {
        self.memory_connections = c;
    }

    /// Adds a neighbor link, returning its index.
    pub fn add_link(&mut self) -> usize {
        self.links.push(Link::new());
        self.links.len() - 1
    }

    /// Adds a link with a multi-cycle latency (a bypass route around faulty
    /// cells, §5), returning its index.
    pub fn add_link_with_delay(&mut self, delay: u64) -> usize {
        self.links.push(Link::with_delay(delay));
        self.links.len() - 1
    }

    /// Adds an external memory bank, returning its index.
    pub fn add_bank(&mut self) -> usize {
        self.banks.push(Bank::new());
        self.banks.len() - 1
    }

    /// Adds a bank with a pre-sized slot table (one slot per interned
    /// stream key, visited in key order by fault injection).
    pub fn add_bank_with_slots(&mut self, sort_keys: Vec<u64>) -> usize {
        self.banks.push(Bank::with_slots(sort_keys));
        self.banks.len() - 1
    }

    /// Adds `count` output collector streams, returning the first index.
    pub fn add_outputs(&mut self, count: usize) -> usize {
        let first = self.outputs.len();
        self.outputs.extend((0..count).map(|_| Vec::new()));
        first
    }

    /// Host feeder access (to enqueue input streams).
    pub fn host_mut(&mut self) -> &mut Host<S> {
        &mut self.host
    }

    /// Bank access (to preload streams).
    pub fn bank_mut(&mut self, i: usize) -> &mut Bank<S::Elem> {
        &mut self.banks[i]
    }

    /// Appends a task to cell `cell`'s program.
    pub fn push_task(&mut self, cell: usize, t: Task) {
        self.cells[cell].push_task(t);
    }

    /// Installs a compiled, shared task program on cell `cell`.
    pub fn set_cell_program(&mut self, cell: usize, tasks: Arc<[Task]>) {
        self.cells[cell].set_program(tasks);
    }

    /// Clears all dynamic state — words in flight, stream contents, output
    /// collectors, counters, the armed fault plan — while keeping the array
    /// structure, cell programs and every allocation, so a compiled
    /// schedule re-runs without rebuilding anything.
    pub fn reset(&mut self) {
        for c in &mut self.cells {
            c.reset();
        }
        for l in &mut self.links {
            l.reset();
        }
        for b in &mut self.banks {
            b.reset();
        }
        self.host.reset();
        for o in &mut self.outputs {
            o.clear();
        }
        self.peak_bank_resident = 0;
        self.injector = None;
    }

    /// Enables task-span tracing (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        for c in &mut self.cells {
            c.spans.get_or_insert_with(Vec::new);
        }
    }

    /// All recorded task spans (empty unless tracing was enabled).
    pub fn spans(&self) -> Vec<crate::trace::TaskSpan> {
        self.cells
            .iter()
            .filter_map(|c| c.spans.as_ref())
            .flatten()
            .copied()
            .collect()
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Collected output streams (valid after [`ArraySim::run`]).
    pub fn outputs(&self) -> &[Vec<S::Elem>] {
        &self.outputs
    }

    /// Runs the simulation to completion.
    ///
    /// Clean runs use the ready-tracking loop (blocked cells are parked on
    /// the stream they wait for and skipped until it changes); runs with an
    /// armed fault plan use the dense reference loop, whose poll-every-cell
    /// order the fault plan's decision stream is keyed to.
    ///
    /// # Errors
    /// [`SimError::Deadlock`] when dataflow can no longer progress,
    /// [`SimError::Timeout`] when the cycle budget is exceeded.
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        if self.injector.is_some() {
            self.run_dense()
        } else {
            self.run_ready()
        }
    }

    /// The ready-tracking cycle loop. Semantically identical to
    /// [`ArraySim::run_dense`] (verified by property test): every readiness
    /// transition schedules a wake-up, parked cells accrue their skipped
    /// stall cycles lazily on wake, and in-cycle wake order reproduces the
    /// dense loop's ascending-cell-index polling.
    fn run_ready(&mut self) -> Result<RunStats, SimError> {
        let started = std::time::Instant::now();
        let mut now: u64 = 0;
        let mut quiet_cycles: u64 = 0;
        let mut first_fire: Option<u64> = None;
        let mut last_fire: Option<u64> = None;
        let max_link_delay = self.links.iter().map(Link::delay).max().unwrap_or(1);
        let max_task_dur = self
            .cells
            .iter()
            .map(Cell::max_task_duration)
            .max()
            .unwrap_or(1);
        let grace = self
            .host
            .max_latency()
            .max(max_link_delay)
            .max(max_task_dur)
            + 2;

        // Scheduling state: `sched[c]` is the cycle cell `c` will next be
        // stepped (IDLE = parked or retired); `sleep_from[c]` is the cycle
        // it parked, for lazy stall accounting. Heap entries not matching
        // `sched` are stale and skipped.
        let ncells = self.cells.len();
        let mut sched = vec![IDLE; ncells];
        let mut sleep_from = vec![IDLE; ncells];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::with_capacity(ncells + 4);
        let mut remaining = 0usize;
        for c in &self.cells {
            if c.pending() > 0 {
                remaining += 1;
                sched[c.id] = 0;
                heap.push(Reverse((0, c.id as u32)));
            }
        }
        let mut wakes: Vec<(u64, u32)> = Vec::new();
        let mut bank_resident: isize =
            self.banks.iter().map(Bank::resident).sum::<usize>() as isize;
        let mut peak_resident = self.peak_bank_resident as isize;

        macro_rules! wake {
            ($cell:expr, $at:expr) => {{
                let (w, at) = ($cell as usize, $at);
                // Retired cells and cells already due at or before `at`
                // need no entry; a spurious earlier wake is harmless.
                if self.cells[w].pending() > 0 && sched[w] > at {
                    sched[w] = at;
                    heap.push(Reverse((at, w as u32)));
                }
            }};
        }

        while remaining > 0 {
            if now >= self.max_cycles {
                return Err(SimError::Timeout {
                    max_cycles: self.max_cycles,
                });
            }

            let injected = match self.host.tick(now) {
                Some(inj) => {
                    // The word's arrival cycle is known at injection time:
                    // wake its destination cell exactly then.
                    wake!(inj.cell, inj.arrival);
                    true
                }
                None => false,
            };

            let mut cell_fired = false;
            let bank_delta: isize;
            {
                let mut fab = Fabric::<S> {
                    links: &mut self.links,
                    banks: &mut self.banks,
                    host: &mut self.host,
                    outputs: &mut self.outputs,
                    now,
                    inject: None,
                    watch: None,
                    wakes: &mut wakes,
                    bank_delta: 0,
                };
                while let Some(&Reverse((t, c))) = heap.peek() {
                    if t > now {
                        break;
                    }
                    heap.pop();
                    let ci = c as usize;
                    if sched[ci] != t {
                        continue; // stale entry
                    }
                    // Lazily charge the stall cycles this cell slept
                    // through: +1 was counted when it parked, the step
                    // below re-counts the current cycle if it stalls again.
                    if sleep_from[ci] != IDLE {
                        self.cells[ci].stall_cycles += now - sleep_from[ci] - 1;
                        sleep_from[ci] = IDLE;
                    }
                    fab.watch = Some(c);
                    match self.cells[ci].step(&mut fab) {
                        Step::Worked => {
                            cell_fired = true;
                            if self.cells[ci].pending() == 0 {
                                remaining -= 1;
                                sched[ci] = IDLE;
                            } else {
                                // A multi-cycle element keeps the cell busy
                                // until `busy_until`; stepping earlier would
                                // only observe `Step::Busy`.
                                let next = (now + 1).max(self.cells[ci].busy_until);
                                sched[ci] = next;
                                heap.push(Reverse((next, c)));
                            }
                        }
                        Step::Busy => {
                            // Spurious wake (e.g. a stream event) while the
                            // ALU is occupied: try again when it frees.
                            let next = self.cells[ci].busy_until;
                            sched[ci] = next;
                            heap.push(Reverse((next, c)));
                        }
                        Step::Stalled => {
                            sched[ci] = IDLE;
                            sleep_from[ci] = now;
                        }
                        Step::Done => {
                            remaining -= 1;
                            sched[ci] = IDLE;
                        }
                    }
                    while let Some((at, w)) = fab.wakes.pop() {
                        wake!(w, at);
                    }
                }
                bank_delta = fab.bank_delta;
                // (fab drops here; `wakes` is empty between cycles.)
            }

            if cell_fired {
                first_fire.get_or_insert(now);
                last_fire = Some(now);
            }
            for b in &mut self.banks {
                b.tick();
            }
            if injected || cell_fired {
                quiet_cycles = 0;
            } else {
                quiet_cycles += 1;
                if quiet_cycles > grace {
                    return Err(SimError::Deadlock {
                        cycle: now,
                        pending: self.cells.iter().map(Cell::pending).collect(),
                        blocked: self
                            .cells
                            .iter()
                            .filter_map(Cell::describe_blocked)
                            .collect(),
                    });
                }
            }
            now += 1;
            bank_resident += bank_delta;
            peak_resident = peak_resident.max(bank_resident);
        }
        self.peak_bank_resident = peak_resident as usize;

        let phases = match (first_fire, last_fire) {
            (Some(f), Some(l)) => PhaseStats {
                load_cycles: f,
                compute_cycles: l - f + 1,
                drain_cycles: now - l - 1,
            },
            _ => PhaseStats {
                load_cycles: now,
                compute_cycles: 0,
                drain_cycles: 0,
            },
        };
        Ok(self.collect_stats(now, phases, started.elapsed().as_nanos() as u64))
    }

    /// The dense reference loop: polls every cell, every cycle. Kept both
    /// as the executable specification the ready-tracking loop is verified
    /// against and as the execution path for fault-injected runs, whose
    /// per-cycle decision stream is keyed to this poll order.
    ///
    /// # Errors
    /// Same contract as [`ArraySim::run`].
    pub fn run_dense(&mut self) -> Result<RunStats, SimError> {
        let started = std::time::Instant::now();
        let mut now: u64 = 0;
        let mut quiet_cycles: u64 = 0;
        let mut first_fire: Option<u64> = None;
        let mut last_fire: Option<u64> = None;
        let max_link_delay = self.links.iter().map(Link::delay).max().unwrap_or(1);
        let max_task_dur = self
            .cells
            .iter()
            .map(Cell::max_task_duration)
            .max()
            .unwrap_or(1);
        let grace = self
            .host
            .max_latency()
            .max(max_link_delay)
            .max(max_task_dur)
            + 2;
        let mut wakes: Vec<(u64, u32)> = Vec::new();

        loop {
            let work_left = self.cells.iter().any(|c| c.pending() > 0);
            if !work_left {
                break;
            }
            if now >= self.max_cycles {
                return Err(SimError::Timeout {
                    max_cycles: self.max_cycles,
                });
            }

            // Per-cycle fault rolls: possibly stick a cell, possibly flip a
            // word resident in a bank (before any cell reads this cycle).
            if let Some(inj) = &mut self.injector {
                if let Some((bank, word)) = inj.begin_cycle(now, self.banks.len()) {
                    let lane = inj.target_lane();
                    let flipped = self.banks[bank].corrupt_resident(word, |e| {
                        *e = corrupt_value_in_lane::<S>(e, lane);
                    });
                    if flipped {
                        inj.log_bank_flip(now, bank);
                    }
                }
            }

            let injected = self.host.tick(now).is_some();
            let mut any_worked = injected;
            let mut cell_fired = false;
            {
                let mut fab = Fabric::<S> {
                    links: &mut self.links,
                    banks: &mut self.banks,
                    host: &mut self.host,
                    outputs: &mut self.outputs,
                    now,
                    inject: self.injector.as_mut(),
                    watch: None,
                    wakes: &mut wakes,
                    bank_delta: 0,
                };
                for cell in &mut self.cells {
                    // A stuck cell's sequencer makes no progress: it neither
                    // fires nor flushes, and the lost cycle counts as a stall.
                    if fab
                        .inject
                        .as_deref()
                        .is_some_and(|i| i.is_stuck(cell.id, now))
                    {
                        if cell.pending() > 0 {
                            cell.stall_cycles += 1;
                        }
                        continue;
                    }
                    if cell.step(&mut fab) == Step::Worked {
                        any_worked = true;
                        cell_fired = true;
                    }
                }
            }
            if cell_fired {
                first_fire.get_or_insert(now);
                last_fire = Some(now);
            }
            for b in &mut self.banks {
                b.tick();
            }
            // A stuck cell is pending progress, not quiescence: keep the
            // deadlock grace period from firing while a stick longer than
            // `grace` plays out.
            let stick_pending = self.injector.as_ref().is_some_and(|i| i.any_stuck(now));
            if any_worked || stick_pending {
                quiet_cycles = 0;
            } else {
                quiet_cycles += 1;
                if quiet_cycles > grace {
                    return Err(SimError::Deadlock {
                        cycle: now,
                        pending: self.cells.iter().map(Cell::pending).collect(),
                        blocked: self
                            .cells
                            .iter()
                            .filter_map(Cell::describe_blocked)
                            .collect(),
                    });
                }
            }
            now += 1;
            self.peak_bank_resident = self
                .peak_bank_resident
                .max(self.banks.iter().map(Bank::resident).sum());
        }

        let phases = match (first_fire, last_fire) {
            (Some(f), Some(l)) => PhaseStats {
                load_cycles: f,
                compute_cycles: l - f + 1,
                drain_cycles: now - l - 1,
            },
            _ => PhaseStats {
                load_cycles: now,
                compute_cycles: 0,
                drain_cycles: 0,
            },
        };
        Ok(self.collect_stats(now, phases, started.elapsed().as_nanos() as u64))
    }

    fn collect_stats(&self, cycles: u64, phases: PhaseStats, wall_nanos: u64) -> RunStats {
        let busy: Vec<u64> = self.cells.iter().map(|c| c.busy_cycles).collect();
        let mut busy_histogram = [0u64; BUSY_HISTOGRAM_BUCKETS];
        for &b in &busy {
            let frac = if cycles == 0 {
                0.0
            } else {
                b as f64 / cycles as f64
            };
            let bucket =
                ((frac * BUSY_HISTOGRAM_BUCKETS as f64) as usize).min(BUSY_HISTOGRAM_BUCKETS - 1);
            busy_histogram[bucket] += 1;
        }
        RunStats {
            cycles,
            cells: self.cells.len(),
            busy,
            stalls: self.cells.iter().map(|c| c.stall_cycles).collect(),
            useful_ops: self.cells.iter().map(|c| c.useful_ops).sum(),
            host_words: self.host.injected,
            host_first: self.host.first_injection,
            host_last: self.host.last_injection,
            host_peak_resident: self.host.peak_resident,
            bank_writes: self.banks.iter().map(|b| b.writes).sum(),
            bank_reads: self.banks.iter().map(|b| b.reads).sum(),
            max_bank_writes_per_cycle: self
                .banks
                .iter()
                .map(|b| b.max_writes_per_cycle)
                .max()
                .unwrap_or(0),
            peak_bank_resident: self.peak_bank_resident,
            bank_peak_resident: self.banks.iter().map(Bank::peak_resident).collect(),
            link_words: self.links.iter().map(|l| l.words).sum(),
            output_words: self.outputs.iter().map(Vec::len).sum::<usize>() as u64,
            memory_connections: self.memory_connections,
            phases,
            busy_histogram,
            wall_nanos,
            spans: self.spans(),
            fault: FaultReport {
                injected: self.injector.as_ref().map_or(0, |i| i.log().len() as u64),
                ..FaultReport::default()
            },
            fault_events: self
                .injector
                .as_ref()
                .map_or_else(Vec::new, |i| i.log().events.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{TaskKind, TaskLabel};
    use crate::stream::{StreamDst, StreamSrc};
    use systolic_semiring::{Bool, MinPlus};

    fn task(kind: TaskKind, len: usize) -> Task {
        Task {
            kind,
            len,
            col_in: None,
            pivot_in: None,
            col_out: None,
            pivot_out: None,
            head_out: None,
            duration: 1,
            useful_ops: 0,
            label: TaskLabel::default(),
        }
    }

    #[test]
    fn delay_tail_rotates_a_bank_stream() {
        let mut sim = ArraySim::<MinPlus>::new(1);
        let b = sim.add_bank();
        let o = sim.add_outputs(1);
        for w in [10u64, 20, 30, 40] {
            sim.bank_mut(b).preload(1, w);
        }
        let mut t = task(TaskKind::DelayTail, 4);
        t.pivot_in = Some(StreamSrc::Bank { bank: b, slot: 1 });
        t.col_out = Some(StreamDst::Output { stream: o });
        sim.push_task(0, t);
        let stats = sim.run().unwrap();
        assert_eq!(sim.outputs()[0], vec![20, 30, 40, 10]);
        // 4 consume cycles plus the deferred head-emission cycle.
        assert_eq!(stats.busy[0], 5);
        assert_eq!(stats.output_words, 4);
    }

    #[test]
    fn pivot_head_feeds_fuse_over_a_link() {
        // Column streams for a 3-element fuse: pivot head reads col k from a
        // bank and streams it over a link into a fuse cell processing col j.
        let mut sim = ArraySim::<Bool>::new(2);
        let b = sim.add_bank();
        let l = sim.add_link();
        let o = sim.add_outputs(1);
        // pivot column (x[0][k], x[1][k], x[2][k]) = (1, 1, 0)
        for w in [true, true, false] {
            sim.bank_mut(b).preload(0, w);
        }
        // processed column (x[0][j], x[1][j], x[2][j]) = (1, 0, 0); head q=1
        for w in [true, false, false] {
            sim.bank_mut(b).preload(1, w);
        }
        let mut head = task(TaskKind::PivotHead, 3);
        head.col_in = Some(StreamSrc::Bank { bank: b, slot: 0 });
        head.pivot_out = Some(StreamDst::Link(l));
        sim.push_task(0, head);
        let mut fuse = task(TaskKind::Fuse, 3);
        fuse.col_in = Some(StreamSrc::Bank { bank: b, slot: 1 });
        fuse.pivot_in = Some(StreamSrc::Link(l));
        fuse.col_out = Some(StreamDst::Output { stream: o });
        fuse.useful_ops = 1;
        sim.push_task(1, fuse);
        let stats = sim.run().unwrap();
        // out[r-1] = col[r] OR (piv[r] AND q): r=1: 0 OR (1 AND 1) = 1;
        // r=2: 0 OR (0 AND 1) = 0; head re-emitted last = 1.
        assert_eq!(sim.outputs()[0], vec![true, false, true]);
        assert_eq!(stats.useful_ops, 1);
        assert!(stats.link_words >= 3);
    }

    #[test]
    fn missing_input_deadlocks_with_diagnosis() {
        let mut sim = ArraySim::<MinPlus>::new(1);
        let b = sim.add_bank();
        let mut t = task(TaskKind::DelayTail, 2);
        t.pivot_in = Some(StreamSrc::Bank { bank: b, slot: 9 }); // never filled
        sim.push_task(0, t);
        match sim.run() {
            Err(SimError::Deadlock { pending, .. }) => assert_eq!(pending, vec![1]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn timeout_is_reported() {
        let mut sim = ArraySim::<MinPlus>::new(1);
        let b = sim.add_bank();
        let mut t = task(TaskKind::DelayTail, 2);
        t.pivot_in = Some(StreamSrc::Bank { bank: b, slot: 9 });
        sim.push_task(0, t);
        sim.set_max_cycles(1);
        assert_eq!(sim.run(), Err(SimError::Timeout { max_cycles: 1 }));
    }

    #[test]
    fn host_stream_reaches_cell_through_chain() {
        let mut sim = ArraySim::<MinPlus>::new(2);
        let o = sim.add_outputs(1);
        sim.host_mut().enqueue_stream(1, 3, [5u64, 6, 7]);
        let mut t = task(TaskKind::Pass, 3);
        t.col_in = Some(StreamSrc::Host { slot: 3 });
        t.col_out = Some(StreamDst::Output { stream: o });
        sim.push_task(1, t);
        let stats = sim.run().unwrap();
        assert_eq!(sim.outputs()[0], vec![5, 6, 7]);
        assert_eq!(stats.host_words, 3);
        assert!(stats.io_bandwidth() <= 1.0);
    }

    #[test]
    fn load_mac_emit_computes_dot_product_plus_seed() {
        // acc ← 100 ⊕ Σ aᵢ ⊗ bᵢ over the counting semiring: 100 + 1·4 +
        // 2·5 + 3·6 = 132.
        use systolic_semiring::Counting;
        let mut sim = ArraySim::<Counting>::new(1);
        let b = sim.add_bank();
        let o = sim.add_outputs(1);
        sim.bank_mut(b).preload(0, 100); // seed
        for a in [1u64, 2, 3] {
            sim.bank_mut(b).preload(1, a);
        }
        for w in [4u64, 5, 6] {
            sim.bank_mut(b).preload(2, w);
        }
        let mut t = task(TaskKind::LoadAcc, 1);
        t.col_in = Some(StreamSrc::Bank { bank: b, slot: 0 });
        sim.push_task(0, t);
        let mut t = task(TaskKind::Mac, 3);
        t.col_in = Some(StreamSrc::Bank { bank: b, slot: 1 });
        t.pivot_in = Some(StreamSrc::Bank { bank: b, slot: 2 });
        sim.push_task(0, t);
        let mut t = task(TaskKind::EmitAcc, 1);
        t.col_out = Some(StreamDst::Output { stream: o });
        sim.push_task(0, t);
        sim.run().unwrap();
        assert_eq!(sim.outputs()[0], vec![132]);
    }

    #[test]
    fn mac_without_seed_starts_at_zero_and_forwards_operands() {
        use systolic_semiring::Counting;
        let mut sim = ArraySim::<Counting>::new(1);
        let b = sim.add_bank();
        let o = sim.add_outputs(3);
        for a in [2u64, 3] {
            sim.bank_mut(b).preload(1, a);
        }
        for w in [10u64, 20] {
            sim.bank_mut(b).preload(2, w);
        }
        let mut t = task(TaskKind::Mac, 2);
        t.col_in = Some(StreamSrc::Bank { bank: b, slot: 1 });
        t.pivot_in = Some(StreamSrc::Bank { bank: b, slot: 2 });
        t.col_out = Some(StreamDst::Output { stream: o });
        t.pivot_out = Some(StreamDst::Output { stream: o + 1 });
        sim.push_task(0, t);
        let mut t = task(TaskKind::EmitAcc, 1);
        t.col_out = Some(StreamDst::Output { stream: o + 2 });
        sim.push_task(0, t);
        sim.run().unwrap();
        assert_eq!(sim.outputs()[0], vec![2, 3], "a operands forwarded");
        assert_eq!(sim.outputs()[1], vec![10, 20], "b operands forwarded");
        assert_eq!(sim.outputs()[2], vec![2 * 10 + 3 * 20]);
    }

    #[test]
    fn emit_acc_without_mac_emits_zero() {
        let mut sim = ArraySim::<MinPlus>::new(1);
        let o = sim.add_outputs(1);
        let mut t = task(TaskKind::EmitAcc, 1);
        t.col_out = Some(StreamDst::Output { stream: o });
        sim.push_task(0, t);
        sim.run().unwrap();
        assert_eq!(sim.outputs()[0], vec![MinPlus::zero()]);
    }

    #[test]
    fn delayed_link_adds_bypass_latency() {
        let mut sim = ArraySim::<MinPlus>::new(2);
        let l = sim.add_link_with_delay(3);
        let b = sim.add_bank();
        let o = sim.add_outputs(1);
        for w in [1u64, 2, 3, 4] {
            sim.bank_mut(b).preload(0, w);
        }
        let mut t = task(TaskKind::Pass, 4);
        t.col_in = Some(StreamSrc::Bank { bank: b, slot: 0 });
        t.col_out = Some(StreamDst::Link(l));
        sim.push_task(0, t);
        let mut t = task(TaskKind::Pass, 4);
        t.col_in = Some(StreamSrc::Link(l));
        t.col_out = Some(StreamDst::Output { stream: o });
        sim.push_task(1, t);
        let stats = sim.run().unwrap();
        assert_eq!(sim.outputs()[0], vec![1, 2, 3, 4]);
        // First word crosses 1 cycle of bank latency plus 3 cycles of link
        // transit; the stream then drains one word per cycle (4 words in 7
        // cycles), strictly slower than the 1-cycle-link case (6).
        assert_eq!(stats.cycles, 7);
    }

    /// Builds the pivot-head/fuse scenario twice and checks the ready
    /// loop against the dense reference, stats included.
    #[test]
    fn ready_loop_matches_dense_reference() {
        let build = || {
            let mut sim = ArraySim::<Bool>::new(2);
            let b = sim.add_bank();
            let l = sim.add_link();
            let o = sim.add_outputs(1);
            for w in [true, true, false] {
                sim.bank_mut(b).preload(0, w);
            }
            for w in [true, false, false] {
                sim.bank_mut(b).preload(1, w);
            }
            let mut head = task(TaskKind::PivotHead, 3);
            head.col_in = Some(StreamSrc::Bank { bank: b, slot: 0 });
            head.pivot_out = Some(StreamDst::Link(l));
            sim.push_task(0, head);
            let mut fuse = task(TaskKind::Fuse, 3);
            fuse.col_in = Some(StreamSrc::Bank { bank: b, slot: 1 });
            fuse.pivot_in = Some(StreamSrc::Link(l));
            fuse.col_out = Some(StreamDst::Output { stream: o });
            fuse.useful_ops = 1;
            sim.push_task(1, fuse);
            sim
        };
        let mut ready = build();
        let mut dense = build();
        let rs = ready.run().unwrap();
        let ds = dense.run_dense().unwrap();
        assert_eq!(ready.outputs(), dense.outputs());
        // PartialEq on RunStats ignores wall time.
        assert_eq!(rs, ds);
        assert_eq!(rs.stalls, ds.stalls, "lazy stall accounting must match");
        assert_eq!(rs.peak_bank_resident, ds.peak_bank_resident);
    }

    #[test]
    fn multi_cycle_duration_throttles_and_matches_dense() {
        let build = || {
            let mut sim = ArraySim::<MinPlus>::new(1);
            let b = sim.add_bank();
            let o = sim.add_outputs(1);
            for w in [1u64, 2, 3, 4] {
                sim.bank_mut(b).preload(0, w);
            }
            let mut t = task(TaskKind::Pass, 4);
            t.duration = 3;
            t.col_in = Some(StreamSrc::Bank { bank: b, slot: 0 });
            t.col_out = Some(StreamDst::Output { stream: o });
            sim.push_task(0, t);
            sim
        };
        let mut ready = build();
        let mut dense = build();
        let rs = ready.run().unwrap();
        let ds = dense.run_dense().unwrap();
        assert_eq!(ready.outputs(), dense.outputs());
        assert_eq!(rs, ds);
        assert_eq!(ready.outputs()[0], vec![1, 2, 3, 4]);
        // Each of the 4 elements holds the ALU for 3 cycles.
        assert_eq!(rs.busy[0], 12);
        // Elements fire 3 cycles apart, so the makespan stretches past the
        // single-cycle case (which finishes in ~5 cycles).
        assert!(rs.cycles >= 10, "cycles = {}", rs.cycles);
    }

    #[test]
    fn div_head_and_elim_fuse_run_an_elimination_step() {
        use systolic_semiring::Real;
        // One LU step on [[2, 5], [6, 7]]: l10 = 6/2 = 3, u11 = 7 − 3·5.
        let mut sim = ArraySim::<Real>::new(2);
        let b = sim.add_bank();
        let l = sim.add_link();
        let o = sim.add_outputs(2);
        for w in [2.0, 6.0] {
            sim.bank_mut(b).preload(0, w);
        }
        for w in [5.0, 7.0] {
            sim.bank_mut(b).preload(1, w);
        }
        let mut head = task(TaskKind::DivHead, 2);
        head.col_in = Some(StreamSrc::Bank { bank: b, slot: 0 });
        head.pivot_out = Some(StreamDst::Link(l));
        sim.push_task(0, head);
        let mut fuse = task(TaskKind::ElimFuse, 2);
        fuse.col_in = Some(StreamSrc::Bank { bank: b, slot: 1 });
        fuse.pivot_in = Some(StreamSrc::Link(l));
        fuse.col_out = Some(StreamDst::Output { stream: o });
        fuse.head_out = Some(StreamDst::Output { stream: o + 1 });
        sim.push_task(1, fuse);
        sim.run().unwrap();
        assert_eq!(sim.outputs()[0], vec![7.0 - 3.0 * 5.0]);
        assert_eq!(sim.outputs()[1], vec![5.0], "finished head on head_out");
    }

    #[test]
    fn reset_allows_an_identical_rerun() {
        let mut sim = ArraySim::<MinPlus>::new(1);
        let b = sim.add_bank();
        let o = sim.add_outputs(1);
        let load = |sim: &mut ArraySim<MinPlus>| {
            for w in [10u64, 20, 30] {
                sim.bank_mut(b).preload(1, w);
            }
        };
        load(&mut sim);
        let mut t = task(TaskKind::DelayTail, 3);
        t.pivot_in = Some(StreamSrc::Bank { bank: b, slot: 1 });
        t.col_out = Some(StreamDst::Output { stream: o });
        let tasks: Arc<[Task]> = vec![t].into();
        sim.set_cell_program(0, tasks);
        let s1 = sim.run().unwrap();
        let out1 = sim.outputs()[0].clone();
        sim.reset();
        load(&mut sim);
        let s2 = sim.run().unwrap();
        assert_eq!(sim.outputs()[0], out1);
        assert_eq!(s1, s2);
    }
}
