//! Cycle-level simulator of systolic arrays.
//!
//! The paper evaluates its arrays analytically (throughput, utilization,
//! I/O bandwidth read off the dependence graphs, §4.1). This crate provides
//! the corresponding *measured* quantities: it simulates an array of cells
//! connected by single-word neighbor links, backed by external memory banks
//! and fed by a host through a chain of R-blocks (register + memory,
//! Fig. 21), one word per cycle.
//!
//! The model:
//!
//! * A **cell** executes a queue of [`Task`]s. Each task streams `n`
//!   elements through one G-node role (pivot head / fuse / delay tail),
//!   consuming at most one word per input lane per cycle and producing at
//!   most one word per output lane per cycle (the delay-tail/fuse head
//!   re-emission shares the final cycle, modelling the G-node's latch).
//! * A **link** is a one-word register between neighbor cells: written at
//!   cycle `t`, readable at `t+1`, with backpressure.
//! * A **bank** is an external memory holding streams as FIFOs (written at
//!   `t`, readable at `t+1`); per-cycle port pressure is recorded.
//! * The **host** injects one word per cycle into the R-chain; a word bound
//!   for cell `c` arrives in cell `c`'s R-block memory `c+1` cycles later.
//!
//! Firing is pure dataflow: a cell stalls while any required word is
//! missing or an output register is full, and the simulator detects global
//! deadlock. All counters needed for the paper's measures are collected in
//! [`RunStats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod host;
pub mod inject;
pub mod sim;
pub mod stats;
pub mod stream;
pub mod trace;

pub use cell::{Task, TaskKind, TaskLabel};
pub use host::Host;
pub use inject::{
    corrupt_value, corrupt_value_in_lane, FaultEvent, FaultKind, FaultLog, FaultPlan, FaultReport,
};
pub use sim::{ArraySim, SimError};
pub use stats::{PhaseStats, RunStats, BUSY_HISTOGRAM_BUCKETS};
pub use stream::{Bank, Link, StreamDst, StreamSrc};
pub use trace::{occupancy_summary, render_gantt, TaskSpan};
