//! The host feeder and its R-block chain (Fig. 21).
//!
//! The host injects at most **one word per cycle** into a chain of R-blocks
//! (register + memory), one R-block per cell. A word bound for cell `c`
//! travels through `c + 1` registers before landing in cell `c`'s R-block
//! memory, from which the cell reads it when its task calls for it. This is
//! the paper's decoupling of data transfer from computation: injection runs
//! ahead of the schedule and the *measured* injection rate is the
//! `D_I/O = m/n` of §3.2.
//!
//! Like [`crate::Bank`], R-block memories are Vec-backed slot tables:
//! stream keys are interned to dense slots at schedule-compile time, so
//! the per-cycle `can_read`/`read` path never hashes.

use std::collections::VecDeque;
use systolic_semiring::Semiring;

/// Per-cell R-block memory: `stream slot → FIFO of (ready_cycle, word)`.
type RBlock<E> = Vec<VecDeque<(u64, E)>>;

/// The landing site of one injected word, for wake scheduling: the word
/// becomes readable by `cell` at cycle `arrival`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    /// Destination cell.
    pub cell: usize,
    /// Cycle at which the word becomes readable.
    pub arrival: u64,
}

/// Host feeder with per-cell R-block memories.
#[derive(Clone, Debug)]
pub struct Host<S: Semiring> {
    /// Pending injections in order: `(cell, slot, element)`.
    queue: VecDeque<(usize, usize, S::Elem)>,
    /// Per-cell R-block memory: `slot → FIFO of (ready_cycle, element)`.
    rblocks: Vec<RBlock<S::Elem>>,
    /// Extra transit cycles before the chain's first R-block.
    base_latency: u64,
    /// Total words injected.
    pub injected: u64,
    /// Cycle of the first injection.
    pub first_injection: Option<u64>,
    /// Cycle of the last injection.
    pub last_injection: Option<u64>,
    /// Peak number of words resident in R-block memories.
    pub peak_resident: usize,
    resident: usize,
}

impl<S: Semiring> Host<S> {
    /// Creates a host for `cells` R-blocks with the given injection-point
    /// latency.
    pub fn new(cells: usize, base_latency: u64) -> Self {
        Self {
            queue: VecDeque::new(),
            rblocks: vec![Vec::new(); cells],
            base_latency,
            injected: 0,
            first_injection: None,
            last_injection: None,
            peak_resident: 0,
            resident: 0,
        }
    }

    /// Queues a whole input stream for cell `cell` under stream `slot`.
    pub fn enqueue_stream(
        &mut self,
        cell: usize,
        slot: usize,
        words: impl IntoIterator<Item = S::Elem>,
    ) {
        for w in words {
            self.queue.push_back((cell, slot, w));
        }
    }

    /// Number of words not yet injected.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Injects at most one word into the chain; reports where it lands.
    pub fn tick(&mut self, now: u64) -> Option<Injection> {
        let (cell, slot, w) = self.queue.pop_front()?;
        let arrival = now + self.base_latency + cell as u64 + 1;
        let rblock = &mut self.rblocks[cell];
        if rblock.len() <= slot {
            rblock.resize_with(slot + 1, VecDeque::new);
        }
        rblock[slot].push_back((arrival, w));
        self.injected += 1;
        self.first_injection.get_or_insert(now);
        self.last_injection = Some(now);
        self.resident += 1;
        self.peak_resident = self.peak_resident.max(self.resident);
        Some(Injection { cell, arrival })
    }

    /// True when cell `cell` can read the next word of stream `slot`.
    pub fn can_read(&self, cell: usize, slot: usize, now: u64) -> bool {
        self.rblocks[cell]
            .get(slot)
            .and_then(VecDeque::front)
            .is_some_and(|(ready, _)| *ready <= now)
    }

    /// Arrival cycle of the next word of stream `slot` at cell `cell`
    /// (already landed or still in transit), if any word has been injected.
    pub fn front_ready(&self, cell: usize, slot: usize) -> Option<u64> {
        self.rblocks[cell]
            .get(slot)
            .and_then(VecDeque::front)
            .map(|(ready, _)| *ready)
    }

    /// Reads the next word of stream `slot` at cell `cell`, if arrived.
    pub fn read(&mut self, cell: usize, slot: usize, now: u64) -> Option<S::Elem> {
        let fifo = self.rblocks[cell].get_mut(slot)?;
        if fifo.front().is_some_and(|(ready, _)| *ready <= now) {
            self.resident -= 1;
            fifo.pop_front().map(|(_, e)| e)
        } else {
            None
        }
    }

    /// Words still in flight or buffered in R-blocks.
    pub fn in_flight(&self) -> usize {
        self.resident
    }

    /// Longest chain transit (used for deadlock-detection grace).
    pub fn max_latency(&self) -> u64 {
        self.base_latency + self.rblocks.len() as u64 + 1
    }

    /// Clears all dynamic state (queue, buffered words, counters) while
    /// keeping the chain structure and R-block slot allocations.
    pub fn reset(&mut self) {
        self.queue.clear();
        for rblock in &mut self.rblocks {
            for fifo in rblock.iter_mut() {
                fifo.clear();
            }
        }
        self.injected = 0;
        self.first_injection = None;
        self.last_injection = None;
        self.peak_resident = 0;
        self.resident = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::MinPlus;

    #[test]
    fn injection_is_one_word_per_cycle_with_chain_latency() {
        let mut h = Host::<MinPlus>::new(3, 0);
        h.enqueue_stream(2, 7, [10u64, 20]);
        // Word for cell 2 arrives at cycle 0 + 2 + 1 = 3.
        assert_eq!(
            h.tick(0),
            Some(Injection {
                cell: 2,
                arrival: 3
            })
        );
        assert_eq!(
            h.tick(1),
            Some(Injection {
                cell: 2,
                arrival: 4
            })
        );
        assert_eq!(h.tick(2), None, "queue drained");
        assert!(!h.can_read(2, 7, 2));
        assert!(h.can_read(2, 7, 3));
        assert_eq!(h.read(2, 7, 3), Some(10));
        assert_eq!(h.read(2, 7, 4), Some(20));
        assert_eq!(h.injected, 2);
        assert_eq!(h.first_injection, Some(0));
        assert_eq!(h.last_injection, Some(1));
    }

    #[test]
    fn streams_slotted_independently() {
        let mut h = Host::<MinPlus>::new(1, 0);
        h.enqueue_stream(0, 1, [1u64]);
        h.enqueue_stream(0, 2, [2u64]);
        h.tick(0);
        h.tick(1);
        assert_eq!(h.read(0, 2, 10), Some(2));
        assert_eq!(h.read(0, 1, 10), Some(1));
        assert_eq!(h.in_flight(), 0);
        assert_eq!(h.peak_resident, 2);
    }

    #[test]
    fn reset_keeps_structure_and_clears_state() {
        let mut h = Host::<MinPlus>::new(2, 1);
        h.enqueue_stream(1, 0, [5u64]);
        h.tick(0);
        h.reset();
        assert_eq!(h.pending(), 0);
        assert_eq!(h.in_flight(), 0);
        assert_eq!(h.injected, 0);
        assert_eq!(h.max_latency(), 1 + 2 + 1);
        assert_eq!(h.read(1, 0, 100), None);
    }
}
