//! Links, banks and stream endpoints.

use std::collections::{HashMap, VecDeque};

/// A neighbor register chain: a word written at cycle `t` becomes readable
/// at `t + delay` (default delay 1 — a single register).
///
/// Capacity is `delay + 1` words (one per register stage plus the visible
/// one), which models back-to-back pipelined registers. Writers must check
/// [`Link::can_write`]; full means backpressure. Delays larger than 1 model
/// bypass routes around faulty cells (§5's fault-tolerance discussion).
#[derive(Clone, Debug)]
pub struct Link<E> {
    fifo: VecDeque<(u64, E)>,
    delay: u64,
    cap: usize,
    now: u64,
    /// Total words transported.
    pub words: u64,
}

impl<E> Default for Link<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Link<E> {
    /// Creates an empty single-register link (1-cycle latency).
    pub fn new() -> Self {
        Self::with_delay(1)
    }

    /// Creates a link with the given latency in cycles (`≥ 1`).
    pub fn with_delay(delay: u64) -> Self {
        assert!(delay >= 1, "links need at least one register");
        Self {
            fifo: VecDeque::new(),
            delay,
            cap: delay as usize + 1,
            now: 0,
            words: 0,
        }
    }

    /// The link's latency in cycles.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// True when a word can be written this cycle.
    #[inline]
    pub fn can_write(&self) -> bool {
        self.fifo.len() < self.cap
    }

    /// Writes a word (must be writable), readable `delay` cycles later.
    ///
    /// # Panics
    /// Panics if the link is full — callers must check [`Link::can_write`].
    pub fn write(&mut self, e: E) {
        assert!(self.can_write(), "link overwrite");
        self.fifo.push_back((self.now + self.delay, e));
        self.words += 1;
    }

    /// Writes a word even when the link is nominally full — used by fault
    /// injection to model a duplicated register transfer. May exceed the
    /// register capacity by one word transiently; backpressure reasserts
    /// itself once the extra word drains.
    pub fn force_write(&mut self, e: E) {
        self.fifo.push_back((self.now + self.delay, e));
        self.words += 1;
    }

    /// True when a word is readable this cycle.
    #[inline]
    pub fn can_read(&self) -> bool {
        self.fifo
            .front()
            .is_some_and(|(ready, _)| *ready <= self.now)
    }

    /// Consumes the readable word, if any.
    pub fn read(&mut self) -> Option<E> {
        if self.can_read() {
            self.fifo.pop_front().map(|(_, e)| e)
        } else {
            None
        }
    }

    /// End-of-cycle clock advance.
    pub fn tick(&mut self) {
        self.now += 1;
    }

    /// True when no word is in flight.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }
}

/// An external memory bank holding logical streams as FIFOs.
///
/// Each write lands with one cycle of latency. The bank records its busiest
/// write cycle so experiments can check the port-width assumptions.
#[derive(Clone, Debug)]
pub struct Bank<E> {
    fifos: HashMap<u64, VecDeque<(u64, E)>>,
    /// Total words written.
    pub writes: u64,
    /// Total words read.
    pub reads: u64,
    writes_this_cycle: u64,
    /// Maximum words written in any single cycle.
    pub max_writes_per_cycle: u64,
    resident: usize,
}

impl<E> Default for Bank<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Bank<E> {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self {
            fifos: HashMap::new(),
            writes: 0,
            reads: 0,
            writes_this_cycle: 0,
            max_writes_per_cycle: 0,
            resident: 0,
        }
    }

    /// Appends a word to stream `key`; readable from cycle `now + 1`.
    pub fn write(&mut self, key: u64, now: u64, e: E) {
        self.fifos.entry(key).or_default().push_back((now + 1, e));
        self.writes += 1;
        self.writes_this_cycle += 1;
        self.resident += 1;
    }

    /// Pre-loads a word readable immediately (initial matrix residence).
    pub fn preload(&mut self, key: u64, e: E) {
        self.fifos.entry(key).or_default().push_back((0, e));
        self.resident += 1;
    }

    /// True when stream `key` has a word readable at cycle `now`.
    pub fn can_read(&self, key: u64, now: u64) -> bool {
        self.fifos
            .get(&key)
            .and_then(VecDeque::front)
            .is_some_and(|(ready, _)| *ready <= now)
    }

    /// Consumes the next word of stream `key` if readable.
    pub fn read(&mut self, key: u64, now: u64) -> Option<E> {
        let fifo = self.fifos.get_mut(&key)?;
        if fifo.front().is_some_and(|(ready, _)| *ready <= now) {
            self.reads += 1;
            self.resident -= 1;
            if fifo.len() == 1 {
                // Drop drained streams so the map doesn't grow with every
                // stream key ever used (large batches use thousands).
                let mut drained = self.fifos.remove(&key)?;
                return drained.pop_front().map(|(_, e)| e);
            }
            fifo.pop_front().map(|(_, e)| e)
        } else {
            None
        }
    }

    /// End-of-cycle accounting.
    pub fn tick(&mut self) {
        self.max_writes_per_cycle = self.max_writes_per_cycle.max(self.writes_this_cycle);
        self.writes_this_cycle = 0;
    }

    /// Number of words currently resident (peak external-memory footprint is
    /// tracked by the simulator). O(1): the simulator polls this every cycle.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Corrupts the `nth % resident` resident word in place via `f`,
    /// returning true if a word was corrupted (false on an empty bank).
    ///
    /// Streams are visited in sorted-key order so the choice is independent
    /// of `HashMap` iteration order — fault injection must be deterministic.
    pub fn corrupt_resident(&mut self, nth: usize, f: impl FnOnce(&mut E)) -> bool {
        if self.resident == 0 {
            return false;
        }
        let mut idx = nth % self.resident;
        let mut keys: Vec<u64> = self.fifos.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let fifo = self.fifos.get_mut(&key).expect("key just listed");
            if idx < fifo.len() {
                f(&mut fifo[idx].1);
                return true;
            }
            idx -= fifo.len();
        }
        unreachable!("resident count out of sync with fifos");
    }
}

/// Where a task's input stream comes from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StreamSrc {
    /// Stream `key` of bank `bank`.
    Bank {
        /// Bank index.
        bank: usize,
        /// Logical stream key within the bank.
        key: u64,
    },
    /// Neighbor link `link`.
    Link(usize),
    /// The cell's R-block host memory, stream `key`.
    Host {
        /// Logical stream key.
        key: u64,
    },
}

/// Where a task's output stream goes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StreamDst {
    /// Stream `key` of bank `bank`.
    Bank {
        /// Bank index.
        bank: usize,
        /// Logical stream key within the bank.
        key: u64,
    },
    /// Neighbor link `link`.
    Link(usize),
    /// Result collector stream `stream` (one per output matrix column).
    Output {
        /// Output stream index.
        stream: usize,
    },
    /// Discard (used for dangling boundary pivot streams).
    Sink,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_has_one_cycle_latency() {
        let mut l = Link::new();
        assert!(l.can_write());
        l.write(7u32);
        assert!(!l.can_read(), "not readable in the write cycle");
        l.tick();
        assert!(l.can_read());
        assert_eq!(l.read(), Some(7));
        assert!(l.is_empty());
    }

    #[test]
    fn link_backpressure() {
        let mut l = Link::new();
        l.write(1u32);
        l.tick();
        l.write(2);
        assert!(!l.can_write(), "register pair full");
        l.tick(); // cur still occupied; next stays
        assert!(!l.can_write());
        assert_eq!(l.read(), Some(1));
        l.tick();
        assert!(l.can_write());
        assert_eq!(l.read(), Some(2));
        assert_eq!(l.words, 2);
    }

    #[test]
    fn bank_write_read_latency_and_counters() {
        let mut b = Bank::new();
        b.write(5, 10, 'a');
        assert!(!b.can_read(5, 10), "same-cycle read must fail");
        assert!(b.can_read(5, 11));
        assert_eq!(b.read(5, 11), Some('a'));
        assert_eq!(b.writes, 1);
        assert_eq!(b.reads, 1);
        b.tick();
        assert_eq!(b.max_writes_per_cycle, 1);
    }

    #[test]
    fn bank_preload_is_immediately_readable() {
        let mut b = Bank::new();
        b.preload(1, 'x');
        b.preload(1, 'y');
        assert_eq!(b.read(1, 0), Some('x'));
        assert_eq!(b.read(1, 0), Some('y'));
        assert_eq!(b.read(1, 0), None);
    }

    #[test]
    fn link_force_write_can_exceed_capacity() {
        let mut l = Link::new();
        l.write(1u32);
        l.tick();
        l.write(2);
        assert!(!l.can_write());
        l.force_write(3);
        assert_eq!(l.read(), Some(1));
        l.tick();
        assert_eq!(l.read(), Some(2));
        l.tick();
        assert_eq!(l.read(), Some(3));
        assert_eq!(l.words, 3);
    }

    #[test]
    fn bank_corrupt_resident_is_deterministic_and_bounded() {
        let mut b = Bank::new();
        assert!(!b.corrupt_resident(0, |_: &mut u8| unreachable!()));
        b.preload(9, 10u8);
        b.preload(2, 20u8);
        b.preload(2, 30u8);
        // Sorted-key order: stream 2 = [20, 30], stream 9 = [10].
        assert!(b.corrupt_resident(1, |e| *e = 99));
        assert_eq!(b.read(2, 0), Some(20));
        assert_eq!(b.read(2, 0), Some(99));
        // nth wraps modulo resident count.
        assert!(b.corrupt_resident(5, |e| *e = 77));
        assert_eq!(b.read(9, 0), Some(77));
    }

    #[test]
    fn bank_streams_are_independent() {
        let mut b = Bank::new();
        b.preload(1, 1u8);
        b.preload(2, 2u8);
        assert_eq!(b.read(2, 0), Some(2));
        assert_eq!(b.read(1, 0), Some(1));
        assert_eq!(b.resident(), 0);
    }
}
