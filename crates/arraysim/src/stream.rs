//! Links, banks and stream endpoints.
//!
//! Stream words are opaque semiring elements: a "word" here is whatever
//! `S::Elem` is, so one link transfer can carry 64 bit-sliced Boolean
//! lanes (`systolic_semiring::LaneWord`) as cheaply as one scalar.
//!
//! Banks (and the host's R-block memories) store logical streams in
//! Vec-backed *slot tables*: schedule compilation interns each 64-bit
//! `stream_key` into a dense slot index once, so the cycle loop indexes a
//! `Vec` instead of hashing a `u64` on every `can_read`/`read`/`write`.
//! Direct (non-compiled) users simply use small integers as slots; the
//! tables auto-extend, with the slot index doubling as the fault-visit
//! sort key.
//!
//! Links and bank slots also carry *waiter* registration used by the
//! ready-tracking simulator loop ([`crate::ArraySim::run`]): a blocked
//! cell parks itself on the stream it needs, and the next write (or read,
//! for backpressure) schedules its wake-up. A second cell parking on an
//! already-claimed stream evicts the first with an immediate wake, so a
//! contended stream degrades to per-cycle polling instead of ever losing
//! a wake.

use std::collections::VecDeque;

/// Sentinel slot-waiter value: no cell is parked here.
pub(crate) const NO_WAITER: u32 = u32::MAX;

/// A neighbor register chain: a word written at cycle `t` becomes readable
/// at `t + delay` (default delay 1 — a single register).
///
/// Capacity is `delay + 1` words (one per register stage plus the visible
/// one), which models back-to-back pipelined registers. Writers must check
/// [`Link::can_write`]; full means backpressure. Delays larger than 1 model
/// bypass routes around faulty cells (§5's fault-tolerance discussion).
///
/// Links are clockless: readiness is judged against the cycle passed by
/// the caller, so an idle link costs nothing per cycle.
#[derive(Clone, Debug)]
pub struct Link<E> {
    fifo: VecDeque<(u64, E)>,
    delay: u64,
    cap: usize,
    /// Total words transported.
    pub words: u64,
    read_waiter: u32,
    write_waiter: u32,
}

impl<E> Default for Link<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Link<E> {
    /// Creates an empty single-register link (1-cycle latency).
    pub fn new() -> Self {
        Self::with_delay(1)
    }

    /// Creates a link with the given latency in cycles (`≥ 1`).
    pub fn with_delay(delay: u64) -> Self {
        assert!(delay >= 1, "links need at least one register");
        Self {
            fifo: VecDeque::new(),
            delay,
            cap: delay as usize + 1,
            words: 0,
            read_waiter: NO_WAITER,
            write_waiter: NO_WAITER,
        }
    }

    /// The link's latency in cycles.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// True when a word can be written this cycle.
    #[inline]
    pub fn can_write(&self) -> bool {
        self.fifo.len() < self.cap
    }

    /// Writes a word at cycle `now` (must be writable), readable `delay`
    /// cycles later.
    ///
    /// # Panics
    /// Panics if the link is full — callers must check [`Link::can_write`].
    pub fn write(&mut self, now: u64, e: E) {
        assert!(self.can_write(), "link overwrite");
        self.fifo.push_back((now + self.delay, e));
        self.words += 1;
    }

    /// Writes a word even when the link is nominally full — used by fault
    /// injection to model a duplicated register transfer. May exceed the
    /// register capacity by one word transiently; backpressure reasserts
    /// itself once the extra word drains.
    pub fn force_write(&mut self, now: u64, e: E) {
        self.fifo.push_back((now + self.delay, e));
        self.words += 1;
    }

    /// True when a word is readable at cycle `now`.
    #[inline]
    pub fn can_read(&self, now: u64) -> bool {
        self.fifo.front().is_some_and(|(ready, _)| *ready <= now)
    }

    /// The cycle at which the oldest in-flight word becomes readable, if
    /// any word is in flight.
    #[inline]
    pub(crate) fn front_ready(&self) -> Option<u64> {
        self.fifo.front().map(|(ready, _)| *ready)
    }

    /// Consumes the word readable at cycle `now`, if any.
    pub fn read(&mut self, now: u64) -> Option<E> {
        if self.can_read(now) {
            self.fifo.pop_front().map(|(_, e)| e)
        } else {
            None
        }
    }

    /// True when no word is in flight.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Parks `cell` until the next word lands; returns an evicted waiter.
    pub(crate) fn park_reader(&mut self, cell: u32) -> Option<u32> {
        let old = self.read_waiter;
        self.read_waiter = cell;
        (old != NO_WAITER && old != cell).then_some(old)
    }

    /// Unparks the cell waiting for a word, if any.
    pub(crate) fn take_reader(&mut self) -> Option<u32> {
        let old = self.read_waiter;
        self.read_waiter = NO_WAITER;
        (old != NO_WAITER).then_some(old)
    }

    /// Parks `cell` until backpressure clears; returns an evicted waiter.
    pub(crate) fn park_writer(&mut self, cell: u32) -> Option<u32> {
        let old = self.write_waiter;
        self.write_waiter = cell;
        (old != NO_WAITER && old != cell).then_some(old)
    }

    /// Unparks the cell waiting to write, if any.
    pub(crate) fn take_writer(&mut self) -> Option<u32> {
        let old = self.write_waiter;
        self.write_waiter = NO_WAITER;
        (old != NO_WAITER).then_some(old)
    }

    /// Clears all dynamic state (words in flight, counters, waiters) while
    /// keeping the link's structure and allocations.
    pub fn reset(&mut self) {
        self.fifo.clear();
        self.words = 0;
        self.read_waiter = NO_WAITER;
        self.write_waiter = NO_WAITER;
    }
}

/// An external memory bank holding logical streams as FIFOs in a slot
/// table.
///
/// Each write lands with one cycle of latency. The bank records its busiest
/// write cycle so experiments can check the port-width assumptions.
///
/// Slots created by [`Bank::with_slots`] carry an explicit sort key (the
/// interned 64-bit stream key); slots created by auto-extension use the
/// slot index itself. [`Bank::corrupt_resident`] visits streams in sort-key
/// order, which makes fault injection independent of the interning order
/// and bit-identical to the historical sorted-`HashMap`-key walk.
#[derive(Clone, Debug)]
pub struct Bank<E> {
    fifos: Vec<VecDeque<(u64, E)>>,
    sort_keys: Vec<u64>,
    waiters: Vec<u32>,
    /// Total words written.
    pub writes: u64,
    /// Total words read.
    pub reads: u64,
    writes_this_cycle: u64,
    /// Maximum words written in any single cycle.
    pub max_writes_per_cycle: u64,
    resident: usize,
    peak_resident: usize,
}

impl<E> Default for Bank<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Bank<E> {
    /// Creates an empty bank with no slots (they auto-extend on use).
    pub fn new() -> Self {
        Self::with_slots(Vec::new())
    }

    /// Creates a bank with one pre-sized slot per entry of `sort_keys`;
    /// slot `i` is visited in `sort_keys[i]` order by fault injection.
    pub fn with_slots(sort_keys: Vec<u64>) -> Self {
        Self {
            fifos: sort_keys.iter().map(|_| VecDeque::new()).collect(),
            waiters: vec![NO_WAITER; sort_keys.len()],
            sort_keys,
            writes: 0,
            reads: 0,
            writes_this_cycle: 0,
            max_writes_per_cycle: 0,
            resident: 0,
            peak_resident: 0,
        }
    }

    /// Number of slots in the table.
    pub fn slots(&self) -> usize {
        self.fifos.len()
    }

    fn ensure_slot(&mut self, slot: usize) {
        while self.fifos.len() <= slot {
            self.sort_keys.push(self.fifos.len() as u64);
            self.fifos.push(VecDeque::new());
            self.waiters.push(NO_WAITER);
        }
    }

    /// Appends a word to stream `slot`; readable from cycle `now + 1`.
    pub fn write(&mut self, slot: usize, now: u64, e: E) {
        self.ensure_slot(slot);
        self.fifos[slot].push_back((now + 1, e));
        self.writes += 1;
        self.writes_this_cycle += 1;
        self.resident += 1;
        self.peak_resident = self.peak_resident.max(self.resident);
    }

    /// Pre-loads a word readable immediately (initial matrix residence).
    pub fn preload(&mut self, slot: usize, e: E) {
        self.ensure_slot(slot);
        self.fifos[slot].push_back((0, e));
        self.resident += 1;
        self.peak_resident = self.peak_resident.max(self.resident);
    }

    /// True when stream `slot` has a word readable at cycle `now`.
    #[inline]
    pub fn can_read(&self, slot: usize, now: u64) -> bool {
        self.fifos
            .get(slot)
            .and_then(VecDeque::front)
            .is_some_and(|(ready, _)| *ready <= now)
    }

    /// The cycle at which stream `slot`'s oldest word becomes readable, if
    /// the stream holds any word.
    #[inline]
    pub(crate) fn front_ready(&self, slot: usize) -> Option<u64> {
        self.fifos
            .get(slot)
            .and_then(VecDeque::front)
            .map(|(ready, _)| *ready)
    }

    /// Consumes the next word of stream `slot` if readable.
    pub fn read(&mut self, slot: usize, now: u64) -> Option<E> {
        let fifo = self.fifos.get_mut(slot)?;
        if fifo.front().is_some_and(|(ready, _)| *ready <= now) {
            self.reads += 1;
            self.resident -= 1;
            fifo.pop_front().map(|(_, e)| e)
        } else {
            None
        }
    }

    /// End-of-cycle accounting. Only needs to run for cycles in which the
    /// bank was written.
    pub fn tick(&mut self) {
        self.max_writes_per_cycle = self.max_writes_per_cycle.max(self.writes_this_cycle);
        self.writes_this_cycle = 0;
    }

    /// Number of words currently resident (peak external-memory footprint is
    /// tracked by the simulator). O(1): the simulator polls this every cycle.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Largest number of words this bank ever held at once — the bank's
    /// own local-storage high-water mark (the per-cell `Θ(n²/m)` measure
    /// of the coalescing mapping; the simulator aggregates the global peak
    /// separately).
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Parks `cell` until stream `slot` is next written; returns an
    /// evicted waiter.
    pub(crate) fn park_reader(&mut self, slot: usize, cell: u32) -> Option<u32> {
        self.ensure_slot(slot);
        let old = self.waiters[slot];
        self.waiters[slot] = cell;
        (old != NO_WAITER && old != cell).then_some(old)
    }

    /// Unparks the cell waiting on stream `slot`, if any.
    pub(crate) fn take_reader(&mut self, slot: usize) -> Option<u32> {
        match self.waiters.get_mut(slot) {
            Some(w) if *w != NO_WAITER => {
                let old = *w;
                *w = NO_WAITER;
                Some(old)
            }
            _ => None,
        }
    }

    /// Clears all dynamic state (stream contents, counters, waiters) while
    /// keeping the slot table and its allocations.
    pub fn reset(&mut self) {
        for fifo in &mut self.fifos {
            fifo.clear();
        }
        self.waiters.fill(NO_WAITER);
        self.writes = 0;
        self.reads = 0;
        self.writes_this_cycle = 0;
        self.max_writes_per_cycle = 0;
        self.resident = 0;
        self.peak_resident = 0;
    }

    /// Corrupts the `nth % resident` resident word in place via `f`,
    /// returning true if a word was corrupted (false on an empty bank).
    ///
    /// Streams are visited in sorted-key order (drained streams are empty
    /// and contribute nothing), so the choice is independent of slot
    /// interning order — fault injection must be deterministic.
    pub fn corrupt_resident(&mut self, nth: usize, f: impl FnOnce(&mut E)) -> bool {
        if self.resident == 0 {
            return false;
        }
        let mut idx = nth % self.resident;
        let mut order: Vec<usize> = (0..self.fifos.len()).collect();
        order.sort_unstable_by_key(|&s| self.sort_keys[s]);
        for slot in order {
            let fifo = &mut self.fifos[slot];
            if idx < fifo.len() {
                f(&mut fifo[idx].1);
                return true;
            }
            idx -= fifo.len();
        }
        unreachable!("resident count out of sync with fifos");
    }
}

/// Where a task's input stream comes from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StreamSrc {
    /// Stream `slot` of bank `bank`.
    Bank {
        /// Bank index.
        bank: usize,
        /// Stream slot within the bank's table.
        slot: usize,
    },
    /// Neighbor link `link`.
    Link(usize),
    /// The cell's R-block host memory, stream `slot`.
    Host {
        /// Stream slot within the cell's R-block table.
        slot: usize,
    },
}

/// Where a task's output stream goes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StreamDst {
    /// Stream `slot` of bank `bank`.
    Bank {
        /// Bank index.
        bank: usize,
        /// Stream slot within the bank's table.
        slot: usize,
    },
    /// Neighbor link `link`.
    Link(usize),
    /// Result collector stream `stream` (one per output matrix column).
    Output {
        /// Output stream index.
        stream: usize,
    },
    /// Discard (used for dangling boundary pivot streams).
    Sink,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_has_one_cycle_latency() {
        let mut l = Link::new();
        assert!(l.can_write());
        l.write(0, 7u32);
        assert!(!l.can_read(0), "not readable in the write cycle");
        assert!(l.can_read(1));
        assert_eq!(l.read(1), Some(7));
        assert!(l.is_empty());
    }

    #[test]
    fn link_backpressure() {
        let mut l = Link::new();
        l.write(0, 1u32);
        l.write(1, 2);
        assert!(!l.can_write(), "register pair full");
        assert!(!l.can_write());
        assert_eq!(l.read(2), Some(1));
        assert!(l.can_write());
        assert_eq!(l.read(3), Some(2));
        assert_eq!(l.words, 2);
    }

    #[test]
    fn bank_write_read_latency_and_counters() {
        let mut b = Bank::new();
        b.write(5, 10, 'a');
        assert!(!b.can_read(5, 10), "same-cycle read must fail");
        assert!(b.can_read(5, 11));
        assert_eq!(b.read(5, 11), Some('a'));
        assert_eq!(b.writes, 1);
        assert_eq!(b.reads, 1);
        b.tick();
        assert_eq!(b.max_writes_per_cycle, 1);
    }

    #[test]
    fn bank_preload_is_immediately_readable() {
        let mut b = Bank::new();
        b.preload(1, 'x');
        b.preload(1, 'y');
        assert_eq!(b.read(1, 0), Some('x'));
        assert_eq!(b.read(1, 0), Some('y'));
        assert_eq!(b.read(1, 0), None);
    }

    #[test]
    fn link_force_write_can_exceed_capacity() {
        let mut l = Link::new();
        l.write(0, 1u32);
        l.write(1, 2);
        assert!(!l.can_write());
        l.force_write(1, 3);
        assert_eq!(l.read(1), Some(1));
        assert_eq!(l.read(2), Some(2));
        assert_eq!(l.read(3), Some(3));
        assert_eq!(l.words, 3);
    }

    #[test]
    fn bank_corrupt_resident_is_deterministic_and_bounded() {
        let mut b = Bank::new();
        assert!(!b.corrupt_resident(0, |_: &mut u8| unreachable!()));
        b.preload(9, 10u8);
        b.preload(2, 20u8);
        b.preload(2, 30u8);
        // Sorted-key order: stream 2 = [20, 30], stream 9 = [10].
        assert!(b.corrupt_resident(1, |e| *e = 99));
        assert_eq!(b.read(2, 0), Some(20));
        assert_eq!(b.read(2, 0), Some(99));
        // nth wraps modulo resident count.
        assert!(b.corrupt_resident(5, |e| *e = 77));
        assert_eq!(b.read(9, 0), Some(77));
    }

    #[test]
    fn bank_corrupt_resident_honors_explicit_sort_keys() {
        // Slot 0 carries the *larger* stream key: the fault walk must
        // visit slot 1 (key 2) before slot 0 (key 9), exactly like the
        // historical sorted-HashMap-key walk.
        let mut b = Bank::with_slots(vec![9, 2]);
        b.preload(0, 10u8);
        b.preload(1, 20u8);
        assert!(b.corrupt_resident(0, |e| *e = 99));
        assert_eq!(b.read(1, 0), Some(99));
        assert_eq!(b.read(0, 0), Some(10));
    }

    #[test]
    fn bank_drained_streams_are_skipped_by_fault_walk() {
        let mut b = Bank::new();
        b.preload(1, 1u8);
        b.preload(3, 3u8);
        assert_eq!(b.read(1, 0), Some(1));
        // Stream 1 is drained: index 0 of the walk must now be stream 3.
        assert!(b.corrupt_resident(0, |e| *e = 99));
        assert_eq!(b.read(3, 0), Some(99));
    }

    #[test]
    fn bank_streams_are_independent() {
        let mut b = Bank::new();
        b.preload(1, 1u8);
        b.preload(2, 2u8);
        assert_eq!(b.read(2, 0), Some(2));
        assert_eq!(b.read(1, 0), Some(1));
        assert_eq!(b.resident(), 0);
    }

    #[test]
    fn bank_peak_resident_is_a_high_water_mark() {
        let mut b = Bank::new();
        b.preload(0, 'a');
        b.write(1, 0, 'b');
        assert_eq!(b.peak_resident(), 2);
        assert_eq!(b.read(0, 1), Some('a'));
        assert_eq!(b.read(1, 1), Some('b'));
        assert_eq!(b.resident(), 0);
        assert_eq!(b.peak_resident(), 2, "peak survives drains");
        b.write(2, 5, 'c');
        assert_eq!(b.peak_resident(), 2, "lower residency leaves the peak");
    }

    #[test]
    fn bank_reset_keeps_slots_and_clears_state() {
        let mut b = Bank::with_slots(vec![7, 3]);
        b.write(0, 0, 'a');
        b.tick();
        assert_eq!(b.read(0, 1), Some('a'));
        b.reset();
        assert_eq!(b.slots(), 2);
        assert_eq!(b.resident(), 0);
        assert_eq!(b.peak_resident(), 0);
        assert_eq!(b.writes, 0);
        assert_eq!(b.reads, 0);
        assert_eq!(b.max_writes_per_cycle, 0);
        assert_eq!(b.read(0, 10), None);
    }

    #[test]
    fn parked_cells_are_woken_once_and_evicted_on_contention() {
        let mut l = Link::<u32>::new();
        assert_eq!(l.park_reader(4), None);
        assert_eq!(
            l.park_reader(4),
            None,
            "re-parking the same cell is a no-op"
        );
        assert_eq!(
            l.park_reader(6),
            Some(4),
            "contention evicts the old waiter"
        );
        assert_eq!(l.take_reader(), Some(6));
        assert_eq!(l.take_reader(), None);

        let mut b = Bank::<u32>::new();
        assert_eq!(b.park_reader(2, 1), None);
        assert_eq!(b.park_reader(2, 5), Some(1));
        assert_eq!(b.take_reader(2), Some(5));
        assert_eq!(b.take_reader(2), None);
    }
}
