//! Cells and their task programs.
//!
//! A cell's firing rules depend only on stream *availability*, never on
//! the values carried (values are touched solely through `S::fuse` /
//! `S::zero` and moves), so the payload may be any semiring element — one
//! Boolean, a `u64` of 64 bit-sliced Booleans, a min-plus weight — with
//! bit-identical timing.

use crate::host::Host;
use crate::inject::{corrupt_value_in_lane, FaultInjector, LinkFate};
use crate::stream::{Bank, Link, StreamDst, StreamSrc};
use std::sync::Arc;
use systolic_semiring::Semiring;

/// The G-node role a task executes (see `systolic-transform::ggraph`), plus
/// the stationary multiply-accumulate roles used by the matrix-product
/// baseline array (Núñez–Torralba \[22\]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Consume the pivot column, emit it as the pivot stream.
    PivotHead,
    /// Fuse one matrix column against the pivot stream; forward the pivot;
    /// emit the column rotated (head last).
    Fuse,
    /// Consume the pivot stream, emit it rotated as a column.
    DelayTail,
    /// Gaussian-elimination pivot head: consume one matrix column, latch its
    /// head `x_kk`, emit the head unchanged then `x_ik / x_kk` for the rest
    /// of the stream (`pivot_out`). Requires a semiring overriding
    /// [`systolic_semiring::Semiring::div`].
    DivHead,
    /// Gaussian-elimination fuse: like `Fuse` but the update is
    /// `x − p ⊗ q` ([`systolic_semiring::Semiring::elim`]) and the latched
    /// head (the finished `u_kh` element) is re-emitted on `head_out` when
    /// set, else on `col_out`.
    ElimFuse,
    /// Pure pass-through of a column stream (used by coalescing baselines
    /// and unload chains).
    Pass,
    /// Load one word into the cell's accumulator (`col_in`, length 1).
    LoadAcc,
    /// Stationary multiply-accumulate: per element, consume an `a` word
    /// (`col_in`) and a `b` word (`pivot_in`), update `acc ← acc ⊕ (a ⊗ b)`
    /// and forward both operands (`col_out` / `pivot_out`).
    Mac,
    /// Emit the accumulator (`col_out`, length 1).
    EmitAcc,
}

/// Identifies the G-node a task implements, for tracing and assertions.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskLabel {
    /// G-graph row (Warshall level).
    pub k: u32,
    /// Skewed position `h`.
    pub h: u32,
}

/// One streamed G-node execution on a cell.
#[derive(Clone, Debug)]
pub struct Task {
    /// Role.
    pub kind: TaskKind,
    /// Stream length (`n`).
    pub len: usize,
    /// Column input (required by `PivotHead`, `Fuse`, `Pass`).
    pub col_in: Option<StreamSrc>,
    /// Pivot input (required by `Fuse`, `DelayTail`).
    pub pivot_in: Option<StreamSrc>,
    /// Column output (required by `Fuse`, `DelayTail`, `Pass`).
    pub col_out: Option<StreamDst>,
    /// Pivot output (required by `PivotHead`; `Fuse` forwards when set).
    pub pivot_out: Option<StreamDst>,
    /// Where the deferred (rotated) head word goes for `ElimFuse` tasks;
    /// `None` falls back to `col_out` (the closure behaviour).
    pub head_out: Option<StreamDst>,
    /// Cycles the cell stays busy per stream element (the §4.3 varying
    /// G-node computation time; `1` is the classical single-cycle task).
    pub duration: u32,
    /// Useful primitive operations performed (`n-2` for a fuse G-node).
    pub useful_ops: u64,
    /// Traceability label.
    pub label: TaskLabel,
}

/// A cell's task program: either built in place task by task, or a shared
/// immutable program compiled once and reused across runs (and across the
/// engine replicas of a parallel batch). Execution tracks a cursor instead
/// of consuming the queue, so re-running a schedule needs no rebuild.
#[derive(Clone, Debug)]
enum Program {
    /// Locally built, mutable (the historical `push_task` path).
    Owned(Vec<Task>),
    /// Compiled once, shared by reference.
    Shared(Arc<[Task]>),
}

impl Program {
    fn tasks(&self) -> &[Task] {
        match self {
            Program::Owned(v) => v,
            Program::Shared(a) => a,
        }
    }
}

/// Progress made by a cell in one cycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Consumed/produced words this cycle.
    Worked,
    /// Required input or output was unavailable.
    Stalled,
    /// Still executing a multi-cycle element (fired earlier, finishes at
    /// `busy_until`); the cell neither consumed nor stalled this cycle.
    Busy,
    /// No tasks remain.
    Done,
}

/// Mutable view of the shared fabric a cell interacts with.
pub struct Fabric<'a, S: Semiring> {
    /// Neighbor links.
    pub links: &'a mut [Link<S::Elem>],
    /// External memory banks.
    pub banks: &'a mut [Bank<S::Elem>],
    /// Host R-block memories.
    pub host: &'a mut Host<S>,
    /// Output collector streams.
    pub outputs: &'a mut [Vec<S::Elem>],
    /// Current cycle.
    pub now: u64,
    /// Active fault injector, if a fault plan was set on the array.
    pub inject: Option<&'a mut FaultInjector>,
    /// Ready-tracking mode: the cell currently stepping. Failed readiness
    /// checks park that cell on the stream it needs; `None` (dense polling)
    /// makes every hook a no-op.
    pub watch: Option<u32>,
    /// Wake-ups scheduled this step: `(cycle, cell)`. Drained by the
    /// simulator's ready-tracking loop.
    pub wakes: &'a mut Vec<(u64, u32)>,
    /// Net words added to bank residence (bank writes minus bank reads),
    /// for incremental `peak_bank_resident` accounting.
    pub bank_delta: isize,
}

impl<S: Semiring> Fabric<'_, S> {
    fn src_ready(&mut self, src: &StreamSrc, cell: usize) -> bool {
        match *src {
            StreamSrc::Bank { bank, slot } => {
                let b = &mut self.banks[bank];
                if b.can_read(slot, self.now) {
                    return true;
                }
                if let Some(watch) = self.watch {
                    match b.front_ready(slot) {
                        // A word is in flight: wake exactly when it lands.
                        Some(ready) => self.wakes.push((ready, watch)),
                        // Empty stream: park until the next write. An
                        // evicted contender is woken next cycle so it can
                        // keep polling (no wake is ever lost).
                        None => {
                            if let Some(evicted) = b.park_reader(slot, watch) {
                                self.wakes.push((self.now + 1, evicted));
                            }
                        }
                    }
                }
                false
            }
            StreamSrc::Link(l) => {
                let link = &mut self.links[l];
                if link.can_read(self.now) {
                    return true;
                }
                if let Some(watch) = self.watch {
                    match link.front_ready() {
                        Some(ready) => self.wakes.push((ready, watch)),
                        None => {
                            if let Some(evicted) = link.park_reader(watch) {
                                self.wakes.push((self.now + 1, evicted));
                            }
                        }
                    }
                }
                false
            }
            StreamSrc::Host { slot } => {
                if self.host.can_read(cell, slot, self.now) {
                    return true;
                }
                if let Some(watch) = self.watch {
                    // A word already in transit has a known arrival: wake
                    // exactly then. With an empty FIFO the cell sleeps and
                    // the next injection bound for it wakes it (the host
                    // injects ≤ 1 word/cycle, and every failed step
                    // re-registers, so no arrival is ever missed).
                    if let Some(ready) = self.host.front_ready(cell, slot) {
                        self.wakes.push((ready, watch));
                    }
                }
                false
            }
        }
    }

    fn src_take(&mut self, src: &StreamSrc, cell: usize) -> S::Elem {
        match *src {
            StreamSrc::Bank { bank, slot } => {
                self.bank_delta -= 1;
                self.banks[bank]
                    .read(slot, self.now)
                    .expect("bank readiness checked")
            }
            StreamSrc::Link(l) => {
                let link = &mut self.links[l];
                let e = link.read(self.now).expect("link readiness checked");
                if let Some(w) = link.take_writer() {
                    // Freed register space is visible to a writer polled
                    // later in this same cycle, one cycle later otherwise
                    // (cells are polled in index order).
                    let at = if w > cell as u32 {
                        self.now
                    } else {
                        self.now + 1
                    };
                    self.wakes.push((at, w));
                }
                e
            }
            StreamSrc::Host { slot } => self
                .host
                .read(cell, slot, self.now)
                .expect("host readiness checked"),
        }
    }

    fn dst_ready(&mut self, dst: &StreamDst) -> bool {
        match *dst {
            StreamDst::Link(l) => {
                let link = &mut self.links[l];
                if link.can_write() {
                    return true;
                }
                if let Some(watch) = self.watch {
                    if let Some(evicted) = link.park_writer(watch) {
                        self.wakes.push((self.now + 1, evicted));
                    }
                }
                false
            }
            StreamDst::Bank { .. } | StreamDst::Output { .. } | StreamDst::Sink => true,
        }
    }

    fn link_write(&mut self, l: usize, e: S::Elem) {
        let link = &mut self.links[l];
        link.write(self.now, e);
        if let Some(w) = link.take_reader() {
            self.wakes.push((self.now + link.delay(), w));
        }
    }

    fn dst_put(&mut self, dst: &StreamDst, e: S::Elem, cell: usize) {
        let mut e = e;
        // Sink writes have no physical register, so no fault can land there
        // (and an unobservable corruption would poison coverage accounting).
        if !matches!(dst, StreamDst::Sink) {
            if let Some(inj) = self.inject.as_deref_mut() {
                if inj.on_emit(self.now, cell) {
                    e = corrupt_value_in_lane::<S>(&e, inj.target_lane());
                }
                if let StreamDst::Link(l) = *dst {
                    match inj.on_link_write(self.now, l) {
                        LinkFate::Deliver => {}
                        LinkFate::Drop => return,
                        LinkFate::Duplicate => {
                            self.link_write(l, e.clone());
                            self.links[l].force_write(self.now, e);
                            return;
                        }
                    }
                }
            }
        }
        match *dst {
            StreamDst::Bank { bank, slot } => {
                let b = &mut self.banks[bank];
                b.write(slot, self.now, e);
                self.bank_delta += 1;
                if let Some(w) = b.take_reader(slot) {
                    // Bank writes land with one cycle of latency.
                    self.wakes.push((self.now + 1, w));
                }
            }
            StreamDst::Link(l) => self.link_write(l, e),
            StreamDst::Output { stream } => self.outputs[stream].push(e),
            StreamDst::Sink => {}
        }
    }
}

/// A processing element executing its task program by dataflow firing.
#[derive(Clone, Debug)]
pub struct Cell<S: Semiring> {
    /// Cell index within the array.
    pub id: usize,
    program: Program,
    /// Next task to execute.
    cursor: usize,
    /// Element index within the current task.
    pos: usize,
    /// The latched head of the current stream (pivot-row element `q`).
    latch: Option<S::Elem>,
    /// Head word awaiting re-emission one cycle after its task's last
    /// consume cycle (the rotation's trailing slot). Keeps every link at
    /// one word per cycle; the slack is what the paper's delay column
    /// absorbs.
    deferred: Option<(StreamDst, S::Elem)>,
    /// First cycle at which the cell is free again after a multi-cycle
    /// element step (`0` when idle or running single-cycle tasks).
    pub busy_until: u64,
    /// Cycles in which this cell consumed or produced words.
    pub busy_cycles: u64,
    /// Cycles in which this cell had a task but could not fire.
    pub stall_cycles: u64,
    /// Useful primitive operations executed.
    pub useful_ops: u64,
    /// Task spans recorded when tracing is enabled.
    pub spans: Option<Vec<crate::trace::TaskSpan>>,
    cur_start: u64,
}

impl<S: Semiring> Cell<S> {
    /// Creates a cell with an empty program.
    pub fn new(id: usize) -> Self {
        Self {
            id,
            program: Program::Owned(Vec::new()),
            cursor: 0,
            pos: 0,
            latch: None,
            deferred: None,
            busy_until: 0,
            busy_cycles: 0,
            stall_cycles: 0,
            useful_ops: 0,
            spans: None,
            cur_start: 0,
        }
    }

    /// Appends a task to the cell's program.
    ///
    /// # Panics
    /// Panics if the cell runs a shared compiled program.
    pub fn push_task(&mut self, t: Task) {
        debug_assert!(t.len >= 1, "streams must be non-empty");
        match &mut self.program {
            Program::Owned(v) => v.push(t),
            Program::Shared(_) => panic!("cannot extend a shared compiled program"),
        }
    }

    /// Installs a compiled program shared by reference (replacing any
    /// previous program) and rewinds execution to its start.
    pub fn set_program(&mut self, tasks: Arc<[Task]>) {
        self.program = Program::Shared(tasks);
        self.cursor = 0;
        self.pos = 0;
    }

    /// Remaining task count (a pending deferred head counts as work).
    pub fn pending(&self) -> usize {
        (self.program.tasks().len() - self.cursor) + usize::from(self.deferred.is_some())
    }

    /// Longest per-element duration in this cell's program (`1` when the
    /// program is empty). Bounds how long a busy cell can stay silent, so
    /// the run loops fold it into their deadlock grace period.
    pub fn max_task_duration(&self) -> u64 {
        self.program
            .tasks()
            .iter()
            .map(|t| u64::from(t.duration))
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// Rewinds the program and clears all dynamic state and counters,
    /// keeping the program itself (shared or owned) and allocations.
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.pos = 0;
        self.latch = None;
        self.deferred = None;
        self.busy_until = 0;
        self.busy_cycles = 0;
        self.stall_cycles = 0;
        self.useful_ops = 0;
        if let Some(spans) = &mut self.spans {
            spans.clear();
        }
        self.cur_start = 0;
    }

    /// Describes what this cell is waiting on, for deadlock reports.
    /// `None` when the cell has no remaining work.
    pub fn describe_blocked(&self) -> Option<String> {
        if let Some((dst, _)) = &self.deferred {
            return Some(format!(
                "cell {}: deferred head write to {dst:?} blocked",
                self.id
            ));
        }
        let t = self.program.tasks().get(self.cursor)?;
        Some(format!(
            "cell {}: {:?} (k={}, h={}) stalled at element {}/{}; \
             col_in={:?} pivot_in={:?} col_out={:?} pivot_out={:?}",
            self.id,
            t.kind,
            t.label.k,
            t.label.h,
            self.pos,
            t.len,
            t.col_in,
            t.pivot_in,
            t.col_out,
            t.pivot_out
        ))
    }

    /// Executes at most one stream element of the current task.
    pub fn step(&mut self, fab: &mut Fabric<'_, S>) -> Step {
        // A multi-cycle element occupies the ALU until `busy_until`; the
        // cell cannot consume, stall or flush before then.
        if fab.now < self.busy_until {
            if self.pending() == 0 {
                return Step::Done;
            }
            return Step::Busy;
        }
        // Flush the previous task's trailing head first; it uses the output
        // port this cycle, so a failed flush stalls the cell.
        if let Some((dst, _)) = &self.deferred {
            let dst = *dst;
            if fab.dst_ready(&dst) {
                let (dst, e) = self.deferred.take().expect("checked above");
                fab.dst_put(&dst, e, self.id);
                self.busy_cycles += 1;
                // The current task's first element may fire in the same
                // cycle (r = 0 never writes the column port); fall through.
                if self.program.tasks().len() == self.cursor {
                    return Step::Worked;
                }
            } else {
                self.stall_cycles += 1;
                return Step::Stalled;
            }
        }
        let Some(task) = self.program.tasks().get(self.cursor) else {
            return Step::Done;
        };
        let cell = self.id;
        let r = self.pos;
        let n = task.len;
        let last = r + 1 == n;

        // Readiness of every lane this element touches.
        let need_col = matches!(
            task.kind,
            TaskKind::PivotHead
                | TaskKind::Fuse
                | TaskKind::DivHead
                | TaskKind::ElimFuse
                | TaskKind::Pass
                | TaskKind::LoadAcc
                | TaskKind::Mac
        );
        let need_piv = matches!(
            task.kind,
            TaskKind::Fuse | TaskKind::ElimFuse | TaskKind::DelayTail | TaskKind::Mac
        );
        let emits_col = match task.kind {
            TaskKind::Fuse | TaskKind::ElimFuse | TaskKind::DelayTail => r >= 1, // head deferred
            TaskKind::Pass | TaskKind::EmitAcc => true,
            TaskKind::Mac => task.col_out.is_some(),
            TaskKind::PivotHead | TaskKind::DivHead | TaskKind::LoadAcc => false,
        };
        let emits_piv = match task.kind {
            TaskKind::PivotHead | TaskKind::DivHead => true,
            TaskKind::Fuse | TaskKind::ElimFuse | TaskKind::Mac => task.pivot_out.is_some(),
            _ => false,
        };

        let col_in = task.col_in;
        let piv_in = task.pivot_in;
        let col_out = task.col_out;
        let piv_out = task.pivot_out;

        let ready = (!need_col || col_in.as_ref().is_some_and(|s| fab.src_ready(s, cell)))
            && (!need_piv || piv_in.as_ref().is_some_and(|s| fab.src_ready(s, cell)))
            && (!emits_col || col_out.as_ref().is_none_or(|d| fab.dst_ready(d)))
            && (!emits_piv || piv_out.as_ref().is_none_or(|d| fab.dst_ready(d)));
        if !ready {
            self.stall_cycles += 1;
            return Step::Stalled;
        }

        let kind = task.kind;
        let useful = task.useful_ops;
        let dur = task.duration.max(1);
        let head_dst = task.head_out.or(task.col_out);
        let c = if need_col {
            Some(fab.src_take(col_in.as_ref().expect("col_in required"), cell))
        } else {
            None
        };
        let p = if need_piv {
            Some(fab.src_take(piv_in.as_ref().expect("pivot_in required"), cell))
        } else {
            None
        };

        match kind {
            TaskKind::PivotHead => {
                let c = c.expect("pivot head consumes the column");
                if let Some(d) = &piv_out {
                    fab.dst_put(d, c, cell);
                }
            }
            TaskKind::Fuse | TaskKind::ElimFuse => {
                let c = c.expect("fuse consumes the column");
                let p = p.expect("fuse consumes the pivot");
                if r == 0 {
                    // Latch the pivot-row element q = x[k][j] (for the
                    // elimination variant: the finished element u_kh).
                    self.latch = Some(c);
                } else {
                    let q = self.latch.as_ref().expect("head latched at r=0");
                    let v = if kind == TaskKind::ElimFuse {
                        S::elim(&c, &p, q)
                    } else {
                        S::fuse(&c, &p, q)
                    };
                    if let Some(d) = &col_out {
                        fab.dst_put(d, v, cell);
                    }
                }
                if last {
                    // Re-emit the latched head as the final (rotated) slot,
                    // one cycle later (deferred write).
                    let q = self.latch.take().expect("head latched at r=0");
                    if let Some(d) = &head_dst {
                        self.deferred = Some((*d, q));
                    }
                }
                if let Some(d) = &piv_out {
                    fab.dst_put(d, p, cell);
                }
            }
            TaskKind::DivHead => {
                let c = c.expect("div head consumes the column");
                if r == 0 {
                    // Latch the pivot element x_kk and echo it unchanged.
                    self.latch = Some(c.clone());
                    if let Some(d) = &piv_out {
                        fab.dst_put(d, c, cell);
                    }
                } else {
                    let q = self.latch.as_ref().expect("pivot latched at r=0");
                    let v = S::div(&c, q);
                    if let Some(d) = &piv_out {
                        fab.dst_put(d, v, cell);
                    }
                }
                if last {
                    self.latch = None;
                }
            }
            TaskKind::DelayTail => {
                let p = p.expect("delay tail consumes the pivot");
                if r == 0 {
                    self.latch = Some(p);
                } else if let Some(d) = &col_out {
                    fab.dst_put(d, p, cell);
                }
                if last {
                    let head = self.latch.take().expect("head latched at r=0");
                    if let Some(d) = &col_out {
                        self.deferred = Some((*d, head));
                    }
                }
            }
            TaskKind::Pass => {
                let c = c.expect("pass consumes the column");
                if let Some(d) = &col_out {
                    fab.dst_put(d, c, cell);
                }
            }
            TaskKind::LoadAcc => {
                self.latch = Some(c.expect("load consumes one word"));
            }
            TaskKind::Mac => {
                let a = c.expect("mac consumes the a operand");
                let b = p.expect("mac consumes the b operand");
                let acc = self.latch.take().unwrap_or_else(S::zero);
                self.latch = Some(S::fuse(&acc, &a, &b));
                if let Some(d) = &col_out {
                    fab.dst_put(d, a, cell);
                }
                if let Some(d) = &piv_out {
                    fab.dst_put(d, b, cell);
                }
            }
            TaskKind::EmitAcc => {
                let acc = self.latch.take().unwrap_or_else(S::zero);
                if let Some(d) = &col_out {
                    fab.dst_put(d, acc, cell);
                }
            }
        }

        self.busy_cycles += u64::from(dur);
        if dur > 1 {
            self.busy_until = fab.now + u64::from(dur);
        }
        let _ = kind;
        if self.pos == 0 {
            self.cur_start = fab.now;
        }
        self.pos += 1;
        if self.pos == n {
            self.useful_ops += useful;
            if let Some(spans) = &mut self.spans {
                let label = self.program.tasks()[self.cursor].label;
                spans.push(crate::trace::TaskSpan {
                    cell: self.id,
                    start: self.cur_start,
                    end: fab.now + u64::from(dur),
                    label,
                });
            }
            self.pos = 0;
            self.cursor += 1;
        }
        Step::Worked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::Bool;

    #[test]
    fn task_label_default() {
        let l = TaskLabel::default();
        assert_eq!((l.k, l.h), (0, 0));
    }

    #[test]
    fn cell_done_without_tasks() {
        let mut cell = Cell::<Bool>::new(0);
        let mut links: Vec<Link<bool>> = vec![];
        let mut banks: Vec<Bank<bool>> = vec![];
        let mut host = Host::<Bool>::new(0, 0);
        let mut outputs: Vec<Vec<bool>> = vec![];
        let mut wakes = Vec::new();
        let mut fab = Fabric::<Bool> {
            links: &mut links,
            banks: &mut banks,
            host: &mut host,
            outputs: &mut outputs,
            now: 0,
            inject: None,
            watch: None,
            wakes: &mut wakes,
            bank_delta: 0,
        };
        assert_eq!(cell.step(&mut fab), Step::Done);
    }

    #[test]
    fn reset_rewinds_a_shared_program() {
        let mut cell = Cell::<Bool>::new(3);
        let tasks: Arc<[Task]> = vec![Task {
            kind: TaskKind::Pass,
            len: 1,
            col_in: Some(StreamSrc::Bank { bank: 0, slot: 0 }),
            pivot_in: None,
            col_out: Some(StreamDst::Sink),
            pivot_out: None,
            head_out: None,
            duration: 1,
            useful_ops: 0,
            label: TaskLabel::default(),
        }]
        .into();
        cell.set_program(Arc::clone(&tasks));
        assert_eq!(cell.pending(), 1);
        cell.busy_cycles = 5;
        cell.reset();
        assert_eq!(cell.pending(), 1, "program survives reset");
        assert_eq!(cell.busy_cycles, 0);
    }
}
