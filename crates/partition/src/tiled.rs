//! Tiled closure of a reverse-topologically ordered DAG: sparse structure
//! outside, dense systolic kernels inside.
//!
//! The condensed DAG arriving from the sparse data plane has a special
//! shape: component ids are reverse-topological, so every edge runs from
//! a higher id to a lower one and the adjacency matrix is strictly lower
//! triangular. Cutting it into `t×t` tiles (`g = ⌈c/t⌉` per side) keeps
//! that shape at the block level, which buys two things:
//!
//! * **Independent diagonals.** Any path stays within strictly
//!   decreasing ids, so a path between two vertices of diagonal block `I`
//!   can never leave the block's id range and return. Each diagonal tile
//!   closes on its own — all `g` closures are one batch for a systolic
//!   engine ([`ClosureEngine::closure_many`]), exactly the G-set batching
//!   the paper's partitioning scheme feeds fixed arrays with.
//! * **A closed recurrence for the rest.** With `D[I] = (A[I][I])*`,
//!   decomposing any block-`I`→block-`J` path at its first edge leaving
//!   block `I` gives
//!   `C[I][J] = D[I] ⊗ Σ_{J ≤ K < I} A[I][K] ⊗ C[K][J]`,
//!   computable tile-by-tile for `I` ascending.
//!
//! The tile-skip argument: a term of the sum contributes nothing when
//! `A[I][K]` is all-zero (no edge from block `I` into block `K`) or
//! `C[K][J]` is absent (block `K` reaches nothing in block `J`). Sparse
//! DAGs leave most tiles empty, so most of the `O(g³)` products are
//! skipped — [`TileStats`] counts exactly how many.

use crate::engine::{ClosureEngine, EngineError};
use systolic_semiring::{BitMatrix, Bool, DenseMatrix};

/// Occupancy accounting of one tiled closure run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TileStats {
    /// Tile size `t`.
    pub tile: usize,
    /// Tiles per side `g = ⌈c/t⌉`.
    pub grid: usize,
    /// Lower-triangle tile slots (`g(g+1)/2`) — the only ones that can be
    /// occupied.
    pub total_tiles: usize,
    /// Input tiles holding at least one edge (diagonal tiles count even
    /// when edgeless: their closure is the identity).
    pub occupied_input_tiles: usize,
    /// Output tiles holding at least one bit after closure.
    pub occupied_output_tiles: usize,
    /// Diagonal closures performed (always `g`).
    pub diag_closures: usize,
    /// Off-diagonal tile products `A[I][K] ⊗ C[K][J]` actually computed.
    pub tile_muls: usize,
    /// Products skipped because `A[I][K]` was empty or `C[K][J]` absent.
    pub skipped_muls: usize,
}

impl TileStats {
    /// Fraction of lower-triangle tile slots occupied in the output.
    pub fn output_occupancy(&self) -> f64 {
        if self.total_tiles == 0 {
            0.0
        } else {
            self.occupied_output_tiles as f64 / self.total_tiles as f64
        }
    }
}

fn tile_index(g: usize, i: usize, j: usize) -> usize {
    i * g + j
}

/// Builds the `t×t` input tiles (padded square, lower triangle only) from
/// the DAG edge list. Returns `None` for all-zero off-diagonal slots.
fn build_tiles(c: usize, edges: &[(u32, u32)], t: usize, g: usize) -> Vec<Option<BitMatrix>> {
    let mut tiles: Vec<Option<BitMatrix>> = (0..g * g).map(|_| None).collect();
    for &(a, b) in edges {
        let (a, b) = (a as usize, b as usize);
        assert!(a < c && b < c, "edge ({a}, {b}) outside 0..{c}");
        assert!(a > b, "edge ({a}, {b}) must be reverse-topological (a > b)");
        let (ti, tj) = (a / t, b / t);
        let slot = &mut tiles[tile_index(g, ti, tj)];
        let m = slot.get_or_insert_with(|| BitMatrix::zeros(t));
        m.set(a % t, b % t, true);
    }
    tiles
}

/// Closes the reverse-topologically ordered DAG on `c` vertices given by
/// `edges` (every edge `(a, b)` must have `a > b`), tiling the matrix at
/// `t×t` and running the dense per-tile work through software
/// [`BitMatrix`] kernels. Returns the reflexive closure and the tile
/// accounting.
///
/// # Panics
/// Panics if `t == 0` or any edge is out of range / not reverse-topological.
pub fn tiled_dag_closure(c: usize, edges: &[(u32, u32)], t: usize) -> (BitMatrix, TileStats) {
    tiled_closure_impl(c, edges, t, None).expect("software tiling is infallible")
}

/// Like [`tiled_dag_closure`], but dispatches all `g` diagonal-tile
/// closures as one [`ClosureEngine::closure_many`] batch — the systolic
/// engines ([`crate::PackedEngine`], [`crate::LinearEngine`], …) stay the
/// per-tile workhorse while the tiling layer handles the sparse skips.
///
/// # Errors
/// Propagates the engine's [`EngineError`] unchanged.
pub fn tiled_dag_closure_with_engine(
    c: usize,
    edges: &[(u32, u32)],
    t: usize,
    engine: &dyn ClosureEngine<Bool>,
) -> Result<(BitMatrix, TileStats), EngineError> {
    tiled_closure_impl(c, edges, t, Some(engine))
}

fn tiled_closure_impl(
    c: usize,
    edges: &[(u32, u32)],
    t: usize,
    engine: Option<&dyn ClosureEngine<Bool>>,
) -> Result<(BitMatrix, TileStats), EngineError> {
    assert!(t > 0, "tile size must be positive");
    if c == 0 {
        return Ok((BitMatrix::zeros(0), TileStats::default()));
    }
    let g = c.div_ceil(t);
    let tiles = build_tiles(c, edges, t, g);
    let mut stats = TileStats {
        tile: t,
        grid: g,
        total_tiles: g * (g + 1) / 2,
        ..TileStats::default()
    };
    // Diagonal tiles are counted occupied even when empty (identity
    // closure); off-diagonal only when they hold an edge.
    for i in 0..g {
        for j in 0..=i {
            if i == j || tiles[tile_index(g, i, j)].is_some() {
                stats.occupied_input_tiles += 1;
            }
        }
    }

    // D[I] = (A[I][I])* for every diagonal block — independent, so one
    // engine batch closes them all.
    let diag: Vec<BitMatrix> = match engine {
        Some(eng) => {
            let batch: Vec<DenseMatrix<Bool>> = (0..g)
                .map(|i| match &tiles[tile_index(g, i, i)] {
                    Some(m) => m.to_dense(),
                    None => DenseMatrix::zeros(t, t),
                })
                .collect();
            let (closed, _stats) = eng.closure_many(&batch)?;
            closed.iter().map(BitMatrix::from_dense).collect()
        }
        None => (0..g)
            .map(|i| match &tiles[tile_index(g, i, i)] {
                Some(m) => m.transitive_closure(),
                None => BitMatrix::identity(t),
            })
            .collect(),
    };
    stats.diag_closures = g;

    // C tiles of the lower triangle, None = all-zero (skipped downstream).
    let mut closed: Vec<Option<BitMatrix>> = (0..g * g).map(|_| None).collect();
    for (i, d) in diag.iter().enumerate() {
        closed[tile_index(g, i, i)] = Some(d.clone());
    }
    for i in 0..g {
        for j in (0..i).rev() {
            // S = Σ_{j ≤ k < i} A[i][k] ⊗ C[k][j]
            let mut sum: Option<BitMatrix> = None;
            for k in j..i {
                let (Some(a_ik), Some(c_kj)) =
                    (&tiles[tile_index(g, i, k)], &closed[tile_index(g, k, j)])
                else {
                    stats.skipped_muls += 1;
                    continue;
                };
                sum.get_or_insert_with(|| BitMatrix::zeros(t))
                    .or_mul_acc(a_ik, c_kj);
                stats.tile_muls += 1;
            }
            let Some(sum) = sum else { continue };
            if sum.is_zero() {
                continue;
            }
            // C[i][j] = D[i] ⊗ S.
            let mut out = BitMatrix::zeros(t);
            out.or_mul_acc(&diag[i], &sum);
            stats.tile_muls += 1;
            if !out.is_zero() {
                closed[tile_index(g, i, j)] = Some(out);
            }
        }
    }
    stats.occupied_output_tiles = (0..g)
        .flat_map(|i| (0..=i).map(move |j| (i, j)))
        .filter(|&(i, j)| closed[tile_index(g, i, j)].is_some())
        .count();

    // Assemble the c×c closure from the occupied tiles, masking padding.
    let mut out = BitMatrix::zeros(c);
    for i in 0..g {
        for j in 0..=i {
            let Some(tile) = &closed[tile_index(g, i, j)] else {
                continue;
            };
            for r in 0..t {
                let gi = i * t + r;
                if gi >= c {
                    break;
                }
                for (wi, &word) in tile.row_words(r).iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let col = wi * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let gj = j * t + col;
                        if gj < c {
                            out.set(gi, gj, true);
                        }
                    }
                }
            }
        }
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::PackedEngine;

    /// Reference: ascending-id row-union sweep (the sparse solver's exact
    /// kernel).
    fn sweep_closure(c: usize, edges: &[(u32, u32)]) -> BitMatrix {
        let mut m = BitMatrix::identity(c);
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); c];
        for &(a, b) in edges {
            succs[a as usize].push(b);
        }
        for (a, row) in succs.iter().enumerate() {
            for &b in row {
                m.or_row_into(b as usize, a);
            }
        }
        m
    }

    fn random_dag_edges(c: usize, per_vertex: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut rng = systolic_util::Rng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 1..c {
            for _ in 0..per_vertex.min(a) {
                let b = rng.gen_usize(a);
                edges.push((a as u32, b as u32));
            }
        }
        edges
    }

    #[test]
    fn tiled_matches_sweep_at_boundary_tile_sizes() {
        let c = 37;
        let edges = random_dag_edges(c, 2, 11);
        let want = sweep_closure(c, &edges);
        // t = 1, t−1, t, t+1 around an even divisor, plus oversize.
        for t in [1usize, 7, 8, 9, 37, 64] {
            let (got, stats) = tiled_dag_closure(c, &edges, t);
            assert_eq!(got, want, "tile size {t}");
            assert_eq!(stats.grid, c.div_ceil(t));
            assert_eq!(stats.diag_closures, stats.grid);
        }
    }

    #[test]
    fn engine_dispatch_matches_software_tiling() {
        let c = 30;
        let edges = random_dag_edges(c, 2, 23);
        let engine = PackedEngine::new(4);
        for t in [5usize, 8, 30] {
            let (sw, sw_stats) = tiled_dag_closure(c, &edges, t);
            let (hw, hw_stats) = tiled_dag_closure_with_engine(c, &edges, t, &engine).unwrap();
            assert_eq!(sw, hw, "tile size {t}");
            assert_eq!(sw_stats, hw_stats);
        }
    }

    #[test]
    fn empty_dag_closes_to_identity() {
        let (m, stats) = tiled_dag_closure(10, &[], 4);
        assert_eq!(m, BitMatrix::identity(10));
        // Only diagonal tiles occupied; every off-diagonal product skipped.
        assert_eq!(stats.occupied_input_tiles, stats.grid);
        assert_eq!(stats.occupied_output_tiles, stats.grid);
        assert_eq!(stats.tile_muls, 0);
    }

    #[test]
    fn fully_dense_dag_fills_lower_triangle() {
        // Complete reverse-topological DAG: every (a, b) with a > b.
        let c = 13;
        let mut edges = Vec::new();
        for a in 0..c as u32 {
            for b in 0..a {
                edges.push((a, b));
            }
        }
        let (m, stats) = tiled_dag_closure(c, &edges, 4);
        let mut want = BitMatrix::identity(c);
        for &(a, b) in &edges {
            want.set(a as usize, b as usize, true);
        }
        assert_eq!(m, want);
        assert_eq!(stats.occupied_output_tiles, stats.total_tiles);
        assert_eq!(stats.skipped_muls, 0);
        assert!((stats.output_occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skips_are_counted_on_sparse_input() {
        // A single long-range edge leaves almost every tile empty.
        let (m, stats) = tiled_dag_closure(64, &[(63, 0)], 8);
        assert!(m.get(63, 0));
        assert_eq!(stats.tile_muls, 2); // A[7][0] ⊗ C[0][0], then D[7] ⊗ S
        assert!(stats.skipped_muls > 0);
        assert_eq!(stats.occupied_output_tiles, stats.grid + 1);
    }

    #[test]
    fn zero_vertices() {
        let (m, stats) = tiled_dag_closure(0, &[], 4);
        assert_eq!(m.n(), 0);
        assert_eq!(stats.total_tiles, 0);
    }

    #[test]
    #[should_panic(expected = "reverse-topological")]
    fn forward_edge_panics() {
        tiled_dag_closure(4, &[(1, 2)], 2);
    }
}
