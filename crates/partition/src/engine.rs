//! The common engine interface and shared task-construction helpers.

use systolic_arraysim::{RunStats, SimError};
use systolic_semiring::{reflexive, DenseMatrix, PathSemiring};

/// Engine failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Underlying simulation failed (deadlock/timeout indicates a schedule
    /// or wiring bug — engines are expected to be deadlock-free).
    Sim(SimError),
    /// The input was rejected (shape, size constraints).
    BadInput(String),
    /// A result was detected as corrupt and could not be recovered —
    /// either the engine produced a malformed output (e.g. an incomplete
    /// column under fault injection) or a recovery wrapper exhausted its
    /// retry/bypass budget with the verifier still rejecting the result.
    Corrupt {
        /// Batch index of the corrupt instance.
        instance: usize,
        /// What was detected and what recovery was attempted.
        detail: String,
    },
    /// An admission queue refused the request because it is at capacity —
    /// transient overload, not a malformed request: the caller should shed
    /// load (answer `ERR BUSY`) and retry later rather than treat the
    /// input as bad.
    Busy {
        /// Requests already pending.
        pending: usize,
        /// The queue's capacity.
        cap: usize,
    },
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Sim(e) => write!(f, "simulation failed: {e}"),
            EngineError::BadInput(s) => write!(f, "bad input: {s}"),
            EngineError::Corrupt { instance, detail } => {
                write!(f, "corrupt result for instance {instance}: {detail}")
            }
            EngineError::Busy { pending, cap } => {
                write!(f, "BUSY admission queue at capacity ({pending}/{cap})")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// An array engine computing algebraic path closures.
pub trait ClosureEngine<S: PathSemiring> {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Number of processing cells in the array.
    fn cells(&self) -> usize;

    /// Computes `A⁺` (with reflexive diagonal) for a batch of equally-sized
    /// problem instances, chained through the array, returning the results
    /// and the measured run statistics.
    ///
    /// # Errors
    /// [`EngineError::BadInput`] on shape mismatch;
    /// [`EngineError::Sim`] if the simulation deadlocks or times out.
    fn closure_many(
        &self,
        mats: &[DenseMatrix<S>],
    ) -> Result<(Vec<DenseMatrix<S>>, RunStats), EngineError>;

    /// Convenience wrapper for a single instance.
    ///
    /// # Errors
    /// See [`ClosureEngine::closure_many`].
    fn closure(&self, a: &DenseMatrix<S>) -> Result<(DenseMatrix<S>, RunStats), EngineError> {
        let (mut v, stats) = self.closure_many(std::slice::from_ref(a))?;
        Ok((v.pop().expect("one instance in, one out"), stats))
    }

    /// Smallest batch slice this engine processes at full efficiency.
    ///
    /// Batch sharders (e.g. [`crate::ParallelEngine`]) hand out work in
    /// multiples of this: 1 for scalar engines (the default), the lane
    /// count for lane-packed engines, whose throughput collapses when a
    /// sharder feeds them one instance — one lane — at a time.
    fn preferred_chunk(&self) -> usize {
        1
    }
}

/// Largest batch the 16-bit instance field of [`stream_key`] can address.
pub(crate) const MAX_BATCH: usize = 1 << 16;

/// Largest problem size the 24-bit `k`/`h` fields of [`stream_key`] can
/// address (`h` ranges up to `2n` in the skewed schedules).
pub(crate) const MAX_N: usize = (1 << 23) - 1;

/// Validates a batch: non-empty, within the stream-key addressing limits,
/// all square and of the same size `n ≥ 2`. Returns `n`.
pub(crate) fn validate_batch<S: PathSemiring>(
    mats: &[DenseMatrix<S>],
) -> Result<usize, EngineError> {
    let Some(first) = mats.first() else {
        return Err(EngineError::BadInput("empty batch".into()));
    };
    if mats.len() > MAX_BATCH {
        return Err(EngineError::BadInput(format!(
            "batch of {} instances exceeds the {MAX_BATCH} the 16-bit \
             stream-key instance field can address",
            mats.len()
        )));
    }
    let n = first.rows();
    if n < 2 {
        return Err(EngineError::BadInput(format!(
            "problem size n={n} must be ≥ 2"
        )));
    }
    if n > MAX_N {
        return Err(EngineError::BadInput(format!(
            "problem size n={n} exceeds the {MAX_N} the 24-bit stream-key \
             coordinate fields can address"
        )));
    }
    for (idx, a) in mats.iter().enumerate() {
        if !a.is_square() || a.rows() != n {
            return Err(EngineError::BadInput(format!(
                "instance {idx} is {}x{}, expected {n}x{n}",
                a.rows(),
                a.cols()
            )));
        }
    }
    Ok(n)
}

/// Validates a batch and returns `n` plus the reflexive copies the arrays
/// consume (the paper's `a_ii = 1` convention).
pub(crate) fn prepare_batch<S: PathSemiring>(
    mats: &[DenseMatrix<S>],
) -> Result<(usize, Vec<DenseMatrix<S>>), EngineError> {
    let n = validate_batch(mats)?;
    Ok((n, mats.iter().map(reflexive).collect()))
}

/// Ideal cycle count per problem instance on `m` cells: `n²(n+1)/m`.
///
/// The schedule executes `n(n+1)` G-nodes of `n` cycles each, spread over
/// `m` cells with data transfer overlapped with computation, so the ideal
/// (zero-stall, perfectly balanced) runtime is `n²(n+1)/m` cycles — the
/// reciprocal of the paper's §4 throughput `T = m/(n²(n+1))`. Engines
/// derive their cycle budgets from this one formula: the linear and grid
/// engines add 1 for the pipeline-fill rounding slack, and the fixed linear
/// array is the `m = 1` (per-column) case.
#[inline]
pub(crate) fn ideal_cycles_per_instance(n: usize, m: usize) -> u64 {
    (n as u64) * (n as u64) * (n as u64 + 1) / m as u64
}

/// Packs `(instance, k, h)` into a unique stream key.
///
/// The field widths are enforced by [`validate_batch`] before any engine
/// builds tasks, so in-range arguments are an invariant here, not a hope.
#[inline]
pub(crate) fn stream_key(inst: usize, k: usize, h: usize) -> u64 {
    debug_assert!(
        inst < MAX_BATCH && k < (1 << 24) && h < (1 << 24),
        "stream_key out of range: inst={inst} k={k} h={h}"
    );
    ((inst as u64) << 48) | ((k as u64) << 24) | h as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::Bool;

    #[test]
    fn prepare_batch_rejects_empty_and_small() {
        let err = prepare_batch::<Bool>(&[]).unwrap_err();
        assert!(matches!(err, EngineError::BadInput(_)));
        let a = DenseMatrix::<Bool>::zeros(1, 1);
        assert!(prepare_batch::<Bool>(&[a]).is_err());
    }

    #[test]
    fn prepare_batch_rejects_mixed_sizes() {
        let a = DenseMatrix::<Bool>::zeros(3, 3);
        let b = DenseMatrix::<Bool>::zeros(4, 4);
        let err = prepare_batch::<Bool>(&[a, b]).unwrap_err();
        assert!(matches!(err, EngineError::BadInput(_)));
    }

    #[test]
    fn prepare_batch_makes_reflexive() {
        let a = DenseMatrix::<Bool>::zeros(3, 3);
        let (n, v) = prepare_batch::<Bool>(&[a]).unwrap();
        assert_eq!(n, 3);
        assert!(*v[0].get(1, 1));
    }

    #[test]
    fn oversized_batch_is_rejected_at_the_boundary() {
        let a = DenseMatrix::<Bool>::zeros(2, 2);
        let at_limit: Vec<_> = vec![a.clone(); MAX_BATCH];
        assert!(validate_batch::<Bool>(&at_limit).is_ok());
        let over: Vec<_> = vec![a; MAX_BATCH + 1];
        match validate_batch::<Bool>(&over) {
            Err(EngineError::BadInput(msg)) => assert!(msg.contains("16-bit"), "{msg}"),
            other => panic!("expected BadInput, got {other:?}"),
        }
    }

    #[test]
    fn ideal_cycles_is_n_squared_n_plus_one_over_m() {
        // Pin the budget formula: n²(n+1)/m, integer division.
        assert_eq!(ideal_cycles_per_instance(6, 3), 36 * 7 / 3);
        assert_eq!(ideal_cycles_per_instance(6, 3), 84);
        assert_eq!(ideal_cycles_per_instance(4, 1), 16 * 5);
        assert_eq!(ideal_cycles_per_instance(5, 4), 25 * 6 / 4);
        assert_eq!(ideal_cycles_per_instance(5, 4), 37, "rounds down");
    }

    #[test]
    fn stream_keys_unique() {
        let mut seen = std::collections::HashSet::new();
        for inst in 0..3 {
            for k in 0..9 {
                for h in 0..19 {
                    assert!(seen.insert(stream_key(inst, k, h)));
                }
            }
        }
    }
}
