//! Checkpoint-retry-bypass recovery around any closure engine.
//!
//! The escalation ladder (§5's fault-tolerance argument made operational):
//!
//! 1. **Checkpoint** — inputs are immutable at instance boundaries, so the
//!    checkpoint of an instance is simply its input matrix; a failed
//!    instance re-runs without disturbing its neighbors.
//! 2. **Verify** — every result passes the [`Verifier`]'s semiring
//!    checksum and closure invariants before it is accepted.
//! 3. **Retry** — a rejected (or structurally failed) attempt re-runs up
//!    to [`RecoveryPolicy::max_retries`] times. Transient-fault plans
//!    reseed per attempt, so a retry faces fresh (not replayed) faults.
//! 4. **Bypass** — when one configuration keeps failing, the faults of the
//!    rejected attempts are blamed on cells ([`FaultAware::blame_cell`]);
//!    the most-struck cell is reclassified as *permanently* faulty and the
//!    batch resumes on a [`FaultyLinearEngine`] bypass configuration
//!    ([`FaultAware::bypass_plan`]) with a fresh retry budget. Bypassed
//!    spare configurations are modelled as clean hardware (no fault plan):
//!    escalation replaces the marginal cell, it does not re-roll it.
//!
//! Accounting: the merged [`RunStats`] of the accepted attempts (folded in
//! instance order, so deterministic) carries a `FaultReport` that also
//! includes the injected/detected counts of every *rejected* attempt, plus
//! the retry and bypass totals.
//!
//! Retries are cheap: the wrapped engine memoizes its compiled schedule
//! (see [`crate::plan::CompiledPlan`]), so a retry replays the cached plan
//! on a reset simulator instead of rebuilding the G-set schedule per
//! attempt. Only an escalation to a new bypass configuration (a different
//! healthy-cell topology) compiles a new plan.

use crate::engine::{ClosureEngine, EngineError};
use crate::fault::FaultyLinearEngine;
use crate::verify::Verifier;
use std::collections::HashMap;
use std::sync::Mutex;
use systolic_arraysim::{FaultEvent, FaultReport, RunStats};
use systolic_semiring::{DenseMatrix, PathSemiring};

/// An engine that can report and react to runtime faults.
///
/// The default methods describe an engine with no fault instrumentation:
/// nothing to report, no blame, no bypass — [`RecoveringEngine`] over such
/// an engine still verifies and retries, it just cannot escalate.
/// [`crate::PackedEngine`] implements this by delegation: armed fault
/// plans run on its inner scalar engine (lane packing and fault injection
/// don't compose, see DESIGN §10), so blame and bypass see exactly the
/// scalar engine's events.
pub trait FaultAware<S: PathSemiring>: ClosureEngine<S> {
    /// Faults applied during the engine's most recent run (success or
    /// failure); empty for uninstrumented engines.
    fn recent_faults(&self) -> Vec<FaultEvent> {
        Vec::new()
    }

    /// Maps a fault event to the physical cell it indicts, if any (a fault
    /// on link `i` indicts its writer cell `i`; a pivot-boundary bank has
    /// no single owner).
    fn blame_cell(&self, _event: &FaultEvent) -> Option<usize> {
        None
    }

    /// A degraded configuration with the given physical cells bypassed,
    /// if this engine family supports bypass reconfiguration.
    fn bypass_plan(&self, _faulty: &[usize]) -> Option<FaultyLinearEngine> {
        None
    }
}

// Engines without fault instrumentation: defaults only (verify + retry,
// no blame, no bypass).
impl<S: PathSemiring> FaultAware<S> for crate::grid::GridEngine {}
impl<S: PathSemiring> FaultAware<S> for crate::fixed::FixedArrayEngine {}
impl<S: PathSemiring> FaultAware<S> for crate::fixed::FixedLinearEngine {}
impl<S: PathSemiring> FaultAware<S> for crate::lsgp::LsgpEngine {}

/// What to do when an instance keeps failing after `max_retries` retries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Escalation {
    /// Give up with [`EngineError::Corrupt`].
    Fail,
    /// Reclassify the most-blamed cell as permanently faulty, reconfigure
    /// onto the bypass path and grant a fresh retry budget.
    #[default]
    Bypass,
}

/// Bounds on the recovery effort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries per configuration (so `max_retries + 1` attempts before an
    /// escalation decision).
    pub max_retries: u32,
    /// What happens when a configuration's budget is exhausted.
    pub escalation: Escalation,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            escalation: Escalation::Bypass,
        }
    }
}

/// Per-instance recovery record, for campaign accounting.
#[derive(Clone, Debug, Default)]
pub struct InstanceOutcome {
    /// Batch index.
    pub instance: usize,
    /// Attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// Faults injected during the attempt whose result was accepted.
    pub accepted_events: Vec<FaultEvent>,
    /// Faults injected during rejected attempts (all were detected).
    pub rejected_events: Vec<FaultEvent>,
    /// Verifier/engine diagnostics of the rejected attempts.
    pub rejections: Vec<String>,
    /// Physical cells bypassed by the time this instance was accepted.
    pub bypassed: Vec<usize>,
}

/// A [`ClosureEngine`] wrapper that verifies, retries and escalates.
#[derive(Debug)]
pub struct RecoveringEngine<E> {
    inner: E,
    verifier: Verifier,
    policy: RecoveryPolicy,
    outcomes: Mutex<Vec<InstanceOutcome>>,
}

impl<E: Clone> Clone for RecoveringEngine<E> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            verifier: self.verifier,
            policy: self.policy,
            outcomes: Mutex::new(Vec::new()),
        }
    }
}

impl<E> RecoveringEngine<E> {
    /// Wraps `inner` with a full-idempotence verifier and the default
    /// policy (3 retries, then bypass).
    pub fn new(inner: E) -> Self {
        Self {
            inner,
            verifier: Verifier::full(),
            policy: RecoveryPolicy::default(),
            outcomes: Mutex::new(Vec::new()),
        }
    }

    /// Overrides the verifier.
    pub fn with_verifier(mut self, v: Verifier) -> Self {
        self.verifier = v;
        self
    }

    /// Overrides the policy.
    pub fn with_policy(mut self, p: RecoveryPolicy) -> Self {
        self.policy = p;
        self
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Per-instance recovery records of the most recent
    /// [`ClosureEngine::closure_many`] call.
    pub fn outcomes(&self) -> Vec<InstanceOutcome> {
        self.outcomes.lock().expect("outcomes poisoned").clone()
    }
}

impl<S: PathSemiring, E: FaultAware<S>> ClosureEngine<S> for RecoveringEngine<E> {
    fn name(&self) -> &'static str {
        "recovering"
    }

    fn cells(&self) -> usize {
        self.inner.cells()
    }

    fn closure_many(
        &self,
        mats: &[DenseMatrix<S>],
    ) -> Result<(Vec<DenseMatrix<S>>, RunStats), EngineError> {
        let mut results = Vec::with_capacity(mats.len());
        let mut merged: Option<RunStats> = None;
        let mut extra = FaultReport::default();
        let mut outcomes = Vec::with_capacity(mats.len());

        // Degraded-configuration state persists across the batch: a cell
        // reclassified as permanently faulty stays bypassed.
        let mut bypassed: Vec<usize> = Vec::new();
        let mut degraded: Option<FaultyLinearEngine> = None;
        let mut strikes: HashMap<usize, u32> = HashMap::new();

        for (instance, a) in mats.iter().enumerate() {
            let mut outcome = InstanceOutcome {
                instance,
                ..InstanceOutcome::default()
            };
            let mut attempts_left = self.policy.max_retries + 1;

            let (result, stats) = loop {
                if attempts_left == 0 {
                    match self.policy.escalation {
                        Escalation::Fail => {
                            self.outcomes
                                .lock()
                                .expect("outcomes poisoned")
                                .clone_from(&outcomes);
                            return Err(EngineError::Corrupt {
                                instance,
                                detail: format!(
                                    "rejected {} attempts; last: {}",
                                    outcome.attempts,
                                    outcome.rejections.last().cloned().unwrap_or_default()
                                ),
                            });
                        }
                        Escalation::Bypass => {
                            // Reclassify the most-struck not-yet-bypassed
                            // cell (ties broken toward the lowest index).
                            let blamed = strikes
                                .iter()
                                .filter(|(c, _)| !bypassed.contains(c))
                                .max_by(|(c1, s1), (c2, s2)| s1.cmp(s2).then(c2.cmp(c1)))
                                .map(|(c, _)| *c);
                            let next = blamed.and_then(|cell| {
                                let mut set = bypassed.clone();
                                set.push(cell);
                                set.sort_unstable();
                                self.inner.bypass_plan(&set).map(|eng| (cell, set, eng))
                            });
                            let Some((cell, set, eng)) = next else {
                                self.outcomes
                                    .lock()
                                    .expect("outcomes poisoned")
                                    .clone_from(&outcomes);
                                return Err(EngineError::Corrupt {
                                    instance,
                                    detail: format!(
                                        "rejected {} attempts and no bypass is \
                                         possible; last: {}",
                                        outcome.attempts,
                                        outcome.rejections.last().cloned().unwrap_or_default()
                                    ),
                                });
                            };
                            let _ = cell;
                            bypassed = set;
                            degraded = Some(eng);
                            extra.bypasses += 1;
                            attempts_left = self.policy.max_retries + 1;
                            continue;
                        }
                    }
                }
                attempts_left -= 1;
                outcome.attempts += 1;

                let (run, events) = match &degraded {
                    Some(d) => {
                        let run = ClosureEngine::<S>::closure(d, a);
                        (run, d.recent_fault_events())
                    }
                    None => {
                        let run = self.inner.closure(a);
                        (run, self.inner.recent_faults())
                    }
                };

                match run {
                    Ok((r, stats)) => match self.verifier.verify(instance, a, &r) {
                        Ok(()) => break (r, stats),
                        Err(msg) => {
                            extra.injected += events.len() as u64;
                            extra.detected += events.len() as u64;
                            self.strike(&degraded, &events, &mut strikes);
                            outcome.rejected_events.extend(events);
                            outcome.rejections.push(format!("verifier: {msg}"));
                        }
                    },
                    Err(EngineError::BadInput(msg)) => {
                        return Err(EngineError::BadInput(msg));
                    }
                    Err(e) => {
                        // Sim error (deadlock/timeout under injection) or a
                        // structurally corrupt output: detected by
                        // construction.
                        extra.injected += events.len() as u64;
                        extra.detected += events.len() as u64;
                        self.strike(&degraded, &events, &mut strikes);
                        outcome.rejected_events.extend(events);
                        outcome.rejections.push(format!("engine: {e}"));
                    }
                }
            };

            extra.retries += u64::from(outcome.attempts - 1);
            outcome.accepted_events = stats.fault_events.clone();
            outcome.bypassed = bypassed.clone();
            outcomes.push(outcome);
            results.push(result);
            match &mut merged {
                Some(m) => m.merge(&stats),
                None => merged = Some(stats),
            }
        }

        let mut stats = merged.unwrap_or_default();
        stats.fault.merge(&extra);
        self.outcomes
            .lock()
            .expect("outcomes poisoned")
            .clone_from(&outcomes);
        Ok((results, stats))
    }
}

impl<E> RecoveringEngine<E> {
    /// Charges each blamed cell of `events` with one strike. Sticks are
    /// pure delay faults and carry no blame.
    fn strike<S: PathSemiring>(
        &self,
        degraded: &Option<FaultyLinearEngine>,
        events: &[FaultEvent],
        strikes: &mut HashMap<usize, u32>,
    ) where
        E: FaultAware<S>,
    {
        for ev in events {
            if !ev.kind.is_value_corrupting()
                && !matches!(
                    ev.kind,
                    systolic_arraysim::FaultKind::DropWord { .. }
                        | systolic_arraysim::FaultKind::DuplicateWord { .. }
                )
            {
                continue;
            }
            let cell = match degraded {
                Some(d) => <FaultyLinearEngine as FaultAware<S>>::blame_cell(d, ev),
                None => self.inner.blame_cell(ev),
            };
            if let Some(c) = cell {
                *strikes.entry(c).or_insert(0) += 1;
            }
        }
    }
}
