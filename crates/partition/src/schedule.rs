//! The G-set schedule (Fig. 20) as a first-class object.
//!
//! Engines build their task programs directly, but experiment E10 needs the
//! schedule itself: the ordered list of G-sets, each G-set's members, and a
//! proof that every dependence points to an earlier entry. [`GsetSchedule`]
//! provides both mappings (linear and grid) plus the legality check and the
//! analytic earliest-start tags.

use systolic_transform::{GGraph, GnodeId};

/// One scheduled G-set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Execution order index.
    pub order: usize,
    /// G-graph row of the set (linear mapping) or block row (grid mapping).
    pub row: usize,
    /// `h`-block index.
    pub block: usize,
    /// Member G-nodes.
    pub members: Vec<GnodeId>,
}

impl ScheduleEntry {
    /// True when the set uses fewer cells than the array provides — the
    /// paper's boundary sets ("might not use all cells in the array").
    pub fn is_boundary(&self, cells: usize) -> bool {
        self.members.len() < cells
    }
}

/// An ordered G-set schedule over a G-graph.
#[derive(Clone, Debug)]
pub struct GsetSchedule {
    n: usize,
    /// Cells per G-set (m for linear, s² for grid).
    pub cells: usize,
    entries: Vec<ScheduleEntry>,
}

impl GsetSchedule {
    /// The linear mapping (Fig. 18) scheduled by vertical paths (Fig. 20a):
    /// G-sets are `m` consecutive `h` positions of one row; blocks advance
    /// left to right, rows top to bottom within a block.
    pub fn linear(n: usize, m: usize) -> Self {
        assert!(m >= 1);
        let gg = GGraph::new(n);
        let blocks = (2 * n).div_ceil(m);
        let mut entries = Vec::new();
        for b in 0..blocks {
            for k in 0..n {
                let members: Vec<GnodeId> = (0..m).filter_map(|c| gg.at_h(k, b * m + c)).collect();
                if !members.is_empty() {
                    entries.push(ScheduleEntry {
                        order: entries.len(),
                        row: k,
                        block: b,
                        members,
                    });
                }
            }
        }
        Self {
            n,
            cells: m,
            entries,
        }
    }

    /// The grid mapping (Fig. 19) scheduled by vertical block paths:
    /// G-sets are `s × s` blocks of `(k, h)` space; `h`-blocks advance left
    /// to right, `k`-blocks top to bottom within an `h`-block.
    pub fn grid(n: usize, s: usize) -> Self {
        assert!(s >= 1);
        let gg = GGraph::new(n);
        let bcols = (2 * n).div_ceil(s);
        let brows = n.div_ceil(s);
        let mut entries = Vec::new();
        for bc in 0..bcols {
            for br in 0..brows {
                let mut members = Vec::new();
                for ri in 0..s {
                    for ci in 0..s {
                        let k = br * s + ri;
                        if k >= n {
                            continue;
                        }
                        if let Some(id) = gg.at_h(k, bc * s + ci) {
                            members.push(id);
                        }
                    }
                }
                if !members.is_empty() {
                    entries.push(ScheduleEntry {
                        order: entries.len(),
                        row: br,
                        block: bc,
                        members,
                    });
                }
            }
        }
        Self {
            n,
            cells: s * s,
            entries,
        }
    }

    /// Problem size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Scheduled entries in execution order.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Number of G-sets (the paper's `n(n+1)/m` when boundaries divide
    /// evenly; slightly more otherwise because boundary sets are partial).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// G-sets that do not fill the array (the boundary sets).
    pub fn boundary_sets(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.is_boundary(self.cells))
            .count()
    }

    /// Total member G-nodes across all sets — must equal `n(n+1)`.
    pub fn total_gnodes(&self) -> usize {
        self.entries.iter().map(|e| e.members.len()).sum()
    }

    /// Verifies that every dependence of every member points to a G-node
    /// scheduled in an earlier (or the same, for the intra-set pivot chain)
    /// entry.
    ///
    /// # Errors
    /// Describes the first violated dependence.
    pub fn verify_legal(&self) -> Result<(), String> {
        let gg = GGraph::new(self.n);
        // Map every G-node to its entry order.
        let mut order_of = std::collections::HashMap::new();
        for e in &self.entries {
            for &m in &e.members {
                order_of.insert(m, e.order);
            }
        }
        if order_of.len() != gg.gnode_count() {
            return Err(format!(
                "schedule covers {} of {} G-nodes",
                order_of.len(),
                gg.gnode_count()
            ));
        }
        for e in &self.entries {
            for &m in &e.members {
                for dep in [gg.column_dep(m), gg.pivot_dep(m)].into_iter().flatten() {
                    let d = order_of[&dep];
                    // The intra-set pivot chain rides neighbor links, so a
                    // same-entry pivot dependence is legal; everything else
                    // must be strictly earlier.
                    if d > e.order {
                        return Err(format!(
                            "G-node ({},{}) in entry {} depends on ({},{}) in later entry {}",
                            m.k, m.g, e.order, dep.k, dep.g, d
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Analytic pipelined start times: entry `i` initiates at `i · n`
    /// cycles (one G-node duration per G-set, the Fig. 20 tags).
    pub fn analytic_starts(&self) -> Vec<u64> {
        (0..self.entries.len())
            .map(|i| (i * self.n) as u64)
            .collect()
    }

    /// Lock-step start times under **varying** G-node computation times
    /// (§4.3): entry `i + 1` starts once entry `i`'s slowest member has
    /// finished. With the uniform closure time `n` this reduces to
    /// [`GsetSchedule::analytic_starts`]; when a G-set mixes times, the
    /// fast members idle for the difference — the *time mixing* the Fig. 22
    /// analysis charges against two-dimensional G-sets.
    pub fn varying_starts(&self, time_of: impl Fn(GnodeId) -> u64) -> Vec<u64> {
        let mut starts = Vec::with_capacity(self.entries.len());
        let mut t = 0u64;
        for e in &self.entries {
            starts.push(t);
            t += e.members.iter().map(|&m| time_of(m)).max().unwrap_or(0);
        }
        starts
    }

    /// [`GsetSchedule::verify_legal`] extended to varying computation
    /// times: additionally proves that, under the lock-step
    /// [`GsetSchedule::varying_starts`], every dependence has *finished*
    /// (start of its entry plus its own time) before the dependent entry
    /// starts. The intra-set pivot chain rides neighbor links and is
    /// exempt, as in the untimed check.
    ///
    /// # Errors
    /// Describes the first violated dependence.
    pub fn verify_legal_timed(&self, time_of: impl Fn(GnodeId) -> u64) -> Result<(), String> {
        self.verify_legal()?;
        let starts = self.varying_starts(&time_of);
        let gg = GGraph::new(self.n);
        let mut order_of = std::collections::HashMap::new();
        for e in &self.entries {
            for &m in &e.members {
                order_of.insert(m, e.order);
            }
        }
        for e in &self.entries {
            for &m in &e.members {
                for dep in [gg.column_dep(m), gg.pivot_dep(m)].into_iter().flatten() {
                    let d = order_of[&dep];
                    if d == e.order {
                        continue; // intra-set pivot chain
                    }
                    let finish = starts[d] + time_of(dep);
                    if finish > starts[e.order] {
                        return Err(format!(
                            "G-node ({},{}) in entry {} (start {}) depends on ({},{}) \
                             finishing at {} in entry {}",
                            m.k, m.g, e.order, starts[e.order], dep.k, dep.g, finish, d
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_schedule_covers_graph_and_is_legal() {
        for (n, m) in [(6usize, 2usize), (6, 3), (7, 3), (8, 5), (5, 1), (4, 9)] {
            let s = GsetSchedule::linear(n, m);
            assert_eq!(s.total_gnodes(), n * (n + 1), "n={n} m={m}");
            s.verify_legal()
                .unwrap_or_else(|e| panic!("n={n} m={m}: {e}"));
        }
    }

    #[test]
    fn grid_schedule_covers_graph_and_is_legal() {
        for (n, s) in [(6usize, 2usize), (7, 3), (9, 2), (5, 5)] {
            let sch = GsetSchedule::grid(n, s);
            assert_eq!(sch.total_gnodes(), n * (n + 1), "n={n} s={s}");
            sch.verify_legal()
                .unwrap_or_else(|e| panic!("n={n} s={s}: {e}"));
        }
    }

    #[test]
    fn gset_count_matches_paper_in_the_divisible_interior() {
        // n(n+1)/m full sets plus partial boundary sets.
        let (n, m) = (8usize, 3usize);
        let s = GsetSchedule::linear(n, m);
        let full = s.entries().iter().filter(|e| e.members.len() == m).count();
        let boundary = s.boundary_sets();
        assert_eq!(
            full * m
                + s.entries()
                    .iter()
                    .filter(|e| e.is_boundary(m))
                    .map(|e| e.members.len())
                    .sum::<usize>(),
            n * (n + 1)
        );
        assert!(boundary > 0, "parallelogram edges produce boundary sets");
    }

    #[test]
    fn grid_boundary_sets_are_triangular() {
        // The first h-block's first k-block is cut by the parallelogram's
        // left slant: member count is the triangular number s(s+1)/2.
        let (n, s) = (8usize, 3usize);
        let sch = GsetSchedule::grid(n, s);
        let first = &sch.entries()[0];
        assert_eq!(first.members.len(), s * (s + 1) / 2);
    }

    #[test]
    fn analytic_starts_are_pipelined_at_interval_n() {
        let s = GsetSchedule::linear(5, 2);
        let starts = s.analytic_starts();
        assert_eq!(starts[0], 0);
        assert!(starts.windows(2).all(|w| w[1] - w[0] == 5));
    }

    #[test]
    fn varying_starts_reduce_to_analytic_for_uniform_times() {
        for (n, m) in [(5usize, 2usize), (6, 3), (7, 4)] {
            let s = GsetSchedule::linear(n, m);
            assert_eq!(
                s.varying_starts(|_| n as u64),
                s.analytic_starts(),
                "n={n} m={m}"
            );
            s.verify_legal_timed(|_| n as u64)
                .unwrap_or_else(|e| panic!("n={n} m={m}: {e}"));
        }
    }

    #[test]
    fn varying_starts_accumulate_the_slowest_member() {
        // §4.3-style monotone row times: time of row k is n - k (uniform
        // within a row), so linear G-sets never mix times while grid G-sets
        // do; both remain legal under the lock-step timed schedule.
        let n = 6;
        let time = |id: GnodeId| (n - id.k) as u64;
        for sched in [GsetSchedule::linear(n, 3), GsetSchedule::grid(n, 2)] {
            sched
                .verify_legal_timed(time)
                .unwrap_or_else(|e| panic!("{e}"));
            let starts = sched.varying_starts(time);
            for (i, e) in sched.entries().iter().enumerate().skip(1) {
                let prev = &sched.entries()[i - 1];
                let slowest = prev.members.iter().map(|&m| time(m)).max().unwrap();
                assert_eq!(starts[i] - starts[i - 1], slowest, "entry {}", e.order);
            }
        }
    }
}
