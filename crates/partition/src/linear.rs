//! The linear partitioned array of Fig. 18.
//!
//! `m` cells in a chain. In skewed coordinates `h = g + k` (see
//! `systolic-transform::ggraph`), cell `c` is responsible for every G-node
//! whose `h ≡ c (mod m)`; the G-set executed concurrently is `m`
//! consecutive `h` positions of one G-graph row, and G-sets are scheduled
//! by vertical paths: block-major over `h`, rows top-to-bottom inside a
//! block (Fig. 20a).
//!
//! Streams:
//! * the **pivot stream** of a row flows cell-to-cell over neighbor links
//!   and crosses G-set block boundaries through the single **pivot bank**;
//! * each cell's **column stream** output is consumed by the *same cell*
//!   one row later, through the cell's **private memory bank** — hence the
//!   paper's `m + 1` connections to external memories;
//! * row 0 reads its columns from the host R-chain (Fig. 21) and row `n-1`
//!   writes the result columns to the output collectors.
//!
//! The schedule depends only on the problem shape, so it is compiled once
//! per `(n, batch_len)` into a [`CompiledPlan`] and memoized; repeat calls
//! reset and reload a cached simulator instead of rebuilding anything.
//! It also never inspects *values*, so the engine is generic over the
//! semiring — including the 64-lane `BoolLanes` packing
//! [`crate::PackedEngine`] drives through it, which shares this engine's
//! plan cache (a packed group and a scalar single run use the same
//! `(n, 1)` plan).

use crate::engine::{
    ideal_cycles_per_instance, prepare_batch, stream_key, ClosureEngine, EngineError,
};
use crate::plan::{CompiledPlan, PlanBuilder, PlanCache, SimSlot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use systolic_arraysim::{
    ArraySim, FaultEvent, FaultPlan, RunStats, StreamDst, StreamSrc, Task, TaskKind, TaskLabel,
};
use systolic_semiring::{DenseMatrix, PathSemiring};
use systolic_transform::{GGraph, GNodeRole};

/// Cut-and-pile executor on a linear array of `m` cells.
#[derive(Debug)]
pub struct LinearEngine {
    m: usize,
    /// Pivot-link latency between consecutive cells (all 1 in the healthy
    /// array; larger where faulty cells are bypassed, see
    /// [`crate::fault::FaultyLinearEngine`]).
    link_delays: Vec<u64>,
    trace: bool,
    /// Transient-fault plan armed on every run (None = clean array).
    plan: Option<FaultPlan>,
    /// Per-run reseed nonce: consecutive `closure_many` calls on the same
    /// engine see decorrelated fault sequences (a retry must not replay the
    /// identical fault), while a fresh engine with the same plan reproduces
    /// the same sequence of sequences.
    nonce: AtomicU64,
    /// Faults applied during the most recent run (success or failure).
    last_faults: Mutex<Vec<FaultEvent>>,
    /// Compiled schedules per `(n, batch_len)`, shared across clones.
    plans: PlanCache,
    /// Reusable simulator from the previous run (per engine value).
    sims: SimSlot,
}

impl Clone for LinearEngine {
    fn clone(&self) -> Self {
        Self {
            m: self.m,
            link_delays: self.link_delays.clone(),
            trace: self.trace,
            plan: self.plan.clone(),
            nonce: AtomicU64::new(self.nonce.load(Ordering::Relaxed)),
            last_faults: Mutex::new(Vec::new()),
            plans: self.plans.clone(),
            sims: SimSlot::default(),
        }
    }
}

impl LinearEngine {
    /// Creates an engine with `m ≥ 1` cells.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one cell");
        Self {
            m,
            link_delays: vec![1; m.saturating_sub(1)],
            trace: false,
            plan: None,
            nonce: AtomicU64::new(0),
            last_faults: Mutex::new(Vec::new()),
            plans: PlanCache::default(),
            sims: SimSlot::default(),
        }
    }

    /// Enables task-span tracing; the run's `RunStats::spans` then holds
    /// the full schedule for Gantt rendering (Fig. 20 visualization).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self.sims.clear(); // a cached simulator would lack span buffers
        self
    }

    /// Creates an engine whose pivot links have the given latencies
    /// (`delays.len() == m - 1`); used by the fault-bypass reconfiguration.
    pub fn with_link_delays(m: usize, delays: Vec<u64>) -> Self {
        assert!(m >= 1, "need at least one cell");
        assert_eq!(delays.len(), m.saturating_sub(1));
        assert!(delays.iter().all(|&d| d >= 1));
        Self {
            m,
            link_delays: delays,
            trace: false,
            plan: None,
            nonce: AtomicU64::new(0),
            last_faults: Mutex::new(Vec::new()),
            plans: PlanCache::default(),
            sims: SimSlot::default(),
        }
    }

    /// Arms a transient-fault plan: every subsequent run injects faults
    /// from a fresh reseeding of `plan` (see the `nonce` field docs).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Faults applied during the most recent run on this engine value
    /// (empty without a plan). Recorded on both success and error, so a
    /// deadlocked or corrupt run can still be blamed.
    pub fn recent_fault_events(&self) -> Vec<FaultEvent> {
        self.last_faults.lock().expect("fault log poisoned").clone()
    }

    /// Takes the most recent run's fault events without cloning them.
    pub(crate) fn take_recent_fault_events(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.last_faults.lock().expect("fault log poisoned"))
    }

    /// Drops the memoized plans and the cached simulator, forcing the next
    /// call to compile from scratch (the fault-nonce sequence continues
    /// unchanged). Mainly for cache-vs-fresh equivalence tests.
    pub fn clear_caches(&self) {
        self.plans.clear();
        self.sims.clear();
    }

    /// Number of G-set blocks for problem size `n`: `⌈2n / m⌉` (the skewed
    /// G-graph spans `h ∈ 0..2n`).
    pub fn blocks(&self, n: usize) -> usize {
        (2 * n).div_ceil(self.m)
    }

    /// Compiles the schedule for one `(n, batch_len)` shape: the full task
    /// program of every cell, the host demand order and the stream wiring,
    /// with all stream keys interned to dense slots.
    fn build_plan(&self, n: usize, batch_len: usize) -> CompiledPlan {
        let m = self.m;
        let gg = GGraph::new(n);
        let blocks = self.blocks(n);

        let mut plan = PlanBuilder::new(n, batch_len, m);
        // Pivot links cell c → c+1 (delayed where faulty cells are bypassed).
        let links: Vec<usize> = self
            .link_delays
            .iter()
            .map(|&d| plan.add_link_with_delay(d))
            .collect();
        // Cell banks 0..m, pivot bank m.
        for _ in 0..=m {
            plan.add_bank();
        }
        let pivot_bank = m;
        plan.set_memory_connections(m + 1);
        let out0 = plan.add_outputs(batch_len * n);

        // Host demand order mirrors the schedule: instance, block, cell.
        for inst in 0..batch_len {
            for b in 0..blocks {
                for c in 0..m {
                    let h = b * m + c;
                    if h < n && gg.at_h(0, h).is_some() {
                        // Row 0 consumes column h in natural row order.
                        plan.feed_host(c, stream_key(inst, 0, h), inst, h);
                    }
                }
            }
        }

        // Task programs.
        for inst in 0..batch_len {
            for b in 0..blocks {
                for k in 0..n {
                    for c in 0..m {
                        let h = b * m + c;
                        let Some(id) = gg.at_h(k, h) else { continue };
                        let role = gg.role(id);
                        let kind = match role {
                            GNodeRole::PivotHead => TaskKind::PivotHead,
                            GNodeRole::Fuse => TaskKind::Fuse,
                            GNodeRole::DelayTail => TaskKind::DelayTail,
                        };
                        let col_in = match role {
                            GNodeRole::DelayTail => None,
                            _ if k == 0 => Some(plan.host_src(c, stream_key(inst, 0, h))),
                            _ => Some(plan.bank_src(c, stream_key(inst, k - 1, h))),
                        };
                        let pivot_in = match role {
                            GNodeRole::PivotHead => None,
                            _ if c > 0 => Some(StreamSrc::Link(links[c - 1])),
                            _ => Some(plan.bank_src(pivot_bank, stream_key(inst, k, h - 1))),
                        };
                        let col_out = match role {
                            GNodeRole::PivotHead => None,
                            _ if k == n - 1 => Some(StreamDst::Output {
                                stream: out0 + inst * n + (h - n),
                            }),
                            _ => Some(plan.bank_dst(c, stream_key(inst, k, h))),
                        };
                        let pivot_out = match role {
                            GNodeRole::DelayTail => None,
                            _ if c < m - 1 => Some(StreamDst::Link(links[c])),
                            _ => Some(plan.bank_dst(pivot_bank, stream_key(inst, k, h))),
                        };
                        let useful_ops = gg.useful_ops(id) as u64;
                        plan.push_task(
                            c,
                            Task {
                                kind,
                                len: n,
                                col_in,
                                pivot_in,
                                col_out,
                                pivot_out,
                                useful_ops,
                                label: TaskLabel {
                                    k: k as u32,
                                    h: h as u32,
                                },
                            },
                        );
                    }
                }
            }
        }

        // Generous budget: ideal cycles are ~ n²(n+1)/m per instance.
        let ideal = ideal_cycles_per_instance(n, m) + 1;
        plan.set_max_cycles(batch_len as u64 * ideal * 20 + 100_000);
        plan.finish()
    }

    /// Runs a prepared (reflexive) batch through the cached plan/simulator,
    /// arming `armed` verbatim when given. The fault log is recorded into
    /// `last_faults` iff a plan was armed.
    fn run_batch<S: PathSemiring>(
        &self,
        n: usize,
        batch: &[DenseMatrix<S>],
        armed: Option<FaultPlan>,
    ) -> Result<(Vec<DenseMatrix<S>>, RunStats), EngineError> {
        let plan = self
            .plans
            .get_or_build(n, batch.len(), || self.build_plan(n, batch.len()));
        let mut sim: ArraySim<S> = self
            .sims
            .take(&plan)
            .unwrap_or_else(|| plan.instantiate(self.trace));
        plan.load(&mut sim, batch);

        let record = armed.is_some();
        if let Some(fp) = armed {
            sim.set_fault_plan(fp);
        }
        let run = sim.run();
        if record {
            // Record what was injected even when the run failed — blame
            // attribution needs the sites of a deadlocked attempt too.
            *self.last_faults.lock().expect("fault log poisoned") = sim.take_fault_events();
        }
        let stats = run?;
        let outs = sim.outputs();
        let out0 = 0;
        let mut results = Vec::with_capacity(batch.len());
        for inst in 0..batch.len() {
            let mut r = DenseMatrix::<S>::zeros(n, n);
            for j in 0..n {
                let col = &outs[out0 + inst * n + j];
                if col.len() != n {
                    // A dropped/duplicated stream word that still drained:
                    // structurally corrupt output, not a simulator bug.
                    return Err(EngineError::Corrupt {
                        instance: inst,
                        detail: format!("output column {j} has {} of {n} words", col.len()),
                    });
                }
                r.set_col(j, col);
            }
            results.push(r);
        }
        self.sims.store(plan, sim);
        Ok((results, stats))
    }

    /// [`ClosureEngine::closure_many`] with an explicit pre-reseeded fault
    /// plan, bypassing this engine's own plan/nonce. Lets the degraded
    /// array wrapper reuse a persistent inner engine (and its caches) while
    /// reproducing its historical reseeding chain exactly.
    pub(crate) fn closure_many_with_plan<S: PathSemiring>(
        &self,
        mats: &[DenseMatrix<S>],
        armed: Option<FaultPlan>,
    ) -> Result<(Vec<DenseMatrix<S>>, RunStats), EngineError> {
        let (n, batch) = prepare_batch(mats)?;
        self.run_batch(n, &batch, armed)
    }
}

impl<S: PathSemiring> ClosureEngine<S> for LinearEngine {
    fn name(&self) -> &'static str {
        "linear-partitioned"
    }

    fn cells(&self) -> usize {
        self.m
    }

    fn closure_many(
        &self,
        mats: &[DenseMatrix<S>],
    ) -> Result<(Vec<DenseMatrix<S>>, RunStats), EngineError> {
        let (n, batch) = prepare_batch(mats)?;
        let armed = self
            .plan
            .as_ref()
            .map(|p| p.reseeded(self.nonce.fetch_add(1, Ordering::Relaxed)));
        self.run_batch(n, &batch, armed)
    }
}

impl<S: PathSemiring> crate::recover::FaultAware<S> for LinearEngine {
    fn recent_faults(&self) -> Vec<FaultEvent> {
        self.recent_fault_events()
    }

    fn blame_cell(&self, event: &FaultEvent) -> Option<usize> {
        use systolic_arraysim::FaultKind;
        match event.kind {
            FaultKind::CorruptEmit { cell } | FaultKind::StickCell { cell, .. } => Some(cell),
            // Link c sits between cells c and c+1; blame its writer.
            FaultKind::DropWord { link } | FaultKind::DuplicateWord { link } => Some(link),
            // Banks 0..m are private to their cell; bank m is the shared
            // pivot-boundary bank and indicts no single cell.
            FaultKind::BankFlip { bank } => (bank < self.m).then_some(bank),
        }
    }

    fn bypass_plan(&self, faulty: &[usize]) -> Option<crate::fault::FaultyLinearEngine> {
        crate::fault::FaultyLinearEngine::new(self.m, faulty).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::{warshall, Bool, MinPlus};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut a = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            a.set(i, j, true);
        }
        a
    }

    #[test]
    fn matches_warshall_across_cell_counts() {
        let a = bool_adj(6, &[(0, 3), (3, 5), (5, 1), (1, 4), (4, 0), (2, 2)]);
        let want = warshall(&a);
        for m in [1usize, 2, 3, 4, 5, 7, 13] {
            let eng = LinearEngine::new(m);
            let (got, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
            assert_eq!(got, want, "m={m}");
            assert_eq!(stats.memory_connections, m + 1);
            assert_eq!(stats.useful_ops, (6 * 5 * 4) as u64);
        }
    }

    #[test]
    fn matches_warshall_minplus() {
        let n = 5;
        let mut a = DenseMatrix::<MinPlus>::zeros(n, n);
        for (i, j, w) in [
            (0, 1, 2u64),
            (1, 2, 3),
            (2, 3, 1),
            (3, 4, 4),
            (4, 0, 9),
            (0, 4, 99),
        ] {
            a.set(i, j, w);
        }
        let eng = LinearEngine::new(3);
        let (got, _) = ClosureEngine::<MinPlus>::closure(&eng, &a).unwrap();
        assert_eq!(got, warshall(&a));
        assert_eq!(*got.get(0, 4), 10);
    }

    #[test]
    fn chained_instances_share_the_array() {
        let a = bool_adj(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let b = bool_adj(5, &[(4, 3), (3, 2), (2, 1), (1, 0)]);
        let eng = LinearEngine::new(3);
        let (got, stats) =
            ClosureEngine::<Bool>::closure_many(&eng, &[a.clone(), b.clone()]).unwrap();
        assert_eq!(got[0], warshall(&a));
        assert_eq!(got[1], warshall(&b));
        assert_eq!(stats.output_words, 2 * 25);
    }

    #[test]
    fn no_partitioning_overhead_banks_are_single_ported() {
        // The paper's "no overhead" claim: data transfers overlap compute;
        // banks never absorb more than one word per cycle.
        let a = bool_adj(8, &[(0, 7), (7, 2), (2, 5), (5, 0), (1, 6), (6, 1)]);
        let eng = LinearEngine::new(3);
        let (_, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
        assert!(stats.max_bank_writes_per_cycle <= 1);
    }

    #[test]
    fn io_words_equal_n_squared_per_instance() {
        let a = bool_adj(6, &[(0, 1), (2, 3)]);
        let eng = LinearEngine::new(2);
        let (_, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
        assert_eq!(stats.host_words, 36);
        assert!(stats.io_bandwidth() < 1.0);
    }

    #[test]
    fn rejects_tiny_problems() {
        let a = DenseMatrix::<Bool>::zeros(1, 1);
        let eng = LinearEngine::new(2);
        assert!(ClosureEngine::<Bool>::closure(&eng, &a).is_err());
    }

    #[test]
    fn cached_plan_reruns_bit_identically() {
        let a = bool_adj(7, &[(0, 3), (3, 6), (6, 1), (1, 5), (5, 0), (2, 4)]);
        let b = bool_adj(7, &[(6, 0), (0, 6), (2, 5)]);
        let eng = LinearEngine::new(3);
        let batch = [a, b];
        // First call compiles; second reuses plan + simulator; third (after
        // clearing the caches) recompiles from scratch.
        let (r1, s1) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        let (r2, s2) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        eng.clear_caches();
        let (r3, s3) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
        // RunStats equality ignores only wall time.
        assert_eq!(s1, s2);
        assert_eq!(s1, s3);
    }

    #[test]
    fn cache_survives_shape_and_semiring_changes() {
        let eng = LinearEngine::new(2);
        let a5 = bool_adj(5, &[(0, 1), (1, 2)]);
        let a6 = bool_adj(6, &[(0, 1), (1, 2)]);
        let (g1, _) = ClosureEngine::<Bool>::closure(&eng, &a5).unwrap();
        let (g2, _) = ClosureEngine::<Bool>::closure(&eng, &a6).unwrap();
        let (g3, _) = ClosureEngine::<Bool>::closure(&eng, &a5).unwrap();
        assert_eq!(g1, warshall(&a5));
        assert_eq!(g2, warshall(&a6));
        assert_eq!(g1, g3);
        // Same shape, different semiring: the plan is reused, the cached
        // simulator is type-mismatched and rebuilt.
        let mut w = DenseMatrix::<MinPlus>::zeros(5, 5);
        w.set(0, 1, 2);
        w.set(1, 2, 3);
        let (g4, _) = ClosureEngine::<MinPlus>::closure(&eng, &w).unwrap();
        assert_eq!(g4, warshall(&w));
    }
}
