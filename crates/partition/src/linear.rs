//! The linear partitioned array of Fig. 18 (cut-and-pile / LPGS).
//!
//! `m` cells in a chain. In skewed coordinates `h = g + k` (see
//! `systolic-transform::ggraph`), cell `c` is responsible for every G-node
//! whose `h ≡ c (mod m)`; the G-set executed concurrently is `m`
//! consecutive `h` positions of one G-graph row, and G-sets are scheduled
//! by vertical paths: block-major over `h`, rows top-to-bottom inside a
//! block (Fig. 20a).
//!
//! Streams:
//! * the **pivot stream** of a row flows cell-to-cell over neighbor links
//!   and crosses G-set block boundaries through the single **pivot bank**;
//! * each cell's **column stream** output is consumed by the *same cell*
//!   one row later, through the cell's **private memory bank** — hence the
//!   paper's `m + 1` connections to external memories;
//! * row 0 reads its columns from the host R-chain (Fig. 21) and row `n-1`
//!   writes the result columns to the output collectors.
//!
//! The schedule is pure geometry, so it lives in [`LpgsMapping`] and the
//! shared [`MappedEngine`] executor does everything else: the plan is
//! compiled once per `(n, batch_len)` into a [`CompiledPlan`] and
//! memoized; repeat calls reset and reload a cached simulator instead of
//! rebuilding anything. It also never inspects *values*, so the engine is
//! generic over the semiring — including the 64-lane `BoolLanes` packing
//! [`crate::PackedEngine`] drives through it, which shares this engine's
//! plan cache (a packed group and a scalar single run use the same
//! `(n, 1)` plan).

use crate::engine::{ideal_cycles_per_instance, stream_key};
use crate::mapping::{MappedEngine, Mapping};
use crate::plan::{CompiledPlan, PlanBuilder};
use systolic_arraysim::{FaultEvent, StreamDst, StreamSrc, Task, TaskKind, TaskLabel};
use systolic_semiring::PathSemiring;
use systolic_transform::{GGraph, GNodeRole};

/// The cut-and-pile (LPGS) mapping onto a linear chain of `m` cells.
#[derive(Clone, Debug)]
pub struct LpgsMapping {
    m: usize,
    /// Pivot-link latency between consecutive cells (all 1 in the healthy
    /// array; larger where faulty cells are bypassed, see
    /// [`crate::fault::FaultyLinearEngine`]).
    link_delays: Vec<u64>,
}

impl LpgsMapping {
    /// Creates the mapping for `m` cells with unit link delays. A zero
    /// cell count is representable but rejected with
    /// [`crate::EngineError::BadInput`] at run time (see
    /// [`Mapping::validate`]).
    pub fn new(m: usize) -> Self {
        Self {
            m,
            link_delays: vec![1; m.saturating_sub(1)],
        }
    }

    /// Creates the mapping with explicit pivot-link latencies
    /// (`delays.len() == m - 1`); used by the fault-bypass reconfiguration.
    pub fn with_link_delays(m: usize, delays: Vec<u64>) -> Self {
        assert!(m >= 1, "need at least one cell");
        assert_eq!(delays.len(), m.saturating_sub(1));
        assert!(delays.iter().all(|&d| d >= 1));
        Self {
            m,
            link_delays: delays,
        }
    }

    /// Number of G-set blocks for problem size `n`: `⌈2n / m⌉` (the skewed
    /// G-graph spans `h ∈ 0..2n`).
    pub fn blocks(&self, n: usize) -> usize {
        (2 * n).div_ceil(self.m)
    }
}

impl Mapping for LpgsMapping {
    fn name(&self) -> &'static str {
        "linear-partitioned"
    }

    fn cells(&self) -> usize {
        self.m
    }

    fn validate(&self) -> Result<(), crate::engine::EngineError> {
        if self.m == 0 {
            return Err(crate::engine::EngineError::BadInput(
                "linear array needs at least one cell (m ≥ 1)".into(),
            ));
        }
        Ok(())
    }

    /// Compiles the schedule for one `(n, batch_len)` shape: the full task
    /// program of every cell, the host demand order and the stream wiring,
    /// with all stream keys interned to dense slots.
    fn build_plan(&self, n: usize, batch_len: usize) -> CompiledPlan {
        let m = self.m;
        let gg = GGraph::new(n);
        let blocks = self.blocks(n);

        let mut plan = PlanBuilder::new(n, batch_len, m);
        // Pivot links cell c → c+1 (delayed where faulty cells are bypassed).
        let links: Vec<usize> = self
            .link_delays
            .iter()
            .map(|&d| plan.add_link_with_delay(d))
            .collect();
        // Cell banks 0..m, pivot bank m.
        for _ in 0..=m {
            plan.add_bank();
        }
        let pivot_bank = m;
        plan.set_memory_connections(m + 1);
        let out0 = plan.add_outputs(batch_len * n);

        // Host demand order mirrors the schedule: instance, block, cell.
        for inst in 0..batch_len {
            for b in 0..blocks {
                for c in 0..m {
                    let h = b * m + c;
                    if h < n && gg.at_h(0, h).is_some() {
                        // Row 0 consumes column h in natural row order.
                        plan.feed_host(c, stream_key(inst, 0, h), inst, h);
                    }
                }
            }
        }

        // Task programs.
        for inst in 0..batch_len {
            for b in 0..blocks {
                for k in 0..n {
                    for c in 0..m {
                        let h = b * m + c;
                        let Some(id) = gg.at_h(k, h) else { continue };
                        let role = gg.role(id);
                        let kind = match role {
                            GNodeRole::PivotHead => TaskKind::PivotHead,
                            GNodeRole::Fuse => TaskKind::Fuse,
                            GNodeRole::DelayTail => TaskKind::DelayTail,
                        };
                        let col_in = match role {
                            GNodeRole::DelayTail => None,
                            _ if k == 0 => Some(plan.host_src(c, stream_key(inst, 0, h))),
                            _ => Some(plan.bank_src(c, stream_key(inst, k - 1, h))),
                        };
                        let pivot_in = match role {
                            GNodeRole::PivotHead => None,
                            _ if c > 0 => Some(StreamSrc::Link(links[c - 1])),
                            _ => Some(plan.bank_src(pivot_bank, stream_key(inst, k, h - 1))),
                        };
                        let col_out = match role {
                            GNodeRole::PivotHead => None,
                            _ if k == n - 1 => Some(StreamDst::Output {
                                stream: out0 + inst * n + (h - n),
                            }),
                            _ => Some(plan.bank_dst(c, stream_key(inst, k, h))),
                        };
                        let pivot_out = match role {
                            GNodeRole::DelayTail => None,
                            _ if c < m - 1 => Some(StreamDst::Link(links[c])),
                            _ => Some(plan.bank_dst(pivot_bank, stream_key(inst, k, h))),
                        };
                        let useful_ops = gg.useful_ops(id) as u64;
                        plan.push_task(
                            c,
                            Task {
                                kind,
                                len: n,
                                col_in,
                                pivot_in,
                                col_out,
                                pivot_out,
                                head_out: None,
                                duration: 1,
                                useful_ops,
                                label: TaskLabel {
                                    k: k as u32,
                                    h: h as u32,
                                },
                            },
                        );
                    }
                }
            }
        }

        // Generous budget: ideal cycles are ~ n²(n+1)/m per instance.
        let ideal = ideal_cycles_per_instance(n, m) + 1;
        plan.set_max_cycles(batch_len as u64 * ideal * 20 + 100_000);
        plan.finish()
    }
}

/// Cut-and-pile executor on a linear array of `m` cells.
pub type LinearEngine = MappedEngine<LpgsMapping>;

impl LinearEngine {
    /// Creates an engine with `m ≥ 1` cells.
    pub fn new(m: usize) -> Self {
        Self::from_mapping(LpgsMapping::new(m))
    }

    /// Creates an engine whose pivot links have the given latencies
    /// (`delays.len() == m - 1`); used by the fault-bypass reconfiguration.
    pub fn with_link_delays(m: usize, delays: Vec<u64>) -> Self {
        Self::from_mapping(LpgsMapping::with_link_delays(m, delays))
    }

    /// Number of G-set blocks for problem size `n`: `⌈2n / m⌉`.
    pub fn blocks(&self, n: usize) -> usize {
        self.mapping().blocks(n)
    }
}

impl<S: PathSemiring> crate::recover::FaultAware<S> for LinearEngine {
    fn recent_faults(&self) -> Vec<FaultEvent> {
        self.recent_fault_events()
    }

    fn blame_cell(&self, event: &FaultEvent) -> Option<usize> {
        use systolic_arraysim::FaultKind;
        let m = self.mapping().cells();
        match event.kind {
            FaultKind::CorruptEmit { cell } | FaultKind::StickCell { cell, .. } => Some(cell),
            // Link c sits between cells c and c+1; blame its writer.
            FaultKind::DropWord { link } | FaultKind::DuplicateWord { link } => Some(link),
            // Banks 0..m are private to their cell; bank m is the shared
            // pivot-boundary bank and indicts no single cell.
            FaultKind::BankFlip { bank } => (bank < m).then_some(bank),
        }
    }

    fn bypass_plan(&self, faulty: &[usize]) -> Option<crate::fault::FaultyLinearEngine> {
        crate::fault::FaultyLinearEngine::new(self.mapping().cells(), faulty).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClosureEngine;
    use systolic_semiring::{warshall, Bool, DenseMatrix, MinPlus};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut a = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            a.set(i, j, true);
        }
        a
    }

    #[test]
    fn matches_warshall_across_cell_counts() {
        let a = bool_adj(6, &[(0, 3), (3, 5), (5, 1), (1, 4), (4, 0), (2, 2)]);
        let want = warshall(&a);
        for m in [1usize, 2, 3, 4, 5, 7, 13] {
            let eng = LinearEngine::new(m);
            let (got, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
            assert_eq!(got, want, "m={m}");
            assert_eq!(stats.memory_connections, m + 1);
            assert_eq!(stats.useful_ops, (6 * 5 * 4) as u64);
        }
    }

    #[test]
    fn matches_warshall_minplus() {
        let n = 5;
        let mut a = DenseMatrix::<MinPlus>::zeros(n, n);
        for (i, j, w) in [
            (0, 1, 2u64),
            (1, 2, 3),
            (2, 3, 1),
            (3, 4, 4),
            (4, 0, 9),
            (0, 4, 99),
        ] {
            a.set(i, j, w);
        }
        let eng = LinearEngine::new(3);
        let (got, _) = ClosureEngine::<MinPlus>::closure(&eng, &a).unwrap();
        assert_eq!(got, warshall(&a));
        assert_eq!(*got.get(0, 4), 10);
    }

    #[test]
    fn chained_instances_share_the_array() {
        let a = bool_adj(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let b = bool_adj(5, &[(4, 3), (3, 2), (2, 1), (1, 0)]);
        let eng = LinearEngine::new(3);
        let (got, stats) =
            ClosureEngine::<Bool>::closure_many(&eng, &[a.clone(), b.clone()]).unwrap();
        assert_eq!(got[0], warshall(&a));
        assert_eq!(got[1], warshall(&b));
        assert_eq!(stats.output_words, 2 * 25);
    }

    #[test]
    fn no_partitioning_overhead_banks_are_single_ported() {
        // The paper's "no overhead" claim: data transfers overlap compute;
        // banks never absorb more than one word per cycle.
        let a = bool_adj(8, &[(0, 7), (7, 2), (2, 5), (5, 0), (1, 6), (6, 1)]);
        let eng = LinearEngine::new(3);
        let (_, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
        assert!(stats.max_bank_writes_per_cycle <= 1);
    }

    #[test]
    fn io_words_equal_n_squared_per_instance() {
        let a = bool_adj(6, &[(0, 1), (2, 3)]);
        let eng = LinearEngine::new(2);
        let (_, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
        assert_eq!(stats.host_words, 36);
        assert!(stats.io_bandwidth() < 1.0);
    }

    #[test]
    fn rejects_tiny_problems() {
        let a = DenseMatrix::<Bool>::zeros(1, 1);
        let eng = LinearEngine::new(2);
        assert!(ClosureEngine::<Bool>::closure(&eng, &a).is_err());
    }

    #[test]
    fn cached_plan_reruns_bit_identically() {
        let a = bool_adj(7, &[(0, 3), (3, 6), (6, 1), (1, 5), (5, 0), (2, 4)]);
        let b = bool_adj(7, &[(6, 0), (0, 6), (2, 5)]);
        let eng = LinearEngine::new(3);
        let batch = [a, b];
        // First call compiles; second reuses plan + simulator; third (after
        // clearing the caches) recompiles from scratch.
        let (r1, s1) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        let (r2, s2) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        eng.clear_caches();
        let (r3, s3) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
        // RunStats equality ignores only wall time.
        assert_eq!(s1, s2);
        assert_eq!(s1, s3);
    }

    #[test]
    fn cache_survives_shape_and_semiring_changes() {
        let eng = LinearEngine::new(2);
        let a5 = bool_adj(5, &[(0, 1), (1, 2)]);
        let a6 = bool_adj(6, &[(0, 1), (1, 2)]);
        let (g1, _) = ClosureEngine::<Bool>::closure(&eng, &a5).unwrap();
        let (g2, _) = ClosureEngine::<Bool>::closure(&eng, &a6).unwrap();
        let (g3, _) = ClosureEngine::<Bool>::closure(&eng, &a5).unwrap();
        assert_eq!(g1, warshall(&a5));
        assert_eq!(g2, warshall(&a6));
        assert_eq!(g1, g3);
        // Same shape, different semiring: the plan is reused, the cached
        // simulator is type-mismatched and rebuilt.
        let mut w = DenseMatrix::<MinPlus>::zeros(5, 5);
        w.set(0, 1, 2);
        w.set(1, 2, 3);
        let (g4, _) = ClosureEngine::<MinPlus>::closure(&eng, &w).unwrap();
        assert_eq!(g4, warshall(&w));
    }
}
