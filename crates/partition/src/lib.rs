//! Partitioning of the transitive-closure G-graph onto fixed-size
//! systolic arrays — the paper's core contribution (§2–§3).
//!
//! Every engine is a [`Mapping`] (pure geometry: cell count, task
//! placement, stream wiring) executed by the one generic [`MappedEngine`]
//! (plan memoization, simulator recycling, fault arming, trace capture,
//! output reassembly). All are generic over a bounded idempotent semiring
//! and run on the cycle-level simulator (`systolic-arraysim`):
//!
//! * [`FixedArrayEngine`] — the Fig. 17 G-graph implemented directly as an
//!   `n × (n+1)` array (fixed-size problems, throughput `1/n`).
//! * [`FixedLinearEngine`] — each G-graph row collapsed into one cell
//!   (§3.2's linear fixed array, throughput `1/(n(n+1))`).
//! * [`LinearEngine`] — cut-and-pile (LPGS) onto `m` cells (Fig. 18):
//!   G-sets are `m` consecutive skewed positions of one row, scheduled by
//!   vertical paths (Fig. 20a), one private memory bank per cell plus one
//!   pivot boundary bank (`m + 1` memory connections).
//! * [`GridEngine`] — cut-and-pile onto `√m × √m` cells (Fig. 19):
//!   G-sets are `√m × √m` blocks in `(k, h)` space with triangular
//!   boundary sets, `2√m` memory connections.
//! * [`LsgpEngine`] — coalescing (LSGP, §2): cell `c` owns the `h`-columns
//!   with `h ≡ c (mod m)`, buffering its own column streams locally
//!   (`Θ(n²/m)` words per cell, measured) while pivots ride a ring.
//!
//! [`schedule`] exposes the G-set schedule itself (Fig. 20) with a
//! dependence-legality checker, used by experiment E10.
//!
//! [`ParallelEngine`] wraps any of the engines above and shards a batch of
//! instances across engine replicas on a persistent host-side worker pool:
//! bit-identical results for any thread count, merged stats folded in
//! instance order.
//!
//! [`PackedEngine`] bit-slices Boolean batches: up to 64 same-`n`
//! instances travel in the lanes of one `u64` word through a single
//! simulated run of the cached single-instance plan — bit-identical to
//! [`LinearEngine`] with ~64× the batch throughput. It composes under
//! [`ParallelEngine`], which shards such batches in whole lane groups
//! ([`ClosureEngine::preferred_chunk`]).
//!
//! ```
//! use systolic_partition::{ClosureEngine, LinearEngine};
//! use systolic_semiring::{warshall, Bool, DenseMatrix};
//!
//! // A 5-vertex problem partitioned onto 2 cells (m ≪ n).
//! let mut a = DenseMatrix::<Bool>::zeros(5, 5);
//! a.set(0, 3, true);
//! a.set(3, 1, true);
//! let engine = LinearEngine::new(2);
//! let (closure, stats) = engine.closure(&a).unwrap();
//! assert_eq!(closure, warshall(&a));
//! assert_eq!(stats.memory_connections, 3); // m + 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod algo;
pub mod engine;
pub mod fault;
pub mod fixed;
pub mod grid;
pub mod linear;
pub mod lsgp;
pub mod mapping;
pub mod packed;
pub mod parallel;
pub mod plan;
pub mod recover;
pub mod schedule;
pub mod tiled;
pub mod verify;

pub use admission::{AdmissionBatcher, AdmissionStats, FlushReport, Ticket};
pub use algo::{
    elimination_input, elimination_plan, elimination_plan_timed, level_durations, run_elimination,
    run_elimination_timed, Algo, EliminationMapping,
};
pub use engine::{ClosureEngine, EngineError};
pub use fault::{grid_fault_capacity, linear_fault_capacity, FaultyLinearEngine};
pub use fixed::{FixedArrayEngine, FixedArrayMapping, FixedLinearEngine, FixedLinearMapping};
pub use grid::{GridEngine, GridMapping};
pub use linear::{LinearEngine, LpgsMapping};
pub use lsgp::{LsgpEngine, LsgpMapping};
pub use mapping::{MappedEngine, Mapping};
pub use packed::PackedEngine;
pub use parallel::ParallelEngine;
pub use plan::CompiledPlan;
pub use recover::{Escalation, FaultAware, RecoveringEngine, RecoveryPolicy};
pub use schedule::{GsetSchedule, ScheduleEntry};
pub use tiled::{tiled_dag_closure, tiled_dag_closure_with_engine, TileStats};
pub use verify::{col_folds, row_folds, Verifier};
