//! Fault tolerance (§5): *"linear arrays are more advantageous than
//! two-dimensional ones because they are better suited to incorporate
//! fault-tolerant capabilities."*
//!
//! This module makes that claim measurable:
//!
//! * [`FaultyLinearEngine`] — a linear partitioned array with a set of
//!   failed cells, reconfigured by the classical bypass scheme: each faulty
//!   cell's pivot-chain register is switched to a pass-through, so the `f`
//!   healthy cells form a working linear array whose inter-cell links have
//!   one extra cycle of latency per bypassed neighbor. The engine still
//!   computes exact closures; throughput degrades gracefully by the factor
//!   `(m-f)/m` (work is redistributed), which experiment E18 measures.
//! * [`grid_fault_capacity`] — the matching 2-D story: without per-cell
//!   routing muxes, reconfiguring a `√m × √m` mesh around a fault requires
//!   retiring the fault's whole row and column (the standard spare-row/
//!   column argument), so `f` worst-case faults leave `(√m - f)²` usable
//!   cells — a much steeper loss than the linear array's `m - f`.

use crate::engine::{ClosureEngine, EngineError};
use crate::linear::LinearEngine;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use systolic_arraysim::{FaultEvent, FaultPlan, RunStats};
use systolic_semiring::{DenseMatrix, PathSemiring};

/// A linear partitioned array with failed cells bypassed.
#[derive(Debug)]
pub struct FaultyLinearEngine {
    physical: usize,
    faulty: Vec<usize>,
    healthy: Vec<usize>,
    /// Pivot-link delays between consecutive healthy cells (1 + number of
    /// bypassed cells in between).
    delays: Vec<u64>,
    /// Transient-fault plan injected into the *healthy* cells (bypassed
    /// cells carry no tasks, so no fault can land there).
    plan: Option<FaultPlan>,
    /// Per-run reseed nonce (see `LinearEngine::nonce`).
    nonce: AtomicU64,
    /// Faults applied during the most recent run.
    last_faults: Mutex<Vec<FaultEvent>>,
    /// The reconfigured array: a persistent linear engine over the healthy
    /// cells with delayed pivot links, kept across runs so its compiled
    /// plans and cached simulator are reused by every retry.
    inner: LinearEngine,
}

impl Clone for FaultyLinearEngine {
    fn clone(&self) -> Self {
        Self {
            physical: self.physical,
            faulty: self.faulty.clone(),
            healthy: self.healthy.clone(),
            delays: self.delays.clone(),
            plan: self.plan.clone(),
            nonce: AtomicU64::new(self.nonce.load(Ordering::Relaxed)),
            last_faults: Mutex::new(Vec::new()),
            inner: self.inner.clone(),
        }
    }
}

impl FaultyLinearEngine {
    /// Creates the engine from a physical cell count and a fault set.
    ///
    /// # Errors
    /// Rejects out-of-range or duplicate fault indices and arrays with no
    /// healthy cell.
    pub fn new(physical: usize, faulty: &[usize]) -> Result<Self, EngineError> {
        let mut f: Vec<usize> = faulty.to_vec();
        f.sort_unstable();
        f.dedup();
        if f.len() != faulty.len() {
            return Err(EngineError::BadInput("duplicate fault index".into()));
        }
        if f.iter().any(|&c| c >= physical) {
            return Err(EngineError::BadInput(format!(
                "fault index out of range (physical = {physical})"
            )));
        }
        let healthy: Vec<usize> = (0..physical).filter(|c| !f.contains(c)).collect();
        if healthy.is_empty() {
            return Err(EngineError::BadInput("no healthy cells remain".into()));
        }
        let delays: Vec<u64> = healthy.windows(2).map(|w| (w[1] - w[0]) as u64).collect();
        let inner = LinearEngine::with_link_delays(healthy.len(), delays.clone());
        Ok(Self {
            physical,
            faulty: f,
            healthy,
            delays,
            plan: None,
            nonce: AtomicU64::new(0),
            last_faults: Mutex::new(Vec::new()),
            inner,
        })
    }

    /// Arms a transient-fault plan on the healthy cells of the degraded
    /// array (logical cell coordinates — see [`Self::physical_cell`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Maps a logical (healthy-chain) cell index to its physical position
    /// in the original `m`-cell array.
    pub fn physical_cell(&self, logical: usize) -> Option<usize> {
        self.healthy.get(logical).copied()
    }

    /// Faults applied during the most recent run (logical coordinates).
    pub fn recent_fault_events(&self) -> Vec<FaultEvent> {
        self.last_faults.lock().expect("fault log poisoned").clone()
    }

    /// Physical cells in the array.
    pub fn physical_cells(&self) -> usize {
        self.physical
    }

    /// Healthy (working) cells.
    pub fn healthy_cells(&self) -> usize {
        self.healthy.len()
    }

    /// The fault set.
    pub fn faults(&self) -> &[usize] {
        &self.faulty
    }

    /// Expected throughput relative to the fault-free array: the healthy
    /// cells absorb all G-sets, so the ideal degradation is `(m-f)/m`.
    pub fn expected_degradation(&self) -> f64 {
        self.healthy.len() as f64 / self.physical as f64
    }

    /// Pivot-link delays of the reconfigured chain (for inspection).
    pub fn link_delays(&self) -> &[u64] {
        &self.delays
    }
}

impl<S: PathSemiring> ClosureEngine<S> for FaultyLinearEngine {
    fn name(&self) -> &'static str {
        "linear-partitioned-degraded"
    }

    fn cells(&self) -> usize {
        self.healthy.len()
    }

    fn closure_many(
        &self,
        mats: &[DenseMatrix<S>],
    ) -> Result<(Vec<DenseMatrix<S>>, RunStats), EngineError> {
        // Run on the persistent reconfigured array. The double reseed
        // reproduces the historical chain exactly: a per-call reseed from
        // this engine's nonce, then the (fresh) inner engine's own nonce-0
        // reseed — so fault sequences are bit-identical to when the inner
        // engine was rebuilt per call, while plans and simulators persist.
        let armed = self.plan.as_ref().map(|p| {
            p.reseeded(self.nonce.fetch_add(1, Ordering::Relaxed))
                .reseeded(0)
        });
        let record = armed.is_some();
        let run = self.inner.closure_many_with_plan(mats, armed);
        if record {
            *self.last_faults.lock().expect("fault log poisoned") =
                self.inner.take_recent_fault_events();
        }
        run
    }
}

impl<S: PathSemiring> crate::recover::FaultAware<S> for FaultyLinearEngine {
    fn recent_faults(&self) -> Vec<FaultEvent> {
        self.recent_fault_events()
    }

    fn blame_cell(&self, event: &FaultEvent) -> Option<usize> {
        use systolic_arraysim::FaultKind;
        // Events carry logical (healthy-chain) coordinates; map back to
        // the physical array so escalation bypasses the right hardware.
        let logical = match event.kind {
            FaultKind::CorruptEmit { cell } | FaultKind::StickCell { cell, .. } => cell,
            FaultKind::DropWord { link } | FaultKind::DuplicateWord { link } => link,
            FaultKind::BankFlip { bank } => {
                if bank >= self.healthy.len() {
                    return None; // shared pivot bank
                }
                bank
            }
        };
        self.physical_cell(logical)
    }

    fn bypass_plan(&self, faulty: &[usize]) -> Option<FaultyLinearEngine> {
        let mut all = self.faulty.clone();
        all.extend_from_slice(faulty);
        all.sort_unstable();
        all.dedup();
        FaultyLinearEngine::new(self.physical, &all).ok()
    }
}

/// Usable computational capacity of a `side × side` mesh after `faults`
/// worst-case cell failures, under spare-row/column reconfiguration: each
/// fault retires one row and one column.
pub fn grid_fault_capacity(side: usize, faults: usize) -> f64 {
    if faults >= side {
        return 0.0;
    }
    let left = side - faults;
    (left * left) as f64 / (side * side) as f64
}

/// Usable capacity of a linear array after `faults` failures with bypass
/// reconfiguration.
pub fn linear_fault_capacity(m: usize, faults: usize) -> f64 {
    if faults >= m {
        return 0.0;
    }
    (m - faults) as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::{warshall, Bool};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut a = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            a.set(i, j, true);
        }
        a
    }

    #[test]
    fn degraded_array_still_computes_exact_closures() {
        let a = bool_adj(7, &[(0, 3), (3, 6), (6, 1), (1, 5), (5, 0), (2, 4)]);
        let want = warshall(&a);
        for faults in [vec![1], vec![0, 3], vec![2, 3, 4]] {
            let eng = FaultyLinearEngine::new(5, &faults).unwrap();
            let (got, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
            assert_eq!(got, want, "faults {faults:?}");
            assert_eq!(stats.cells, 5 - faults.len());
        }
    }

    #[test]
    fn bypass_delays_reflect_gap_sizes() {
        let eng = FaultyLinearEngine::new(6, &[2, 3]).unwrap();
        assert_eq!(eng.healthy_cells(), 4);
        // healthy = [0,1,4,5]: gaps 1, 3, 1.
        assert_eq!(eng.link_delays(), &[1, 3, 1]);
        assert!((eng.expected_degradation() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_degrades_gracefully_not_catastrophically() {
        let a = bool_adj(12, &[(0, 11), (11, 5), (5, 9), (9, 2), (2, 7), (7, 0)]);
        let healthy = LinearEngine::new(4);
        let (_, h) = ClosureEngine::<Bool>::closure(&healthy, &a).unwrap();
        let degraded = FaultyLinearEngine::new(4, &[2]).unwrap();
        let (_, d) = ClosureEngine::<Bool>::closure(&degraded, &a).unwrap();
        let slowdown = d.cycles as f64 / h.cycles as f64;
        // Ideal slowdown is 4/3 ≈ 1.33; allow scheduling slack but insist
        // it is nowhere near losing the whole array.
        assert!((1.0..1.9).contains(&slowdown), "slowdown {slowdown}");
    }

    #[test]
    fn linear_beats_grid_capacity_under_faults() {
        // §5's argument quantified at equal cell budget m = 16.
        for f in 1..4 {
            let lin = linear_fault_capacity(16, f);
            let grid = grid_fault_capacity(4, f);
            assert!(lin > grid, "f={f}: linear {lin} vs grid {grid}");
        }
        assert_eq!(grid_fault_capacity(4, 4), 0.0);
        assert_eq!(linear_fault_capacity(16, 4), 0.75);
    }

    #[test]
    fn invalid_fault_sets_are_rejected() {
        assert!(FaultyLinearEngine::new(4, &[4]).is_err());
        assert!(FaultyLinearEngine::new(4, &[1, 1]).is_err());
        assert!(FaultyLinearEngine::new(2, &[0, 1]).is_err());
    }
}
