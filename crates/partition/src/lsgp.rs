//! The coalescing (LSGP) mapping of §2, promoted from analytic model to a
//! real simulated engine.
//!
//! Coalescing is the dual of cut-and-pile: instead of executing one G-set
//! at a time on the whole array (LPGS), each of the `m` cells owns a fixed
//! *component* of the G-graph — here the `h`-columns with `h ≡ c (mod m)`
//! — and executes it sequentially, row by row. The consequences the paper
//! predicts (and `systolic-baselines::coalescing` models analytically)
//! fall straight out of the stream wiring:
//!
//! * **Column streams never leave the cell.** The consumer of column
//!   `(k, h)` is `(k+1, h)` — the same `h`, hence the same cell — so every
//!   column stream is buffered in the cell's private bank until the cell
//!   comes back around to that column one row later. That buffer is the
//!   paper's reservation about coalescing: `Θ(n²/m)` words of local
//!   storage per cell, measured here as the bank's high-water mark
//!   (`RunStats::bank_peak_resident`).
//! * **Pivot streams ride the ring.** The consumer of pivot `(k, h)` is
//!   `(k, h+1)` — the next cell — so pivots hop neighbor links `c → c+1`
//!   and wrap from cell `m-1` back to cell 0 through a single boundary
//!   bank: `m + 1` memory connections, like the linear LPGS array.
//!
//! The schedule is pure geometry in [`LsgpMapping`]; execution,
//! memoization and fault machinery come from the shared [`MappedEngine`],
//! so LSGP results are validated against Warshall exactly like every other
//! mapping (experiment E25 ties the measured storage and makespan back to
//! the analytic `CoalescingModel` of E16).

use crate::engine::{ideal_cycles_per_instance, stream_key};
use crate::mapping::{MappedEngine, Mapping};
use crate::plan::{CompiledPlan, PlanBuilder};
use systolic_arraysim::{StreamDst, StreamSrc, Task, TaskKind, TaskLabel};
use systolic_transform::{GGraph, GNodeRole};

/// The coalescing (LSGP) mapping onto a ring of `m` cells.
#[derive(Clone, Debug)]
pub struct LsgpMapping {
    m: usize,
}

impl LsgpMapping {
    /// Creates the mapping for `m` cells. A zero cell count is
    /// representable but rejected with [`crate::EngineError::BadInput`] at
    /// run time (see [`Mapping::validate`]).
    pub fn new(m: usize) -> Self {
        Self { m }
    }

    /// Number of `h`-columns cell `c` owns for problem size `n`:
    /// `|{h < 2n : h ≡ c (mod m)}|`.
    pub fn columns_owned(&self, c: usize, n: usize) -> usize {
        (2 * n).saturating_sub(c).div_ceil(self.m)
    }
}

impl Mapping for LsgpMapping {
    fn name(&self) -> &'static str {
        "lsgp-coalescing"
    }

    fn cells(&self) -> usize {
        self.m
    }

    fn validate(&self) -> Result<(), crate::engine::EngineError> {
        if self.m == 0 {
            return Err(crate::engine::EngineError::BadInput(
                "coalescing ring needs at least one cell (m ≥ 1)".into(),
            ));
        }
        Ok(())
    }

    /// Compiles the coalesced schedule: cell `c` runs its owned columns in
    /// row-major `(k, h)` order, column streams through its private bank,
    /// pivot streams over the `c → c+1` links with the `m-1 → 0` wrap
    /// through the boundary bank.
    fn build_plan(&self, n: usize, batch_len: usize) -> CompiledPlan {
        let m = self.m;
        let gg = GGraph::new(n);

        let mut plan = PlanBuilder::new(n, batch_len, m);
        // Pivot links cell c → c+1; the ring closes through the wrap bank,
        // never a backward link, so link backpressure cannot cycle.
        let links: Vec<usize> = (0..m.saturating_sub(1)).map(|_| plan.add_link()).collect();
        // Private column banks 0..m (the Θ(n²/m) local storage), wrap bank m.
        for _ in 0..=m {
            plan.add_bank();
        }
        let wrap_bank = m;
        plan.set_memory_connections(m + 1);
        let out0 = plan.add_outputs(batch_len * n);

        // Host demand order mirrors row 0 of the schedule: instance, then
        // column; each word goes to the owning cell.
        for inst in 0..batch_len {
            for h in 0..n {
                plan.feed_host(h % m, stream_key(inst, 0, h), inst, h);
            }
        }

        // Task programs: every cell sweeps its component row-major, so the
        // per-cell order and the per-link word order are both lexicographic
        // in (instance, k, h) — FIFO links need no reordering.
        for inst in 0..batch_len {
            for k in 0..n {
                for h in k..=(k + n) {
                    let c = h % m;
                    let Some(id) = gg.at_h(k, h) else { continue };
                    let role = gg.role(id);
                    let kind = match role {
                        GNodeRole::PivotHead => TaskKind::PivotHead,
                        GNodeRole::Fuse => TaskKind::Fuse,
                        GNodeRole::DelayTail => TaskKind::DelayTail,
                    };
                    // Column (k-1, h) was produced by this same cell one
                    // row earlier: read it back from the private bank.
                    let col_in = match role {
                        GNodeRole::DelayTail => None,
                        _ if k == 0 => Some(plan.host_src(c, stream_key(inst, 0, h))),
                        _ => Some(plan.bank_src(c, stream_key(inst, k - 1, h))),
                    };
                    // Pivot (k, h-1) comes from the left ring neighbor;
                    // cell 0 reads the wrap of cell m-1 (with m = 1 both
                    // ends collapse onto the wrap bank).
                    let pivot_in = match role {
                        GNodeRole::PivotHead => None,
                        _ if c > 0 => Some(StreamSrc::Link(links[c - 1])),
                        _ => Some(plan.bank_src(wrap_bank, stream_key(inst, k, h - 1))),
                    };
                    let col_out = match role {
                        GNodeRole::PivotHead => None,
                        _ if k == n - 1 => Some(StreamDst::Output {
                            stream: out0 + inst * n + (h - n),
                        }),
                        _ => Some(plan.bank_dst(c, stream_key(inst, k, h))),
                    };
                    let pivot_out = match role {
                        GNodeRole::DelayTail => None,
                        _ if c < m - 1 => Some(StreamDst::Link(links[c])),
                        _ => Some(plan.bank_dst(wrap_bank, stream_key(inst, k, h))),
                    };
                    plan.push_task(
                        c,
                        Task {
                            kind,
                            len: n,
                            col_in,
                            pivot_in,
                            col_out,
                            pivot_out,
                            head_out: None,
                            duration: 1,
                            useful_ops: gg.useful_ops(id) as u64,
                            label: TaskLabel {
                                k: k as u32,
                                h: h as u32,
                            },
                        },
                    );
                }
            }
        }

        // Balanced components make coalescing's makespan match cut-and-pile's
        // ideal n²(n+1)/m, so the same budget formula applies.
        let ideal = ideal_cycles_per_instance(n, m) + 1;
        plan.set_max_cycles(batch_len as u64 * ideal * 20 + 100_000);
        plan.finish()
    }
}

/// Coalescing (LSGP) executor on a ring of `m` cells.
pub type LsgpEngine = MappedEngine<LsgpMapping>;

impl LsgpEngine {
    /// Creates an engine with `m ≥ 1` cells.
    pub fn new(m: usize) -> Self {
        Self::from_mapping(LsgpMapping::new(m))
    }

    /// Largest number of words any single cell's private column bank held
    /// at once during the run that produced `stats` — the measured
    /// `Θ(n²/m)` local-storage cost of coalescing. Excludes the shared
    /// pivot wrap bank, which indicts no single cell.
    pub fn peak_local_words(&self, stats: &systolic_arraysim::RunStats) -> usize {
        let m = self.mapping().cells();
        stats
            .bank_peak_resident
            .iter()
            .take(m)
            .copied()
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClosureEngine;
    use systolic_semiring::{warshall, Bool, DenseMatrix, MinPlus};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut a = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            a.set(i, j, true);
        }
        a
    }

    #[test]
    fn matches_warshall_across_cell_counts() {
        let a = bool_adj(6, &[(0, 3), (3, 5), (5, 1), (1, 4), (4, 0), (2, 2)]);
        let want = warshall(&a);
        // m = 1 collapses the ring onto the wrap bank; m = 16 > 2n leaves
        // cells beyond h = 2n-1 idle.
        for m in [1usize, 2, 3, 4, 5, 8, 13, 16] {
            let eng = LsgpEngine::new(m);
            let (got, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
            assert_eq!(got, want, "m={m}");
            assert_eq!(stats.memory_connections, m + 1);
            assert_eq!(stats.useful_ops, (6 * 5 * 4) as u64);
        }
    }

    #[test]
    fn matches_warshall_minplus() {
        let n = 5;
        let mut a = DenseMatrix::<MinPlus>::zeros(n, n);
        for (i, j, w) in [
            (0, 1, 2u64),
            (1, 2, 3),
            (2, 3, 1),
            (3, 4, 4),
            (4, 0, 9),
            (0, 4, 99),
        ] {
            a.set(i, j, w);
        }
        let eng = LsgpEngine::new(3);
        let (got, _) = ClosureEngine::<MinPlus>::closure(&eng, &a).unwrap();
        assert_eq!(got, warshall(&a));
        assert_eq!(*got.get(0, 4), 10);
    }

    #[test]
    fn chained_instances_share_the_array() {
        let a = bool_adj(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let b = bool_adj(5, &[(4, 3), (3, 2), (2, 1), (1, 0)]);
        let eng = LsgpEngine::new(3);
        let (got, stats) =
            ClosureEngine::<Bool>::closure_many(&eng, &[a.clone(), b.clone()]).unwrap();
        assert_eq!(got[0], warshall(&a));
        assert_eq!(got[1], warshall(&b));
        assert_eq!(stats.output_words, 2 * 25);
    }

    #[test]
    fn cached_plan_reruns_bit_identically() {
        let a = bool_adj(7, &[(0, 3), (3, 6), (6, 1), (1, 5), (5, 0), (2, 4)]);
        let b = bool_adj(7, &[(6, 0), (0, 6), (2, 5)]);
        let eng = LsgpEngine::new(4);
        let batch = [a, b];
        let (r1, s1) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        let (r2, s2) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        eng.clear_caches();
        let (r3, s3) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
        assert_eq!(s1, s2);
        assert_eq!(s1, s3);
    }

    #[test]
    fn local_storage_is_theta_n_squared_over_m() {
        // The paper's reservation about coalescing, measured: each cell's
        // private bank peaks at ~n words per column live in the current row
        // window — the same Θ(n²/m) the analytic CoalescingModel predicts
        // (its 2n/m counts all owned columns; only the ~(n+1)/m live ones
        // are resident at once, hence a ratio near 1/2).
        let a = bool_adj(12, &[(0, 7), (7, 2), (2, 11), (11, 5), (5, 0), (3, 9)]);
        let mut prev_peak = usize::MAX;
        for m in [1usize, 2, 3, 4, 6] {
            let eng = LsgpEngine::new(m);
            let (_, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
            let peak = eng.peak_local_words(&stats);
            // Analytic prediction: ⌈2n/m⌉·n words per cell.
            let analytic = (2 * 12usize).div_ceil(m) * 12;
            let ratio = peak as f64 / analytic as f64;
            assert!(
                (0.3..=1.05).contains(&ratio),
                "m={m}: peak {peak} vs analytic {analytic} (ratio {ratio:.2})"
            );
            // Storage shrinks as cells are added — the Θ(n²/m) law.
            assert!(peak <= prev_peak, "m={m}: peak {peak} > prev {prev_peak}");
            prev_peak = peak;
        }
    }

    #[test]
    fn makespan_tracks_the_coalescing_model() {
        // Measured cycles against the analytic makespan ⌈n(n+1)/m⌉·n:
        // coalescing trades memory, not time.
        let a = bool_adj(12, &[(0, 7), (7, 2), (2, 11), (11, 5), (5, 0), (3, 9)]);
        for m in [2usize, 3, 4] {
            let eng = LsgpEngine::new(m);
            let (_, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
            let n = 12usize;
            let analytic = ((n * (n + 1)).div_ceil(m) * n) as u64;
            let slack = stats.cycles as f64 / analytic as f64;
            assert!(
                (0.9..=1.6).contains(&slack),
                "m={m}: {} cycles vs analytic {analytic} (slack {slack:.2})",
                stats.cycles
            );
        }
    }
}
