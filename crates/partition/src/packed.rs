//! Lane-packed batch execution: up to `LANE_COUNT` instances per run.
//!
//! The linear array's schedule is a pure function of the problem shape
//! (that is why [`crate::plan::CompiledPlan`] exists), so over any
//! [`LaneSemiring`] the *data* of a whole group of same-`n` instances fits
//! in the lanes of one element word ([`systolic_semiring::lanes`],
//! [`systolic_semiring::swar`]). A `closure_many` batch need not chain its
//! instances through the array one scalar element per stream event:
//! [`PackedEngine`] transposes each group of `≤ LANE_COUNT` instances into
//! a single lane matrix, runs the wrapped [`LinearEngine`]'s
//! ready-tracking loop **once** per group against the cached
//! single-instance plan, and transposes the result back — the same
//! simulated events now carry one result per lane.
//!
//! `PackedEngine` (no type argument) is the original 64-lane Boolean
//! plane; `PackedEngine<BoolLanes<2>>`/`<BoolLanes<4>>` run 128/256
//! Boolean lanes, and `PackedEngine<MinPlusSwar8>`/`<MinPlusSwar16>` give
//! weighted (min-plus) batches the packed path with 8×u8 / 4×u16
//! saturating tropical lanes.
//!
//! Results are bit-identical to the scalar engine whenever
//! [`LaneSemiring::batch_exact`] holds (always for Boolean lanes; on the
//! value-bounded exact domain for SWAR min-plus — outside it the batch
//! transparently takes the wrapped engine's scalar path). Merged
//! [`RunStats`] keep the scalar per-instance contract: a group's stats are
//! [`RunStats::scaled`] by its lane count, which equals the instance-order
//! merge of the per-instance scalar runs — so packed, scalar and
//! thread-parallel batch stats all agree under `PartialEq`.
//!
//! **Faults.** A whole-element value corruption is meaningless across
//! superimposed instances (one flipped word would fault all lanes at once,
//! breaking per-instance blame and the replay contract), so an armed
//! [`FaultPlan`] *without* a target lane routes the batch to the wrapped
//! engine's scalar path unchanged — PR 2's inject/verify/recover semantics
//! are untouched. A plan *with* [`FaultPlan::target_lane`] stays packed:
//! the simulator corrupts only that lane (via `Semiring::corrupt_lane`),
//! so the blast radius is the single resident instance
//! `group_base + target_lane % LANE_COUNT`, and the engine records that
//! attribution in [`PackedEngine::take_lane_blame`] for campaign audits.
//! `RecoveringEngine` campaigns over a lane-targeted plan therefore never
//! leave the packed path (see DESIGN §16).
//!
//! [`FaultPlan`]: systolic_arraysim::FaultPlan
//! [`FaultPlan::target_lane`]: systolic_arraysim::FaultPlan::target_lane

use crate::engine::{validate_batch, ClosureEngine, EngineError};
use crate::linear::LinearEngine;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use systolic_arraysim::{FaultEvent, RunStats};
use systolic_semiring::{pack_into_lanes, unpack_from_lanes, BoolLanes, DenseMatrix, LaneSemiring};

/// Lane-packed executor over a [`LinearEngine`], generic in the lane
/// semiring. The default type parameter is the 64-lane Boolean plane.
///
/// ```
/// use systolic_partition::{ClosureEngine, PackedEngine};
/// use systolic_semiring::{warshall, Bool, DenseMatrix};
///
/// let mut a = DenseMatrix::<Bool>::zeros(5, 5);
/// a.set(0, 3, true);
/// a.set(3, 1, true);
/// let batch = vec![a.clone(); 70]; // two lane groups
/// let eng = PackedEngine::new(4);
/// let (closed, _stats) = eng.closure_many(&batch).unwrap();
/// assert_eq!(closed[69], warshall(&a));
/// ```
///
/// Wider Boolean planes and the weighted plane are explicit
/// instantiations:
///
/// ```
/// use systolic_partition::{ClosureEngine, PackedEngine};
/// use systolic_semiring::instances::INF;
/// use systolic_semiring::{BoolLanes, DenseMatrix, MinPlus, MinPlusSwar8};
///
/// let wide = PackedEngine::<BoolLanes<4>>::over(4); // 256 Boolean lanes
/// assert_eq!(ClosureEngine::cells(&wide), 4);
/// let mut d = DenseMatrix::<MinPlus>::from_fn(4, 4, |i, j| if i == j { 0 } else { INF });
/// d.set(0, 2, 7);
/// let weighted = PackedEngine::<MinPlusSwar8>::over(2); // 8 tropical lanes
/// let (c, _) = weighted.closure_many(&[d]).unwrap();
/// assert_eq!(*c[0].get(0, 2), 7);
/// ```
#[derive(Debug)]
pub struct PackedEngine<L: LaneSemiring = BoolLanes> {
    inner: LinearEngine,
    /// Per-instance blame from the last packed armed run: for every
    /// value-corrupting fault event, the batch index of the one instance
    /// the lane mask confined it to.
    lane_blame: Mutex<Vec<(usize, FaultEvent)>>,
    /// Batches executed on the packed path.
    packed_runs: AtomicU64,
    /// Batches routed to the wrapped engine's scalar path (untargeted
    /// armed plan, or outside the lane plane's exact domain).
    fallback_runs: AtomicU64,
    _lane: PhantomData<L>,
}

impl<L: LaneSemiring> Clone for PackedEngine<L> {
    fn clone(&self) -> Self {
        // Run diagnostics (blame, path counters) describe *this* engine's
        // history; a clone starts with a clean slate, like the caches.
        Self::wrapping(self.inner.clone())
    }
}

impl PackedEngine {
    /// Creates a 64-lane Boolean packed engine over a fresh `m`-cell
    /// [`LinearEngine`].
    pub fn new(m: usize) -> Self {
        Self::from_engine(LinearEngine::new(m))
    }

    /// Wraps an existing engine (keeping its plan cache, link delays and
    /// any armed fault plan) in the 64-lane Boolean plane.
    pub fn from_engine(inner: LinearEngine) -> Self {
        Self::wrapping(inner)
    }
}

impl<L: LaneSemiring> PackedEngine<L> {
    /// Creates a packed engine in lane plane `L` over a fresh `m`-cell
    /// [`LinearEngine`] (e.g. `PackedEngine::<MinPlusSwar8>::over(4)`).
    pub fn over(m: usize) -> Self {
        Self::wrapping(LinearEngine::new(m))
    }

    /// Wraps an existing engine in lane plane `L`, keeping its plan
    /// cache, link delays and any armed fault plan.
    pub fn wrapping(inner: LinearEngine) -> Self {
        Self {
            inner,
            lane_blame: Mutex::new(Vec::new()),
            packed_runs: AtomicU64::new(0),
            fallback_runs: AtomicU64::new(0),
            _lane: PhantomData,
        }
    }

    /// The wrapped scalar engine.
    pub fn inner(&self) -> &LinearEngine {
        &self.inner
    }

    /// Drops the wrapped engine's memoized plans and cached simulators.
    pub fn clear_caches(&self) {
        self.inner.clear_caches();
    }

    /// True when the single-instance plan a packed lane group of size `n`
    /// runs on is already compiled — the next such group is warm.
    pub fn has_plan(&self, n: usize) -> bool {
        self.inner.has_plan(n, 1)
    }

    /// Takes the per-instance fault attributions of the last armed packed
    /// batch: `(batch_index, event)` for every value-corrupting fault,
    /// where `batch_index` is the one instance the plan's target lane
    /// confined the corruption to. Empty for clean runs, scalar-fallback
    /// runs, and faults that landed in an unoccupied lane.
    pub fn take_lane_blame(&self) -> Vec<(usize, FaultEvent)> {
        std::mem::take(&mut self.lane_blame.lock().expect("blame lock poisoned"))
    }

    /// Number of batches this engine executed on the packed path.
    pub fn packed_runs(&self) -> u64 {
        self.packed_runs.load(Ordering::Relaxed)
    }

    /// Number of batches this engine routed to the scalar path.
    pub fn fallback_runs(&self) -> u64 {
        self.fallback_runs.load(Ordering::Relaxed)
    }
}

impl<L: LaneSemiring> ClosureEngine<L::Scalar> for PackedEngine<L> {
    fn name(&self) -> &'static str {
        L::ENGINE_NAME
    }

    fn cells(&self) -> usize {
        ClosureEngine::<L::Scalar>::cells(&self.inner)
    }

    fn preferred_chunk(&self) -> usize {
        L::LANE_COUNT
    }

    fn closure_many(
        &self,
        mats: &[DenseMatrix<L::Scalar>],
    ) -> Result<(Vec<DenseMatrix<L::Scalar>>, RunStats), EngineError> {
        let armed_lane = self.inner.fault_plan().and_then(|p| p.target_lane);
        let untargeted_plan = self.inner.fault_plan().is_some() && armed_lane.is_none();
        if untargeted_plan || !L::batch_exact(mats) {
            // Scalar fallback: whole-element value faults don't compose
            // across lanes, and out-of-domain values don't fit them.
            self.fallback_runs.fetch_add(1, Ordering::Relaxed);
            return self.inner.closure_many(mats);
        }
        validate_batch(mats)?;
        self.packed_runs.fetch_add(1, Ordering::Relaxed);
        self.lane_blame.lock().expect("blame lock poisoned").clear();
        let lanes = L::LANE_COUNT;
        let started = std::time::Instant::now();
        let mut results = Vec::with_capacity(mats.len());
        let mut merged: Option<RunStats> = None;
        for (gi, group) in mats.chunks(lanes).enumerate() {
            let packed = pack_into_lanes::<L>(group);
            let run = ClosureEngine::<L>::closure(&self.inner, &packed);
            if let Some(target) = armed_lane {
                // The lane mask confines every value fault of this group's
                // run to one batch instance; record the attribution (runs
                // that error still log their faults before failing).
                let instance = gi * lanes + target % lanes;
                if instance < mats.len() {
                    let mut blame = self.lane_blame.lock().expect("blame lock poisoned");
                    blame.extend(
                        self.inner
                            .recent_fault_events()
                            .into_iter()
                            .filter(|e| e.kind.is_value_corrupting())
                            .map(|e| (instance, e)),
                    );
                }
            }
            let (closed, stats) = run.map_err(|e| {
                match e {
                    // A packed structural corruption has no single lane;
                    // charge the group's first instance.
                    EngineError::Corrupt { detail, .. } => EngineError::Corrupt {
                        instance: gi * lanes,
                        detail: format!("lane group of {}: {detail}", group.len()),
                    },
                    other => other,
                }
            })?;
            results.extend(unpack_from_lanes::<L>(&closed, group.len()));
            let stats = stats.scaled(group.len() as u64);
            match &mut merged {
                None => merged = Some(stats),
                Some(acc) => acc.merge(&stats),
            }
        }
        let mut merged = merged.expect("validated batch is non-empty");
        merged.wall_nanos = started.elapsed().as_nanos() as u64;
        Ok((results, merged))
    }
}

impl<L: LaneSemiring> crate::recover::FaultAware<L::Scalar> for PackedEngine<L> {
    fn recent_faults(&self) -> Vec<FaultEvent> {
        // Both paths run on the wrapped engine, which records the events
        // of the most recent batch whether it was packed or scalar.
        self.inner.recent_fault_events()
    }

    fn blame_cell(&self, event: &FaultEvent) -> Option<usize> {
        crate::recover::FaultAware::<L::Scalar>::blame_cell(&self.inner, event)
    }

    fn bypass_plan(&self, faulty: &[usize]) -> Option<crate::fault::FaultyLinearEngine> {
        crate::recover::FaultAware::<L::Scalar>::bypass_plan(&self.inner, faulty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_arraysim::FaultPlan;
    use systolic_semiring::instances::INF;
    use systolic_semiring::{warshall, Bool, MinPlus, MinPlusSwar8};
    use systolic_util::Rng;

    fn random_bool(n: usize, rng: &mut Rng) -> DenseMatrix<Bool> {
        DenseMatrix::from_fn(n, n, |i, j| i != j && rng.gen_bool(0.25))
    }

    fn random_minplus(n: usize, rng: &mut Rng) -> DenseMatrix<MinPlus> {
        DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                0
            } else if rng.gen_bool(0.4) {
                rng.gen_usize(12) as u64 + 1
            } else {
                INF
            }
        })
    }

    #[test]
    fn packed_equals_scalar_and_warshall() {
        let mut rng = Rng::seed_from_u64(9);
        let batch: Vec<_> = (0..67).map(|_| random_bool(6, &mut rng)).collect();
        let eng = PackedEngine::new(3);
        let scalar = LinearEngine::new(3);
        let (got, _) = eng.closure_many(&batch).unwrap();
        assert_eq!(got.len(), batch.len());
        for (a, c) in batch.iter().zip(&got) {
            assert_eq!(*c, warshall(a));
            assert_eq!(*c, scalar.closure(a).unwrap().0);
        }
        assert_eq!((eng.packed_runs(), eng.fallback_runs()), (1, 0));
    }

    #[test]
    fn wide_planes_equal_scalar_across_group_boundaries() {
        let mut rng = Rng::seed_from_u64(10);
        let batch: Vec<_> = (0..130).map(|_| random_bool(5, &mut rng)).collect();
        let w2 = PackedEngine::<BoolLanes<2>>::over(3);
        let w4 = PackedEngine::<BoolLanes<4>>::over(3);
        let (got2, _) = w2.closure_many(&batch).unwrap();
        let (got4, _) = w4.closure_many(&batch).unwrap();
        for ((a, c2), c4) in batch.iter().zip(&got2).zip(&got4) {
            let expect = warshall(a);
            assert_eq!(*c2, expect);
            assert_eq!(*c4, expect);
        }
        assert_eq!(
            ClosureEngine::<Bool>::preferred_chunk(&w2),
            128,
            "W-word planes advertise their W·64 chunk"
        );
        assert_eq!(ClosureEngine::<Bool>::preferred_chunk(&w4), 256);
    }

    #[test]
    fn minplus_packed_equals_scalar_and_falls_back_out_of_domain() {
        let mut rng = Rng::seed_from_u64(11);
        let batch: Vec<_> = (0..9).map(|_| random_minplus(6, &mut rng)).collect();
        let eng = PackedEngine::<MinPlusSwar8>::over(3);
        let scalar = LinearEngine::new(3);
        let (got, _) = eng.closure_many(&batch).unwrap();
        for (a, c) in batch.iter().zip(&got) {
            assert_eq!(*c, warshall(a));
            assert_eq!(*c, ClosureEngine::<MinPlus>::closure(&scalar, a).unwrap().0);
        }
        assert_eq!((eng.packed_runs(), eng.fallback_runs()), (1, 0));
        assert_eq!(ClosureEngine::<MinPlus>::preferred_chunk(&eng), 8);
        // Heavy weights leave the u8 lanes' exact domain: scalar fallback,
        // same results.
        let heavy: Vec<_> = (0..3)
            .map(|_| {
                DenseMatrix::<MinPlus>::from_fn(5, 5, |i, j| {
                    if i == j {
                        0
                    } else {
                        200 + rng.gen_usize(100) as u64
                    }
                })
            })
            .collect();
        let (got, _) = eng.closure_many(&heavy).unwrap();
        for (a, c) in heavy.iter().zip(&got) {
            assert_eq!(*c, warshall(a));
        }
        assert_eq!((eng.packed_runs(), eng.fallback_runs()), (1, 1));
    }

    #[test]
    fn merged_stats_keep_the_per_instance_contract() {
        let mut rng = Rng::seed_from_u64(15);
        let batch: Vec<_> = (0..5).map(|_| random_bool(5, &mut rng)).collect();
        let scalar = LinearEngine::new(2);
        let mut expect: Option<RunStats> = None;
        for a in &batch {
            let (_, s) = scalar.closure(a).unwrap();
            match &mut expect {
                None => expect = Some(s),
                Some(acc) => acc.merge(&s),
            }
        }
        let eng = PackedEngine::new(2);
        let (_, got) = eng.closure_many(&batch).unwrap();
        assert_eq!(got, expect.unwrap());
    }

    #[test]
    fn armed_fault_plan_takes_the_scalar_path() {
        let plan = FaultPlan::transients(77, 1e-3);
        let mut rng = Rng::seed_from_u64(21);
        let batch: Vec<_> = (0..3).map(|_| random_bool(5, &mut rng)).collect();
        let packed = PackedEngine::from_engine(LinearEngine::new(2).with_fault_plan(plan.clone()));
        let scalar = LinearEngine::new(2).with_fault_plan(plan);
        // Same plan, same nonce sequence: byte-identical behavior, faults
        // included — the packed wrapper is invisible under armed faults.
        let p = packed.closure_many(&batch);
        let s = ClosureEngine::<Bool>::closure_many(&scalar, &batch);
        assert_eq!(p, s);
        assert_eq!(
            crate::recover::FaultAware::<Bool>::recent_faults(&packed),
            scalar.recent_fault_events()
        );
        assert_eq!((packed.packed_runs(), packed.fallback_runs()), (0, 1));
    }

    #[test]
    fn lane_targeted_plan_stays_packed_and_blames_one_instance() {
        let mut rng = Rng::seed_from_u64(33);
        let batch: Vec<_> = (0..80).map(|_| random_bool(6, &mut rng)).collect();
        let target = 5usize;
        // Value faults only: structural drop/dup faults tear the shared
        // stream for the whole group, which is not what this test pins.
        let plan = FaultPlan {
            emit_corrupt: 8e-3,
            bank_flip: 8e-3,
            ..FaultPlan::none(0xFA11)
        }
        .with_target_lane(target);
        let eng = PackedEngine::from_engine(LinearEngine::new(2).with_fault_plan(plan));
        let (got, stats) = eng.closure_many(&batch).unwrap();
        assert_eq!(
            (eng.packed_runs(), eng.fallback_runs()),
            (1, 0),
            "targeted plan must not force the scalar path"
        );
        assert!(
            stats.fault.injected > 0,
            "the pinned seed injects at least one fault"
        );
        // Only instances ≡ target (mod 64) may differ from the reference;
        // every other lane is untouched by construction.
        let mut mismatched = Vec::new();
        for (i, (a, c)) in batch.iter().zip(&got).enumerate() {
            if *c != warshall(a) {
                mismatched.push(i);
            }
        }
        for i in &mismatched {
            assert_eq!(i % 64, target, "corruption leaked out of the target lane");
        }
        // Every blame record points at a target-lane instance.
        let blame = eng.take_lane_blame();
        for (inst, ev) in &blame {
            assert_eq!(inst % 64, target);
            assert!(ev.kind.is_value_corrupting());
        }
        // Any actual mismatch must be explained by a recorded blame.
        for i in &mismatched {
            assert!(
                blame.iter().any(|(inst, _)| inst == i),
                "mismatched instance {i} has no blame record"
            );
        }
    }

    #[test]
    fn recovering_campaign_stays_packed_under_a_targeted_plan() {
        let mut rng = Rng::seed_from_u64(44);
        let batch: Vec<_> = (0..6).map(|_| random_bool(6, &mut rng)).collect();
        // Target lane 0: the campaign's per-instance retries run groups of
        // one, whose single occupied lane is lane 0.
        let plan = FaultPlan {
            emit_corrupt: 3e-2,
            ..FaultPlan::none(0xBEEF)
        }
        .with_target_lane(0);
        let packed = PackedEngine::from_engine(LinearEngine::new(2).with_fault_plan(plan));
        let eng = crate::recover::RecoveringEngine::new(packed);
        let (got, stats) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        for (a, c) in batch.iter().zip(&got) {
            assert_eq!(*c, warshall(a), "recovered outputs are verified-correct");
        }
        assert!(
            stats.fault.retries > 0,
            "the pinned seed forces at least one verifier rejection"
        );
        let inner = eng.inner();
        assert!(inner.packed_runs() > 0);
        assert_eq!(
            inner.fallback_runs(),
            0,
            "a lane-targeted campaign never leaves the packed path"
        );
    }

    #[test]
    fn rejects_bad_batches_like_the_scalar_engine() {
        let eng = PackedEngine::new(2);
        let empty: Vec<DenseMatrix<Bool>> = vec![];
        assert!(matches!(
            eng.closure_many(&empty),
            Err(EngineError::BadInput(_))
        ));
        let mixed = vec![
            DenseMatrix::<Bool>::zeros(3, 3),
            DenseMatrix::<Bool>::zeros(4, 4),
        ];
        assert!(matches!(
            eng.closure_many(&mixed),
            Err(EngineError::BadInput(_))
        ));
    }
}
