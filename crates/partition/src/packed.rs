//! Lane-packed batch execution: 64 Boolean instances per simulated run.
//!
//! The linear array's schedule is a pure function of the problem shape
//! (that is why [`crate::plan::CompiledPlan`] exists), and over the
//! Boolean semiring the *data* of up to [`LANES`] same-`n` instances fits
//! in the lanes of one `u64` word ([`systolic_semiring::lanes`]). So a
//! `closure_many` batch need not chain its instances through the array one
//! scalar element per stream event: [`PackedEngine`] transposes each group
//! of ≤ 64 instances into a single [`BoolLanes`] matrix, runs the wrapped
//! [`LinearEngine`]'s ready-tracking loop **once** per group against the
//! cached single-instance plan, and transposes the result back — the same
//! simulated events now carry 64 results each.
//!
//! Results are bit-identical to the scalar engine (per-lane `OR`/`AND`
//! *is* the Boolean semiring, and the schedule never looks at values).
//! Merged [`RunStats`] keep the scalar per-instance contract: a group's
//! stats are [`RunStats::scaled`] by its lane count, which equals the
//! instance-order merge of the per-instance scalar runs — so packed,
//! scalar and thread-parallel batch stats all agree under `PartialEq`.
//!
//! **Fault fallback.** Fault injection corrupts *values* at concrete
//! sites, which is meaningless across 64 superimposed instances (one
//! flipped word would fault all lanes at once, breaking per-instance blame
//! and the replay contract). An armed [`FaultPlan`] therefore routes the
//! whole batch to the wrapped engine's scalar path unchanged — PR 2's
//! inject/verify/recover semantics are untouched (see DESIGN §10).
//!
//! [`FaultPlan`]: systolic_arraysim::FaultPlan

use crate::engine::{validate_batch, ClosureEngine, EngineError};
use crate::linear::LinearEngine;
use systolic_arraysim::{FaultEvent, RunStats};
use systolic_semiring::{pack_lanes, unpack_lanes, Bool, BoolLanes, DenseMatrix, LANES};

/// Bit-sliced Boolean executor over a [`LinearEngine`].
///
/// ```
/// use systolic_partition::{ClosureEngine, PackedEngine};
/// use systolic_semiring::{warshall, Bool, DenseMatrix};
///
/// let mut a = DenseMatrix::<Bool>::zeros(5, 5);
/// a.set(0, 3, true);
/// a.set(3, 1, true);
/// let batch = vec![a.clone(); 70]; // two lane groups
/// let eng = PackedEngine::new(4);
/// let (closed, _stats) = eng.closure_many(&batch).unwrap();
/// assert_eq!(closed[69], warshall(&a));
/// ```
#[derive(Clone, Debug)]
pub struct PackedEngine {
    inner: LinearEngine,
}

impl PackedEngine {
    /// Creates a packed engine over a fresh `m`-cell [`LinearEngine`].
    pub fn new(m: usize) -> Self {
        Self::from_engine(LinearEngine::new(m))
    }

    /// Wraps an existing engine (keeping its plan cache, link delays and
    /// any armed fault plan — the latter forces the scalar path).
    pub fn from_engine(inner: LinearEngine) -> Self {
        Self { inner }
    }

    /// The wrapped scalar engine.
    pub fn inner(&self) -> &LinearEngine {
        &self.inner
    }

    /// Drops the wrapped engine's memoized plans and cached simulators.
    pub fn clear_caches(&self) {
        self.inner.clear_caches();
    }

    /// True when the single-instance plan a packed lane group of size `n`
    /// runs on is already compiled — the next such group is warm.
    pub fn has_plan(&self, n: usize) -> bool {
        self.inner.has_plan(n, 1)
    }
}

impl ClosureEngine<Bool> for PackedEngine {
    fn name(&self) -> &'static str {
        "linear-packed"
    }

    fn cells(&self) -> usize {
        ClosureEngine::<Bool>::cells(&self.inner)
    }

    fn preferred_chunk(&self) -> usize {
        LANES
    }

    fn closure_many(
        &self,
        mats: &[DenseMatrix<Bool>],
    ) -> Result<(Vec<DenseMatrix<Bool>>, RunStats), EngineError> {
        if self.inner.fault_plan().is_some() {
            // Scalar fallback: value faults don't compose across lanes.
            return self.inner.closure_many(mats);
        }
        validate_batch(mats)?;
        let started = std::time::Instant::now();
        let mut results = Vec::with_capacity(mats.len());
        let mut merged: Option<RunStats> = None;
        for (gi, group) in mats.chunks(LANES).enumerate() {
            let packed = pack_lanes(group);
            let (closed, stats) = ClosureEngine::<BoolLanes>::closure(&self.inner, &packed)
                .map_err(|e| {
                    match e {
                        // A packed structural corruption has no single lane;
                        // charge the group's first instance.
                        EngineError::Corrupt { detail, .. } => EngineError::Corrupt {
                            instance: gi * LANES,
                            detail: format!("lane group of {}: {detail}", group.len()),
                        },
                        other => other,
                    }
                })?;
            results.extend(unpack_lanes(&closed, group.len()));
            let stats = stats.scaled(group.len() as u64);
            match &mut merged {
                None => merged = Some(stats),
                Some(acc) => acc.merge(&stats),
            }
        }
        let mut merged = merged.expect("validated batch is non-empty");
        merged.wall_nanos = started.elapsed().as_nanos() as u64;
        Ok((results, merged))
    }
}

impl crate::recover::FaultAware<Bool> for PackedEngine {
    fn recent_faults(&self) -> Vec<FaultEvent> {
        // Faulty runs only ever execute on the scalar fallback path.
        self.inner.recent_fault_events()
    }

    fn blame_cell(&self, event: &FaultEvent) -> Option<usize> {
        crate::recover::FaultAware::<Bool>::blame_cell(&self.inner, event)
    }

    fn bypass_plan(&self, faulty: &[usize]) -> Option<crate::fault::FaultyLinearEngine> {
        crate::recover::FaultAware::<Bool>::bypass_plan(&self.inner, faulty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_arraysim::FaultPlan;
    use systolic_semiring::warshall;
    use systolic_util::Rng;

    fn random_bool(n: usize, rng: &mut Rng) -> DenseMatrix<Bool> {
        DenseMatrix::from_fn(n, n, |i, j| i != j && rng.gen_bool(0.25))
    }

    #[test]
    fn packed_equals_scalar_and_warshall() {
        let mut rng = Rng::seed_from_u64(9);
        let batch: Vec<_> = (0..67).map(|_| random_bool(6, &mut rng)).collect();
        let eng = PackedEngine::new(3);
        let scalar = LinearEngine::new(3);
        let (got, _) = eng.closure_many(&batch).unwrap();
        assert_eq!(got.len(), batch.len());
        for (a, c) in batch.iter().zip(&got) {
            assert_eq!(*c, warshall(a));
            assert_eq!(*c, scalar.closure(a).unwrap().0);
        }
    }

    #[test]
    fn merged_stats_keep_the_per_instance_contract() {
        let mut rng = Rng::seed_from_u64(15);
        let batch: Vec<_> = (0..5).map(|_| random_bool(5, &mut rng)).collect();
        let scalar = LinearEngine::new(2);
        let mut expect: Option<RunStats> = None;
        for a in &batch {
            let (_, s) = scalar.closure(a).unwrap();
            match &mut expect {
                None => expect = Some(s),
                Some(acc) => acc.merge(&s),
            }
        }
        let eng = PackedEngine::new(2);
        let (_, got) = eng.closure_many(&batch).unwrap();
        assert_eq!(got, expect.unwrap());
    }

    #[test]
    fn armed_fault_plan_takes_the_scalar_path() {
        let plan = FaultPlan::transients(77, 1e-3);
        let mut rng = Rng::seed_from_u64(21);
        let batch: Vec<_> = (0..3).map(|_| random_bool(5, &mut rng)).collect();
        let packed = PackedEngine::from_engine(LinearEngine::new(2).with_fault_plan(plan.clone()));
        let scalar = LinearEngine::new(2).with_fault_plan(plan);
        // Same plan, same nonce sequence: byte-identical behavior, faults
        // included — the packed wrapper is invisible under armed faults.
        let p = packed.closure_many(&batch);
        let s = ClosureEngine::<Bool>::closure_many(&scalar, &batch);
        assert_eq!(p, s);
        assert_eq!(
            crate::recover::FaultAware::<Bool>::recent_faults(&packed),
            scalar.recent_fault_events()
        );
    }

    #[test]
    fn rejects_bad_batches_like_the_scalar_engine() {
        let eng = PackedEngine::new(2);
        let empty: Vec<DenseMatrix<Bool>> = vec![];
        assert!(matches!(
            eng.closure_many(&empty),
            Err(EngineError::BadInput(_))
        ));
        let mixed = vec![
            DenseMatrix::<Bool>::zeros(3, 3),
            DenseMatrix::<Bool>::zeros(4, 4),
        ];
        assert!(matches!(
            eng.closure_many(&mixed),
            Err(EngineError::BadInput(_))
        ));
    }
}
