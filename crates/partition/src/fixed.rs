//! Fixed-size arrays derived from the G-graph (§3.2).
//!
//! * [`FixedArrayEngine`] — the Fig. 17 G-graph implemented directly: one
//!   cell per G-node (`n × (n+1)` cells), neighbor links only (pivot
//!   streams flow right, column streams flow down-left), data transfers
//!   overlapped with computation, throughput `1/n` with unrestricted
//!   chaining of problem instances. Inputs enter through `n` parallel
//!   boundary ports (modelled as preloaded port buffers — the fixed-size
//!   array is not host-bandwidth-limited, unlike the partitioned arrays of
//!   Fig. 21).
//! * [`FixedLinearEngine`] — §3.2's collapse of each G-graph row into a
//!   single cell: `n` cells, throughput `1/(n(n+1))`, with the row's pivot
//!   stream recirculating through a per-cell loopback buffer.
//!
//! Both are thin [`Mapping`] impls over the shared [`MappedEngine`]
//! executor: schedules compile once per `(n, batch_len)` shape into a
//! memoized `CompiledPlan` and reuse a reset simulator across calls (see
//! [`crate::plan`]).

use crate::engine::{ideal_cycles_per_instance, stream_key};
use crate::mapping::{MappedEngine, Mapping};
use crate::plan::{CompiledPlan, PlanBuilder};
use systolic_arraysim::{StreamDst, StreamSrc, Task, TaskKind, TaskLabel};
use systolic_transform::{GGraph, GNodeRole, GnodeId};

/// The Fig. 17 mapping: one cell per G-node, neighbor links only.
#[derive(Clone, Debug, Default)]
pub struct FixedArrayMapping;

impl FixedArrayMapping {
    /// Cells used for problem size `n`.
    pub fn cells_for(n: usize) -> usize {
        n * (n + 1)
    }
}

impl Mapping for FixedArrayMapping {
    fn name(&self) -> &'static str {
        "fixed-array"
    }

    fn cells(&self) -> usize {
        0 // problem-size dependent; see cells_for
    }

    fn build_plan(&self, n: usize, batch_len: usize) -> CompiledPlan {
        let gg = GGraph::new(n);
        let w = n + 1;
        let cell_of = |id: GnodeId| id.k * w + id.g;

        let mut plan = PlanBuilder::new(n, batch_len, n * w);

        // Pivot links (k,g) → (k,g+1) and column links (k,g) → (k+1,g-1).
        let mut pl = vec![usize::MAX; n * w];
        let mut cl = vec![usize::MAX; n * w];
        for k in 0..n {
            for g in 0..w {
                if g + 1 < w {
                    pl[k * w + g] = plan.add_link();
                }
                if k + 1 < n && g >= 1 {
                    cl[k * w + g] = plan.add_link();
                }
            }
        }

        // n parallel boundary input ports, one per row-0 column cell.
        let ports: Vec<usize> = (0..n).map(|_| plan.add_bank()).collect();
        plan.set_memory_connections(0);
        let out0 = plan.add_outputs(batch_len * n);

        for inst in 0..batch_len {
            for (g, &port) in ports.iter().enumerate() {
                plan.feed_preload(port, stream_key(inst, 0, g), inst, g);
            }
        }

        for inst in 0..batch_len {
            for id in gg.iter() {
                let (k, g) = (id.k, id.g);
                let role = gg.role(id);
                let kind = match role {
                    GNodeRole::PivotHead => TaskKind::PivotHead,
                    GNodeRole::Fuse => TaskKind::Fuse,
                    GNodeRole::DelayTail => TaskKind::DelayTail,
                };
                let col_in = match role {
                    GNodeRole::DelayTail => None,
                    _ if k == 0 => Some(plan.bank_src(ports[g], stream_key(inst, 0, g))),
                    _ => Some(StreamSrc::Link(cl[(k - 1) * w + g + 1])),
                };
                let pivot_in = match role {
                    GNodeRole::PivotHead => None,
                    _ => Some(StreamSrc::Link(pl[k * w + g - 1])),
                };
                let col_out = match role {
                    GNodeRole::PivotHead => None,
                    _ if k == n - 1 => Some(StreamDst::Output {
                        stream: out0 + inst * n + (g - 1),
                    }),
                    _ => Some(StreamDst::Link(cl[k * w + g])),
                };
                let pivot_out = match role {
                    GNodeRole::DelayTail => None,
                    _ => Some(StreamDst::Link(pl[k * w + g])),
                };
                plan.push_task(
                    cell_of(id),
                    Task {
                        kind,
                        len: n,
                        col_in,
                        pivot_in,
                        col_out,
                        pivot_out,
                        head_out: None,
                        duration: 1,
                        useful_ops: gg.useful_ops(id) as u64,
                        label: TaskLabel {
                            k: k as u32,
                            h: gg.h_of(id) as u32,
                        },
                    },
                );
            }
        }

        plan.set_max_cycles((batch_len as u64 + 8) * (n as u64) * 40 + 100_000);
        plan.finish()
    }
}

/// The Fig. 17 fixed-size array: one cell per G-node.
pub type FixedArrayEngine = MappedEngine<FixedArrayMapping>;

impl FixedArrayEngine {
    /// Creates the engine (the array size adapts to the problem size).
    pub fn new() -> Self {
        Self::default()
    }

    /// Cells used for problem size `n`.
    pub fn cells_for(n: usize) -> usize {
        FixedArrayMapping::cells_for(n)
    }
}

/// §3.2's mapping collapsing each G-graph row into one cell.
#[derive(Clone, Debug, Default)]
pub struct FixedLinearMapping;

impl Mapping for FixedLinearMapping {
    fn name(&self) -> &'static str {
        "fixed-linear"
    }

    fn cells(&self) -> usize {
        0 // n cells for problem size n
    }

    fn build_plan(&self, n: usize, batch_len: usize) -> CompiledPlan {
        let gg = GGraph::new(n);

        let mut plan = PlanBuilder::new(n, batch_len, n);
        // Bank k: cell k's pivot loopback; bank n+k: row k → k+1 columns.
        for _ in 0..2 * n {
            plan.add_bank();
        }
        let loop_bank = |k: usize| k;
        let col_bank = |k: usize| n + k;
        plan.set_memory_connections(2 * n);
        let out0 = plan.add_outputs(batch_len * n);

        // Host: the collapsed row 0 consumes one column at a time, so the
        // single-injection host keeps up (rate 1/(n+1) of a word per cycle).
        for inst in 0..batch_len {
            for g in 0..n {
                plan.feed_host(0, stream_key(inst, 0, g), inst, g);
            }
        }

        for inst in 0..batch_len {
            for id in gg.iter() {
                let (k, g) = (id.k, id.g);
                let h = gg.h_of(id);
                let role = gg.role(id);
                let kind = match role {
                    GNodeRole::PivotHead => TaskKind::PivotHead,
                    GNodeRole::Fuse => TaskKind::Fuse,
                    GNodeRole::DelayTail => TaskKind::DelayTail,
                };
                let col_in = match role {
                    GNodeRole::DelayTail => None,
                    _ if k == 0 => Some(plan.host_src(0, stream_key(inst, 0, g))),
                    _ => Some(plan.bank_src(col_bank(k - 1), stream_key(inst, k - 1, h))),
                };
                let pivot_in = match role {
                    GNodeRole::PivotHead => None,
                    _ => Some(plan.bank_src(loop_bank(k), stream_key(inst, k, h - 1))),
                };
                let col_out = match role {
                    GNodeRole::PivotHead => None,
                    _ if k == n - 1 => Some(StreamDst::Output {
                        stream: out0 + inst * n + (h - n),
                    }),
                    _ => Some(plan.bank_dst(col_bank(k), stream_key(inst, k, h))),
                };
                let pivot_out = match role {
                    GNodeRole::DelayTail => None,
                    _ => Some(plan.bank_dst(loop_bank(k), stream_key(inst, k, h))),
                };
                plan.push_task(
                    k,
                    Task {
                        kind,
                        len: n,
                        col_in,
                        pivot_in,
                        col_out,
                        pivot_out,
                        head_out: None,
                        duration: 1,
                        useful_ops: gg.useful_ops(id) as u64,
                        label: TaskLabel {
                            k: k as u32,
                            h: h as u32,
                        },
                    },
                );
            }
        }

        // The m = 1 (per-column) case of the shared budget formula.
        let ideal = ideal_cycles_per_instance(n, 1);
        plan.set_max_cycles(batch_len as u64 * ideal * 20 + 100_000);
        plan.finish()
    }
}

/// §3.2's linear fixed-size array: each G-graph row collapsed into one cell.
pub type FixedLinearEngine = MappedEngine<FixedLinearMapping>;

impl FixedLinearEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClosureEngine;
    use systolic_semiring::{warshall, Bool, DenseMatrix, MaxMin};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut a = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            a.set(i, j, true);
        }
        a
    }

    #[test]
    fn fixed_array_matches_warshall() {
        for (n, edges) in [
            (3usize, vec![(0, 1), (1, 2)]),
            (5, vec![(0, 2), (2, 4), (4, 1), (1, 0), (3, 3)]),
            (7, vec![(6, 0), (0, 6), (1, 3), (3, 5), (5, 1)]),
        ] {
            let a = bool_adj(n, &edges);
            let eng = FixedArrayEngine::new();
            let (got, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
            assert_eq!(got, warshall(&a), "n={n}");
            assert_eq!(stats.cells, n * (n + 1));
        }
    }

    #[test]
    fn fixed_array_throughput_approaches_one_over_n() {
        // Chain many instances: steady-state initiation interval is n.
        let n = 6;
        let a = bool_adj(n, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let insts = 12;
        let eng = FixedArrayEngine::new();
        let batch: Vec<_> = (0..insts).map(|_| a.clone()).collect();
        let (res, stats) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        assert!(res.iter().all(|r| *r == warshall(&a)));
        let per_instance = stats.cycles as f64 / insts as f64;
        // Pipeline fill adds O(n) total; per-instance cost must approach n.
        assert!(
            per_instance < 1.6 * n as f64,
            "per-instance cycles {per_instance} vs n {n}"
        );
        assert!(per_instance >= n as f64);
    }

    #[test]
    fn fixed_linear_matches_warshall_and_counts() {
        let n = 5;
        let a = bool_adj(n, &[(0, 4), (4, 2), (2, 0), (1, 3)]);
        let eng = FixedLinearEngine::new();
        let (got, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
        assert_eq!(got, warshall(&a));
        assert_eq!(stats.cells, n);
        assert_eq!(stats.host_words, (n * n) as u64);
    }

    #[test]
    fn fixed_linear_throughput_is_one_over_n_n_plus_1() {
        let n = 4;
        let a = bool_adj(n, &[(0, 1), (1, 2), (2, 3)]);
        let insts = 6;
        let eng = FixedLinearEngine::new();
        let batch: Vec<_> = (0..insts).map(|_| a.clone()).collect();
        let (_, stats) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
        let per_instance = stats.cycles as f64 / insts as f64;
        let ideal = (n * (n + 1)) as f64 * 1.0; // (n+1) G-nodes × n cycles / n cells… per row
                                                // Each cell executes (n+1) tasks of n cycles per instance.
        let ideal = ideal * n as f64 / n as f64;
        assert!(
            per_instance < 1.5 * (n * (n + 1)) as f64,
            "per-instance {per_instance} vs ideal {ideal}"
        );
    }

    #[test]
    fn fixed_array_works_over_maxmin() {
        let n = 4;
        let mut a = DenseMatrix::<MaxMin>::zeros(n, n);
        a.set(0, 1, 5);
        a.set(1, 2, 3);
        a.set(0, 2, 2);
        a.set(2, 3, 9);
        let eng = FixedArrayEngine::new();
        let (got, _) = ClosureEngine::<MaxMin>::closure(&eng, &a).unwrap();
        assert_eq!(got, warshall(&a));
        assert_eq!(*got.get(0, 3), 3);
    }

    #[test]
    fn fixed_engines_rerun_bit_identically_from_cache() {
        let a = bool_adj(5, &[(0, 2), (2, 4), (4, 1), (1, 0)]);
        let arr = FixedArrayEngine::new();
        let (r1, s1) = ClosureEngine::<Bool>::closure(&arr, &a).unwrap();
        let (r2, s2) = ClosureEngine::<Bool>::closure(&arr, &a).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        let lin = FixedLinearEngine::new();
        let (r1, s1) = ClosureEngine::<Bool>::closure(&lin, &a).unwrap();
        let (r2, s2) = ClosureEngine::<Bool>::closure(&lin, &a).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
    }
}
