//! The two-dimensional partitioned array of Fig. 19.
//!
//! `√m × √m` cells. In skewed coordinates, G-node `(k, h)` maps to cell
//! `(k mod √m, h mod √m)`; a G-set is a `√m × √m` block of `(k, h)` space,
//! so the parallelogram's slanted edges produce the paper's *triangular
//! boundary sets* (Fig. 19a), which simply leave some cells idle.
//!
//! Streams cross only the block perimeter: column streams leave through the
//! bottom edge into `√m` column banks and re-enter through the top edge;
//! pivot streams leave through the right edge into `√m` pivot banks and
//! re-enter on the left — the paper's `2√m` connections to external
//! memories. Within a block both stream families ride neighbor links.
//! Blocks are scheduled by vertical paths: `h`-block-major, `k`-blocks
//! top-to-bottom inside (the 2-D analogue of Fig. 20b).
//!
//! The geometry lives in [`GridMapping`]; execution is the shared
//! [`MappedEngine`].

use crate::engine::{ideal_cycles_per_instance, stream_key, EngineError};
use crate::mapping::{MappedEngine, Mapping};
use crate::plan::{CompiledPlan, PlanBuilder};
use systolic_arraysim::{StreamDst, StreamSrc, Task, TaskKind, TaskLabel};
use systolic_transform::{GGraph, GNodeRole};

/// The cut-and-pile mapping onto a `√m × √m` grid.
#[derive(Clone, Debug)]
pub struct GridMapping {
    s: usize,
}

impl GridMapping {
    /// Creates the mapping for an `s × s` grid (`m = s²` cells). A zero
    /// side is representable but rejected with
    /// [`crate::EngineError::BadInput`] at run time (see
    /// [`Mapping::validate`]).
    pub fn new(s: usize) -> Self {
        Self { s }
    }

    /// Grid side length `√m`.
    pub fn side(&self) -> usize {
        self.s
    }
}

impl Mapping for GridMapping {
    fn name(&self) -> &'static str {
        "grid-partitioned"
    }

    fn cells(&self) -> usize {
        self.s * self.s
    }

    fn validate(&self) -> Result<(), crate::engine::EngineError> {
        if self.s == 0 {
            return Err(crate::engine::EngineError::BadInput(
                "grid needs at least a 1×1 array (side ≥ 1)".into(),
            ));
        }
        Ok(())
    }

    /// Compiles the grid schedule for one `(n, batch_len)` shape.
    fn build_plan(&self, n: usize, batch_len: usize) -> CompiledPlan {
        let s = self.s;
        let gg = GGraph::new(n);
        let bcols = (2 * n).div_ceil(s);
        let brows = n.div_ceil(s);
        let cell_id = |ri: usize, ci: usize| ri * s + ci;

        let mut plan = PlanBuilder::new(n, batch_len, s * s);
        // Horizontal pivot links (ri,ci) → (ri,ci+1); vertical column links
        // (ri,ci) → (ri+1,ci).
        let mut hl = vec![usize::MAX; s * s];
        let mut vl = vec![usize::MAX; s * s];
        for ri in 0..s {
            for ci in 0..s {
                if ci + 1 < s {
                    hl[cell_id(ri, ci)] = plan.add_link();
                }
                if ri + 1 < s {
                    vl[cell_id(ri, ci)] = plan.add_link();
                }
            }
        }
        // Column banks (top/bottom edge) 0..s, pivot banks (left/right edge)
        // s..2s.
        for _ in 0..2 * s {
            plan.add_bank();
        }
        let col_bank = |ci: usize| ci;
        let piv_bank = |ri: usize| s + ri;
        plan.set_memory_connections(2 * s);
        let out0 = plan.add_outputs(batch_len * n);

        // Host demands in schedule order (instance, h-block, cell column).
        for inst in 0..batch_len {
            for bc in 0..bcols {
                for ci in 0..s {
                    let h = bc * s + ci;
                    if h < n {
                        plan.feed_host(cell_id(0, ci), stream_key(inst, 0, h), inst, h);
                    }
                }
            }
        }

        for inst in 0..batch_len {
            for bc in 0..bcols {
                for br in 0..brows {
                    for ri in 0..s {
                        for ci in 0..s {
                            let k = br * s + ri;
                            let h = bc * s + ci;
                            if k >= n {
                                continue;
                            }
                            let Some(id) = gg.at_h(k, h) else { continue };
                            let role = gg.role(id);
                            let kind = match role {
                                GNodeRole::PivotHead => TaskKind::PivotHead,
                                GNodeRole::Fuse => TaskKind::Fuse,
                                GNodeRole::DelayTail => TaskKind::DelayTail,
                            };
                            let col_in = match role {
                                GNodeRole::DelayTail => None,
                                _ if k == 0 => {
                                    Some(plan.host_src(cell_id(ri, ci), stream_key(inst, 0, h)))
                                }
                                _ if ri > 0 => Some(StreamSrc::Link(vl[cell_id(ri - 1, ci)])),
                                _ => Some(plan.bank_src(col_bank(ci), stream_key(inst, k - 1, h))),
                            };
                            let pivot_in = match role {
                                GNodeRole::PivotHead => None,
                                _ if ci > 0 => Some(StreamSrc::Link(hl[cell_id(ri, ci - 1)])),
                                _ => Some(plan.bank_src(piv_bank(ri), stream_key(inst, k, h - 1))),
                            };
                            let col_out = match role {
                                GNodeRole::PivotHead => None,
                                _ if k == n - 1 => Some(StreamDst::Output {
                                    stream: out0 + inst * n + (h - n),
                                }),
                                _ if ri + 1 < s => Some(StreamDst::Link(vl[cell_id(ri, ci)])),
                                _ => Some(plan.bank_dst(col_bank(ci), stream_key(inst, k, h))),
                            };
                            let pivot_out = match role {
                                GNodeRole::DelayTail => None,
                                _ if ci + 1 < s => Some(StreamDst::Link(hl[cell_id(ri, ci)])),
                                _ => Some(plan.bank_dst(piv_bank(ri), stream_key(inst, k, h))),
                            };
                            plan.push_task(
                                cell_id(ri, ci),
                                Task {
                                    kind,
                                    len: n,
                                    col_in,
                                    pivot_in,
                                    col_out,
                                    pivot_out,
                                    head_out: None,
                                    duration: 1,
                                    useful_ops: gg.useful_ops(id) as u64,
                                    label: TaskLabel {
                                        k: k as u32,
                                        h: h as u32,
                                    },
                                },
                            );
                        }
                    }
                }
            }
        }

        let m = s * s;
        let ideal = ideal_cycles_per_instance(n, m) + 1;
        plan.set_max_cycles(batch_len as u64 * ideal * 40 + 200_000);
        plan.finish()
    }
}

/// Cut-and-pile executor on a `√m × √m` grid.
pub type GridEngine = MappedEngine<GridMapping>;

impl GridEngine {
    /// Creates an engine with an `s × s` grid (`m = s²` cells, `s ≥ 1`).
    pub fn new(s: usize) -> Self {
        Self::from_mapping(GridMapping::new(s))
    }

    /// Creates the engine from a total cell budget `m`, which must be a
    /// perfect square.
    ///
    /// # Errors
    /// Returns [`EngineError::BadInput`] when `m` is not a perfect square.
    pub fn from_cells(m: usize) -> Result<Self, EngineError> {
        let s = (m as f64).sqrt().round() as usize;
        if s * s == m && s >= 1 {
            Ok(Self::new(s))
        } else {
            Err(EngineError::BadInput(format!(
                "grid cell budget m={m} is not a perfect square \
                 (nearest squares: {} and {})",
                s.saturating_sub(1).pow(2),
                (s + 1).pow(2)
            )))
        }
    }

    /// Grid side length `√m`.
    pub fn side(&self) -> usize {
        self.mapping().side()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClosureEngine;
    use systolic_semiring::{warshall, Bool, DenseMatrix, MinPlus};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut a = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            a.set(i, j, true);
        }
        a
    }

    #[test]
    fn matches_warshall_across_grid_sides() {
        let a = bool_adj(6, &[(0, 3), (3, 5), (5, 1), (1, 4), (4, 0)]);
        let want = warshall(&a);
        for s in [1usize, 2, 3, 4] {
            let eng = GridEngine::new(s);
            let (got, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
            assert_eq!(got, want, "s={s}");
            assert_eq!(stats.memory_connections, 2 * s);
            assert_eq!(stats.cells, s * s);
        }
    }

    #[test]
    fn matches_warshall_minplus() {
        let n = 7;
        let mut a = DenseMatrix::<MinPlus>::zeros(n, n);
        for (i, j, w) in [
            (0usize, 1usize, 3u64),
            (1, 4, 2),
            (4, 6, 8),
            (6, 2, 1),
            (2, 0, 5),
            (3, 5, 7),
            (5, 3, 7),
        ] {
            a.set(i, j, w);
        }
        let eng = GridEngine::new(2);
        let (got, _) = ClosureEngine::<MinPlus>::closure(&eng, &a).unwrap();
        assert_eq!(got, warshall(&a));
    }

    #[test]
    fn from_cells_accepts_squares_only() {
        assert!(GridEngine::from_cells(9).is_ok());
        assert_eq!(GridEngine::from_cells(9).unwrap().side(), 3);
        match GridEngine::from_cells(8) {
            Err(EngineError::BadInput(msg)) => {
                assert!(msg.contains("m=8"), "{msg}");
                assert!(msg.contains("perfect square"), "{msg}");
            }
            other => panic!("expected BadInput for m=8, got {other:?}"),
        }
    }

    #[test]
    fn chained_instances() {
        let a = bool_adj(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let b = bool_adj(5, &[(4, 0), (0, 2), (2, 4)]);
        let eng = GridEngine::new(2);
        let (got, _) = ClosureEngine::<Bool>::closure_many(&eng, &[a.clone(), b.clone()]).unwrap();
        assert_eq!(got[0], warshall(&a));
        assert_eq!(got[1], warshall(&b));
    }

    #[test]
    fn grid_and_linear_have_same_useful_ops() {
        use crate::linear::LinearEngine;
        let a = bool_adj(6, &[(0, 5), (5, 3), (3, 1)]);
        let (_, gs) = ClosureEngine::<Bool>::closure(&GridEngine::new(2), &a).unwrap();
        let (_, ls) = ClosureEngine::<Bool>::closure(&LinearEngine::new(4), &a).unwrap();
        assert_eq!(gs.useful_ops, ls.useful_ops);
        assert_eq!(gs.useful_ops, (6 * 5 * 4) as u64);
    }
}
