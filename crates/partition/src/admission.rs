//! Admission batching of Boolean closure requests onto the packed engine.
//!
//! A long-running reachability server produces closure work in dribbles:
//! one delete-fallback recompute here, a tenant's refresh there. Running
//! each through [`crate::PackedEngine`] alone wastes 63 of its 64 lanes.
//! [`AdmissionBatcher`] is the admission queue in front of the engine:
//! callers [`submit`](AdmissionBatcher::submit) independent closure
//! requests and receive a [`Ticket`]; a [`flush`](AdmissionBatcher::flush)
//! groups everything pending by problem size and drives each group through
//! `closure_many`, so up to [`LANES`] same-size requests share one
//! `BoolLanes` run on the memoized single-instance plan. Results are
//! claimed by ticket with [`take`](AdmissionBatcher::take).
//!
//! The batcher also proves the "warm server never recompiles" property:
//! each flush records, per size group, whether the plan was already
//! compiled ([`PackedEngine::has_plan`]) — after the first flush of a
//! size, every later flush of that size must be warm.

use crate::engine::{ClosureEngine, EngineError};
use crate::packed::PackedEngine;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use systolic_semiring::{Bool, DenseMatrix, LANES};

/// Claim check for a submitted closure request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

/// Cumulative batcher counters (monotone across flushes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests accepted by `submit`.
    pub submitted: u64,
    /// `flush` calls that ran at least one group.
    pub flushes: u64,
    /// Closure instances executed.
    pub executed: u64,
    /// `BoolLanes` runs (lane groups of ≤ 64 instances).
    pub lane_runs: u64,
    /// Size groups whose plan was already compiled when flushed.
    pub warm_groups: u64,
    /// Size groups that had to compile their plan (first sight of a size).
    pub cold_groups: u64,
}

/// What one [`AdmissionBatcher::flush`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Instances executed by this flush.
    pub executed: usize,
    /// Distinct problem sizes (one `closure_many` call each).
    pub groups: usize,
    /// `BoolLanes` runs across all groups (`Σ ⌈group/64⌉`).
    pub lane_runs: usize,
    /// Groups that ran on an already-compiled plan.
    pub warm_groups: usize,
}

struct Inner {
    next: u64,
    queue: Vec<(Ticket, DenseMatrix<Bool>)>,
    done: HashMap<Ticket, DenseMatrix<Bool>>,
    stats: AdmissionStats,
}

/// Packs pending Boolean closure requests into shared [`PackedEngine`]
/// lane runs. Thread-safe: submissions and flushes may interleave freely
/// (a flush drains only what was pending when it started).
pub struct AdmissionBatcher {
    engine: PackedEngine,
    capacity: Option<usize>,
    inner: Mutex<Inner>,
}

impl AdmissionBatcher {
    /// Wraps a packed engine (keeping its plan cache — a batcher handed a
    /// pre-warmed engine starts warm). The queue is unbounded; see
    /// [`AdmissionBatcher::with_capacity`] for overload shedding.
    pub fn new(engine: PackedEngine) -> Self {
        Self::with_capacity(engine, None)
    }

    /// Like [`AdmissionBatcher::new`], but bounds the pending queue:
    /// `submit` past `cap` requests fails with [`EngineError::Busy`]
    /// instead of growing without limit — the backpressure signal a
    /// server turns into `ERR BUSY`.
    pub fn with_capacity(engine: PackedEngine, capacity: Option<usize>) -> Self {
        Self {
            engine,
            capacity,
            inner: Mutex::new(Inner {
                next: 0,
                queue: Vec::new(),
                done: HashMap::new(),
                stats: AdmissionStats::default(),
            }),
        }
    }

    /// The pending-queue bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &PackedEngine {
        &self.engine
    }

    /// Queues one closure request (a square Boolean adjacency matrix,
    /// `n ≥ 2`) and returns its claim ticket.
    ///
    /// # Errors
    /// [`EngineError::BadInput`] when the matrix is not square or too
    /// small for the engines; [`EngineError::Busy`] when a bounded queue
    /// is at capacity (shed the request, retry after a flush).
    pub fn submit(&self, a: DenseMatrix<Bool>) -> Result<Ticket, EngineError> {
        if !a.is_square() {
            return Err(EngineError::BadInput(format!(
                "closure request must be square, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if a.rows() < 2 {
            return Err(EngineError::BadInput(format!(
                "closure request size n={} must be ≥ 2",
                a.rows()
            )));
        }
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        if let Some(cap) = self.capacity {
            if inner.queue.len() >= cap {
                return Err(EngineError::Busy {
                    pending: inner.queue.len(),
                    cap,
                });
            }
        }
        let t = Ticket(inner.next);
        inner.next += 1;
        inner.stats.submitted += 1;
        inner.queue.push((t, a));
        Ok(t)
    }

    /// Number of requests waiting for the next flush.
    pub fn pending(&self) -> usize {
        self.inner
            .lock()
            .expect("admission queue poisoned")
            .queue
            .len()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> AdmissionStats {
        self.inner.lock().expect("admission queue poisoned").stats
    }

    /// Runs everything pending: groups by problem size, one `closure_many`
    /// per size (the packed engine slices each into ≤ 64-lane runs), and
    /// files the results for [`take`](AdmissionBatcher::take).
    ///
    /// # Errors
    /// Propagates the engine's error; the failed flush's requests are
    /// dropped (their tickets will never resolve) — a server treats that
    /// as a fatal backend fault.
    pub fn flush(&self) -> Result<FlushReport, EngineError> {
        let drained = {
            let mut inner = self.inner.lock().expect("admission queue poisoned");
            std::mem::take(&mut inner.queue)
        };
        if drained.is_empty() {
            return Ok(FlushReport::default());
        }
        let mut by_size: BTreeMap<usize, Vec<(Ticket, DenseMatrix<Bool>)>> = BTreeMap::new();
        for (t, a) in drained {
            by_size.entry(a.rows()).or_default().push((t, a));
        }
        let mut report = FlushReport {
            groups: by_size.len(),
            ..FlushReport::default()
        };
        let mut finished: Vec<(Ticket, DenseMatrix<Bool>)> = Vec::new();
        for (n, group) in by_size {
            let warm = self.engine.has_plan(n);
            let mats: Vec<DenseMatrix<Bool>> = group.iter().map(|(_, a)| a.clone()).collect();
            let (closed, _stats) = self.engine.closure_many(&mats)?;
            report.executed += group.len();
            report.lane_runs += group.len().div_ceil(LANES);
            report.warm_groups += usize::from(warm);
            finished.extend(group.into_iter().map(|(t, _)| t).zip(closed));
        }
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        inner.stats.flushes += 1;
        inner.stats.executed += report.executed as u64;
        inner.stats.lane_runs += report.lane_runs as u64;
        inner.stats.warm_groups += report.warm_groups as u64;
        inner.stats.cold_groups += (report.groups - report.warm_groups) as u64;
        inner.done.extend(finished);
        Ok(report)
    }

    /// Claims a flushed result; `None` while still pending (or unknown).
    pub fn take(&self, ticket: Ticket) -> Option<DenseMatrix<Bool>> {
        self.inner
            .lock()
            .expect("admission queue poisoned")
            .done
            .remove(&ticket)
    }

    /// Withdraws a request: removes it from the pending queue (if not yet
    /// flushed) or drops its filed result. Returns whether anything was
    /// removed. Lets a caller that gave up on a ticket (e.g. falling back
    /// to a software recompute) avoid leaking queue slots and results.
    pub fn cancel(&self, ticket: Ticket) -> bool {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        if let Some(pos) = inner.queue.iter().position(|(t, _)| *t == ticket) {
            inner.queue.remove(pos);
            return true;
        }
        inner.done.remove(&ticket).is_some()
    }
}

impl std::fmt::Debug for AdmissionBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("admission queue poisoned");
        write!(
            f,
            "AdmissionBatcher(pending: {}, done: {}, {:?})",
            inner.queue.len(),
            inner.done.len(),
            inner.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::warshall;
    use systolic_util::Rng;

    fn random_bool(n: usize, rng: &mut Rng) -> DenseMatrix<Bool> {
        DenseMatrix::from_fn(n, n, |i, j| i != j && rng.gen_bool(0.3))
    }

    #[test]
    fn results_match_warshall_per_ticket() {
        let mut rng = Rng::seed_from_u64(3);
        let b = AdmissionBatcher::new(PackedEngine::new(2));
        // Mixed sizes interleaved; the batcher regroups them.
        let reqs: Vec<_> = (0..10)
            .map(|i| random_bool(if i % 2 == 0 { 4 } else { 6 }, &mut rng))
            .collect();
        let tickets: Vec<_> = reqs.iter().map(|a| b.submit(a.clone()).unwrap()).collect();
        assert_eq!(b.pending(), 10);
        let report = b.flush().unwrap();
        assert_eq!(report.executed, 10);
        assert_eq!(report.groups, 2);
        assert_eq!(report.lane_runs, 2);
        assert_eq!(b.pending(), 0);
        for (t, a) in tickets.iter().zip(&reqs) {
            assert_eq!(b.take(*t).unwrap(), warshall(a));
            assert!(b.take(*t).is_none(), "take is once");
        }
    }

    #[test]
    fn second_flush_of_a_size_is_warm() {
        let mut rng = Rng::seed_from_u64(8);
        let b = AdmissionBatcher::new(PackedEngine::new(2));
        b.submit(random_bool(5, &mut rng)).unwrap();
        let first = b.flush().unwrap();
        assert_eq!(first.warm_groups, 0, "first sight of n=5 compiles");
        b.submit(random_bool(5, &mut rng)).unwrap();
        b.submit(random_bool(5, &mut rng)).unwrap();
        let second = b.flush().unwrap();
        assert_eq!(second.warm_groups, 1, "n=5 plan is cached now");
        assert_eq!(second.lane_runs, 1, "two requests share one lane run");
        let s = b.stats();
        assert_eq!(s.cold_groups, 1);
        assert_eq!(s.warm_groups, 1);
        assert_eq!(s.executed, 3);
    }

    #[test]
    fn spillover_past_64_lanes_splits_runs() {
        let mut rng = Rng::seed_from_u64(13);
        let b = AdmissionBatcher::new(PackedEngine::new(2));
        for _ in 0..70 {
            b.submit(random_bool(3, &mut rng)).unwrap();
        }
        let report = b.flush().unwrap();
        assert_eq!(report.groups, 1);
        assert_eq!(report.lane_runs, 2, "70 requests = 64 + 6 lanes");
    }

    #[test]
    fn rejects_malformed_requests() {
        let b = AdmissionBatcher::new(PackedEngine::new(2));
        let tall = DenseMatrix::<Bool>::zeros(3, 2);
        assert!(matches!(b.submit(tall), Err(EngineError::BadInput(_))));
        let tiny = DenseMatrix::<Bool>::zeros(1, 1);
        assert!(matches!(b.submit(tiny), Err(EngineError::BadInput(_))));
    }

    #[test]
    fn bounded_queue_sheds_load_and_recovers_after_flush() {
        let mut rng = Rng::seed_from_u64(21);
        let b = AdmissionBatcher::with_capacity(PackedEngine::new(2), Some(2));
        assert_eq!(b.capacity(), Some(2));
        let t0 = b.submit(random_bool(4, &mut rng)).unwrap();
        let t1 = b.submit(random_bool(4, &mut rng)).unwrap();
        match b.submit(random_bool(4, &mut rng)) {
            Err(EngineError::Busy { pending, cap }) => {
                assert_eq!((pending, cap), (2, 2));
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        b.flush().unwrap();
        assert!(b.take(t0).is_some() && b.take(t1).is_some());
        // The queue drained; admission opens again.
        b.submit(random_bool(4, &mut rng)).unwrap();
        assert_eq!(b.pending(), 1);
    }

    #[test]
    fn empty_flush_is_a_no_op() {
        let b = AdmissionBatcher::new(PackedEngine::new(2));
        let report = b.flush().unwrap();
        assert_eq!(report, FlushReport::default());
        assert_eq!(b.stats().flushes, 0);
    }
}
